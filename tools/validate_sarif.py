#!/usr/bin/env python3
"""Validate a SARIF report against the vendored minimal schema.

Usage::

    python tools/validate_sarif.py report.sarif [schema.json]

Exit 0 when the document conforms, 1 with one error per line otherwise.

The container has no jsonschema package, so this interprets the small,
closed subset of JSON Schema the vendored ``tools/sarif_schema.json``
actually uses: ``type``, ``required``, ``properties``, ``items``,
``enum``, ``pattern`` and ``minimum``. Unknown keywords are rejected at
load time rather than silently ignored, so the schema cannot grow past
what the interpreter understands.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).parent / "sarif_schema.json"

_KNOWN_KEYWORDS = {
    "$comment",
    "type",
    "required",
    "properties",
    "items",
    "enum",
    "pattern",
    "minimum",
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _check_schema_supported(schema: dict, where: str = "$") -> None:
    unknown = set(schema) - _KNOWN_KEYWORDS
    if unknown:
        raise ValueError(f"{where}: unsupported schema keywords {sorted(unknown)}")
    for key, sub in schema.get("properties", {}).items():
        _check_schema_supported(sub, f"{where}.{key}")
    if "items" in schema:
        _check_schema_supported(schema["items"], f"{where}[]")


def _validate(node, schema: dict, where: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        ok = isinstance(node, python_type)
        if ok and expected in ("integer", "number") and isinstance(node, bool):
            ok = False
        if not ok:
            errors.append(f"{where}: expected {expected}, got {type(node).__name__}")
            return
    if "enum" in schema and node not in schema["enum"]:
        errors.append(f"{where}: {node!r} not in {schema['enum']}")
    if "pattern" in schema and isinstance(node, str):
        if re.search(schema["pattern"], node) is None:
            errors.append(f"{where}: {node!r} does not match {schema['pattern']!r}")
    if "minimum" in schema and isinstance(node, (int, float)):
        if node < schema["minimum"]:
            errors.append(f"{where}: {node} below minimum {schema['minimum']}")
    if isinstance(node, dict):
        for name in schema.get("required", []):
            if name not in node:
                errors.append(f"{where}: missing required property {name!r}")
        for name, sub in schema.get("properties", {}).items():
            if name in node:
                _validate(node[name], sub, f"{where}.{name}", errors)
    if isinstance(node, list) and "items" in schema:
        for index, item in enumerate(node):
            _validate(item, schema["items"], f"{where}[{index}]", errors)


def validate_sarif(document, schema: dict | None = None) -> list[str]:
    """Return a list of conformance errors (empty = valid)."""
    if schema is None:
        schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    _check_schema_supported(schema)
    errors: list[str] = []
    _validate(document, schema, "$", errors)
    return errors


def validate_sarif_text(text: str, schema: dict | None = None) -> list[str]:
    """Validate a SARIF document given as JSON text."""
    try:
        document = json.loads(text)
    except ValueError as exc:
        return [f"$: not valid JSON: {exc}"]
    return validate_sarif(document, schema)


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: validate_sarif.py report.sarif [schema.json]", file=sys.stderr)
        return 2
    report_path = Path(argv[1])
    schema = None
    if len(argv) == 3:
        schema = json.loads(Path(argv[2]).read_text(encoding="utf-8"))
    errors = validate_sarif_text(report_path.read_text(encoding="utf-8"), schema)
    for error in errors:
        print(f"{report_path}: {error}", file=sys.stderr)
    if not errors:
        print(f"{report_path}: valid SARIF {json.loads(report_path.read_text())['version']}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
