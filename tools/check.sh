#!/usr/bin/env bash
# Repo gate: determinism lint, style lint, test suite — in order, failing fast.
#
# Usage: tools/check.sh
#
# ruff and mypy come from the dev extra (`pip install -e '.[dev]'`); when not
# installed those steps are reported and skipped so the determinism lint and
# the test suite still gate the change.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro.lint (whole-program: determinism, cache coherence, shard safety) =="
python -m repro.lint src/
echo "== repro.lint incremental (--changed over the warm cache) =="
python -m repro.lint --changed src/

echo "== repro.lint SARIF (emit + validate against vendored schema) =="
sarif_tmp=$(mktemp)
python -m repro.lint --format sarif src/ > "$sarif_tmp" || true
python tools/validate_sarif.py "$sarif_tmp"
rm -f "$sarif_tmp"

echo "== repro.trace smoke (traced scenario, JSONL schema) =="
python -m repro.trace smoke

echo "== repro.faults smoke (chaos recovery + deterministic schedules) =="
python -m repro.faults smoke

echo "== repro.overload smoke (graceful shedding + byte-identical reruns) =="
python -m repro.overload smoke

echo "== repro.metrics smoke (byte-identical exports + no observer effect) =="
python -m repro.metrics smoke

echo "== repro.rtp smoke (MOS recovery contrast + inert media defaults) =="
python -m repro.rtp smoke

echo "== repro.handover smoke (mid-call survival + byte-identical reruns) =="
python -m repro.handover smoke

echo "== kernel parity smoke (calendar vs heap, byte-identical traces) =="
parity_dir=$(mktemp -d)
trap 'rm -rf "$parity_dir"' EXIT
python -m repro.netsim kernel-trace --kernel heap --out "$parity_dir/heap.jsonl"
python -m repro.netsim kernel-trace --kernel calendar --out "$parity_dir/calendar.jsonl"
cmp "$parity_dir/heap.jsonl" "$parity_dir/calendar.jsonl"
echo "kernel parity ok: $(wc -l < "$parity_dir/heap.jsonl") trace lines byte-identical"

echo "== ruff check =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src/
else
    echo "ruff not installed (pip install -e '.[dev]') — skipped"
fi

echo "== mypy (src/repro/lint, src/repro/netsim) =="
if command -v mypy >/dev/null 2>&1; then
    mypy src/repro/lint src/repro/netsim
else
    echo "mypy not installed (pip install -e '.[dev]') — skipped"
fi

echo "== pytest =="
python -m pytest -x -q
