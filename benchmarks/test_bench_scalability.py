"""E5 — scalability with network size (the paper's stated future work)."""

from benchmarks.conftest import run_once, show
from repro.experiments import scalability_table


def test_e5_scalability_static(benchmark):
    table = run_once(
        benchmark,
        scalability_table,
        node_counts=(10, 20, 30),
        seeds=(1, 2),
        calls_per_run=5,
    )
    show(table)
    for row in table.to_dicts():
        assert row["success_ratio"] >= 0.7, f"{row['nodes']} nodes: too many failures"


def test_e5_scalability_mobile(benchmark):
    table = run_once(
        benchmark,
        scalability_table,
        node_counts=(16,),
        seeds=(1, 2),
        calls_per_run=5,
        mobility=True,
    )
    show(table)
    # Under random waypoint motion some calls may fail, but the system
    # must keep establishing a solid majority.
    assert table.rows[0][3] >= 0.5
