"""E2 — control overhead vs node count, SIPHoc vs the three baselines."""

from benchmarks.conftest import run_once, show
from repro.experiments import overhead_vs_nodes_table


def test_e2_overhead_vs_nodes(benchmark):
    table = run_once(
        benchmark,
        overhead_vs_nodes_table,
        node_counts=(9, 16, 25),
        n_lookups=8,
    )
    show(table)
    rows = table.to_dicts()

    def pick(scheme, nodes):
        return next(r for r in rows if r["scheme"] == scheme and r["nodes"] == nodes)

    for nodes in (9, 16, 25):
        siphoc = pick("siphoc", nodes)
        # The headline claim: piggybacking adds zero dedicated discovery packets.
        assert siphoc["discovery_bytes"] == 0
        # ... and total control traffic stays well below the flooding baselines.
        for baseline in ("flooding-register", "proactive-hello"):
            assert pick(baseline, nodes)["control_bytes"] > 3 * siphoc["control_bytes"], (
                f"{baseline} should cost several times SIPHoc at {nodes} nodes"
            )
    # Baseline overhead grows superlinearly with network size.
    assert (
        pick("proactive-hello", 25)["control_bytes"]
        > 3 * pick("proactive-hello", 9)["control_bytes"]
    )
