"""F5 — Figure 5: capture and dissect an AODV RREP carrying a SIP contact."""

from benchmarks.conftest import run_once
from repro.analyzer import render_frame
from repro.analyzer.dissect import dissect_frame
from repro.core import SiphocStack
from repro.netsim import (
    Node,
    PacketCapture,
    Simulator,
    Stats,
    WirelessMedium,
    manet_ip,
    place_chain,
)


def capture_figure5():
    """Run the lookup scenario and return the Figure 5 frame's rendering."""
    sim = Simulator(seed=5)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    capture = PacketCapture(port_filter={654})
    medium.add_sniffer(capture.on_frame)
    stacks = []
    for index in range(3):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        stacks.append(
            SiphocStack(node, routing="aodv", run_connection_provider=False).start()
        )
    place_chain([stack.node for stack in stacks], 100.0)
    alice = stacks[0].add_phone(username="alice")
    stacks[2].add_phone(username="bob")
    sim.run(1.0)
    alice.place_call("sip:bob@voicehoc.ch", duration=2.0)
    sim.run(8.0)
    for number, frame in enumerate(capture.frames, start=1):
        dissection = dissect_frame(frame, number)
        aodv = dissection.find("Ad hoc On-demand")
        if aodv is not None and any("SLP Reply" in child.name for child in aodv.children):
            return render_frame(frame, number)
    return None


def test_f5_packet_capture(benchmark):
    rendering = benchmark.pedantic(capture_figure5, rounds=1, iterations=1)
    print()
    print(rendering)
    assert rendering is not None, "no RREP with piggybacked SIP contact captured"
    # The Figure 5 essentials: an AODV route reply whose extension carries
    # the SIP contact binding for the looked-up user.
    assert "Route Reply (RREP)" in rendering
    assert "SIPHoc Extension" in rendering
    assert "service:siphoc-sip://" in rendering
    assert "sip:bob@voicehoc.ch" in rendering
