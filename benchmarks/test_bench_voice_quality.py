"""E6 — voice quality (E-model MOS) vs path length and link loss."""

from benchmarks.conftest import run_once, show
from repro.experiments import voice_quality_table


def test_e6_voice_quality(benchmark):
    table = run_once(
        benchmark,
        voice_quality_table,
        hop_counts=(1, 2, 4, 6),
        loss_rates=(0.0, 0.05, 0.15),
        talk_time=10.0,
    )
    show(table)
    rows = table.to_dicts()
    clean = [r for r in rows if r["link_loss"] == 0.0]
    assert all(r["established"] for r in clean)
    # Loss-free multihop voice stays comfortably above the MOS 3.6 bar.
    assert all(r["mos"] >= 3.6 for r in clean)
    # More loss never improves MOS at fixed hop count (NaN = stream died,
    # treated as the floor).
    for hops in (1, 2, 4, 6):
        series = [
            r["mos"] if r["mos"] == r["mos"] else 1.0
            for r in rows
            if r["hops"] == hops and r["established"]
        ]
        assert all(a >= b - 0.15 for a, b in zip(series, series[1:])), (
            f"MOS should not rise with loss at {hops} hops"
        )
