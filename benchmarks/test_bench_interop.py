"""T1 — section 3.2 provider interoperability matrix."""

from benchmarks.conftest import run_once, show
from repro.experiments import interop_table


def test_t1_interop_matrix(benchmark):
    table = run_once(benchmark, interop_table)
    show(table)
    rows = table.to_dicts()
    plain = [r for r in rows if not r["mandates_sbc"]]
    assert len(plain) == 2
    for row in plain:
        # "one can make phone calls to and from the Internet without a problem"
        assert row["upstream_reg"] and row["manet_to_inet"] and row["inet_to_manet"]
    broken = next(r for r in rows if r["mandates_sbc"] and not r["fix_configured"])
    # "a problem occurs if the SIP provider requires a special outbound proxy"
    assert not broken["upstream_reg"]
    assert not broken["manet_to_inet"]
    fixed = next(r for r in rows if r["mandates_sbc"] and r["fix_configured"])
    # The paper's future-work fix restores full service.
    assert fixed["upstream_reg"] and fixed["manet_to_inet"] and fixed["inet_to_manet"]
