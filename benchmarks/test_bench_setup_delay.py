"""E1 — session setup delay vs hop count (AODV and OLSR)."""

import math

from benchmarks.conftest import run_once, show
from repro.experiments import setup_delay_table


def test_e1_setup_delay(benchmark):
    table = run_once(
        benchmark,
        setup_delay_table,
        hop_counts=(1, 2, 4, 6, 8),
        routings=("aodv", "olsr"),
        seeds=(1, 2, 3),
    )
    show(table)
    # Shape: every call sets up, and delay grows with hop count per routing.
    for routing in ("aodv", "olsr"):
        rows = [row for row in table.rows if row[0] == routing]
        assert all(row[2] == "3/3" for row in rows), f"{routing}: setup failures"
        delays = [row[3] for row in rows]
        assert all(not math.isnan(d) for d in delays)
        assert delays[0] < delays[-1], f"{routing}: delay should grow with hops"
        assert delays[-1] < 1.0, f"{routing}: 8-hop setup should stay sub-second"
