"""A1 — discovery scheme ablation on one fixed workload."""

from benchmarks.conftest import run_once, show
from repro.experiments import ablation_discovery_table


def test_a1_discovery_ablation(benchmark):
    table = run_once(benchmark, ablation_discovery_table, n_nodes=16, seeds=(1, 2))
    show(table)
    rows = {row["scheme"]: row for row in table.to_dicts()}
    assert rows["siphoc"]["success_ratio"] >= 0.9
    assert rows["siphoc"]["discovery_bytes"] == 0
    # SIPHoc resolves faster than the multicast-SLP collection window...
    assert rows["siphoc"]["mean_latency_s"] < rows["multicast-slp"]["mean_latency_s"]
    # ...and cheaper than both proactive baselines.
    assert rows["siphoc"]["control_bytes"] < rows["flooding-register"]["control_bytes"]
    assert rows["siphoc"]["control_bytes"] < rows["proactive-hello"]["control_bytes"]
    # Battery story (iPAQ deployment): piggybacking drains an order of
    # magnitude less energy than the flooding baselines, network-wide and
    # at the hottest node.
    for baseline in ("flooding-register", "proactive-hello"):
        assert rows[baseline]["energy_j"] > 5 * rows["siphoc"]["energy_j"]
        assert rows[baseline]["hotspot_j"] > 5 * rows["siphoc"]["hotspot_j"]
