"""E3 — registration availability: proactive fill vs on-demand lookup."""

import math

from benchmarks.conftest import run_once, show
from repro.experiments import convergence_table


def test_e3_convergence(benchmark):
    table = run_once(benchmark, convergence_table, n_nodes=9, seeds=(1, 2, 3))
    show(table)
    rows = table.to_dicts()
    # On-demand lookups resolve for both protocols.
    for routing in ("aodv", "olsr"):
        lookup = next(
            r for r in rows if r["routing"] == routing and r["mode"] == "on-demand lookup"
        )
        assert lookup["resolved"] == "3/3"
        assert not math.isnan(lookup["mean_s"])
        assert lookup["mean_s"] < 3.0
    # OLSR additionally converges proactively (adverts ride routing traffic).
    proactive = [r for r in rows if r["mode"] == "proactive cache fill" and r["routing"] == "olsr"]
    assert proactive, "OLSR must show proactive cache fill"
    assert proactive[0]["mean_s"] < 40.0
