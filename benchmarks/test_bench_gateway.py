"""E4 — gateway discovery, tunnel establishment and Internet calls."""

import math

from benchmarks.conftest import run_once, show
from repro.experiments import gateway_table


def test_e4_gateway(benchmark):
    table = run_once(benchmark, gateway_table, chain_lengths=(2, 3, 5))
    show(table)
    for row in table.to_dicts():
        assert not math.isnan(row["tunnel_up_s"]), "tunnel must come up"
        assert row["tunnel_up_s"] < 30.0
        assert row["upstream_reg"] is True
        assert row["out_call"] is True, "MANET -> Internet call must establish"
        assert row["in_call"] is True, "Internet -> MANET call must establish"
        assert row["out_setup_s"] < 10.0
