"""A2 — advert lifetime / refresh ablation (freshness vs overhead)."""

from benchmarks.conftest import run_once, show
from repro.experiments import cache_ablation_table


def test_a2_cache_ablation(benchmark):
    table = run_once(
        benchmark, cache_ablation_table, lifetimes=(10.0, 30.0, 120.0), observation=40.0
    )
    show(table)
    rows = table.to_dicts()
    # With refresh running, the cache answers regardless of lifetime.
    assert all(row["hit_after_warmup"] for row in rows)
    # Short lifetimes purge a crashed node's entry quickly...
    assert not rows[0]["stale_after_leave"]
    # ...long lifetimes still serve the ghost 20 s after the crash...
    assert rows[-1]["stale_after_leave"]
    # ...and freshness costs proportionally more piggybacked adverts.
    assert rows[0]["adverts_piggybacked"] > rows[-1]["adverts_piggybacked"]
