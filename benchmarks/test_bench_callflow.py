"""F3 — Figure 3: the eight-step call flow in an isolated MANET."""

from benchmarks.conftest import run_once, show
from repro.experiments import call_flow_table


def test_f3_call_flow_aodv(benchmark):
    table = run_once(benchmark, call_flow_table, "aodv")
    show(table)
    assert all(row[2] for row in table.rows), "every Figure 3 step must succeed"


def test_f3_call_flow_olsr(benchmark):
    table = run_once(benchmark, call_flow_table, "olsr")
    show(table)
    assert all(row[2] for row in table.rows)
