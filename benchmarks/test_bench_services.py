"""S1 (extension) — IM, presence and video services over SIPHoc."""

import math

from benchmarks.conftest import run_once, show
from repro.experiments import services_table


def test_s1_services(benchmark):
    table = run_once(benchmark, services_table, hop_counts=(1, 2, 4))
    show(table)
    for row in table.to_dicts():
        assert row["im_delivered"], f"{row['hops']} hops: message lost"
        assert row["im_latency_s"] < 0.5
        assert not math.isnan(row["presence_latency_s"])
        assert row["presence_latency_s"] < 1.0
        assert row["video_ok"], f"{row['hops']} hops: video unwatchable"
