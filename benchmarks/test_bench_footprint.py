"""F6 — section 4 deployment footprint (component inventory, flash budget)."""

from benchmarks.conftest import run_once, show
from repro.experiments import footprint_table, module_inventory_table


def test_f6_footprint(benchmark):
    table = run_once(benchmark, footprint_table)
    show(table)
    components = table.column("component")
    for expected in (
        "SIPHoc proxy",
        "MANET SLP",
        "Gateway Provider",
        "Connection Provider",
        "VoIP application",
    ):
        assert expected in components
    # The paper's budget check: the system fits the iPAQ's free flash.
    assert any("fit: True" in note for note in table.notes)


def test_f6_module_inventory(benchmark):
    table = run_once(benchmark, module_inventory_table)
    show(table)
    packages = table.column("package")
    assert {"core", "sip", "slp", "routing", "netsim", "rtp"}.issubset(set(packages))
    assert all(row[2] > 0 for row in table.rows)  # every package has code
