#!/usr/bin/env python
"""Run the benchmark suite and emit pytest-benchmark JSON for trend tracking.

Writes ``BENCH_<YYYY-MM-DD>.json`` (pytest-benchmark's machine-readable
format) into the repository root so successive PRs leave a perf trajectory
to diff against::

    python benchmarks/run_bench.py                 # micro-benchmarks (fast)
    python benchmarks/run_bench.py --all           # every benchmark file
    python benchmarks/run_bench.py -o my.json -- -k broadcast

Arguments after ``--`` are forwarded to pytest verbatim.
"""

from __future__ import annotations

import argparse
import datetime
import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--all",
        action="store_true",
        help="run every benchmark file (default: micro-benchmarks only)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="output JSON path (default: BENCH_<date>.json in the repo root)",
    )
    args, passthrough = parser.parse_known_args(argv)
    if passthrough and passthrough[0] == "--":
        passthrough = passthrough[1:]

    output = args.output or os.path.join(
        REPO_ROOT, f"BENCH_{datetime.date.today().isoformat()}.json"
    )
    target = "benchmarks" if args.all else "benchmarks/test_bench_micro.py"
    command = [
        sys.executable,
        "-m",
        "pytest",
        target,
        "--benchmark-only",
        f"--benchmark-json={output}",
        "-q",
        *passthrough,
    ]
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    print("+", " ".join(command))
    result = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if result.returncode == 0:
        print(f"benchmark JSON written to {output}")
    return result.returncode


if __name__ == "__main__":
    raise SystemExit(main())
