#!/usr/bin/env python
"""Run the benchmark suite and emit pytest-benchmark JSON for trend tracking.

Writes ``BENCH_<YYYY-MM-DD>.json`` (pytest-benchmark's machine-readable
format) into the repository root so successive PRs leave a perf trajectory
to diff against. The JSON is compact by default — aggregate stats only;
pass ``--benchmark-save-data`` to keep every per-round timing (tail
percentiles at the cost of a multi-megabyte file)::

    python benchmarks/run_bench.py                 # micro-benchmarks (fast)
    python benchmarks/run_bench.py --all           # every benchmark file
    python benchmarks/run_bench.py --benchmark-save-data
    python benchmarks/run_bench.py -o my.json -- -k broadcast

Arguments after ``--`` are forwarded to pytest verbatim.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


def print_percentile_table(output: str) -> None:
    """Summarize the benchmark JSON: mean/p50/p95/p99/stddev per benchmark.

    Per-round timings in ``benchmarks[*].stats.data`` feed the same
    :class:`repro.netsim.stats.SampleSeries` the simulator uses; the table
    is printed *before* :func:`strip_round_data` runs, so the tail
    percentiles are exact even when the JSON on disk ends up compact. On a
    file already stripped (re-running against an old compact BENCH),
    p95/p99 — which need the raw rounds — print as ``-``.
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.netsim.stats import SampleSeries

    with open(output, encoding="utf-8") as fh:
        report = json.load(fh)
    benchmarks = report.get("benchmarks", [])
    if not benchmarks:
        return
    name_width = max(len(b["name"]) for b in benchmarks)
    header = (
        f"{'benchmark':<{name_width}}  {'rounds':>6}  {'mean':>10}  "
        f"{'p50':>10}  {'p95':>10}  {'p99':>10}  {'stddev':>10}"
    )
    print()
    print(header)
    print("-" * len(header))
    for bench in benchmarks:
        stats = bench["stats"]
        series = SampleSeries(list(stats.get("data") or []))
        if series.values:
            rounds, mean = series.count, series.mean
            p50, p95, p99 = (series.percentile(p) for p in (50, 95, 99))
            stddev = series.stddev
        elif stats.get("rounds"):
            rounds, mean = stats["rounds"], stats["mean"]
            p50, stddev = stats["median"], stats["stddev"]
            p95 = p99 = None
        else:
            continue
        tail = "  ".join(
            f"{value:>10.6f}" if value is not None else f"{'-':>10}"
            for value in (mean, p50, p95, p99, stddev)
        )
        print(f"{bench['name']:<{name_width}}  {rounds:>6}  {tail}")


def strip_round_data(output: str) -> None:
    """Drop per-round timings from the JSON, keeping every aggregate.

    pytest-benchmark embeds the raw rounds in ``--benchmark-json`` output
    unconditionally — tens of thousands of floats per benchmark, ~10MB per
    snapshot. The trend the BENCH files exist for (cross-PR mean/median/ops
    diffs) only needs the aggregates, so the compact form is the default
    and ``--benchmark-save-data`` opts back into the full dump.
    """
    with open(output, encoding="utf-8") as fh:
        report = json.load(fh)
    for bench in report.get("benchmarks", []):
        bench["stats"].pop("data", None)
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def embed_metrics_summary(output: str) -> None:
    """Attach a compact sim-metrics summary to the benchmark JSON.

    Runs the standard instrumented smoke workload (4-node chain, one call,
    0.5 s scrape interval) and embeds ``summarize_sections`` output — scrape
    count plus the top-5 gauges by observed max — under a ``metrics`` key.
    Successive BENCH files then carry a coarse behavioral fingerprint next
    to the timing trend: a gauge ceiling that jumps between PRs (queue
    peaks, route-table size) flags a behavior change even when the
    wall-time aggregates look flat.
    """
    import io

    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.metrics.render import summarize_sections
    from repro.metrics.scraper import load_jsonl
    from repro.scenarios import ManetConfig, ManetScenario

    scenario = ManetScenario(
        ManetConfig(
            n_nodes=4, seed=7, metrics=True, metrics_interval=0.5,
            tx_queue_capacity=8,
        )
    )
    scenario.start()
    scenario.add_phone(0, "alice")
    scenario.add_phone(3, "bob")
    scenario.converge()
    scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=3.0)
    scenario.stop()
    sections = load_jsonl(io.StringIO(scenario.metrics.export_text()))
    summary = summarize_sections(sections, top=5)

    with open(output, encoding="utf-8") as fh:
        report = json.load(fh)
    report["metrics"] = summary
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    top = ", ".join(
        f"{gauge['name']}={gauge['max']:g}" for gauge in summary["top_gauges"]
    )
    print(
        f"metrics summary embedded ({summary['scrape_count']} scrapes; "
        f"top gauges: {top})"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--all",
        action="store_true",
        help="run every benchmark file (default: micro-benchmarks only)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="output JSON path (default: BENCH_<date>.json in the repo root)",
    )
    parser.add_argument(
        "--benchmark-save-data",
        action="store_true",
        dest="save_data",
        help="include per-round timings in the JSON (full percentiles in the "
        "summary table, but the file grows from ~100KB to several MB)",
    )
    args, passthrough = parser.parse_known_args(argv)
    if passthrough and passthrough[0] == "--":
        passthrough = passthrough[1:]

    output = args.output or os.path.join(
        REPO_ROOT, f"BENCH_{datetime.date.today().isoformat()}.json"
    )
    target = "benchmarks" if args.all else "benchmarks/test_bench_micro.py"
    command = [
        sys.executable,
        "-m",
        "pytest",
        target,
        "--benchmark-only",
        f"--benchmark-json={output}",
        "-q",
        *passthrough,
    ]
    if args.save_data:
        command.insert(command.index("-q"), "--benchmark-save-data")
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    print("+", " ".join(command))
    result = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if result.returncode == 0:
        print_percentile_table(output)
        if not args.save_data:
            strip_round_data(output)
        embed_metrics_summary(output)
        size_kb = os.path.getsize(output) / 1024.0
        print(f"benchmark JSON written to {output} ({size_kb:.0f} KB)")
    return result.returncode


if __name__ == "__main__":
    raise SystemExit(main())
