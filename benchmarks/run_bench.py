#!/usr/bin/env python
"""Run the benchmark suite and emit pytest-benchmark JSON for trend tracking.

Writes ``BENCH_<YYYY-MM-DD>.json`` (pytest-benchmark's machine-readable
format) into the repository root so successive PRs leave a perf trajectory
to diff against::

    python benchmarks/run_bench.py                 # micro-benchmarks (fast)
    python benchmarks/run_bench.py --all           # every benchmark file
    python benchmarks/run_bench.py -o my.json -- -k broadcast

Arguments after ``--`` are forwarded to pytest verbatim.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


def print_percentile_table(output: str) -> None:
    """Summarize the benchmark JSON: mean/p50/p95/p99/stddev per benchmark.

    Per-round timings are in ``benchmarks[*].stats.data`` (present because
    we pass ``--benchmark-save-data``); percentiles come from the same
    :class:`repro.netsim.stats.SampleSeries` the simulator uses.
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.netsim.stats import SampleSeries

    with open(output, encoding="utf-8") as fh:
        report = json.load(fh)
    benchmarks = report.get("benchmarks", [])
    if not benchmarks:
        return
    name_width = max(len(b["name"]) for b in benchmarks)
    header = (
        f"{'benchmark':<{name_width}}  {'rounds':>6}  {'mean':>10}  "
        f"{'p50':>10}  {'p95':>10}  {'p99':>10}  {'stddev':>10}"
    )
    print()
    print(header)
    print("-" * len(header))
    for bench in benchmarks:
        series = SampleSeries(list(bench["stats"].get("data") or []))
        if not series.values:
            continue
        print(
            f"{bench['name']:<{name_width}}  {series.count:>6}  "
            f"{series.mean:>10.6f}  {series.percentile(50):>10.6f}  "
            f"{series.percentile(95):>10.6f}  {series.percentile(99):>10.6f}  "
            f"{series.stddev:>10.6f}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--all",
        action="store_true",
        help="run every benchmark file (default: micro-benchmarks only)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="output JSON path (default: BENCH_<date>.json in the repo root)",
    )
    args, passthrough = parser.parse_known_args(argv)
    if passthrough and passthrough[0] == "--":
        passthrough = passthrough[1:]

    output = args.output or os.path.join(
        REPO_ROOT, f"BENCH_{datetime.date.today().isoformat()}.json"
    )
    target = "benchmarks" if args.all else "benchmarks/test_bench_micro.py"
    command = [
        sys.executable,
        "-m",
        "pytest",
        target,
        "--benchmark-only",
        f"--benchmark-json={output}",
        "--benchmark-save-data",
        "-q",
        *passthrough,
    ]
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    print("+", " ".join(command))
    result = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if result.returncode == 0:
        print_percentile_table(output)
        print(f"benchmark JSON written to {output}")
    return result.returncode


if __name__ == "__main__":
    raise SystemExit(main())
