"""Micro-benchmarks: raw throughput of the performance-critical paths.

Not a paper artifact; these keep the implementation honest (the simulator,
parsers and codecs are the inner loops of every experiment above).
"""

import pytest

from repro.netsim import Simulator
from repro.routing import Rreq, decode_aodv, encode_aodv
from repro.rtp import RtpPacket, decode_rtp
from repro.sip import parse_message
from repro.slp import SrvReg, UrlEntry, decode_slp, encode_slp

INVITE_WIRE = (
    b"INVITE sip:bob@voicehoc.ch SIP/2.0\r\n"
    b"Via: SIP/2.0/UDP 192.168.0.1:5070;branch=z9hG4bK-77\r\n"
    b"From: \"Alice\" <sip:alice@voicehoc.ch>;tag=a1\r\n"
    b"To: <sip:bob@voicehoc.ch>\r\n"
    b"Call-ID: cid42@192.168.0.1\r\n"
    b"CSeq: 1 INVITE\r\n"
    b"Max-Forwards: 70\r\n"
    b"Contact: <sip:alice@192.168.0.1:5070>\r\n"
    b"Content-Length: 0\r\n\r\n"
)


def test_sip_parse_throughput(benchmark):
    message = benchmark(parse_message, INVITE_WIRE)
    assert message.method == "INVITE"


def test_sip_serialize_throughput(benchmark):
    message = parse_message(INVITE_WIRE)
    wire = benchmark(message.serialize)
    assert wire.startswith(b"INVITE")


def test_aodv_codec_throughput(benchmark):
    rreq = Rreq(rreq_id=1, dest_ip="192.168.0.9", dest_seq=1,
                orig_ip="192.168.0.1", orig_seq=2)
    wire = encode_aodv(rreq)

    def round_trip():
        return decode_aodv(wire)

    message, _ = benchmark(round_trip)
    assert message.dest_ip == "192.168.0.9"


def test_slp_codec_throughput(benchmark):
    reg = SrvReg(xid=1, entry=UrlEntry(
        url="service:siphoc-sip://192.168.0.5:5060", lifetime=120,
        attributes="(user=sip:bob@voicehoc.ch)"))
    wire = encode_slp(reg)
    decoded = benchmark(decode_slp, wire)
    assert decoded == reg


def test_rtp_codec_throughput(benchmark):
    wire = RtpPacket(0, 1, 160, 0xABCD, b"\x00" * 160).encode()
    packet = benchmark(decode_rtp, wire)
    assert packet.sequence == 1


def _run_tick_chain(kernel, n_events, pending=0):
    """Drive ``n_events`` through a tick chain, optionally with ballast.

    ``pending`` far-future timers sit in the queue the whole time — the
    load shape of a big scenario (thousands of armed SIP/AODV timers)
    where per-event cost must not grow with queue depth.
    """
    sim = Simulator(seed=1, kernel=kernel)
    for index in range(pending):
        sim.schedule(3600.0 + index, lambda: None)
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n_events:
            sim.schedule(0.001, tick)

    sim.schedule(0.001, tick)
    sim.run(100.0)
    return count[0]


def test_simulator_event_throughput(benchmark):
    assert benchmark(_run_tick_chain, "calendar", 10_000) == 10_000


@pytest.mark.parametrize("kernel", ["heap", "calendar"])
@pytest.mark.parametrize("pending", [1000, 5000])
def test_simulator_throughput_pending(benchmark, kernel, pending):
    """Event throughput with 1k/5k timers pending: cost must stay flat.

    The calendar kernel's claim is O(1) scheduling regardless of queue
    depth; the heap pays O(log n) per operation. Both kernels run the
    identical workload so the BENCH JSON records the crossover.
    """
    assert benchmark(_run_tick_chain, kernel, 10_000, pending=pending) == 10_000


# -- simulation inner-loop fast paths ----------------------------------------
#
# The spatial neighbor index, event-queue compaction and serialization caches
# are what let the E5/E6-style scalability scenarios grow; these benchmarks
# pin down their wins and guard against regressions.

import time

from repro.netsim import BROADCAST, Datagram, Node, Packet, WirelessMedium, manet_ip
from repro.netsim.mobility import place_random

#: Constant-density placement: ~1.6 neighbors per node at every N, so the
#: benchmark isolates neighbor *lookup* cost from per-delivery event cost.
_DENSITY_SIDE = {10: 1100.0, 50: 2475.0, 100: 3500.0}


def _build_broadcast_network(n_nodes, use_spatial_index=True, seed=3):
    sim = Simulator(seed=seed)
    medium = WirelessMedium(sim, tx_range=250.0, use_spatial_index=use_spatial_index)
    nodes = []
    for index in range(n_nodes):
        node = Node(sim, index, manet_ip(index))
        node.join_medium(medium)
        nodes.append(node)
    side = _DENSITY_SIDE[n_nodes]
    place_random(nodes, sim, side, side)
    return sim, medium, nodes


def _broadcast_round(sim, medium, nodes):
    """Every node broadcasts one 40-byte frame; run the sim to deliver all."""
    packet = Packet(nodes[0].ip, BROADCAST, Datagram(5060, 5060, b"x" * 40))
    for node in nodes:
        medium.broadcast(node, packet)
    sim.run(sim.now + 1.0)


@pytest.mark.parametrize("n_nodes", [10, 50, 100])
def test_broadcast_delivery_throughput(benchmark, n_nodes):
    sim, medium, nodes = _build_broadcast_network(n_nodes)
    benchmark(_broadcast_round, sim, medium, nodes)
    assert medium.stats.traffic_packets("total") >= n_nodes


def test_broadcast_spatial_index_speedup_100_nodes():
    """The spatial index must be >= 3x faster than brute force at N=100."""

    def median_round_time(use_spatial_index):
        sim, medium, nodes = _build_broadcast_network(
            100, use_spatial_index=use_spatial_index
        )
        _broadcast_round(sim, medium, nodes)  # warm caches / first-touch
        timings = []
        for _ in range(7):
            start = time.perf_counter()
            for _ in range(5):
                _broadcast_round(sim, medium, nodes)
            timings.append(time.perf_counter() - start)
        timings.sort()
        return timings[len(timings) // 2]

    brute = median_round_time(use_spatial_index=False)
    indexed = median_round_time(use_spatial_index=True)
    speedup = brute / indexed
    print(f"\nbroadcast delivery, 100 nodes: brute={brute * 1e3:.2f}ms "
          f"indexed={indexed * 1e3:.2f}ms speedup={speedup:.1f}x")
    assert speedup >= 3.0, f"spatial index speedup {speedup:.2f}x < 3x"


def _churn_one_million(kernel):
    """The SIP transaction-timer workload (timers A/B/E-K are armed and
    cancelled on every message) at week-long-run volume."""
    sim = Simulator(seed=1, kernel=kernel)
    keepalive = sim.schedule(3600.0, lambda: None)
    for _ in range(1_000_000):
        sim.schedule(1.0, lambda: None).cancel()
    assert not keepalive.cancelled
    return sim


def test_cancelled_timer_churn(benchmark):
    """1M scheduled-then-cancelled timers: memory must stay bounded.

    Under the calendar kernel, cancelling the most recently scheduled
    entry is a bucket tail pop — no tombstone, no compaction sweep ever
    needed, queue stays at its live size throughout.
    """

    def run():
        return benchmark.pedantic(_churn_one_million, ("calendar",),
                                  rounds=1, iterations=1)

    sim = run()
    assert sim.pending_events == 1
    assert sim.queue_size == 1
    assert sim.compactions == 0


def test_cancelled_timer_churn_heap(benchmark):
    """Heap-kernel churn: compaction hysteresis must hold (regression).

    Before the ``COMPACT_MIN`` floor, the ``tombstones > live`` trigger
    re-fired on nearly every cancellation around a lone keepalive — an
    O(N) sweep per cancel, the 0.5 ops/s pathology in BENCH_2026-08-06.
    With the floor each sweep retires ``COMPACT_MIN`` tombstones, so the
    sweep count is bounded by churn/COMPACT_MIN (amortized O(1)/cancel).
    """
    from repro.netsim.kernel import HeapKernel

    def run():
        return benchmark.pedantic(_churn_one_million, ("heap",),
                                  rounds=1, iterations=1)

    sim = run()
    assert sim.pending_events == 1
    assert sim.queue_size <= Simulator.COMPACT_MIN_QUEUE
    assert 0 < sim.compactions <= 1_000_000 // HeapKernel.COMPACT_MIN + 1
