"""Micro-benchmarks: raw throughput of the performance-critical paths.

Not a paper artifact; these keep the implementation honest (the simulator,
parsers and codecs are the inner loops of every experiment above).
"""

from repro.netsim import Simulator
from repro.routing import Rreq, decode_aodv, encode_aodv
from repro.rtp import RtpPacket, decode_rtp
from repro.sip import parse_message
from repro.slp import SrvReg, UrlEntry, decode_slp, encode_slp

INVITE_WIRE = (
    b"INVITE sip:bob@voicehoc.ch SIP/2.0\r\n"
    b"Via: SIP/2.0/UDP 192.168.0.1:5070;branch=z9hG4bK-77\r\n"
    b"From: \"Alice\" <sip:alice@voicehoc.ch>;tag=a1\r\n"
    b"To: <sip:bob@voicehoc.ch>\r\n"
    b"Call-ID: cid42@192.168.0.1\r\n"
    b"CSeq: 1 INVITE\r\n"
    b"Max-Forwards: 70\r\n"
    b"Contact: <sip:alice@192.168.0.1:5070>\r\n"
    b"Content-Length: 0\r\n\r\n"
)


def test_sip_parse_throughput(benchmark):
    message = benchmark(parse_message, INVITE_WIRE)
    assert message.method == "INVITE"


def test_sip_serialize_throughput(benchmark):
    message = parse_message(INVITE_WIRE)
    wire = benchmark(message.serialize)
    assert wire.startswith(b"INVITE")


def test_aodv_codec_throughput(benchmark):
    rreq = Rreq(rreq_id=1, dest_ip="192.168.0.9", dest_seq=1,
                orig_ip="192.168.0.1", orig_seq=2)
    wire = encode_aodv(rreq)

    def round_trip():
        return decode_aodv(wire)

    message, _ = benchmark(round_trip)
    assert message.dest_ip == "192.168.0.9"


def test_slp_codec_throughput(benchmark):
    reg = SrvReg(xid=1, entry=UrlEntry(
        url="service:siphoc-sip://192.168.0.5:5060", lifetime=120,
        attributes="(user=sip:bob@voicehoc.ch)"))
    wire = encode_slp(reg)
    decoded = benchmark(decode_slp, wire)
    assert decoded == reg


def test_rtp_codec_throughput(benchmark):
    wire = RtpPacket(0, 1, 160, 0xABCD, b"\x00" * 160).encode()
    packet = benchmark(decode_rtp, wire)
    assert packet.sequence == 1


def test_simulator_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run(100.0)
        return count[0]

    assert benchmark(run_10k_events) == 10_000
