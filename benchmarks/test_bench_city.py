"""C1 — city-scale MANET call load (the ROADMAP's 5k-node scenario).

The benchmark parameters stay below the ``--full`` artifact (5 000 nodes
takes ~4 minutes of wall clock; ``python -m repro.experiments --full C1``
is the headline run) but are large enough that the wall-clock timing
pytest-benchmark records here tracks the event kernel's scaling, which is
the point: per DET001 the experiment code never reads the host clock, so
this file is where the city's throughput trend lives.
"""

from benchmarks.conftest import run_once, show
from repro.experiments import city_table


def test_c1_city_calls(benchmark):
    table = run_once(
        benchmark,
        city_table,
        node_counts=(300, 1000),
        n_calls=12,
        drain=15.0,
    )
    show(table)
    for row in table.to_dicts():
        assert row["success_ratio"] >= 0.75, f"{row['nodes']} nodes: too many failures"
        assert row["sim_events"] > 50_000
