"""Benchmark harness helpers.

Every paper artifact gets one benchmark that (a) regenerates its table via
the experiment harness, (b) asserts the qualitative *shape* the paper
claims, and (c) prints the table — and appends it to
``benchmark_tables.txt`` in the repository root, so a plain
``pytest benchmarks/ --benchmark-only`` run leaves the full reproduction
report on disk even without ``-s``.
"""

from __future__ import annotations

import os

import pytest

_RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "benchmark_tables.txt")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    try:
        os.remove(_RESULTS_PATH)
    except FileNotFoundError:
        pass
    yield


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def show(table) -> None:
    text = table.format()
    print()
    print(text)
    with open(_RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")
