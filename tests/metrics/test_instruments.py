"""The standard scenario instrument set: coverage and read-only purity."""

import pytest

from repro.metrics import scraper as scraper_mod
from repro.scenarios import ManetConfig, ManetScenario

#: Gauges every instrumented scenario must expose regardless of workload.
EXPECTED_GAUGES = [
    "gateway.leases.active",
    "routing.routes.max",
    "routing.routes.sum",
    "rtp.jitter.backlog.max",
    "rtp.jitter.backlog.sum",
    "rtp.sessions",
    "sim.events_processed",
    "sim.pending_events",
    "sip.admission.inflight",
    "sip.admission.inflight.peak",
    "slp.cache.size.max",
    "slp.cache.size.sum",
    "slp.local.services",
    "txqueue.depth.max",
    "txqueue.depth.peak",
    "txqueue.depth.sum",
]


@pytest.fixture
def scenario():
    built = ManetScenario(
        ManetConfig(
            n_nodes=3, seed=3, metrics=True, metrics_interval=0.5,
            tx_queue_capacity=8,
        )
    )
    yield built
    built.stop()


class TestInstallation:
    def test_metrics_off_by_default(self):
        scenario = ManetScenario(ManetConfig(n_nodes=2, seed=1))
        assert scenario.metrics is None
        assert scenario.sim.metrics is None
        scenario.stop()

    def test_standard_gauges_registered(self, scenario):
        registry = scenario.metrics.registry
        for name in EXPECTED_GAUGES:
            assert name in registry, name
        assert "txqueue.depth.dist" in registry
        assert "routing.routes.dist" in registry

    def test_enable_default_attaches_without_config_flag(self):
        scraper_mod.disable_default()
        scraper_mod.enable_default(0.25)
        try:
            scenario = ManetScenario(ManetConfig(n_nodes=2, seed=1))
            assert scenario.metrics is not None
            assert scenario.metrics.interval == 0.25
            assert scenario.metrics in scraper_mod.registered()
            scenario.stop()
        finally:
            scraper_mod.disable_default()

    def test_config_interval_wins_over_default(self):
        scraper_mod.disable_default()
        scraper_mod.enable_default(5.0)
        try:
            scenario = ManetScenario(
                ManetConfig(n_nodes=2, seed=1, metrics=True, metrics_interval=0.5)
            )
            assert scenario.metrics.interval == 0.5
            scenario.stop()
        finally:
            scraper_mod.disable_default()


class TestReadings:
    def test_gauges_move_during_a_run(self, scenario):
        scenario.start()
        scenario.converge()
        snapshots = scenario.metrics.snapshots
        assert snapshots, "converge() advanced sim time; scrapes must exist"
        last = snapshots[-1]
        assert last.gauges["routing.routes.sum"] > 0
        assert last.gauges["sim.events_processed"] > 0
        assert last.counters["metrics.scrapes"] == len(snapshots)

    def test_histograms_observe_population_per_scrape(self, scenario):
        scenario.start()
        scenario.converge()
        last = scenario.metrics.snapshots[-1]
        depth_dist = last.histograms["txqueue.depth.dist"]
        # one observation per node per scrape
        assert depth_dist["count"] == len(scenario.metrics.snapshots) * 3

    def test_collect_does_not_insert_stats_keys(self, scenario):
        # Stats-mirror gauges must use dict.get: reading a counter that was
        # never incremented must not materialize it in the defaultdict.
        before = scenario.stats.summary()
        scenario.metrics.registry.collect(t=0.0)
        assert scenario.stats.summary() == before
