"""Rendering helpers and the ``python -m repro.metrics`` CLI surface."""

import io

import pytest

from repro.metrics.__main__ import build_parser, main
from repro.metrics.render import (
    SPARK_CHARS,
    metric_names,
    render_dash,
    render_table,
    series_for,
    sparkline,
    summarize_sections,
)
from repro.metrics.scraper import MetricsScraper, load_jsonl


class TestSparkline:
    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_all_minimum(self):
        assert sparkline([5.0, 5.0, 5.0]) == SPARK_CHARS[0] * 3

    def test_range_maps_to_glyph_extremes(self):
        line = sparkline([0.0, 7.0])
        assert line[0] == SPARK_CHARS[0]
        assert line[-1] == SPARK_CHARS[-1]

    def test_downsampling_preserves_peaks(self):
        values = [0.0] * 100
        values[37] = 10.0  # one spike mid-series
        line = sparkline(values, width=10)
        assert len(line) == 10
        assert SPARK_CHARS[-1] in line  # the peak survives chunking

    def test_short_series_one_glyph_per_sample(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=60)) == 3


def make_export(label="unit"):
    scraper = MetricsScraper(interval=1.0, label=label)
    gauge = scraper.registry.gauge("queue.depth")
    counter = scraper.registry.counter("calls")
    hist = scraper.registry.histogram("dist", bounds=(1.0, 2.0))
    for tick, depth in enumerate((1.0, 4.0, 2.0), start=1):
        gauge.set(depth)
        counter.inc()
        hist.observe(depth)
        scraper.scrape(float(tick))
    return scraper


class TestSeriesExtraction:
    def test_series_for_each_instrument_kind(self):
        snapshots = make_export().snapshots
        assert series_for(snapshots, "queue.depth") == [
            (1.0, 1.0),
            (2.0, 4.0),
            (3.0, 2.0),
        ]
        assert [v for _, v in series_for(snapshots, "calls")] == [1.0, 2.0, 3.0]
        # histograms yield their running observation count
        assert [v for _, v in series_for(snapshots, "dist")] == [1.0, 2.0, 3.0]
        assert series_for(snapshots, "missing") == []

    def test_metric_names_union_sorted(self):
        snapshots = make_export().snapshots
        assert metric_names(snapshots) == [
            "calls",
            "dist",
            "metrics.scrapes",
            "queue.depth",
        ]


class TestRenderers:
    def test_table_has_min_max_last(self):
        sections = load_jsonl(io.StringIO(make_export().export_text()))
        text = render_table(sections)
        assert "== unit: 3 snapshots @ 1s ==" in text
        line = next(l for l in text.splitlines() if l.startswith("queue.depth"))
        assert line.split() == ["queue.depth", "1", "4", "2"]

    def test_dash_selects_metrics(self):
        sections = load_jsonl(io.StringIO(make_export().export_text()))
        text = render_dash(sections, names=["queue.depth"])
        assert "queue.depth" in text
        assert "calls" not in text
        assert "[1..4]" in text

    def test_summarize_ranks_gauges_by_max(self):
        scraper = MetricsScraper(interval=1.0)
        low = scraper.registry.gauge("low")
        high = scraper.registry.gauge("high")
        low.set(1.0)
        high.set(9.0)
        scraper.scrape(1.0)
        summary = summarize_sections([s for s in load_jsonl(
            io.StringIO(scraper.export_text())
        )], top=1)
        assert summary["scrape_count"] == 1
        assert summary["sections"] == 1
        assert summary["top_gauges"] == [{"name": "high", "max": 9.0}]


class TestCli:
    @pytest.fixture
    def export_path(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        make_export().export_jsonl(path)
        return str(path)

    def test_table_command(self, export_path, capsys):
        assert main(["table", export_path]) == 0
        out = capsys.readouterr().out
        assert "queue.depth" in out and "min" in out

    def test_dash_command_with_metric_filter(self, export_path, capsys):
        assert main(["dash", export_path, "--metric", "queue.depth"]) == 0
        out = capsys.readouterr().out
        assert "queue.depth" in out
        assert "calls" not in out

    def test_prom_command(self, export_path, capsys):
        assert main(["prom", export_path]) == 0
        out = capsys.readouterr().out
        assert "# section unit t=3" in out
        assert "repro_queue_depth 2.0" in out
        assert 'repro_dist_bucket{le="+Inf"} 3' in out

    def test_prom_index_selects_snapshot(self, export_path, capsys):
        assert main(["prom", export_path, "--index", "0"]) == 0
        assert "repro_queue_depth 1.0" in capsys.readouterr().out

    def test_missing_file_exits_with_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["table", str(tmp_path / "absent.jsonl")])

    def test_malformed_file_exits_with_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(SystemExit, match="malformed"):
            main(["table", str(path)])

    def test_parser_knows_all_subcommands(self):
        parser = build_parser()
        for command in ("table", "dash", "prom", "profile", "smoke"):
            args = parser.parse_args(
                [command] + ([] if command in ("profile", "smoke") else ["f.jsonl"])
            )
            assert args.command == command
