"""Kernel profiler: attribution, install/uninstall, acceptance gate."""

import functools

import pytest

from repro.errors import MetricsError
from repro.metrics.profiler import (
    CORE_SUBSYSTEMS,
    KernelProfiler,
    attribute,
    subsystem_for_module,
)
from repro.netsim import Simulator
from repro.netsim.medium import WirelessMedium


def handler_a():
    pass


def handler_b(arg):
    del arg


class TestAttribution:
    def test_module_prefix_map(self):
        assert subsystem_for_module("repro.netsim.medium") == "medium"
        assert subsystem_for_module("repro.netsim.kernel") == "kernel"
        assert subsystem_for_module("repro.routing.aodv") == "routing"
        assert subsystem_for_module("repro.core.manet_slp") == "slp"
        assert subsystem_for_module("repro.core.softphone") == "sip"
        assert subsystem_for_module("repro.core.tunnel") == "gateway"
        assert subsystem_for_module("repro.rtp.jitter") == "rtp"
        assert subsystem_for_module("repro.scenarios") == "harness"
        assert subsystem_for_module("some.third.party") == "other"

    def test_attribute_plain_function(self):
        subsystem, handler = attribute(handler_a)
        assert subsystem == "other"  # tests are outside the repro tree
        assert handler == "test_profiler.handler_a"

    def test_attribute_peels_partials_and_bound_methods(self):
        assert attribute(functools.partial(handler_b, 1)) == attribute(handler_b)
        medium_method = WirelessMedium.broadcast
        sim = Simulator(seed=1)
        medium = WirelessMedium(sim)
        bound = medium.broadcast
        assert attribute(bound) == attribute(medium_method)
        assert attribute(bound)[0] == "medium"


class TestInstallUninstall:
    def test_records_wrapped_callbacks(self):
        sim = Simulator(seed=1)
        profiler = KernelProfiler().install(sim)
        sim.schedule(0.5, handler_a)
        sim.schedule(1.0, handler_b, 7)
        sim.run(2.0)
        report = profiler.report()
        by_handler = {row.handler: row for row in report.rows}
        assert by_handler["test_profiler.handler_a"].count == 1
        assert by_handler["test_profiler.handler_b"].count == 1
        assert report.events == 2
        assert report.runs == 1
        assert report.total_wall > 0.0

    def test_residual_row_always_present(self):
        sim = Simulator(seed=1)
        profiler = KernelProfiler().install(sim)
        sim.run(1.0)  # no events at all
        rows = profiler.report().rows
        assert [(row.subsystem, row.handler) for row in rows] == [
            ("kernel", "<event-loop>")
        ]

    def test_uninstall_restores_plain_scheduling(self):
        sim = Simulator(seed=1)
        profiler = KernelProfiler().install(sim)
        profiler.uninstall()
        assert sim.profiler is None
        sim.schedule(0.5, handler_a)
        sim.run(1.0)
        assert profiler.report().events == 0  # nothing recorded after removal
        assert "run" not in sim.__dict__  # class method back in charge

    def test_double_install_rejected(self):
        sim = Simulator(seed=1)
        profiler = KernelProfiler().install(sim)
        with pytest.raises(MetricsError, match="already"):
            profiler.install(Simulator(seed=2))
        with pytest.raises(MetricsError, match="already"):
            KernelProfiler().install(sim)

    def test_profiling_does_not_change_the_schedule(self):
        def run_count(with_profiler):
            sim = Simulator(seed=5)
            if with_profiler:
                KernelProfiler().install(sim)
            for delay in (0.2, 0.4, 0.6):
                sim.schedule(delay, handler_a)
            sim.run(1.0)
            return sim.events_processed, sim._kernel.seq, sim.now

        assert run_count(True) == run_count(False)


class TestReport:
    @staticmethod
    def _report():
        sim = Simulator(seed=1)
        profiler = KernelProfiler().install(sim)
        for delay in (0.1, 0.2, 0.3):
            sim.schedule(delay, handler_a)
        sim.run(1.0)
        return profiler.report()

    def test_render_contains_totals_and_rows(self):
        text = self._report().render()
        assert "profiled 3 events" in text
        assert "test_profiler.handler_a" in text
        assert "per-subsystem:" in text

    def test_collapsed_stack_format(self):
        lines = self._report().collapsed().strip().splitlines()
        assert lines
        for line in lines:
            frame, weight = line.rsplit(" ", 1)
            assert ";" in frame
            assert int(weight) >= 1

    def test_attributed_fraction_of_empty_profile_is_one(self):
        report = KernelProfiler().report()
        assert report.attributed_fraction() == 1.0


class TestAcceptance:
    """ISSUE 8 gate: the C1 quick variant profile attributes >= 95 % of
    wall-time to named core subsystems with valid collapsed output."""

    def test_c1_quick_variant_attribution(self):
        from repro.experiments.city import run_city_workload

        profiler = KernelProfiler()
        result = run_city_workload(
            n_nodes=120, n_calls=4, drain=15.0, seed=1, profiler=profiler
        )
        assert result["events"] > 0
        report = profiler.report()
        assert report.attributed_fraction(CORE_SUBSYSTEMS) >= 0.95
        collapsed = report.collapsed()
        assert collapsed.endswith("\n")
        subsystems = {line.split(";", 1)[0] for line in collapsed.splitlines()}
        assert "medium" in subsystems  # radio dominates any MANET workload
