"""Scraper piggyback semantics and the JSONL codec."""

import io

import pytest

from repro.errors import MetricsError
from repro.metrics import scraper as scraper_mod
from repro.metrics.scraper import (
    SCHEMA,
    MetricsScraper,
    export_registered,
    load_jsonl,
    register,
)
from repro.netsim import Simulator


def noop():
    pass


class TestScraperConstruction:
    @pytest.mark.parametrize("interval", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_bad_interval(self, interval):
        with pytest.raises(MetricsError, match="interval"):
            MetricsScraper(interval=interval)

    def test_tick_arithmetic_has_no_float_drift(self):
        # 0.1 is not representable in binary; a += accumulator would drift,
        # the integer-tick product must not.
        scraper = MetricsScraper(interval=0.1)
        for _ in range(1000):
            scraper.scrape(scraper.next_due)
        assert scraper.next_due == 1001 * 0.1
        assert scraper.snapshots[-1].t == 1000 * 0.1

    def test_scrape_counts_itself(self):
        scraper = MetricsScraper(interval=1.0)
        scraper.scrape(1.0)
        scraper.scrape(2.0)
        assert scraper.snapshots[-1].counters["metrics.scrapes"] == 2


class TestAttach:
    def test_attach_aligns_after_now(self):
        sim = Simulator(seed=1)
        sim.schedule(2.7, noop)
        sim.run(2.7)
        scraper = MetricsScraper(interval=1.0).attach(sim)
        assert scraper.next_due == 3.0

    def test_second_scraper_rejected(self):
        sim = Simulator(seed=1)
        MetricsScraper(interval=1.0).attach(sim)
        with pytest.raises(MetricsError, match="already has a metrics scraper"):
            MetricsScraper(interval=1.0).attach(sim)

    def test_reattach_same_scraper_is_idempotent(self):
        sim = Simulator(seed=1)
        scraper = MetricsScraper(interval=1.0).attach(sim)
        assert scraper.attach(sim) is scraper


class TestPiggyback:
    def test_snapshots_at_interval_boundaries(self):
        sim = Simulator(seed=1)
        scraper = MetricsScraper(interval=1.0).attach(sim)
        for delay in (0.3, 1.1, 2.9):
            sim.schedule(delay, noop)
        sim.run(3.5)
        assert [snap.t for snap in scraper.snapshots] == [1.0, 2.0, 3.0]
        assert sim.now == 3.5

    def test_disabled_scraper_takes_no_snapshots(self):
        sim = Simulator(seed=1)
        scraper = MetricsScraper(interval=1.0).attach(sim)
        scraper.enabled = False
        sim.schedule(0.5, noop)
        sim.run(3.0)
        assert scraper.snapshots == []

    def test_gauge_callback_sees_interleaved_state(self):
        # Events at 0.5 and 1.5 bump a value; the t=1.0 scrape must observe
        # exactly the first bump — proof scrapes land *between* events.
        sim = Simulator(seed=1)
        scraper = MetricsScraper(interval=1.0).attach(sim)
        state = {"value": 0}
        scraper.registry.gauge("v", fn=lambda: state["value"])

        def bump():
            state["value"] += 1

        sim.schedule(0.5, bump)
        sim.schedule(1.5, bump)
        sim.run(2.0)
        values = [snap.gauges["v"] for snap in scraper.snapshots]
        assert values == [1, 2]


class TestJsonlCodec:
    @staticmethod
    def _scraper_with_snapshots():
        scraper = MetricsScraper(interval=0.5, label="unit")
        scraper.registry.gauge("g").set(1.0)
        scraper.scrape(0.5)
        scraper.scrape(1.0)
        return scraper

    def test_export_round_trips(self):
        scraper = self._scraper_with_snapshots()
        text = scraper.export_text()
        (section,) = load_jsonl(io.StringIO(text))
        assert section.meta["schema"] == SCHEMA
        assert section.label == "unit"
        assert section.interval == 0.5
        assert [snap.t for snap in section.snapshots] == [0.5, 1.0]
        assert section.snapshots[0].gauges == {"g": 1.0}

    def test_export_is_canonical_json(self):
        text = self._scraper_with_snapshots().export_text()
        for line in text.splitlines():
            assert ": " not in line and ", " not in line  # fixed separators

    def test_export_jsonl_to_path(self, tmp_path):
        scraper = self._scraper_with_snapshots()
        out = tmp_path / "metrics.jsonl"
        assert scraper.export_jsonl(out) == 2
        assert load_jsonl(out)[0].meta["snapshots"] == 2

    @pytest.mark.parametrize(
        "payload,match",
        [
            ("", "empty"),
            ("not json\n", "not JSON"),
            ('[1,2]\n', "expected a JSON object"),
            ('{"schema":"other/v9"}\n', "unsupported schema"),
            ('{"t":1.0}\n', "snapshot before any meta header"),
            (
                '{"schema":"repro.metrics/v1","interval":1.0}\n{"gauges":{}}\n',
                "missing 't'",
            ),
        ],
    )
    def test_malformed_exports_rejected(self, payload, match):
        with pytest.raises(MetricsError, match=match):
            load_jsonl(io.StringIO(payload))


class TestProcessDefault:
    @pytest.fixture(autouse=True)
    def _clean_default(self):
        scraper_mod.disable_default()
        yield
        scraper_mod.disable_default()

    def test_enable_disable_round_trip(self):
        assert scraper_mod.default_interval() is None
        scraper_mod.enable_default(2.0)
        assert scraper_mod.default_interval() == 2.0
        scraper_mod.disable_default()
        assert scraper_mod.default_interval() is None

    def test_enable_rejects_bad_interval(self):
        with pytest.raises(MetricsError):
            scraper_mod.enable_default(0.0)

    def test_export_registered_concatenates_sections(self):
        first = MetricsScraper(interval=1.0, label="a")
        first.scrape(1.0)
        second = MetricsScraper(interval=1.0, label="b")
        second.scrape(1.0)
        second.scrape(2.0)
        register(first)
        register(second)
        buf = io.StringIO()
        assert export_registered(buf) == 3
        sections = load_jsonl(io.StringIO(buf.getvalue()))
        assert [section.label for section in sections] == ["a", "b"]
        assert [len(section.snapshots) for section in sections] == [1, 2]
