"""The determinism contract: scraping must not change what it observes.

These are the in-process halves of the ``python -m repro.metrics smoke``
gate: same-seed runs with metrics on and off must agree on every Stats
counter and on the exact event schedule, and same-seed instrumented runs
must export byte-identical JSONL (after resetting the process-global
identifier streams that in-process reruns would otherwise advance).
"""

from repro.globalstate import registry as global_registry
from repro.scenarios import ManetConfig, ManetScenario


def run_workload(metrics_on: bool):
    global_registry.reset_all()
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=3,
            seed=11,
            metrics=metrics_on,
            metrics_interval=0.5,
            tx_queue_capacity=8,
        )
    )
    scenario.start()
    scenario.add_phone(0, "alice")
    scenario.add_phone(2, "bob")
    scenario.converge()
    scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=2.0)
    scenario.stop()
    return scenario


class TestNoObserverEffect:
    def test_metrics_do_not_change_stats_or_schedule(self):
        on = run_workload(metrics_on=True)
        off = run_workload(metrics_on=False)
        assert on.metrics is not None and on.metrics.snapshots
        assert off.metrics is None
        assert on.stats.summary() == off.stats.summary()
        assert on.sim.events_processed == off.sim.events_processed
        assert on.sim._kernel.seq == off.sim._kernel.seq
        assert on.sim.now == off.sim.now

    def test_same_seed_exports_are_byte_identical(self):
        first = run_workload(metrics_on=True).metrics.export_text()
        second = run_workload(metrics_on=True).metrics.export_text()
        assert first == second
        assert first.strip(), "export must not be empty"

    def test_scrape_times_are_exact_tick_multiples(self):
        scenario = run_workload(metrics_on=True)
        for index, snap in enumerate(scenario.metrics.snapshots, start=1):
            assert snap.t == index * 0.5
