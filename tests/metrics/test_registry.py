"""Unit tests for the instrument registry and Prometheus renderer."""

import pytest

from repro.errors import MetricsError
from repro.metrics.registry import (
    DEPTH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_name,
    render_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("calls.placed")
        assert counter.read() == 0
        counter.inc()
        counter.inc(4)
        assert counter.read() == 5

    def test_rejects_decrease(self):
        counter = Counter("calls.placed")
        with pytest.raises(MetricsError, match="cannot decrease"):
            counter.inc(-1)

    def test_rejects_invalid_name(self):
        with pytest.raises(MetricsError, match="invalid metric name"):
            Counter("calls placed")
        with pytest.raises(MetricsError, match="invalid metric name"):
            Counter("9calls")


class TestGauge:
    def test_imperative_set(self):
        gauge = Gauge("queue.depth")
        assert gauge.read() == 0.0
        gauge.set(7.0)
        assert gauge.read() == 7.0

    def test_callback_driven(self):
        state = {"depth": 3}
        gauge = Gauge("queue.depth", fn=lambda: state["depth"])
        assert gauge.read() == 3
        state["depth"] = 9
        assert gauge.read() == 9

    def test_set_on_callback_gauge_raises(self):
        gauge = Gauge("queue.depth", fn=lambda: 1.0)
        with pytest.raises(MetricsError, match="callback-driven"):
            gauge.set(2.0)


class TestHistogram:
    def test_bucketing_and_cumulative_read(self):
        hist = Histogram("depth", bounds=(1.0, 4.0, 8.0))
        for value in (0.0, 1.0, 2.0, 5.0, 100.0):
            hist.observe(value)
        data = hist.read()
        assert data["bounds"] == [1.0, 4.0, 8.0]
        # per-bucket: <=1 -> 2, <=4 -> 1, <=8 -> 1, +Inf -> 1; cumulative:
        assert data["buckets"] == [2, 3, 4, 5]
        assert data["count"] == 5
        assert data["sum"] == 108.0

    def test_rejects_empty_bounds(self):
        with pytest.raises(MetricsError, match="at least one bucket"):
            Histogram("depth", bounds=())

    def test_rejects_non_ascending_bounds(self):
        with pytest.raises(MetricsError, match="strictly ascending"):
            Histogram("depth", bounds=(1.0, 1.0))
        with pytest.raises(MetricsError, match="strictly ascending"):
            Histogram("depth", bounds=(4.0, 2.0))

    def test_rejects_non_finite_bounds(self):
        with pytest.raises(MetricsError, match="finite"):
            Histogram("depth", bounds=(1.0, float("inf")))

    def test_default_depth_buckets_are_ascending(self):
        assert list(DEPTH_BUCKETS) == sorted(DEPTH_BUCKETS)
        Histogram("depth", bounds=DEPTH_BUCKETS)  # must not raise


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("x")
        second = registry.counter("x")
        assert first is second
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError, match="already registered as counter"):
            registry.gauge("x")

    def test_instruments_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.gauge("alpha")
        registry.histogram("mid")
        assert [i.name for i in registry.instruments()] == ["alpha", "mid", "zeta"]

    def test_contains_and_get(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        assert "g" in registry
        assert "missing" not in registry
        assert registry.get("g") is gauge
        assert registry.get("missing") is None

    def test_collect_sections_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.counter("a.count").inc(1)
        registry.gauge("g").set(5.0)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        sections = registry.collect(t=1.0)
        assert list(sections["counters"]) == ["a.count", "b.count"]
        assert sections["counters"]["b.count"] == 2
        assert sections["gauges"] == {"g": 5.0}
        assert sections["histograms"]["h"]["count"] == 1

    def test_samplers_run_before_values_are_read(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("sampled")
        seen = []

        def sampler(t):
            seen.append(t)
            gauge.set(42.0)

        registry.add_sampler(sampler)
        sections = registry.collect(t=2.5)
        assert seen == [2.5]
        assert sections["gauges"]["sampled"] == 42.0


class TestPrometheus:
    def test_name_mapping(self):
        assert prometheus_name("txqueue.depth.max") == "repro_txqueue_depth_max"
        assert prometheus_name("plain", prefix="") == "plain"

    def test_render_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c", help="a counter").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        text = render_prometheus(registry.collect(0.0), registry=registry)
        assert "# HELP repro_c a counter" in text
        assert "# TYPE repro_c counter" in text
        assert "repro_c 3" in text
        assert "repro_g 1.5" in text
        assert 'repro_h_bucket{le="1.0"} 0' in text
        assert 'repro_h_bucket{le="2.0"} 1' in text
        assert 'repro_h_bucket{le="+Inf"} 1' in text
        assert "repro_h_sum 1.5" in text
        assert "repro_h_count 1" in text

    def test_render_empty_sections_is_empty(self):
        assert render_prometheus({"counters": {}, "gauges": {}, "histograms": {}}) == ""
