"""Unit tests for the ring-buffer collector and the default-tracing registry."""

import io

import pytest

from repro.netsim.simulator import Simulator
from repro.trace import TraceCollector, read_jsonl
from repro.trace import collector as trace_collector


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceCollector(capacity=0)

    def test_bounded_eviction_keeps_newest(self):
        collector = TraceCollector(capacity=3)
        for index in range(5):
            collector.emit("packet.tx", "n", uid=index)
        assert len(collector) == 3
        assert collector.emitted == 5
        assert collector.dropped == 2
        assert [event.detail["uid"] for event in collector] == [2, 3, 4]
        # seq keeps counting across evictions
        assert [event.seq for event in collector] == [3, 4, 5]

    def test_unregistered_kind_raises(self):
        collector = TraceCollector()
        with pytest.raises(KeyError, match="unregistered"):
            collector.emit("packet.teleport", "n")

    def test_disabled_collector_records_nothing(self):
        collector = TraceCollector()
        collector.enabled = False
        collector.emit("packet.tx", "n")
        assert len(collector) == 0 and collector.emitted == 0

    def test_clear_resets_counters(self):
        collector = TraceCollector(capacity=2)
        for _ in range(4):
            collector.emit("packet.tx", "n")
        collector.clear()
        assert len(collector) == 0
        assert collector.dropped == 0
        collector.emit("packet.tx", "n")
        assert next(iter(collector)).seq == 1


class TestAttachment:
    def test_attach_stamps_simulation_time(self):
        sim = Simulator(seed=1)
        collector = TraceCollector().attach(sim)
        assert sim.tracer is collector
        sim.schedule(2.5, collector.emit, "mobility.waypoint", "n")
        sim.run(5.0)
        assert collector.events[0].t == pytest.approx(2.5)

    def test_detach_clears_simulator_hook(self):
        sim = Simulator(seed=1)
        collector = TraceCollector().attach(sim)
        collector.detach()
        assert sim.tracer is None

    def test_unattached_emission_uses_time_zero(self):
        collector = TraceCollector()
        collector.emit("gateway.up", "n")
        assert collector.events[0].t == 0.0


class TestSelect:
    def _collector(self):
        collector = TraceCollector()
        collector.emit("packet.tx", "a", uid=1)
        collector.emit("packet.rx", "b", uid=1)
        collector.emit("sip.msg_tx", "a")
        return collector

    def test_select_by_kind_category_node(self):
        collector = self._collector()
        assert len(collector.select(kind="packet.tx")) == 1
        assert len(collector.select(category="packet")) == 2
        assert len(collector.select(node="a")) == 2
        assert len(collector.select(category="packet", node="a")) == 1

    def test_select_predicate(self):
        collector = self._collector()
        hits = collector.select(predicate=lambda e: e.detail.get("uid") == 1)
        assert [event.kind for event in hits] == ["packet.tx", "packet.rx"]


class TestJsonl:
    def test_export_import_roundtrip(self, tmp_path):
        collector = TraceCollector()
        collector.emit("slp.advertise", "n", url="service:sip-proxy://x")
        collector.emit("slp.resolved", "n", xid=3, results=1)
        path = tmp_path / "trace.jsonl"
        assert collector.write_jsonl(str(path)) == 2
        loaded = read_jsonl(str(path))
        assert loaded == collector.events

    def test_write_to_file_object(self):
        collector = TraceCollector()
        collector.emit("gateway.up", "n")
        buffer = io.StringIO()
        assert collector.write_jsonl(buffer) == 1
        assert buffer.getvalue() == collector.export_jsonl()

    def test_read_from_lines_skips_blanks(self):
        collector = TraceCollector()
        collector.emit("gateway.up", "n")
        lines = collector.export_jsonl().splitlines(keepends=True) + ["\n", ""]
        assert read_jsonl(lines) == collector.events


class TestDefaultRegistry:
    def teardown_method(self):
        trace_collector.disable_default()

    def test_register_is_noop_when_default_off(self):
        trace_collector.register(TraceCollector())
        buffer = io.StringIO()
        assert trace_collector.export_registered(buffer) == 0

    def test_registered_collectors_export_in_order(self):
        trace_collector.enable_default(capacity=8)
        assert trace_collector.default_capacity() == 8
        first, second = TraceCollector(), TraceCollector()
        first.emit("gateway.up", "a")
        second.emit("gateway.down", "b")
        trace_collector.register(first)
        trace_collector.register(second)
        buffer = io.StringIO()
        assert trace_collector.export_registered(buffer) == 2
        kinds = [event.kind for event in read_jsonl(buffer.getvalue().splitlines())]
        assert kinds == ["gateway.up", "gateway.down"]
