"""Unit tests for the trace event schema and JSONL codec."""

import pytest

from repro.trace import CATEGORIES, EVENT_KINDS, TraceError, validate_event_dict
from repro.trace.events import TraceEvent, parse_jsonl_line


class TestTaxonomy:
    def test_every_kind_has_a_category(self):
        for kind in EVENT_KINDS:
            assert kind.split(".", 1)[0] in CATEGORIES

    def test_categories_are_sorted_and_complete(self):
        assert list(CATEGORIES) == sorted(CATEGORIES)
        assert {
            "packet",
            "queue",
            "aodv",
            "olsr",
            "slp",
            "sip",
            "rtp",
            "tunnel",
            "gateway",
            "mobility",
            "fault",
            "iface",
            "handover",
        } == set(CATEGORIES)


class TestTraceEvent:
    def test_category_property(self):
        event = TraceEvent(t=1.0, seq=1, kind="packet.tx", node="192.168.0.1")
        assert event.category == "packet"

    def test_to_dict_omits_empty_detail(self):
        event = TraceEvent(t=1.0, seq=1, kind="packet.tx", node="n")
        assert "detail" not in event.to_dict()
        rich = TraceEvent(t=1.0, seq=1, kind="packet.tx", node="n", detail={"uid": 4})
        assert rich.to_dict()["detail"] == {"uid": 4}

    def test_json_line_is_sorted_and_compact(self):
        event = TraceEvent(t=2.5, seq=7, kind="sip.msg_tx", node="n", detail={"b": 1, "a": 2})
        line = event.to_json_line()
        assert line == '{"detail":{"a":2,"b":1},"kind":"sip.msg_tx","node":"n","seq":7,"t":2.5}'

    def test_roundtrip(self):
        event = TraceEvent(
            t=3.25, seq=12, kind="aodv.rreq", node="192.168.0.1", detail={"dest": "192.168.0.5"}
        )
        assert parse_jsonl_line(event.to_json_line()) == event


class TestValidation:
    def _good(self):
        return {"t": 1.0, "seq": 3, "kind": "packet.rx", "node": "192.168.0.2"}

    def test_valid_event_passes(self):
        validate_event_dict(self._good())

    def test_non_dict_rejected(self):
        with pytest.raises(TraceError, match="must be an object"):
            validate_event_dict([1, 2, 3])

    @pytest.mark.parametrize("missing", ["t", "seq", "kind", "node"])
    def test_missing_required_field(self, missing):
        raw = self._good()
        del raw[missing]
        with pytest.raises(TraceError, match="missing fields"):
            validate_event_dict(raw)

    def test_negative_time_rejected(self):
        raw = self._good()
        raw["t"] = -0.5
        with pytest.raises(TraceError, match="'t'"):
            validate_event_dict(raw)

    def test_bool_time_rejected(self):
        raw = self._good()
        raw["t"] = True
        with pytest.raises(TraceError, match="'t'"):
            validate_event_dict(raw)

    def test_non_int_seq_rejected(self):
        raw = self._good()
        raw["seq"] = 1.5
        with pytest.raises(TraceError, match="'seq'"):
            validate_event_dict(raw)

    def test_unregistered_kind_rejected(self):
        raw = self._good()
        raw["kind"] = "packet.teleport"
        with pytest.raises(TraceError, match="unknown trace event kind"):
            validate_event_dict(raw)

    def test_non_string_node_rejected(self):
        raw = self._good()
        raw["node"] = 42
        with pytest.raises(TraceError, match="'node'"):
            validate_event_dict(raw)

    def test_deep_detail_rejected(self):
        raw = self._good()
        raw["detail"] = {"a": {"b": {"c": {"d": 1}}}}
        with pytest.raises(TraceError, match="'detail'"):
            validate_event_dict(raw)

    def test_non_json_detail_value_rejected(self):
        raw = self._good()
        raw["detail"] = {"when": object()}
        with pytest.raises(TraceError, match="'detail'"):
            validate_event_dict(raw)

    def test_unknown_top_level_field_rejected(self):
        raw = self._good()
        raw["color"] = "red"
        with pytest.raises(TraceError, match="unknown fields: color"):
            validate_event_dict(raw)

    def test_invalid_json_line(self):
        with pytest.raises(TraceError, match="invalid JSON"):
            parse_jsonl_line("{not json")
