"""Tracing determinism: byte-identical exports, no observer effect.

Traces exist to debug divergence, so they must never cause it. Two seeded
runs must export byte-identical JSONL, and turning tracing on must not
change what the simulation itself does (no extra scheduled events, no RNG
draws — the Stats output stays bit-identical to an untraced run).

Protocol identifiers (Call-ID, Via branch, packet uid) are allocated from
process-global counters, so the byte-identity contract is between *runs of
the same program*: the comparison below launches two fresh interpreters.
"""

import os
import subprocess
import sys

from repro.scenarios import build_chain_call_scenario

_RUN_SCRIPT = """
from repro.scenarios import build_chain_call_scenario
scenario = build_chain_call_scenario(hops=2, routing="aodv", seed=11, tracing=True)
scenario.converge()
record = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=2.0)
assert record.established
scenario.stop()
import sys
sys.stdout.write(scenario.trace.export_jsonl())
"""


def run_traced_call(tracing: bool = True):
    scenario = build_chain_call_scenario(hops=2, routing="aodv", seed=11, tracing=tracing)
    scenario.converge()
    record = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=2.0)
    assert record.established
    scenario.stop()
    return scenario


def _export_in_fresh_process() -> str:
    result = subprocess.run(
        [sys.executable, "-c", _RUN_SCRIPT],
        capture_output=True,
        text=True,
        check=True,
        env=dict(os.environ),
    )
    return result.stdout


def test_same_seed_exports_byte_identical_jsonl():
    first = _export_in_fresh_process()
    second = _export_in_fresh_process()
    assert first  # the trace is non-trivial...
    assert first == second  # ...and reproduced byte for byte


def test_tracing_has_no_observer_effect():
    traced = run_traced_call(tracing=True)
    untraced = run_traced_call(tracing=False)
    assert untraced.trace is None
    assert traced.stats.summary() == untraced.stats.summary()
    assert traced.sim.events_processed == untraced.sim.events_processed


def test_trace_covers_the_whole_stack():
    scenario = run_traced_call()
    categories = {event.category for event in scenario.trace}
    assert {"packet", "aodv", "slp", "sip"} <= categories
    # timestamps are simulation time, monotonically non-decreasing with seq
    events = scenario.trace.events
    assert all(a.t <= b.t for a, b in zip(events, events[1:]))
    assert [event.seq for event in events] == list(range(1, len(events) + 1))
