"""CLI tests for ``python -m repro.trace``."""

import pytest

from repro.trace.__main__ import main
from repro.trace.events import TraceEvent

from tests.trace.test_determinism import run_traced_call


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    scenario = run_traced_call()
    path = tmp_path_factory.mktemp("trace") / "call.jsonl"
    scenario.trace.write_jsonl(str(path))
    return str(path)


class TestSummarize:
    def test_summarize(self, trace_file, capsys):
        assert main(["summarize", trace_file]) == 0
        out = capsys.readouterr().out
        assert "events:" in out
        assert "by category:" in out and "packet" in out

    def test_missing_file_exits_with_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["summarize", str(tmp_path / "nope.jsonl")])

    def test_malformed_file_exits_with_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"packet.teleport"}\n')
        with pytest.raises(SystemExit, match="malformed"):
            main(["summarize", str(path)])


class TestLadder:
    def test_ladder_renders_call_flow(self, trace_file, capsys):
        assert main(["ladder", trace_file]) == 0
        out = capsys.readouterr().out
        for expected in ("INVITE", "ACK", "BYE"):
            assert expected in out

    def test_list_calls(self, trace_file, capsys):
        assert main(["ladder", trace_file, "--list-calls"]) == 0
        calls = capsys.readouterr().out.split()
        assert calls  # REGISTER dialogs + the INVITE dialog

    def test_single_call_filter(self, trace_file, capsys):
        main(["ladder", trace_file, "--list-calls"])
        last_call = capsys.readouterr().out.split()[-1]
        assert main(["ladder", trace_file, "--call-id", last_call]) == 0
        assert "|" in capsys.readouterr().out


class TestFilter:
    def test_filter_emits_valid_jsonl(self, trace_file, capsys):
        assert main(["filter", trace_file, "--category", "sip", "--kind", "sip.msg_tx"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line]
        assert lines
        from repro.trace.events import parse_jsonl_line

        events = [parse_jsonl_line(line) for line in lines]
        assert all(isinstance(e, TraceEvent) and e.kind == "sip.msg_tx" for e in events)

    def test_filter_render_timeline(self, trace_file, capsys):
        assert main(["filter", trace_file, "--category", "aodv", "--render"]) == 0
        assert "aodv." in capsys.readouterr().out

    def test_filter_time_window(self, trace_file, capsys):
        assert main(["filter", trace_file, "--since", "1e9"]) == 0
        assert capsys.readouterr().out.strip() == ""


class TestPackets:
    def test_packets(self, trace_file, capsys):
        assert main(["packets", trace_file]) == 0
        assert "delivered" in capsys.readouterr().out

    def test_packets_dropped_only(self, trace_file, capsys):
        assert main(["packets", trace_file, "--dropped"]) == 0
        out = capsys.readouterr().out
        assert "delivered" not in out


class TestSmoke:
    def test_smoke_passes_and_writes_trace(self, tmp_path, capsys):
        out_path = tmp_path / "smoke.jsonl"
        assert main(["smoke", "--out", str(out_path)]) == 0
        assert "trace smoke ok" in capsys.readouterr().out
        assert out_path.read_text().count("\n") > 100
