"""Analysis passes: summary, timeline, packet lifecycles, SIP ladders."""

import pytest

from repro.trace.analysis import (
    filter_events,
    reconstruct_packets,
    render_packet_lifecycles,
    render_summary,
    render_timeline,
    summarize,
    timeline,
)
from repro.trace.events import TraceEvent
from repro.trace.ladder import build_sip_flow, call_ids, sip_ladder

from tests.trace.test_determinism import run_traced_call


def _event(t, seq, kind, node, **detail):
    return TraceEvent(t=t, seq=seq, kind=kind, node=node, detail=detail)


class TestFilterAndSummary:
    def _events(self):
        return [
            _event(0.0, 1, "packet.tx", "a", uid=1),
            _event(0.5, 2, "packet.drop", "b", uid=1, cause="loss"),
            _event(1.0, 3, "aodv.rreq", "a", dest="c"),
            _event(2.0, 4, "sip.msg_tx", "c"),
        ]

    def test_filter_by_each_criterion(self):
        events = self._events()
        assert len(filter_events(events, kinds=("packet.tx",))) == 1
        assert len(filter_events(events, categories=("packet",))) == 2
        assert len(filter_events(events, nodes=("a",))) == 2
        assert len(filter_events(events, t_min=0.5, t_max=1.0)) == 2
        assert filter_events(events) == events

    def test_summarize_counts_and_drop_causes(self):
        summary = summarize(self._events())
        assert summary["total"] == 4
        assert summary["t_first"] == 0.0 and summary["t_last"] == 2.0
        assert summary["by_category"] == {"aodv": 1, "packet": 2, "sip": 1}
        assert summary["by_kind"]["packet.drop"] == 1
        assert summary["drop_causes"] == {"loss": 1}

    def test_summarize_empty(self):
        summary = summarize([])
        assert summary["total"] == 0 and summary["t_first"] is None

    def test_render_summary_mentions_causes(self):
        text = render_summary(summarize(self._events()))
        assert "drop causes:" in text and "loss" in text

    def test_timeline_sorts_and_renders(self):
        events = list(reversed(self._events()))
        ordered = timeline(events)
        assert [event.seq for event in ordered] == [1, 2, 3, 4]
        text = render_timeline(ordered)
        assert "packet.drop" in text and "cause=loss" in text
        assert render_timeline([]) == "(no events)"


class TestPacketLifecycles:
    def test_delivered_packet(self):
        events = [
            _event(1.0, 1, "packet.tx", "a", uid=7, dst="c", dport=5060),
            _event(1.1, 2, "packet.forward", "b", uid=7, dst="c"),
            _event(1.2, 3, "packet.rx", "c", uid=7, src="a"),
        ]
        (life,) = reconstruct_packets(events)
        assert life.outcome == "rx"
        assert life.hops == ["b"]
        assert life.receiver == "c"
        assert life.latency == pytest.approx(0.2)
        assert "#7 a -> b -> c:5060" in life.describe()

    def test_dropped_packet_keeps_cause(self):
        events = [
            _event(1.0, 1, "packet.tx", "a", uid=3, dst="z", dport=654),
            _event(1.5, 2, "packet.drop", "a", uid=3, cause="no_route"),
        ]
        (life,) = reconstruct_packets(events)
        assert life.outcome == "drop"
        assert life.cause == "no_route"
        assert life.latency is None
        assert "dropped (no_route)" in life.describe()

    def test_first_outcome_wins_for_broadcast(self):
        events = [
            _event(1.0, 1, "packet.tx", "a", uid=9, dst="255.255.255.255", dport=654),
            _event(1.1, 2, "packet.rx", "b", uid=9),
            _event(1.2, 3, "packet.rx", "c", uid=9),
        ]
        (life,) = reconstruct_packets(events)
        assert life.receiver == "b" and life.t_end == pytest.approx(1.1)

    def test_in_flight_and_ordering(self):
        events = [
            _event(2.0, 1, "packet.tx", "a", uid=2, dst="b", dport=5060),
            _event(1.0, 2, "packet.tx", "c", uid=5, dst="d", dport=5060),
        ]
        first, second = reconstruct_packets(events)
        assert (first.uid, second.uid) == (5, 2)  # ordered by first tx time
        assert first.outcome == "in-flight"
        assert "in flight" in render_packet_lifecycles([first])

    def test_non_int_uid_ignored(self):
        events = [_event(1.0, 1, "packet.tx", "a", uid="x", dst="b")]
        assert reconstruct_packets(events) == []


class TestSipLadder:
    def _flow(self):
        return [
            _event(1.0, 1, "sip.msg_tx", "a", src="a:5070", dst="p:5060",
                   method="INVITE", call_id="c1", cseq="INVITE"),
            _event(1.1, 2, "sip.msg_tx", "p", src="p:5060", dst="a:5070",
                   status=200, call_id="c1", cseq="INVITE"),
            _event(1.2, 3, "sip.msg_tx", "a", src="a:5070", dst="p:5060",
                   method="ACK", call_id="c2", cseq="ACK"),
        ]

    def test_participants_in_first_appearance_order(self):
        participants, arrows = build_sip_flow(self._flow())
        assert participants == ["a:5070", "p:5060"]
        assert [label for (_, _, _, label) in arrows] == ["INVITE", "200 (INVITE)", "ACK"]

    def test_call_id_filter(self):
        _, arrows = build_sip_flow(self._flow(), call_id="c1")
        assert [label for (_, _, _, label) in arrows] == ["INVITE", "200 (INVITE)"]
        assert call_ids(self._flow()) == ["c1", "c2"]

    def test_empty_trace_message(self):
        assert "was tracing enabled?" in sip_ladder([])


class TestEndToEndLadder:
    def test_two_party_call_renders_invite_200_ack_bye(self):
        scenario = run_traced_call()
        events = scenario.trace.events
        _, arrows = build_sip_flow(events)
        labels = [label for (_, _, _, label) in arrows]
        # Figure 3 ordering: the INVITE transaction completes before the BYE.
        for expected in ("INVITE", "200 (INVITE)", "ACK", "BYE", "200 (BYE)"):
            assert expected in labels
        assert labels.index("INVITE") < labels.index("200 (INVITE)")
        assert labels.index("200 (INVITE)") < labels.index("ACK")
        assert labels.index("ACK") < labels.index("BYE")
        assert labels.index("BYE") < labels.index("200 (BYE)")
        text = sip_ladder(events)
        for expected in ("INVITE", "ACK", "BYE", "REGISTER"):
            assert expected in text
