"""Unit tests for the whole-program layer: import-graph resolution,
cross-module write attribution, composition reachability, and the
dataflow facts the SHARD rules consume."""

import ast

from repro.lint.core import ProjectAnalyzer
from repro.lint.dataflow import analyze_module
from repro.lint.graph import ProjectGraph, module_name_for_path
from pathlib import Path


def summarize(sources: dict[str, str]) -> ProjectGraph:
    """Build a ProjectGraph from {module_name: source} pairs."""
    analyzer = ProjectAnalyzer()
    summaries = [
        analyzer.summarize_source(source, f"{name.replace('.', '/')}.py")
        for name, source in sources.items()
    ]
    return ProjectGraph(summaries)


class TestModuleNames:
    def test_src_relative_dotted(self):
        assert (
            module_name_for_path(Path("src/repro/netsim/packet.py"))
            == "repro.netsim.packet"
        )

    def test_package_init(self):
        assert module_name_for_path(Path("src/repro/sip/__init__.py")) == "repro.sip"

    def test_outside_src_falls_back_to_stem(self):
        assert module_name_for_path(Path("tests/lint/fixtures/x.py")) == "x"


class TestResolution:
    def test_class_resolves_through_reexport(self):
        graph = summarize(
            {
                "impl": "class Thing:\n    def start(self):\n        self.sim.schedule(0, self.start)\n",
                "api": "from impl import Thing\n",
                "user": "from api import Thing\ndef build(sim):\n    return Thing()\n",
            }
        )
        resolved = graph.resolve_class("Thing", from_module="user")
        assert resolved is not None
        assert resolved.module == "impl"
        assert resolved.cls.schedulable

    def test_function_resolves_in_same_module(self):
        graph = summarize({"m": "def helper(rng):\n    return rng.random()\n"})
        resolved = graph.resolve_function("helper", from_module="m")
        assert resolved is not None
        assert resolved.fn.rng_consuming_params == ["rng"]

    def test_unknown_name_resolves_to_none(self):
        graph = summarize({"m": "x = 1\n"})
        assert graph.resolve_class("Ghost", from_module="m") is None
        assert graph.resolve_function("ghost", from_module="m") is None


class TestCrossModuleWrites:
    def test_writer_in_another_module_is_attributed(self):
        graph = summarize(
            {
                "state_owner": "_ids = {}\n",
                "writer": (
                    "import state_owner\n"
                    "def record(key):\n"
                    "    state_owner._ids[key] = True\n"
                ),
            }
        )
        writes = graph.global_writes_to("state_owner", "_ids")
        assert {write["from"] for write in writes} == {"writer"}

    def test_local_write_is_attributed_to_self(self):
        graph = summarize(
            {"m": "_log = []\ndef add(x):\n    _log.append(x)\n"}
        )
        writes = graph.global_writes_to("m", "_log")
        assert {write["from"] for write in writes} == {"m"}

    def test_unwritten_binding_has_no_writes(self):
        graph = summarize({"m": "_table = {1: 'a'}\ndef get(k):\n    return _table[k]\n"})
        assert graph.global_writes_to("m", "_table") == []


class TestReachability:
    def test_composition_closure_includes_nested_and_subclasses(self):
        graph = summarize(
            {
                "parts": "class Antenna:\n    pass\n",
                "radio": (
                    "from parts import Antenna\n"
                    "class Radio:\n"
                    "    def __init__(self):\n"
                    "        self.antenna = Antenna()\n"
                ),
                "node": (
                    "from radio import Radio\n"
                    "class Node:\n"
                    "    def __init__(self):\n"
                    "        self.radio = Radio()\n"
                    "class RelayNode(Node):\n"
                    "    pass\n"
                ),
                "island": "class Island:\n    pass\n",
            }
        )
        reachable = graph.reachable_classes({"Node"})
        assert "node.Node" in reachable
        assert "node.RelayNode" in reachable, "subclasses ship with the root"
        assert "radio.Radio" in reachable
        assert "parts.Antenna" in reachable, "composition is transitive"
        assert "island.Island" not in reachable

    def test_container_growth_is_a_composition_edge(self):
        graph = summarize(
            {
                "m": (
                    "class Stack:\n"
                    "    pass\n"
                    "class Node:\n"
                    "    def __init__(self):\n"
                    "        self.stacks = []\n"
                    "    def add(self):\n"
                    "        self.stacks.append(Stack())\n"
                )
            }
        )
        assert "m.Stack" in graph.reachable_classes({"Node"})


class TestDataflow:
    def analyze(self, source: str):
        tree = ast.parse(source)
        import_map = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    import_map[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    import_map[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        return analyze_module(tree, import_map)

    def test_seeded_rng_flow_records_sinks(self):
        flow = self.analyze(
            "import random\n"
            "def build(sim, seed):\n"
            "    rng = random.Random(seed)\n"
            "    a = Alpha(sim, rng)\n"
            "    b = Beta(rng=rng)\n"
        )
        (fn,) = [f for f in flow.functions if f.qualname == "build"]
        (rng_flow,) = fn.rng_flows
        assert rng_flow["name"] == "rng"
        assert {sink["callee"] for sink in rng_flow["sinks"]} == {"Alpha", "Beta"}

    def test_annotated_param_attribute_store_is_owned(self):
        flow = self.analyze(
            "def attach(call: IncomingCall):\n"
            "    call.on_state = lambda c: None\n"
        )
        (fn,) = [f for f in flow.functions if f.qualname == "attach"]
        (record,) = fn.unpicklable_attr_assigns
        assert record["owner"] == "IncomingCall"
        assert record["attr"] == "on_state"
        assert record["kind"] == "lambda"

    def test_schedulable_detection(self):
        flow = self.analyze(
            "class A:\n"
            "    def start(self, sim):\n"
            "        sim.schedule(1.0, self.start)\n"
            "class B:\n"
            "    def idle(self):\n"
            "        pass\n"
        )
        by_name = {cls.name: cls for cls in flow.classes}
        assert by_name["A"].schedulable
        assert not by_name["B"].schedulable

    def test_global_declaration_write_detected(self):
        flow = self.analyze(
            "_mode = {}\n"
            "def set_mode(m):\n"
            "    global _mode\n"
            "    _mode = m\n"
        )
        (fn,) = [f for f in flow.functions if f.qualname == "set_mode"]
        assert [write["name"] for write in fn.global_writes] == ["_mode"]

    def test_mutable_global_registration_flag(self):
        flow = self.analyze(
            "from repro.globalstate import registry\n"
            "_good = registry.mapping('x')\n"
            "_bad = {}\n"
        )
        by_name = {binding["name"]: binding for binding in flow.mutable_globals}
        assert by_name["_good"]["registered"]
        assert not by_name["_bad"]["registered"]
