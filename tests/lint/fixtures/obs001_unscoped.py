"""OBS001 scoping fixture: a seeded Random outside metrics/ is fine."""

import random


def make_seeded_sampler_rng(seed):
    return random.Random(seed)
