"""FAULT001 scoping fixture: a seeded Random outside faults/ is fine."""

import random


def make_seeded_rng(seed):
    return random.Random(seed)
