"""Suppression handling: matching id, blanket disable, and a wrong id."""

import random
import time


def stamped():
    return time.time()  # lint: disable=DET001


def noisy():
    return random.random()  # lint: disable


def wrong_id():
    return time.time()  # lint: disable=DET002
