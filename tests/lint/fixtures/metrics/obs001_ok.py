"""OBS001 negative fixture: pure readers keyed on sim time only."""


def scrape(registry, sim):
    return {"t": sim.now, "values": registry.collect(sim.now)}


def depth_gauge(node):
    return float(len(node.tx_queue))
