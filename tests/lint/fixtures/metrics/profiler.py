"""OBS001/DET001 exemption fixture: metrics/profiler.py may read wall time.

The profiler's whole purpose is attributing host wall-time to handlers, so
both the metrics purity rule and the wall-clock rule stand down here.
"""

import time


def timed(callback):
    def wrapper(*args):
        start = time.perf_counter()
        try:
            return callback(*args)
        finally:
            _record(time.perf_counter() - start)

    return wrapper


def _record(elapsed):
    del elapsed
