"""OBS001 positive fixture: metrics code owning a clock or RNG.

Everything here also shows the overlap with the base rules: the wall-clock
read trips DET001 too, the global-RNG draw trips DET002 too, and the
*seeded* Random — which DET002 allows — is still banned under metrics/.
"""

import random
import time


def sampled(values, rate):
    return [value for value in values if random.random() < rate]


def make_jitter_rng(seed):
    return random.Random(seed)


def snapshot_stamp():
    return time.time()
