"""FAULT001 positive fixture: fault-schedule code owning a clock or RNG.

Everything here also shows the overlap with the base rules: the wall-clock
read trips DET001 too, the global-RNG draw trips DET002 too, and the
*seeded* Random — which DET002 allows — is still banned under faults/.
"""

import random
import time


def jittered_at(base):
    return base + random.random()


def make_private_rng(seed):
    return random.Random(seed)


def stamp():
    return time.time()
