"""FAULT001 negative fixture: randomness flows in from Simulator.rng."""


def should_drop(loss_rate, rng):
    return rng.random() < loss_rate


def fire_at(plan_event, sim):
    return max(plan_event.at, sim.now)
