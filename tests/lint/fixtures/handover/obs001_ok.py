"""OBS001 negative fixture: pure handover-harness code.

Reductions over trace events and sim-time readings only — nothing host-
coupled, so drill reports fingerprint identically across interpreters.
"""


def media_gap(events):
    gaps = [event["gap_ms"] for event in events if "gap_ms" in event]
    return max(gaps) if gaps else None


def survival_rate(completed, triggers):
    return completed / triggers if triggers else None
