"""OBS001 positive fixture: handover-harness code owning a clock or RNG.

Mirrors metrics/obs001_bad.py for the §5k scope extension: the wall-clock
read also trips DET001, the global-RNG draw also trips DET002, and the
*seeded* Random — which DET002 allows, and which the policy itself uses
for retry jitter over in repro.core.connection — is still banned inside
the handover drill/report harness.
"""

import random
import time


def sample_drills(drills, rate):
    return [drill for drill in drills if random.random() < rate]


def make_retry_rng(seed):
    return random.Random(seed)


def drill_stamp():
    return time.time()
