"""SIM001 positives: exact equality on simulation-time expressions."""


def fire_exactly(sim, deadline):
    if sim.now == deadline:
        return True
    return sim.now != deadline


def expired(entry, now):
    return entry.expires_at == now
