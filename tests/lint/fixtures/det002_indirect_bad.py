"""DET002 positive through one level of indirection: the global random module
smuggled into a callee whose parameter draws from it."""

import random


def jitter(rng, base: float) -> float:
    return base + rng.random()


def schedule_retry(sim, base: float) -> float:
    return jitter(random, base)


def schedule_retry_kw(sim, base: float) -> float:
    return jitter(rng=random, base=base)
