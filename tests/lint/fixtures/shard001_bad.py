"""SHARD001 positives: unregistered module-level mutable state, written at runtime."""

import itertools

_dialog_ids = itertools.count(1)  # counter drawn below
_pending = {}  # dict written below
_route_log = []  # list appended below


def next_dialog_id() -> int:
    return next(_dialog_ids)


def remember(key, value) -> None:
    _pending[key] = value


def log_route(hop) -> None:
    _route_log.append(hop)
