"""CACHE001 negatives: the owning class and the public mutation API."""


class Headers:
    def __init__(self):
        self._items = []
        self._version = 0

    def add(self, name, value):
        self._items.append((name, value))
        self._version += 1


def fold(headers, name, continuation):
    headers.extend_last(name, continuation)
    headers.bump_version()
