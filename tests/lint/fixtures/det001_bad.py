"""DET001 positives: wall-clock reads via module, from-import and alias."""

import time
from datetime import datetime
from time import perf_counter


def stamp():
    return time.time()


def tick():
    return time.monotonic()


def bench():
    return perf_counter()


def today():
    return datetime.now()
