"""OVR001 is path-scoped: unbounded queues outside netsim/ and core/ pass."""

from collections import deque

event_queue = []
scratch = deque()
