"""PERF001 positives: a private timer heap bypassing the event kernel."""

import heapq
from heapq import heappush

timers: list[tuple[float, int]] = []

heapq.heappush(timers, (1.0, 1))
heappush(timers, (2.0, 2))
