"""DET002 negatives under indirection: seeded RNGs flow into the rng parameter."""

import random


def jitter(rng, base: float) -> float:
    return base + rng.random()


def schedule_retry(sim, base: float) -> float:
    return jitter(sim.rng, base)


def schedule_retry_local(sim, seed: int, base: float) -> float:
    rng = random.Random(seed)
    return jitter(rng, base)
