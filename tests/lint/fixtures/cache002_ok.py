"""CACHE002 negatives: the epoch-notifying setter and the owning class."""


def move(node):
    node.position = (5.0, 5.0)


class Node:
    def __init__(self, position):
        self._position = position

    @property
    def position(self):
        return self._position

    @position.setter
    def position(self, value):
        self._position = value
