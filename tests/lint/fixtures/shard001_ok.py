"""SHARD001 negatives: registered via the global-state registry, or never written."""

from repro.globalstate import registry

_dialog_ids = registry.counter("fixtures.shard001.dialog", start=1)
_pending = registry.mapping("fixtures.shard001.pending")

#: Read-only lookup table: mutable container, but no runtime writes.
_CODEC_NAMES = {0: "PCMU", 8: "PCMA"}


def next_dialog_id() -> int:
    return _dialog_ids.next()


def remember(key, value) -> None:
    _pending[key] = value


def codec_name(payload_type: int) -> str:
    return _CODEC_NAMES[payload_type]
