"""SHARD002 negatives: handlers stay on the owning simulator, never go global."""


def install(sim) -> None:
    def on_tick() -> None:
        sim.schedule(1.0, on_tick)

    sim.schedule(1.0, on_tick)


class Beacon:
    """Instance state is fine: the closure lives and dies with its region."""

    def __init__(self, sim) -> None:
        self.sim = sim

    def start(self) -> None:
        self.sim.schedule(0.0, self.start)
