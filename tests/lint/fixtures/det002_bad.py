"""DET002 positives: global RNG draws and un-seeded generators."""

import random


def jitter():
    return random.random()


def pick(items):
    return random.choice(items)


def fresh_rng():
    return random.Random()


def crypto_rng():
    return random.SystemRandom()
