"""SIM001 negatives: bounds, tolerances, and non-time comparisons."""


def due(sim, deadline):
    return sim.now >= deadline


def close_enough(now, deadline, tolerance=1e-9):
    return abs(now - deadline) <= tolerance


def unset(deadline):
    return deadline == None  # noqa: E711 - None comparisons are exempt


def method_match(method):
    return method == "INVITE"
