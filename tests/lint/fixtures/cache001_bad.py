"""CACHE001 positives: external writes to versioned private cache state."""


def corrupt_headers(headers):
    headers._version += 1
    headers._items = []
    headers._items.append(("Via", "SIP/2.0/UDP h"))


def corrupt_wire(message):
    message._wire = b""
