"""SHARD004 negatives: picklable state on Node; unpicklables outside its closure."""

import functools


def _log_move(node, position) -> None:
    pass


class Radio:
    def __init__(self) -> None:
        self.frames = []


class Node:
    def __init__(self, sim, trace_path: str) -> None:
        self.sim = sim
        self.radio = Radio()
        self.trace_path = trace_path


def attach_logger(node: Node) -> None:
    node.on_move = functools.partial(_log_move, node)


class HostSideMonitor:
    """Not reachable from Node/ManetScenario: lambdas here are host-side only."""

    def __init__(self) -> None:
        self.fmt = lambda row: str(row)
