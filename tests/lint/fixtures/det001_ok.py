"""DET001 negatives: time flows from the simulator clock."""


def now(sim):
    return sim.now


def schedule(sim, delay, callback):
    return sim.schedule(delay, callback)
