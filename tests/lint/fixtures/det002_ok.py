"""DET002 negatives: seeded generators and simulator-owned draws."""

import random


def seeded(seed):
    return random.Random(seed)


def keyword_seeded(seed):
    return random.Random(x=seed)


def draw(sim):
    return sim.rng.uniform(0.0, 1.0)
