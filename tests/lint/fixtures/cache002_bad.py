"""CACHE002 positive: moving a node without notifying the medium."""


def teleport(node):
    node._position = (5.0, 5.0)
