"""DET001 exemption: benchmarks measure the host clock by design."""

from time import perf_counter


def measure(fn):
    started = perf_counter()
    fn()
    return perf_counter() - started
