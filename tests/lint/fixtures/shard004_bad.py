"""SHARD004 positives: unpicklable state in the Node composition closure."""


class Radio:
    def __init__(self) -> None:
        self.frames = (frame for frame in ())


class Node:
    def __init__(self, sim, trace_path: str) -> None:
        self.sim = sim
        self.radio = Radio()
        self.trace = open(trace_path, "a")
        self.on_move = lambda position: None


def attach_logger(node: Node) -> None:
    node.on_packet = lambda packet: None
