"""SHARD002 positives: simulator-capturing closures escaping to module globals."""

from repro.globalstate import registry

_tick_handlers = registry.sequence("fixtures.shard002.tick_handlers")
_armed_hook = None


def install_named(sim) -> None:
    def on_tick() -> None:
        sim.schedule(1.0, on_tick)

    _tick_handlers.append(on_tick)


def install_lambda(kernel) -> None:
    _tick_handlers.append(lambda: kernel.dispatch())


def arm(sim) -> None:
    global _armed_hook
    _armed_hook = lambda: sim.stop()
