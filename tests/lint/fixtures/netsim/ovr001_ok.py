"""OVR001 negatives: bounded or justified queues pass."""

from collections import deque


class Interface:
    def __init__(self, capacity):
        self.tx_queue = deque(maxlen=capacity)  # explicit bound
        self.history = deque([], 64)  # positional maxlen counts as bounded
        self.neighbors = []  # not queue-named: plain list is fine
        # Capacity enforced by the drop policy in submit(), not by maxlen.
        self.overflow_queue = []  # lint: disable=OVR001


def drain(tx_queue):
    # Reads/iteration over an existing queue are never flagged.
    while tx_queue:
        tx_queue.popleft()
