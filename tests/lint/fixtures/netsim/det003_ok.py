"""DET003 negatives: order-insensitive set usage in a scoped dir."""


def stable(values: set[str]):
    return sorted(values)


def cardinality(values: set[str]):
    return len(values)


def contains(values: set[str], item):
    return item in values


def rebuild(values: set[str]):
    return frozenset(values)
