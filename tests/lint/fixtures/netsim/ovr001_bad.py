"""OVR001 positives: unbounded queues in an overload-scoped directory."""

import collections
from collections import deque


class Interface:
    def __init__(self):
        self.tx_queue = []  # queue-named bare list: unbounded
        self.retry_backlog = list()  # queue-named list(): unbounded
        self.frames = deque()  # unbounded deque


def build_fifo():
    packet_fifo: list = []  # annotated queue-named bare list
    staging = collections.deque()  # unbounded deque via module attribute
    return packet_fifo, staging
