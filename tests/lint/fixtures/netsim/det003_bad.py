"""DET003 positives: ordered iteration over bare sets in a scoped dir."""


def visit_literal():
    total = 0
    for ip in {"192.168.0.1", "192.168.0.2"}:
        total += len(ip)
    return total


def materialize(values: set[str]):
    return list(values)


def first_upper():
    peers = {"alpha", "beta"}
    return [peer.upper() for peer in peers]


class Topology:
    def __init__(self) -> None:
        self.members: set[str] = set()

    def walk(self):
        for member in self.members:
            yield member
