"""DET001 exemption: netsim/simulator.py may define virtual time."""

import time


def host_clock():
    return time.time()
