"""PERF001 exemption: the event kernel is the one owner of the heap."""

import heapq

pending: list[tuple[float, int]] = []

heapq.heappush(pending, (0.5, 1))
