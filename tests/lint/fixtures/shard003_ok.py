"""SHARD003 negatives: per-component subseeded RNGs, or a single consumer."""

import random


class TalkSource:
    def __init__(self, sim, rng) -> None:
        self.sim = sim
        self.rng = rng

    def start(self) -> None:
        self.sim.schedule(self.rng.random(), self.start)


class SilenceSource:
    def __init__(self, sim, rng) -> None:
        self.sim = sim
        self.rng = rng

    def start(self) -> None:
        self.sim.schedule(self.rng.expovariate(1.0), self.start)


def build(sim, seed: int):
    talk = TalkSource(sim, random.Random(seed))
    silence = SilenceSource(sim, random.Random(seed + 1))
    return talk, silence


def build_one(sim, seed: int):
    rng = random.Random(seed)
    return TalkSource(sim, rng)
