"""SHARD003 positive: one seeded RNG shared by two schedulable components."""

import random


class TalkSource:
    def __init__(self, sim, rng) -> None:
        self.sim = sim
        self.rng = rng

    def start(self) -> None:
        self.sim.schedule(self.rng.random(), self.start)


class SilenceSource:
    def __init__(self, sim, rng) -> None:
        self.sim = sim
        self.rng = rng

    def start(self) -> None:
        self.sim.schedule(self.rng.expovariate(1.0), self.start)


def build(sim, seed: int):
    rng = random.Random(seed)
    talk = TalkSource(sim, rng)
    silence = SilenceSource(sim, rng)
    return talk, silence
