"""DET003 negative: same pattern outside netsim/, core/, routing/."""


def anywhere(values: set[str]):
    return list(values)
