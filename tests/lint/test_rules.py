"""Rule-by-rule fixture tests for the determinism/cache-coherence analyzer.

Each rule has at least one positive and one negative fixture under
``fixtures/``; path-scoped rules additionally prove their exemptions
(``netsim/simulator.py``, ``benchmarks/`` for DET001; unscoped dirs for
DET003). Suppression comments are exercised end to end.
"""

import json
from pathlib import Path

import pytest

from repro.lint import analyze_file, analyze_source, get_rules, run_paths
from repro.lint.__main__ import main
from repro.lint.rules import ALL_RULES

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture path (relative to fixtures/) -> exact multiset of expected rule ids
EXPECTED = {
    "det001_bad.py": ["DET001"] * 4,
    "det001_ok.py": [],
    "netsim/simulator.py": [],
    "benchmarks/bench_clock.py": [],
    "det002_bad.py": ["DET002"] * 4,
    "det002_ok.py": [],
    "netsim/det003_bad.py": ["DET003"] * 4,
    "netsim/det003_ok.py": [],
    "det003_unscoped.py": [],
    "cache001_bad.py": ["CACHE001"] * 4,
    "cache001_ok.py": [],
    "cache002_bad.py": ["CACHE002"],
    "cache002_ok.py": [],
    "sim001_bad.py": ["SIM001"] * 3,
    "sim001_ok.py": [],
    "faults/fault001_bad.py": ["DET001", "DET002", "FAULT001", "FAULT001", "FAULT001"],
    "faults/fault001_ok.py": [],
    "fault001_unscoped.py": [],
    "metrics/obs001_bad.py": ["DET001", "DET002", "OBS001", "OBS001", "OBS001"],
    "metrics/obs001_ok.py": [],
    "metrics/profiler.py": [],
    "handover/obs001_bad.py": ["DET001", "DET002", "OBS001", "OBS001", "OBS001"],
    "handover/obs001_ok.py": [],
    "obs001_unscoped.py": [],
    "netsim/ovr001_bad.py": ["OVR001"] * 5,
    "netsim/ovr001_ok.py": [],
    "ovr001_unscoped.py": [],
    "perf001_bad.py": ["PERF001"] * 4,
    "netsim/kernel.py": [],
    "suppressed.py": ["DET001"],
    "det002_indirect_bad.py": ["DET002"] * 2,
    "det002_indirect_ok.py": [],
    "shard001_bad.py": ["SHARD001"] * 3,
    "shard001_ok.py": [],
    "shard002_bad.py": ["SHARD002"] * 3,
    "shard002_ok.py": [],
    "shard003_bad.py": ["SHARD003"],
    "shard003_ok.py": [],
    "shard004_bad.py": ["SHARD004"] * 4,
    "shard004_ok.py": [],
}


def rule_ids(findings):
    return sorted(finding.rule_id for finding in findings)


@pytest.mark.parametrize("relative", sorted(EXPECTED))
def test_fixture_findings(relative):
    findings = analyze_file(FIXTURES / relative)
    assert rule_ids(findings) == sorted(EXPECTED[relative]), "\n".join(
        finding.format() for finding in findings
    )


def test_every_rule_has_a_positive_fixture():
    demonstrated = {rule_id for ids in EXPECTED.values() for rule_id in ids}
    assert demonstrated == {rule.id for rule in ALL_RULES}


def test_fixture_corpus_is_dirty_overall():
    findings = run_paths([FIXTURES])
    assert findings, "fixture corpus must demonstrate findings"


class TestSuppression:
    def test_matching_id_suppresses(self):
        findings = analyze_file(FIXTURES / "suppressed.py")
        lines = [finding.line for finding in findings]
        source = (FIXTURES / "suppressed.py").read_text()
        wrong_id_line = next(
            index
            for index, text in enumerate(source.splitlines(), start=1)
            if "disable=DET002" in text
        )
        assert lines == [wrong_id_line]

    def test_suppression_inside_string_is_ignored(self):
        source = 'import time\nlabel = "# lint: disable=DET001"; y = time.time()\n'
        findings = analyze_source(source, "scratch.py")
        assert rule_ids(findings) == ["DET001"]

    def test_multiple_ids_one_comment(self):
        source = (
            "import time, random\n"
            "x = time.time() + random.random()  # lint: disable=DET001,DET002\n"
        )
        assert analyze_source(source, "scratch.py") == []


class TestResolution:
    def test_module_alias(self):
        source = "import time as clock\nx = clock.monotonic()\n"
        assert rule_ids(analyze_source(source, "scratch.py")) == ["DET001"]

    def test_from_import_alias(self):
        source = "from time import monotonic as mono\nx = mono()\n"
        assert rule_ids(analyze_source(source, "scratch.py")) == ["DET001"]

    def test_from_datetime_import(self):
        source = "from datetime import datetime\nx = datetime.utcnow()\n"
        assert rule_ids(analyze_source(source, "scratch.py")) == ["DET001"]

    def test_unrelated_attribute_chains_clean(self):
        source = "class T:\n    def f(self):\n        return self.rng.random()\n"
        assert analyze_source(source, "scratch.py") == []


def test_syntax_error_reported_as_parse_finding():
    findings = analyze_source("def broken(:\n", "broken.py")
    assert [finding.rule_id for finding in findings] == ["PARSE"]


def test_get_rules_rejects_unknown_id():
    with pytest.raises(KeyError):
        get_rules(["DET999"])


def test_get_rules_subset_is_case_insensitive():
    (rule,) = get_rules(["det001"])
    assert rule.id == "DET001"


class TestCli:
    def test_fixture_corpus_exits_nonzero(self, capsys):
        assert main([str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "findings" in out

    def test_json_format_parses(self, capsys):
        assert main(["--format", "json", str(FIXTURES)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["count"] == len(document["findings"]) > 0
        rules_seen = {finding["rule"] for finding in document["findings"]}
        assert {rule.id for rule in ALL_RULES} <= rules_seen

    def test_select_narrows_rules(self, capsys):
        assert main(["--select", "CACHE002", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "CACHE002" in out and "DET001" not in out

    def test_unknown_rule_id_exits_two(self, capsys):
        assert main(["--select", "NOPE", str(FIXTURES)]) == 2

    def test_clean_file_exits_zero(self, capsys):
        assert main([str(FIXTURES / "det001_ok.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_no_files_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out
