"""Tier-1 enforcement: the production tree must satisfy its own analyzer.

This is the contract that keeps the determinism/cache invariants from
regressing: any new wall-clock read, global-RNG draw, bare-set iteration
in an order-sensitive subsystem, or cache-bypassing mutation fails the
suite, not just a code review.
"""

from pathlib import Path

from repro.lint import iter_python_files, run_paths
from repro.lint.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def test_src_repro_has_zero_findings():
    findings = run_paths([SRC])
    assert findings == [], "repro.lint findings in src/repro:\n" + "\n".join(
        finding.format() for finding in findings
    )


def test_src_tree_is_nontrivial():
    # Guard against a path typo silently turning the self-clean test into
    # a no-op: the production tree is dozens of modules.
    assert len(list(iter_python_files([SRC]))) > 50


def test_cli_clean_run_exits_zero(capsys):
    assert main([str(SRC)]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out
