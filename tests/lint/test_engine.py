"""Engine-level tests: incremental cache, --changed, baselines, reporters,
and logical-line suppression folding.

The cache contract under test is *output transparency*: a warm run must be
byte-identical to a cold run (proved in a fresh subprocess each, so no
in-process memoization can fake it) while skipping the per-file work (proved
by the >=3x wall-clock speedup assertion, and structurally by cache_hits).
"""

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.lint.__main__ import main
from repro.lint.core import (
    Finding,
    ProjectAnalyzer,
    Suppressions,
    apply_baseline,
    engine_fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.reporters import SARIF_VERSION, render_json, render_sarif
from repro.lint.rules import ALL_RULES

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"


def run_cli(args, cwd):
    """Run ``python -m repro.lint`` in a fresh interpreter, capture stdout."""
    env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"}
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestSuppressionFolding:
    def test_comment_on_continuation_line_covers_statement(self):
        source = (
            "import time\n"
            "x = (\n"
            "    time.time()  # lint: disable=DET001\n"
            ")\n"
        )
        sup = Suppressions(source)
        assert sup.is_suppressed(2, "DET001"), "logical-line start must be covered"
        assert sup.is_suppressed(3, "DET001"), "physical comment line must be covered"

    def test_multi_rule_comment_on_continuation_line(self):
        source = (
            "import time, random\n"
            "y = (time.time()\n"
            "     + random.random())  # lint: disable=DET001, DET002\n"
        )
        sup = Suppressions(source)
        for rule_id in ("DET001", "DET002"):
            assert sup.is_suppressed(2, rule_id)
        assert not sup.is_suppressed(2, "CACHE001")

    def test_continuation_suppression_end_to_end(self):
        from repro.lint import analyze_source

        source = (
            "import time, random\n"
            "y = (time.time()\n"
            "     + random.random())  # lint: disable=DET001,DET002\n"
        )
        assert analyze_source(source, "scratch.py") == []

    def test_comment_on_next_statement_does_not_leak_backwards(self):
        source = (
            "import time\n"
            "x = time.time()\n"
            "y = 1  # lint: disable=DET001\n"
        )
        sup = Suppressions(source)
        assert not sup.is_suppressed(2, "DET001")


class TestCacheDeterminism:
    def test_cold_then_warm_byte_identical_fresh_processes(self, tmp_path):
        cache = tmp_path / "cache"
        args = ["--cache-dir", str(cache), "--format", "json", str(FIXTURES)]
        cold = run_cli(args, cwd=Path.cwd())
        assert (cache / "summaries.json").is_file(), cold.stderr
        warm = run_cli(args, cwd=Path.cwd())
        assert cold.stdout == warm.stdout
        assert cold.returncode == warm.returncode == 1

    def test_warm_run_is_at_least_3x_faster(self, tmp_path):
        analyzer = ProjectAnalyzer(cache_dir=tmp_path / "cache")
        paths = [SRC / "repro"]
        start = time.perf_counter()
        cold = analyzer.analyze_paths(paths)
        cold_elapsed = time.perf_counter() - start

        warm_analyzer = ProjectAnalyzer(cache_dir=tmp_path / "cache")
        start = time.perf_counter()
        warm = warm_analyzer.analyze_paths(paths)
        warm_elapsed = time.perf_counter() - start

        assert cold.findings == warm.findings
        assert warm.cache_hits == warm.files_checked
        assert cold_elapsed >= 3 * warm_elapsed, (
            f"warm {warm_elapsed:.3f}s not 3x faster than cold {cold_elapsed:.3f}s"
        )

    def test_cache_invalidated_by_content_change(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\nx = time.time()\n")
        analyzer = ProjectAnalyzer(cache_dir=tmp_path / "cache")
        first = analyzer.analyze_paths([target])
        assert first.changed_paths == [str(target)]

        target.write_text("import time\nx = time.time()\ny = time.monotonic()\n")
        again = ProjectAnalyzer(cache_dir=tmp_path / "cache").analyze_paths([target])
        assert again.changed_paths == [str(target)]
        assert len(again.findings) == 2

    def test_cache_not_shared_across_rule_selections(self, tmp_path):
        """A --select run must not serve (or poison) the full-rule cache."""
        target = tmp_path / "mod.py"
        target.write_text("import time\nx = time.time()\n")
        cache = tmp_path / "cache"
        full = ProjectAnalyzer(cache_dir=cache).analyze_paths([target])
        assert [f.rule_id for f in full.findings] == ["DET001"]

        from repro.lint.rules import get_rules

        narrowed = ProjectAnalyzer(get_rules(["CACHE002"]), cache_dir=cache)
        result = narrowed.analyze_paths([target])
        assert result.findings == []
        assert result.cache_hits == 0, "full-rule cache must miss under --select"

    def test_changed_flag_reports_only_changed_files(self, tmp_path, capsys):
        a = tmp_path / "a.py"
        b = tmp_path / "b.py"
        a.write_text("import time\nx = time.time()\n")
        b.write_text("import time\ny = time.monotonic()\n")
        cache = tmp_path / "cache"
        base_args = ["--cache-dir", str(cache), str(tmp_path)]

        assert main(base_args) == 1
        capsys.readouterr()

        b.write_text("import time\ny = time.monotonic()\nz = time.time()\n")
        assert main(["--changed", *base_args]) == 1
        out = capsys.readouterr().out
        assert "b.py" in out and "a.py" not in out

    def test_engine_fingerprint_stable_within_process(self):
        assert engine_fingerprint() == engine_fingerprint()
        assert len(engine_fingerprint()) == 64


class TestBaseline:
    def test_roundtrip_and_apply(self, tmp_path):
        findings = [
            Finding("src/x.py", 3, 1, "DET001", "wall-clock call time.time()"),
            Finding("src/y.py", 8, 1, "SHARD001", "unregistered state"),
        ]
        path = tmp_path / "baseline.json"
        write_baseline(findings, path)
        baseline = load_baseline(path)
        assert len(baseline) == 2

        drifted = [
            Finding("src/x.py", 99, 1, "DET001", "wall-clock call time.time()"),
            Finding("src/z.py", 1, 1, "DET001", "wall-clock call time.time()"),
        ]
        fresh, baselined = apply_baseline(drifted, baseline)
        assert baselined == 1, "line drift must not un-baseline a finding"
        assert [f.path for f in fresh] == ["src/z.py"]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_cli_write_then_clean(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import time\nx = time.time()\n")
        baseline = tmp_path / "baseline.json"
        args = ["--no-cache", "--baseline", str(baseline), str(target)]
        assert main(["--write-baseline", *args]) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "1 baselined" in capsys.readouterr().out


class TestReporters:
    def findings(self):
        return [
            Finding("src/a.py", 10, 5, "DET001", "wall-clock call"),
            Finding("src/b.py", 2, 1, "SHARD004", "lambda stored on Node.cb"),
        ]

    def test_json_schema(self):
        document = json.loads(render_json(self.findings(), files_checked=7, baselined=1))
        assert set(document) == {"baselined", "count", "files_checked", "findings"}
        assert document["count"] == 2 and document["files_checked"] == 7
        assert document["baselined"] == 1
        first = document["findings"][0]
        assert set(first) == {"path", "line", "col", "rule", "message"}
        assert first == {
            "path": "src/a.py",
            "line": 10,
            "col": 5,
            "rule": "DET001",
            "message": "wall-clock call",
        }

    def test_sarif_structure(self):
        document = json.loads(render_sarif(self.findings(), files_checked=7))
        assert document["version"] == SARIF_VERSION
        (run,) = document["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro.lint"
        declared = {rule["id"] for rule in driver["rules"]}
        assert declared == {rule.id for rule in ALL_RULES}
        assert len(run["results"]) == 2
        result = run["results"][0]
        assert result["ruleId"] == "DET001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/a.py"
        assert location["region"] == {"startLine": 10, "startColumn": 5}
        index = result["ruleIndex"]
        assert driver["rules"][index]["id"] == "DET001"

    def test_sarif_validates_against_vendored_schema(self):
        sys.path.insert(0, str(SRC.parent / "tools"))
        try:
            from validate_sarif import validate_sarif_text
        finally:
            sys.path.pop(0)
        assert validate_sarif_text(render_sarif(self.findings(), files_checked=7)) == []
        assert validate_sarif_text(render_sarif([], files_checked=0)) == []

    def test_sarif_cli_round_trip(self, capsys):
        assert main(["--no-cache", "--format", "sarif", str(FIXTURES)]) == 1
        document = json.loads(capsys.readouterr().out)
        rule_ids = {result["ruleId"] for result in document["runs"][0]["results"]}
        assert {rule.id for rule in ALL_RULES} <= rule_ids


@pytest.mark.parametrize("fmt", ["text", "json", "sarif"])
def test_all_formats_deterministic_in_process(fmt, tmp_path, capsys):
    args = ["--no-cache", "--format", fmt, str(FIXTURES)]
    main(args)
    first = capsys.readouterr().out
    main(args)
    assert capsys.readouterr().out == first
