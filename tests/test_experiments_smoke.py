"""Smoke tests: every experiment function produces a sound table.

The benchmarks run the full parameter sets; these tests run minimal
configurations so that ``pytest tests/`` alone exercises the whole
experiment harness.
"""

import math

import pytest

from repro.experiments import (
    ablation_discovery_table,
    services_table,
    cache_ablation_table,
    call_flow_table,
    convergence_table,
    footprint_table,
    gateway_table,
    media_quality_table,
    module_inventory_table,
    overhead_vs_nodes_table,
    run_city_workload,
    run_discovery_workload,
    scalability_table,
    setup_delay_table,
    voice_quality_table,
)
from repro.experiments.media import run_media_point
from repro.experiments.city import city_area


class TestCallExperiments:
    def test_call_flow_all_steps_pass(self):
        table = call_flow_table("aodv", seed=3)
        assert len(table.rows) == 8
        assert all(row[2] for row in table.rows)

    def test_setup_delay_minimal(self):
        table = setup_delay_table(hop_counts=(1, 3), routings=("aodv",), seeds=(1,))
        delays = table.column("mean_setup_s")
        assert delays[0] < delays[1] < 1.0

    def test_scalability_minimal(self):
        table = scalability_table(node_counts=(9,), seeds=(1,), calls_per_run=3)
        assert table.rows[0][3] >= 2 / 3

    def test_voice_quality_minimal(self):
        table = voice_quality_table(
            hop_counts=(1,), loss_rates=(0.0,), talk_time=5.0
        )
        row = table.to_dicts()[0]
        assert row["established"] and row["mos"] > 4.0


class TestDiscoveryExperiments:
    def test_workload_runner_shape(self):
        result = run_discovery_workload("siphoc", n_nodes=9, seed=1, n_lookups=4)
        assert result.lookups_attempted == 4
        assert result.lookups_resolved >= 3
        assert result.discovery_bytes == 0
        assert result.energy_joules > 0
        assert result.max_node_joules <= result.energy_joules

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            run_discovery_workload("carrier-pigeon")

    def test_overhead_table_minimal(self):
        table = overhead_vs_nodes_table(
            node_counts=(9,), schemes=("siphoc", "multicast-slp"), n_lookups=4
        )
        assert len(table.rows) == 2

    def test_ablation_minimal(self):
        table = ablation_discovery_table(n_nodes=9, seeds=(1,))
        schemes = table.column("scheme")
        assert "siphoc" in schemes and "proactive-hello" in schemes


class TestInfrastructureExperiments:
    def test_convergence_minimal(self):
        table = convergence_table(routings=("aodv",), n_nodes=4, seeds=(1,))
        lookup = next(r for r in table.to_dicts() if r["mode"] == "on-demand lookup")
        assert lookup["resolved"] == "1/1"

    def test_gateway_minimal(self):
        table = gateway_table(chain_lengths=(2,))
        row = table.to_dicts()[0]
        assert row["out_call"] and row["in_call"]

    def test_cache_ablation_minimal(self):
        table = cache_ablation_table(lifetimes=(10.0,), observation=20.0, n_nodes=4)
        assert table.rows[0][2] is True  # hit after warmup

    def test_footprint_has_all_components(self):
        table = footprint_table()
        assert len(table.rows) == 6
        assert all(row[2] > 0 for row in table.rows)  # loc > 0

    def test_services_minimal(self):
        table = services_table(hop_counts=(1,))
        row = table.to_dicts()[0]
        assert row["im_delivered"] and row["video_ok"]

    def test_module_inventory_nonempty(self):
        table = module_inventory_table()
        assert len(table.rows) >= 8


class TestMediaExperiment:
    def test_media_point_scores_a_call(self):
        quality, fade = run_media_point(
            policy="adaptive",
            redundancy=2,
            mean_good=5.0,
            mean_bad=0.03,
            hops=1,
            talk_time=4.0,
        )
        assert fade == pytest.approx(0.03 / 5.03)
        assert quality is not None
        assert 1.0 <= quality.mos <= 4.5
        assert quality.packets_recovered >= 0

    def test_media_table_minimal_shape(self):
        table = media_quality_table(
            codecs=("PCMU",),
            redundancies=(0,),
            policies=("fixed",),
            ge_points=((5.0, 0.03),),
            hops=1,
            talk_time=4.0,
        )
        row = table.to_dicts()[0]
        assert row["codec"] == "PCMU" and row["policy"] == "fixed"
        assert row["fade_pct"] == pytest.approx(0.6)
        assert not math.isnan(row["mos"])


class TestCityExperiment:
    def test_area_hits_target_degree(self):
        # n * pi * r^2 / side^2 == degree by construction
        side = city_area(5000, 150.0, degree=10.0)
        assert math.isclose(5000 * math.pi * 150.0**2 / side**2, 10.0)

    def test_city_workload_minimal(self):
        result = run_city_workload(
            n_nodes=120, n_calls=3, drain=10.0, max_call_distance=600.0
        )
        assert result["calls"] == 3
        assert result["established"] >= 2
        assert result["kernel"] == "calendar"
        assert result["events"] > 10_000
        assert result["packets"] > 1_000
