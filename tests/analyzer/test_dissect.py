"""Unit tests for the packet dissectors and the wireshark-style renderer."""

import pytest

from repro.analyzer import (
    dissect_frame,
    dissect_packet,
    render_capture,
    render_frame,
)
from repro.core import advert_extension, encode_inner_packet
from repro.netsim import CapturedFrame, Datagram, Packet
from repro.routing import Rrep, Rreq, encode_aodv, encode_olsr_packet, OlsrMessage, OLSR_SLP
from repro.rtp import RtpPacket
from repro.sip import Headers, SipRequest
from repro.slp import SrvReg, UrlEntry, encode_slp


def frame_for(packet, time=1.0):
    return CapturedFrame(
        time=time, sender_ip=packet.src, receiver_ip="*", packet=packet, delivered=True
    )


def make_packet(sport, dport, data, src="192.168.0.1", dst="192.168.0.2"):
    return Packet(src, dst, Datagram(sport, dport, data))


class TestAodvDissection:
    def test_rreq_fields(self):
        rreq = Rreq(rreq_id=5, dest_ip="192.168.0.9", dest_seq=1,
                    orig_ip="192.168.0.1", orig_seq=2, hop_count=3)
        packet = make_packet(654, 654, encode_aodv(rreq))
        dissection = dissect_packet(packet)
        layer = dissection.find("Ad hoc On-demand")
        assert layer is not None
        fields = dict(layer.fields)
        assert fields["Type"] == "Route Request (RREQ)"
        assert fields["Hop Count"] == "3"
        assert fields["Destination IP"] == "192.168.0.9"

    def test_figure5_rrep_with_sip_contact(self):
        """The headline dissection: RREP + piggybacked SIP contact info."""
        reg = SrvReg(
            xid=1,
            entry=UrlEntry(
                url="service:siphoc-sip://192.168.0.5:5060",
                lifetime=120,
                attributes="(user=sip:bob@voicehoc.ch)",
            ),
        )
        rrep = Rrep(dest_ip="192.168.0.5", dest_seq=2, orig_ip="192.168.0.1",
                    lifetime_ms=60000, hop_count=0)
        packet = make_packet(654, 654, encode_aodv(rrep, [advert_extension(reg)]))
        text = render_frame(frame_for(packet), number=12)
        assert "Route Reply (RREP)" in text
        assert "SIPHoc Extension" in text
        assert "service:siphoc-sip://192.168.0.5:5060" in text
        assert "sip:bob@voicehoc.ch" in text


class TestOlsrDissection:
    def test_packet_with_slp_message(self):
        reg = SrvReg(xid=2, entry=UrlEntry(url="service:siphoc-sip://192.168.0.3:5060",
                                           lifetime=60, attributes=""))
        message = OlsrMessage(msg_type=OLSR_SLP, orig_ip="192.168.0.3", seq=7,
                              body=encode_slp(reg))
        packet = make_packet(698, 698, encode_olsr_packet(1, [message]))
        text = render_frame(frame_for(packet))
        assert "Optimized Link State Routing" in text
        assert "SIPHoc SLP (130)" in text
        assert "service:siphoc-sip://192.168.0.3:5060" in text


class TestSipDissection:
    def test_invite(self):
        headers = Headers()
        headers.add("Via", "SIP/2.0/UDP 192.168.0.1:5070;branch=z9hG4bK-1")
        headers.add("From", "<sip:alice@voicehoc.ch>;tag=a")
        headers.add("To", "<sip:bob@voicehoc.ch>")
        headers.add("Call-ID", "cid")
        headers.add("CSeq", "1 INVITE")
        request = SipRequest("INVITE", "sip:bob@voicehoc.ch", headers=headers)
        packet = make_packet(5070, 5060, request.serialize())
        text = render_frame(frame_for(packet))
        assert "Session Initiation Protocol: INVITE sip:bob@voicehoc.ch" in text
        assert "Call-ID: cid" in text


class TestRtpDissection:
    def test_rtp_fields(self):
        rtp = RtpPacket(payload_type=0, sequence=42, timestamp=8000, ssrc=0xABCD,
                        payload=b"\x00" * 160)
        packet = make_packet(16384, 16384, rtp.encode())
        text = render_frame(frame_for(packet))
        assert "Real-Time Transport Protocol" in text
        assert "Sequence: 42" in text


class TestTunnelDissection:
    def test_recursive_inner_dissection(self):
        inner = make_packet(5060, 5060, b"OPTIONS sip:x SIP/2.0\r\n\r\n",
                            src="10.0.0.7", dst="10.0.0.2")
        packet = make_packet(5062, 5062, encode_inner_packet(inner))
        text = render_frame(frame_for(packet))
        assert "SIPHoc Layer-2 Tunnel" in text
        assert "Src: 10.0.0.7" in text
        assert "Session Initiation Protocol" in text


class TestFallbacks:
    def test_undecodable_payload_is_data(self):
        packet = make_packet(654, 654, b"\xff\xff\xff")
        text = render_frame(frame_for(packet))
        assert "Data" in text

    def test_unknown_port_is_data(self):
        packet = make_packet(40000, 40001, b"mystery")
        text = render_frame(frame_for(packet))
        assert "Data" in text


class TestCaptureList:
    def test_summary_rows(self):
        rreq = Rreq(rreq_id=1, dest_ip="192.168.0.9", dest_seq=0,
                    orig_ip="192.168.0.1", orig_seq=1)
        frames = [
            frame_for(make_packet(654, 654, encode_aodv(rreq)), time=0.5),
            frame_for(make_packet(16384, 16384, RtpPacket(0, 7, 0, 1, b"\x00" * 160).encode()), time=0.6),
        ]
        listing = render_capture(frames)
        lines = listing.splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert "AODV" in lines[1]
        assert "RTP" in lines[2]

    def test_predicate_filter(self):
        rreq = Rreq(rreq_id=1, dest_ip="192.168.0.9", dest_seq=0,
                    orig_ip="192.168.0.1", orig_seq=1)
        frames = [
            frame_for(make_packet(654, 654, encode_aodv(rreq))),
            frame_for(make_packet(40000, 40001, b"x")),
        ]
        listing = render_capture(frames, predicate=lambda f: f.packet.dport == 654)
        assert len(listing.splitlines()) == 2
