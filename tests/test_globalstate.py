"""Unit tests for the process-global state registry (repro.globalstate).

The registry is the single choke point SHARD001 certifies: every
module-level counter/mapping/sequence the runtime mutates registers here so
test harnesses (and, later, region-shard workers) can enumerate and reset
per-process state in one deterministic sweep.
"""

import pytest

from repro.globalstate import GlobalStateRegistry, registry


class TestRegistryBasics:
    def test_counter_sequence_and_reset(self):
        reg = GlobalStateRegistry()
        ids = reg.counter("t.ids", start=5)
        assert [ids.next(), ids.next(), ids.next()] == [5, 6, 7]
        reg.reset_all()
        assert ids.next() == 5, "reset must restart from the declared origin"

    def test_mapping_and_sequence_reset_to_empty(self):
        reg = GlobalStateRegistry()
        table = reg.mapping("t.table")
        log = reg.sequence("t.log")
        table["k"] = 1
        log.extend([1, 2, 3])
        reg.reset_all()
        assert table == {} and log == []

    def test_duplicate_name_rejected(self):
        reg = GlobalStateRegistry()
        reg.counter("t.ids")
        with pytest.raises(ValueError):
            reg.counter("t.ids")

    def test_custom_reset_hook(self):
        reg = GlobalStateRegistry()
        state = {"armed": True}
        reg.register("t.custom", lambda: state.update(armed=False))
        reg.reset_all()
        assert state["armed"] is False

    def test_names_enumerates_sorted(self):
        reg = GlobalStateRegistry()
        reg.counter("b")
        reg.mapping("a")
        assert reg.names() == ["a", "b"]
        assert len(reg) == 2


class TestProcessRegistry:
    """The real module-level registry wired into sip/rtp/netsim."""

    EXPECTED = {
        "netsim.packet.uid",
        "rtp.session.ssrc",
        "sip.auth.nonce",
        "sip.dialog.call_id",
        "sip.dialog.tag",
        "sip.transport.branch",
        "sip.ua.rtp_port",
    }

    def test_runtime_counters_are_registered(self):
        import repro.netsim.packet  # noqa: F401
        import repro.rtp.session  # noqa: F401
        import repro.sip.dialog  # noqa: F401
        import repro.sip.transport  # noqa: F401
        import repro.sip.ua  # noqa: F401

        assert self.EXPECTED <= set(registry.names())

    def test_reset_all_restarts_identifier_streams(self):
        from repro.sip.dialog import new_call_id, new_tag

        registry.reset_all()
        first_tag, first_call = new_tag(), new_call_id("host.invalid")
        registry.reset_all()
        assert (new_tag(), new_call_id("host.invalid")) == (first_tag, first_call)
