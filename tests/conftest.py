"""Shared fixtures: small prebuilt networks used across the test suite."""

from __future__ import annotations

import pytest

from repro.netsim import (
    Node,
    Simulator,
    StaticRouter,
    Stats,
    WirelessMedium,
    manet_ip,
    place_chain,
)


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


@pytest.fixture
def stats() -> Stats:
    return Stats()


@pytest.fixture
def medium(sim: Simulator, stats: Stats) -> WirelessMedium:
    return WirelessMedium(sim, stats=stats, tx_range=150.0)


def make_chain(
    sim: Simulator,
    medium: WirelessMedium,
    count: int,
    spacing: float = 100.0,
    static_routes: bool = False,
) -> list[Node]:
    """``count`` nodes in a chain; optionally with full static routing."""
    nodes = []
    for index in range(count):
        node = Node(sim, index, manet_ip(index), stats=medium.stats)
        node.join_medium(medium)
        nodes.append(node)
    place_chain(nodes, spacing)
    if static_routes:
        for i, node in enumerate(nodes):
            router = StaticRouter(node)
            node.set_router(router)
            for j, other in enumerate(nodes):
                if i == j:
                    continue
                next_index = i + 1 if j > i else i - 1
                router.add_route(other.ip, nodes[next_index].ip)
    return nodes


@pytest.fixture
def chain3(sim: Simulator, medium: WirelessMedium) -> list[Node]:
    return make_chain(sim, medium, 3, static_routes=True)


@pytest.fixture
def chain5(sim: Simulator, medium: WirelessMedium) -> list[Node]:
    return make_chain(sim, medium, 5, static_routes=True)
