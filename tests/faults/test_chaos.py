"""Acceptance tests for the chaos harness (ISSUE 4 acceptance criteria).

A seeded chain scenario takes a mid-call relay crash plus an abrupt
gateway failure; the call workload must re-establish, and a same-seed
rerun must reproduce the identical fault schedule and applied-event log.
(Full byte-identical *trace* reruns are a fresh-process contract —
``python -m repro.faults smoke`` checks that, like
``tests/trace/test_determinism.py`` does for plain tracing.)
"""

import pytest

from repro.faults import GilbertElliottChannel, FaultPlan, analyze_recovery
from repro.faults.harness import default_chaos_plan, run_chaos
from repro.scenarios import ManetConfig, ManetScenario


@pytest.fixture(scope="module")
def chaos_result():
    return run_chaos(hops=4, routing="aodv", seed=7)


class TestRecovery:
    def test_post_fault_call_reestablishes(self, chaos_result):
        assert chaos_result.recovered
        assert chaos_result.second_call.established

    def test_every_planned_fault_fired(self, chaos_result):
        injector = chaos_result.scenario.faults
        fired = [entry[1]["kind"] for entry in injector.applied]
        assert fired == [event.kind for event in chaos_result.plan.events]

    def test_gateway_failover_observed(self, chaos_result):
        report = chaos_result.report
        assert report.gateway_failover_latency
        assert all(latency > 0 for latency in report.gateway_failover_latency.values())

    def test_relay_reregisters_after_restart(self, chaos_result):
        assert chaos_result.report.reregistration_latency

    def test_route_rediscovery_recorded(self, chaos_result):
        assert chaos_result.report.route_rediscovery_latency


class TestDeterminism:
    def test_same_seed_same_schedule_and_applied_log(self, chaos_result):
        rerun = run_chaos(hops=4, routing="aodv", seed=7)
        assert rerun.plan.describe() == chaos_result.plan.describe()
        assert rerun.scenario.faults.applied == chaos_result.scenario.faults.applied

    def test_schedule_is_tracing_independent(self):
        untraced = run_chaos(hops=4, routing="aodv", seed=7, tracing=False)
        traced_plan = default_chaos_plan(5, t0=3.0)
        assert untraced.plan.describe() == traced_plan.describe()
        assert untraced.scenario.trace is None
        assert untraced.recovered


class TestScenarioIntegration:
    def test_channel_model_plugs_into_medium(self):
        channel = GilbertElliottChannel(p_gb=0.01, p_bg=0.5)
        plan = FaultPlan().with_channel(channel)
        scenario = ManetScenario(
            ManetConfig(n_nodes=3, seed=3, faults=plan)
        )
        assert scenario.medium.channel is channel

    def test_bursty_channel_still_delivers_calls(self):
        channel = GilbertElliottChannel(p_gb=0.02, p_bg=0.6, loss_bad=0.8)
        plan = FaultPlan().with_channel(channel)
        scenario = ManetScenario(
            ManetConfig(n_nodes=3, seed=3, spacing=70.0, faults=plan)
        )
        scenario.start()
        scenario.add_phone(0, "alice")
        scenario.add_phone(2, "bob")
        scenario.converge()
        record = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=3.0)
        assert record.established

    def test_analyze_recovery_counts_call_outcomes(self, chaos_result):
        records = chaos_result.scenario.call_records()
        report = analyze_recovery([], records)
        assert report.calls_placed == len(records) > 0
        assert report.calls_established >= 2
