"""Unit tests for the FaultPlan DSL: building, ordering, validation, describe()."""

import json

import pytest

from repro.errors import ConfigError
from repro.faults import (
    FaultPlan,
    GatewayDown,
    LinkPartition,
    NodeCrash,
    UniformLossChannel,
    describe_event,
)


def sample_plan() -> FaultPlan:
    return (
        FaultPlan()
        .crash(20.0, 2)
        .restart(35.0, 2)
        .partition(10.0, [0, 1], [3, 4], name="split")
        .heal(15.0, "split")
        .gateway_down(50.0, 4, graceful=False)
        .gateway_up(60.0, 4)
    )


class TestBuilder:
    def test_chaining_collects_all_events(self):
        assert len(sample_plan()) == 6

    def test_events_fire_in_time_order(self):
        times = [event.at for event in sample_plan().events]
        assert times == sorted(times)

    def test_ties_break_by_insertion_order(self):
        plan = FaultPlan().crash(5.0, 1).restart(5.0, 1).crash(5.0, 2)
        kinds = [(event.kind, getattr(event, "node", None)) for event in plan.events]
        assert kinds == [("node_crash", 1), ("node_restart", 1), ("node_crash", 2)]

    def test_partition_gets_auto_name(self):
        plan = FaultPlan().partition(1.0, [0], [1])
        (event,) = plan.events
        assert isinstance(event, LinkPartition) and event.name

    def test_with_channel_rides_along(self):
        channel = UniformLossChannel(0.1)
        plan = FaultPlan().with_channel(channel)
        assert plan.channel is channel


class TestValidate:
    def test_accepts_well_formed_plan(self):
        sample_plan().validate(n_nodes=5)

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigError):
            FaultPlan().crash(-1.0, 0).validate(n_nodes=3)

    @pytest.mark.parametrize("index", [-1, 3])
    def test_rejects_node_out_of_range(self, index):
        with pytest.raises(ConfigError, match="node"):
            FaultPlan().crash(1.0, index).validate(n_nodes=3)

    def test_rejects_partition_group_member_out_of_range(self):
        with pytest.raises(ConfigError):
            FaultPlan().partition(1.0, [0], [7]).validate(n_nodes=3)

    def test_rejects_overlapping_partition_groups(self):
        with pytest.raises(ConfigError, match="overlap"):
            FaultPlan().partition(1.0, [0, 1], [1, 2]).validate(n_nodes=3)

    def test_rejects_heal_of_unknown_partition(self):
        with pytest.raises(ConfigError, match="unknown partition"):
            FaultPlan().heal(2.0, "nope").validate(n_nodes=3)

    def test_heal_must_not_precede_its_partition(self):
        # events are validated in firing order, so a heal scheduled before
        # the partition it names is an unknown reference at that point.
        plan = FaultPlan().partition(10.0, [0], [1], name="p").heal(5.0, "p")
        with pytest.raises(ConfigError, match="unknown partition"):
            plan.validate(n_nodes=2)


class TestDescribe:
    def test_jsonl_is_stable_and_sorted(self):
        first = sample_plan().describe()
        second = sample_plan().describe()
        assert first == second
        for line in first.splitlines():
            pairs = json.loads(line, object_pairs_hook=list)
            keys = [key for key, _ in pairs]
            assert keys == sorted(keys)

    def test_describe_event_canonical_fields(self):
        event = describe_event(NodeCrash(at=3.0, node=1))
        assert event == {"kind": "node_crash", "at": 3.0, "node": 1}
        partition = describe_event(
            LinkPartition(at=1.0, group_a=(0,), group_b=(1,), name="p")
        )
        assert partition["group_a"] == [0] and partition["group_b"] == [1]

    def test_graceful_flag_round_trips(self):
        event = describe_event(GatewayDown(at=1.0, node=0, graceful=True))
        assert event["graceful"] is True
