"""SLP cache behaviour across an advertiser crash/restart (ISSUE 4).

An abrupt crash sends no withdrawal, so remote caches serve the stale
gateway entry until its lifetime runs out; after the advertiser restarts,
its proactive re-advertisement repopulates the caches.
"""

from repro.faults import FaultPlan
from repro.scenarios import ManetConfig, ManetScenario
from repro.slp.service import SERVICE_GATEWAY


def build(plan):
    return ManetScenario(
        ManetConfig(
            n_nodes=3,
            topology="chain",
            routing="aodv",
            seed=5,
            internet_gateways=1,
            faults=plan,
        )
    )


def lookup(scenario, hits, label):
    scenario.stacks[0].manet_slp.find_services(
        SERVICE_GATEWAY, callback=lambda entries: hits.append((label, len(entries)))
    )


class TestSlpAdvertiserRestart:
    def test_entry_expires_then_reappears_after_restart(self):
        # Gateway adverts carry a 60s lifetime and refresh every 30s; the
        # crash at t=20 stops the refresh, so remote caches go dry between
        # roughly t=80 and the restart at t=120.
        plan = FaultPlan().crash(20.0, 2).restart(120.0, 2)
        scenario = build(plan)
        scenario.start()
        sim = scenario.sim
        hits = []

        sim.run(10.0)
        lookup(scenario, hits, "alive")
        sim.run(25.0)  # crash fired at t=20, no withdrawal was sent
        lookup(scenario, hits, "stale-window")
        sim.run(100.0)  # the learned entry's lifetime has run out
        lookup(scenario, hits, "expired")
        sim.run(140.0)  # restarted gateway re-advertised
        lookup(scenario, hits, "recovered")
        sim.run(145.0)

        results = dict(hits)
        assert results["alive"] == 1
        # The crash was silent: the cache still answers inside the lifetime.
        assert results["stale-window"] == 1
        # After expiry the lookup misses (the network query goes unanswered).
        assert results["expired"] == 0
        assert results["recovered"] == 1
        assert len(hits) == 4
        scenario.stop()
