"""Unit tests for the pluggable channel fault models."""

import random

import pytest

from repro.faults import (
    AsymmetricLossChannel,
    GilbertElliottChannel,
    TimedGilbertElliottChannel,
    UniformLossChannel,
)


class FakeClock:
    """Stands in for the simulator: the channel only reads ``now``."""

    def __init__(self, now=0.0):
        self.now = now


def drop_sequence(channel, n=200, seed=99, link=("a", "b")):
    rng = random.Random(seed)
    return [channel.should_drop(link[0], link[1], rng) for _ in range(n)]


class TestUniformLossChannel:
    def test_rate_zero_never_drops_and_draws_nothing(self):
        channel = UniformLossChannel(0.0)
        rng = random.Random(1)
        state = rng.getstate()
        assert not any(drop_sequence(channel))
        assert random.Random(1).getstate() == state  # rate 0 short-circuits

    def test_rate_one_always_drops(self):
        assert all(drop_sequence(UniformLossChannel(1.0)))

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rejects_out_of_range(self, rate):
        with pytest.raises(ValueError):
            UniformLossChannel(rate)


class TestGilbertElliott:
    def test_same_seed_same_drop_sequence(self):
        first = drop_sequence(GilbertElliottChannel(p_gb=0.2, p_bg=0.3))
        second = drop_sequence(GilbertElliottChannel(p_gb=0.2, p_bg=0.3))
        assert first == second
        assert any(first) and not all(first)

    def test_losses_are_burstier_than_uniform(self):
        """With loss_bad=1/loss_good=0, drops come in runs, not i.i.d."""
        drops = drop_sequence(
            GilbertElliottChannel(p_gb=0.1, p_bg=0.3), n=2000
        )
        loss_rate = sum(drops) / len(drops)
        uniform = drop_sequence(UniformLossChannel(loss_rate), n=2000, seed=7)

        def mean_run(seq):
            runs, current = [], 0
            for dropped in seq:
                if dropped:
                    current += 1
                elif current:
                    runs.append(current)
                    current = 0
            if current:
                runs.append(current)
            return sum(runs) / max(1, len(runs))

        assert mean_run(drops) > 1.5 * mean_run(uniform)

    def test_per_link_state_is_independent(self):
        channel = GilbertElliottChannel(p_gb=1.0, p_bg=0.0)  # bad after 1 tx
        rng = random.Random(3)
        channel.should_drop("a", "b", rng)
        assert channel.link_state("a", "b") == "bad"
        assert channel.link_state("b", "a") == "good"
        assert channel.link_state("a", "c") == "good"

    def test_good_state_with_zero_loss_is_clean(self):
        channel = GilbertElliottChannel(p_gb=0.0, p_bg=1.0, loss_good=0.0)
        assert not any(drop_sequence(channel))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel(p_gb=1.2)
        with pytest.raises(ValueError):
            GilbertElliottChannel(loss_bad=-0.5)


class TestAsymmetricLossChannel:
    def test_directions_differ(self):
        channel = AsymmetricLossChannel(default=0.0)
        channel.set_link("a", "b", 1.0)
        rng = random.Random(5)
        assert channel.should_drop("a", "b", rng)
        assert not channel.should_drop("b", "a", rng)

    def test_rates_mapping_constructor(self):
        channel = AsymmetricLossChannel(rates={("a", "b"): 1.0}, default=0.0)
        rng = random.Random(5)
        assert channel.should_drop("a", "b", rng)
        assert not channel.should_drop("c", "d", rng)

    def test_default_applies_to_unknown_links(self):
        channel = AsymmetricLossChannel(default=1.0)
        assert all(drop_sequence(channel, link=("x", "y")))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            AsymmetricLossChannel(default=2.0)
        with pytest.raises(ValueError):
            AsymmetricLossChannel().set_link("a", "b", -1.0)


class TestStationaryLoss:
    def test_attempt_domain_formula(self):
        channel = GilbertElliottChannel(p_gb=0.1, p_bg=0.3, loss_bad=1.0, loss_good=0.0)
        assert channel.stationary_loss == pytest.approx(0.25)

    def test_attempt_domain_good_state_floor(self):
        channel = GilbertElliottChannel(p_gb=0.1, p_bg=0.3, loss_bad=1.0, loss_good=0.2)
        assert channel.stationary_loss == pytest.approx(0.25 + 0.75 * 0.2)

    def test_frozen_chain_keeps_good_state_loss(self):
        channel = GilbertElliottChannel(p_gb=0.0, p_bg=0.0, loss_good=0.05)
        assert channel.stationary_loss == pytest.approx(0.05)

    def test_time_domain_formula(self):
        channel = TimedGilbertElliottChannel(mean_good=3.0, mean_bad=1.0)
        assert channel.stationary_loss == pytest.approx(0.25)


class TestTimedGilbertElliott:
    def test_requires_a_bound_clock(self):
        channel = TimedGilbertElliottChannel()
        with pytest.raises(RuntimeError, match="bind_clock"):
            channel.should_drop("a", "b", random.Random(1))

    def test_fresh_link_starts_good(self):
        channel = TimedGilbertElliottChannel(mean_good=1e9, mean_bad=0.05)
        channel.bind_clock(FakeClock(0.0))
        assert not channel.should_drop("a", "b", random.Random(1))
        assert channel.link_state("a", "b") == "good"

    def test_sojourn_expiry_flips_the_state(self):
        channel = TimedGilbertElliottChannel(mean_good=0.5, mean_bad=1e9)
        clock = FakeClock(0.0)
        channel.bind_clock(clock)
        rng = random.Random(2)
        assert not channel.should_drop("a", "b", rng)
        clock.now = 1e6  # far past any plausible good sojourn
        assert channel.should_drop("a", "b", rng)
        assert channel.link_state("a", "b") == "bad"

    def test_state_is_a_time_process_not_an_attempt_process(self):
        """Many attempts inside one sojourn see one state — the property the
        attempt-domain chain lacks."""
        channel = TimedGilbertElliottChannel(mean_good=1e9, mean_bad=0.05)
        channel.bind_clock(FakeClock(1.0))
        rng = random.Random(3)
        drops = [channel.should_drop("a", "b", rng) for _ in range(50)]
        assert not any(drops)

    def test_fades_both_start_and_end(self):
        channel = TimedGilbertElliottChannel(mean_good=0.05, mean_bad=0.05)
        clock = FakeClock(0.0)
        channel.bind_clock(clock)
        rng = random.Random(4)
        drops = []
        for step in range(400):
            clock.now = step * 0.01
            drops.append(channel.should_drop("a", "b", rng))
        assert any(drops) and not all(drops)

    def test_per_link_state_is_independent(self):
        channel = TimedGilbertElliottChannel(mean_good=0.5, mean_bad=1e9)
        clock = FakeClock(0.0)
        channel.bind_clock(clock)
        rng = random.Random(2)
        channel.should_drop("a", "b", rng)
        clock.now = 1e6
        channel.should_drop("a", "b", rng)
        assert channel.link_state("a", "b") == "bad"
        assert channel.link_state("b", "a") == "good"

    def test_same_seed_same_drop_sequence(self):
        def sequence():
            channel = TimedGilbertElliottChannel(mean_good=0.1, mean_bad=0.05)
            clock = FakeClock(0.0)
            channel.bind_clock(clock)
            rng = random.Random(9)
            out = []
            for step in range(200):
                clock.now = step * 0.02
                out.append(channel.should_drop("a", "b", rng))
            return out

        first = sequence()
        assert first == sequence()
        assert any(first) and not all(first)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TimedGilbertElliottChannel(mean_good=0.0)
        with pytest.raises(ValueError):
            TimedGilbertElliottChannel(mean_bad=-1.0)
        with pytest.raises(ValueError):
            TimedGilbertElliottChannel(loss_bad=1.5)
