"""Unit tests for the pluggable channel fault models."""

import random

import pytest

from repro.faults import (
    AsymmetricLossChannel,
    GilbertElliottChannel,
    UniformLossChannel,
)


def drop_sequence(channel, n=200, seed=99, link=("a", "b")):
    rng = random.Random(seed)
    return [channel.should_drop(link[0], link[1], rng) for _ in range(n)]


class TestUniformLossChannel:
    def test_rate_zero_never_drops_and_draws_nothing(self):
        channel = UniformLossChannel(0.0)
        rng = random.Random(1)
        state = rng.getstate()
        assert not any(drop_sequence(channel))
        assert random.Random(1).getstate() == state  # rate 0 short-circuits

    def test_rate_one_always_drops(self):
        assert all(drop_sequence(UniformLossChannel(1.0)))

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rejects_out_of_range(self, rate):
        with pytest.raises(ValueError):
            UniformLossChannel(rate)


class TestGilbertElliott:
    def test_same_seed_same_drop_sequence(self):
        first = drop_sequence(GilbertElliottChannel(p_gb=0.2, p_bg=0.3))
        second = drop_sequence(GilbertElliottChannel(p_gb=0.2, p_bg=0.3))
        assert first == second
        assert any(first) and not all(first)

    def test_losses_are_burstier_than_uniform(self):
        """With loss_bad=1/loss_good=0, drops come in runs, not i.i.d."""
        drops = drop_sequence(
            GilbertElliottChannel(p_gb=0.1, p_bg=0.3), n=2000
        )
        loss_rate = sum(drops) / len(drops)
        uniform = drop_sequence(UniformLossChannel(loss_rate), n=2000, seed=7)

        def mean_run(seq):
            runs, current = [], 0
            for dropped in seq:
                if dropped:
                    current += 1
                elif current:
                    runs.append(current)
                    current = 0
            if current:
                runs.append(current)
            return sum(runs) / max(1, len(runs))

        assert mean_run(drops) > 1.5 * mean_run(uniform)

    def test_per_link_state_is_independent(self):
        channel = GilbertElliottChannel(p_gb=1.0, p_bg=0.0)  # bad after 1 tx
        rng = random.Random(3)
        channel.should_drop("a", "b", rng)
        assert channel.link_state("a", "b") == "bad"
        assert channel.link_state("b", "a") == "good"
        assert channel.link_state("a", "c") == "good"

    def test_good_state_with_zero_loss_is_clean(self):
        channel = GilbertElliottChannel(p_gb=0.0, p_bg=1.0, loss_good=0.0)
        assert not any(drop_sequence(channel))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel(p_gb=1.2)
        with pytest.raises(ValueError):
            GilbertElliottChannel(loss_bad=-0.5)


class TestAsymmetricLossChannel:
    def test_directions_differ(self):
        channel = AsymmetricLossChannel(default=0.0)
        channel.set_link("a", "b", 1.0)
        rng = random.Random(5)
        assert channel.should_drop("a", "b", rng)
        assert not channel.should_drop("b", "a", rng)

    def test_rates_mapping_constructor(self):
        channel = AsymmetricLossChannel(rates={("a", "b"): 1.0}, default=0.0)
        rng = random.Random(5)
        assert channel.should_drop("a", "b", rng)
        assert not channel.should_drop("c", "d", rng)

    def test_default_applies_to_unknown_links(self):
        channel = AsymmetricLossChannel(default=1.0)
        assert all(drop_sequence(channel, link=("x", "y")))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            AsymmetricLossChannel(default=2.0)
        with pytest.raises(ValueError):
            AsymmetricLossChannel().set_link("a", "b", -1.0)
