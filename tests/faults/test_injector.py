"""FaultInjector behaviour against real ManetScenario instances."""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultInjector, FaultPlan
from repro.scenarios import ManetConfig, ManetScenario


def build(n_nodes=3, plan=None, gateways=0, tracing=False, **extra):
    return ManetScenario(
        ManetConfig(
            n_nodes=n_nodes,
            topology="chain",
            routing="aodv",
            seed=5,
            internet_gateways=gateways,
            tracing=tracing,
            faults=plan,
            **extra,
        )
    )


class TestArm:
    def test_scenario_start_arms_the_injector(self):
        scenario = build(plan=FaultPlan().crash(10.0, 1))
        assert scenario.faults is not None and not scenario.faults.armed
        scenario.start()
        assert scenario.faults.armed

    def test_rejects_events_already_in_the_past(self):
        scenario = build()
        scenario.start()
        scenario.sim.run(5.0)
        injector = FaultInjector(scenario, FaultPlan().crash(2.0, 1))
        with pytest.raises(ConfigError, match="past"):
            injector.arm()

    def test_rejects_gateway_events_on_wireless_only_nodes(self):
        scenario = build()
        injector = FaultInjector(scenario, FaultPlan().gateway_down(5.0, 0))
        with pytest.raises(ConfigError, match="no Internet attachment"):
            injector.arm()

    def test_rejects_out_of_range_node(self):
        scenario = build(n_nodes=2)
        injector = FaultInjector(scenario, FaultPlan().crash(5.0, 7))
        with pytest.raises(ConfigError):
            injector.arm()


class TestNodeFaults:
    def test_crash_takes_node_down_silently(self):
        scenario = build(plan=FaultPlan().crash(2.0, 1))
        scenario.start()
        scenario.sim.run(3.0)
        node = scenario.nodes[1]
        assert not node.up
        assert not scenario.stacks[1]._started

    def test_restart_rebuilds_the_stack_and_phones(self):
        scenario = build(plan=FaultPlan().crash(2.0, 1).restart(4.0, 1))
        scenario.start()
        scenario.add_phone(1, "carol")
        old_stack = scenario.stacks[1]
        old_phone = scenario.phones["carol"]
        scenario.sim.run(6.0)
        assert scenario.nodes[1].up
        assert scenario.stacks[1] is not old_stack
        assert scenario.stacks[1]._started
        assert scenario.phones["carol"] is not old_phone
        assert old_phone in scenario._retired_phones

    def test_restarted_gateway_node_regains_wired_route(self):
        scenario = build(
            n_nodes=3, gateways=1, plan=FaultPlan().crash(2.0, 2).restart(4.0, 2)
        )
        scenario.start()
        scenario.sim.run(6.0)
        node = scenario.nodes[2]
        assert node.up and node.wired_ip is not None
        assert scenario.stacks[2].gateway is not None
        assert scenario.stacks[2].gateway.running


class TestPartitionFaults:
    def test_partition_blocks_links_and_heal_restores(self):
        plan = FaultPlan().partition(2.0, [0], [1, 2], name="split").heal(4.0, "split")
        scenario = build(plan=plan)
        scenario.start()
        a, b = scenario.nodes[0].ip, scenario.nodes[1].ip
        scenario.sim.run(3.0)
        assert scenario.medium.link_blocked(a, b)
        assert scenario.medium.partition_names == ["split"]
        scenario.sim.run(5.0)
        assert not scenario.medium.link_blocked(a, b)
        assert scenario.medium.partition_names == []


class TestGatewayFaults:
    def test_graceful_down_withdraws_advert(self):
        plan = FaultPlan().gateway_down(2.0, 2, graceful=True)
        scenario = build(gateways=1, plan=plan)
        scenario.start()
        scenario.sim.run(3.0)
        gateway = scenario.stacks[2].gateway
        assert gateway is not None and not gateway.running
        assert scenario.stats.counters["gateway.failed"] == 0

    def test_abrupt_down_counts_as_failure_and_up_recovers(self):
        plan = FaultPlan().gateway_down(2.0, 2).gateway_up(5.0, 2)
        scenario = build(gateways=1, plan=plan)
        scenario.start()
        scenario.sim.run(3.0)
        assert not scenario.stacks[2].gateway.running
        assert scenario.stats.counters["gateway.failed"] == 1
        scenario.sim.run(6.0)
        assert scenario.stacks[2].gateway.running


class TestBookkeeping:
    def test_applied_log_matches_firing_order(self):
        plan = FaultPlan().restart(4.0, 1).crash(2.0, 1)
        scenario = build(plan=plan)
        scenario.start()
        scenario.sim.run(6.0)
        applied = scenario.faults.applied
        assert [entry[1]["kind"] for entry in applied] == ["node_crash", "node_restart"]
        assert [entry[0] for entry in applied] == [2.0, 4.0]

    def test_fault_events_reach_the_trace(self):
        plan = FaultPlan().crash(2.0, 1).restart(4.0, 1)
        scenario = build(plan=plan, tracing=True)
        scenario.start()
        scenario.sim.run(6.0)
        kinds = [event.kind for event in scenario.trace if event.category == "fault"]
        assert kinds == ["fault.node_crash", "fault.node_restart"]
        crash = next(e for e in scenario.trace if e.kind == "fault.node_crash")
        assert crash.node == scenario.nodes[1].ip
        assert crash.detail["node_index"] == 1
