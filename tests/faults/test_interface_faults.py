"""Interface fault events: plan builders, validation and injection (§5k)."""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultInjector, FaultPlan
from repro.faults.plan import InterfaceDown, InterfaceUp, describe_event
from repro.scenarios import ManetConfig, ManetScenario


def build(n_nodes=3, plan=None, multihomed=(), tracing=False):
    return ManetScenario(
        ManetConfig(
            n_nodes=n_nodes,
            topology="chain",
            routing="aodv",
            seed=5,
            multihomed=multihomed,
            tracing=tracing,
            faults=plan,
        )
    )


class TestPlanBuilders:
    def test_builders_append_events(self):
        plan = FaultPlan().interface_down(4.0, 1).interface_up(8.0, 1)
        assert plan.events == (
            InterfaceDown(at=4.0, node=1, iface="wireless"),
            InterfaceUp(at=8.0, node=1, iface="wireless"),
        )

    def test_describe_round_trips(self):
        event = InterfaceDown(at=4.0, node=1, iface="wired")
        described = describe_event(event)
        assert described["kind"] == "interface_down"
        assert described["iface"] == "wired"

    def test_validate_rejects_unknown_interface(self):
        plan = FaultPlan().interface_down(4.0, 1, iface="bluetooth")
        with pytest.raises(ConfigError, match="unknown interface"):
            plan.validate(n_nodes=3)

    def test_describe_text_is_stable(self):
        plan = FaultPlan().interface_down(4.0, 0).interface_up(9.0, 0)
        assert plan.describe() == FaultPlan(plan.events).describe()


class TestInjection:
    def test_interface_down_flips_admin_state(self):
        scenario = build(plan=FaultPlan().interface_down(5.0, 1).interface_up(9.0, 1))
        scenario.start()
        scenario.sim.run(6.0)
        assert not scenario.nodes[1].interface_up("wireless")
        scenario.sim.run(10.0)
        assert scenario.nodes[1].interface_up("wireless")

    def test_wired_fault_requires_wired_interface(self):
        scenario = build()
        injector = FaultInjector(
            scenario, FaultPlan().interface_down(5.0, 0, iface="wired")
        )
        with pytest.raises(ConfigError):
            injector.arm()

    def test_wired_fault_on_multihomed_node_allowed(self):
        scenario = build(
            multihomed=(0,), plan=FaultPlan().interface_down(5.0, 0, iface="wired")
        )
        scenario.start()
        scenario.sim.run(6.0)
        assert not scenario.nodes[0].interface_up("wired")

    def test_trace_emits_fault_and_iface_events(self):
        scenario = build(plan=FaultPlan().interface_down(5.0, 1), tracing=True)
        scenario.start()
        scenario.sim.run(6.0)
        kinds = [event.kind for event in scenario.trace.events]
        assert "fault.interface_down" in kinds
        assert "iface.down" in kinds
