"""Unit tests for SIP message grammar: parsing, serialization, headers."""

import pytest

from repro.errors import SipParseError
from repro.sip import CSeq, Headers, SipRequest, SipResponse, SipUri, Via, parse_message

INVITE_WIRE = (
    b"INVITE sip:bob@voicehoc.ch SIP/2.0\r\n"
    b"Via: SIP/2.0/UDP 192.168.0.1:5070;branch=z9hG4bK-1\r\n"
    b"From: \"Alice\" <sip:alice@voicehoc.ch>;tag=a1\r\n"
    b"To: <sip:bob@voicehoc.ch>\r\n"
    b"Call-ID: cid42@192.168.0.1\r\n"
    b"CSeq: 1 INVITE\r\n"
    b"Max-Forwards: 70\r\n"
    b"Contact: <sip:alice@192.168.0.1:5070>\r\n"
    b"Content-Type: application/sdp\r\n"
    b"Content-Length: 4\r\n"
    b"\r\n"
    b"body"
)


class TestHeaders:
    def test_case_insensitive_access(self):
        headers = Headers()
        headers.add("call-id", "x")
        assert headers.get("Call-ID") == "x"
        assert headers.get("CALL-id") == "x"
        assert "call-Id" in headers

    def test_multi_value_order(self):
        headers = Headers()
        headers.add("Via", "first")
        headers.add("Via", "second")
        assert headers.get("Via") == "first"
        assert headers.get_all("Via") == ["first", "second"]

    def test_insert_first(self):
        headers = Headers()
        headers.add("Via", "old")
        headers.insert_first("Via", "new")
        assert headers.get_all("Via") == ["new", "old"]

    def test_insert_first_on_absent_header_appends(self):
        headers = Headers()
        headers.insert_first("Route", "<sip:p;lr>")
        assert headers.get("Route") == "<sip:p;lr>"

    def test_set_collapses_multiple(self):
        headers = Headers()
        headers.add("Via", "a")
        headers.add("Via", "b")
        headers.set("Via", "only")
        assert headers.get_all("Via") == ["only"]

    def test_remove_first_returns_value(self):
        headers = Headers()
        headers.add("Route", "r1")
        headers.add("Route", "r2")
        assert headers.remove_first("Route") == "r1"
        assert headers.get_all("Route") == ["r2"]

    def test_canonical_casing(self):
        headers = Headers()
        headers.add("cseq", "1 INVITE")
        assert headers.items()[0][0] == "CSeq"


class TestVia:
    def test_parse_full(self):
        via = Via.parse("SIP/2.0/UDP 192.168.0.1:5070;branch=z9hG4bK-7;rport")
        assert via.host == "192.168.0.1"
        assert via.port == 5070
        assert via.branch == "z9hG4bK-7"
        assert "rport" in via.params

    def test_default_port(self):
        assert Via.parse("SIP/2.0/UDP host.example").port == 5060

    def test_round_trip(self):
        text = "SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK-abc"
        assert str(Via.parse(text)) == text

    @pytest.mark.parametrize("bad", ["", "UDP 1.2.3.4", "HTTP/1.1/TCP x"])
    def test_invalid(self, bad):
        with pytest.raises(SipParseError):
            Via.parse(bad)


class TestCSeq:
    def test_parse(self):
        cseq = CSeq.parse("42 INVITE")
        assert cseq.number == 42 and cseq.method == "INVITE"

    def test_invalid(self):
        with pytest.raises(SipParseError):
            CSeq.parse("nope")


class TestParsing:
    def test_parse_request(self):
        message = parse_message(INVITE_WIRE)
        assert isinstance(message, SipRequest)
        assert message.method == "INVITE"
        assert message.uri.user == "bob"
        assert message.call_id == "cid42@192.168.0.1"
        assert message.cseq.number == 1
        assert message.from_.tag == "a1"
        assert message.to.tag is None
        assert message.body == b"body"

    def test_parse_response(self):
        wire = (
            b"SIP/2.0 180 Ringing\r\n"
            b"Via: SIP/2.0/UDP h:5060;branch=z9hG4bK-1\r\n"
            b"Call-ID: x\r\nCSeq: 1 INVITE\r\n\r\n"
        )
        message = parse_message(wire)
        assert isinstance(message, SipResponse)
        assert message.status == 180
        assert message.reason == "Ringing"
        assert message.is_provisional and not message.is_final

    def test_header_line_folding_uses_public_api(self):
        wire = (
            b"OPTIONS sip:h SIP/2.0\r\n"
            b"Via: SIP/2.0/UDP h:5060;branch=z9hG4bK-1\r\n"
            b"Subject: first part\r\n"
            b" second part\r\n"
            b"Call-ID: x\r\nCSeq: 1 OPTIONS\r\n\r\n"
        )
        message = parse_message(wire)
        assert message.headers.get("Subject") == "first part second part"

    def test_serialize_parse_round_trip(self):
        message = parse_message(INVITE_WIRE)
        again = parse_message(message.serialize())
        assert again.method == "INVITE"
        assert again.headers.items() == message.headers.items()
        assert again.body == message.body

    def test_content_length_updated_on_serialize(self):
        request = SipRequest("OPTIONS", "sip:h")
        request.body = b"12345"
        wire = request.serialize()
        assert b"Content-Length: 5" in wire


class TestSerializeCache:
    def test_unmodified_message_serializes_once(self):
        message = parse_message(INVITE_WIRE)
        wire = message.serialize()
        assert message.serialize() is wire  # memoized, not rebuilt

    def test_header_mutation_invalidates(self):
        message = parse_message(INVITE_WIRE)
        first = message.serialize()
        message.headers.set("Max-Forwards", "69")
        second = message.serialize()
        assert second is not first
        assert b"Max-Forwards: 69" in second
        assert message.serialize() is second

    def test_via_push_and_pop_invalidate(self):
        message = parse_message(INVITE_WIRE)
        message.serialize()
        message.headers.insert_first("Via", "SIP/2.0/UDP 192.168.0.9;branch=z9hG4bK-2")
        wire = message.serialize()
        assert wire.index(b"192.168.0.9") < wire.index(b"192.168.0.1")
        message.headers.remove_first("Via")
        assert b"192.168.0.9" not in message.serialize()

    def test_extend_last_invalidates(self):
        message = parse_message(INVITE_WIRE)
        first = message.serialize()
        version_before = message.headers.version
        message.headers.extend_last("Contact", ";expires=60")
        assert message.headers.version > version_before
        second = message.serialize()
        assert second is not first
        assert b"Contact: <sip:alice@192.168.0.1:5070> ;expires=60" in second
        assert message.serialize() is second

    def test_extend_last_unknown_header_raises(self):
        message = parse_message(INVITE_WIRE)
        with pytest.raises(KeyError):
            message.headers.extend_last("Subject", "nope")

    def test_bump_version_invalidates(self):
        message = parse_message(INVITE_WIRE)
        first = message.serialize()
        message.headers.bump_version()
        assert message.serialize() is not first

    def test_body_change_updates_content_length(self):
        request = SipRequest("OPTIONS", "sip:h")
        assert b"Content-Length: 0" in request.serialize()
        request.body = b"12345"
        assert b"Content-Length: 5" in request.serialize()

    def test_request_uri_rewrite_invalidates(self):
        request = SipRequest("INVITE", "sip:bob@voicehoc.ch")
        request.serialize()
        request.uri = SipUri.parse("sip:bob@192.168.0.7:5060")
        assert request.serialize().startswith(b"INVITE sip:bob@192.168.0.7:5060")

    def test_response_cache_round_trip(self):
        response = SipResponse(200)
        response.headers.add("Via", "SIP/2.0/UDP h;branch=z9hG4bK-1")
        wire = response.serialize()
        assert response.serialize() is wire
        parsed = parse_message(wire)
        assert parsed.status == 200

    def test_headers_version_counts_mutations(self):
        headers = Headers()
        v0 = headers.version
        headers.add("Via", "a")
        headers.set("Via", "b")
        headers.remove("Via")
        assert headers.version == v0 + 3

    @pytest.mark.parametrize(
        "bad",
        [
            b"",
            b"\r\n\r\n",
            b"INVITE sip:x\r\n\r\n",  # missing version
            b"INVITE sip:x SIP/2.0\r\nBroken Header Line\r\n\r\n",
            b"SIP/2.0 banana OK\r\n\r\n",
            b"SIP/2.0 999999 OK\r\n\r\n",
            b"invite sip:x SIP/2.0\r\n\r\n",  # lowercase method
            b"\xff\xfe INVITE",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(SipParseError):
            parse_message(bad)

    def test_transaction_key_ack_maps_to_invite(self):
        request = SipRequest("ACK", "sip:h")
        request.headers.add("Via", "SIP/2.0/UDP h;branch=z9hG4bK-9")
        request.headers.add("CSeq", "1 ACK")
        assert request.transaction_key() == ("z9hG4bK-9", "INVITE")


class TestCreateResponse:
    def make_invite(self):
        return parse_message(INVITE_WIRE)

    def test_copies_mandatory_headers(self):
        response = self.make_invite().create_response(200)
        assert response.headers.get("Via") is not None
        assert response.headers.get("From") is not None
        assert response.call_id == "cid42@192.168.0.1"
        assert response.cseq.method == "INVITE"

    def test_adds_to_tag(self):
        response = self.make_invite().create_response(200, to_tag="bt")
        assert response.to.tag == "bt"

    def test_preserves_existing_to_tag(self):
        invite = self.make_invite()
        invite.headers.set("To", "<sip:bob@voicehoc.ch>;tag=orig")
        response = invite.create_response(200, to_tag="new")
        assert response.to.tag == "orig"

    def test_dialog_forming_response_echoes_record_route(self):
        invite = self.make_invite()
        invite.headers.add("Record-Route", "<sip:p1;lr>")
        invite.headers.add("Record-Route", "<sip:p2;lr>")
        ok = invite.create_response(200, to_tag="t")
        assert ok.headers.get_all("Record-Route") == ["<sip:p1;lr>", "<sip:p2;lr>"]
        # Non-INVITE responses don't echo it.
        bye = SipRequest("BYE", "sip:h")
        bye.headers.add("CSeq", "2 BYE")
        bye.headers.add("Record-Route", "<sip:p1;lr>")
        assert bye.create_response(200).headers.get("Record-Route") is None

    def test_default_reason_phrases(self):
        assert self.make_invite().create_response(404).reason == "Not Found"
        assert self.make_invite().create_response(486).reason == "Busy Here"


class TestRetryAfter:
    """Retry-After accessors (§5f): tolerant reads, clamped writes."""

    @pytest.mark.parametrize(
        ("raw", "expected"),
        [
            (None, None),  # header absent entirely
            ("5", 5),
            ("0", 0),
            ("120", 120),
            ("  18  ", 18),
            ("5;duration=30", 5),
            ("3 (call back later)", 3),
            ("7 (be patient);duration=60", 7),
            ("", None),
            ("soon", None),
            ("-4", None),  # negative delta-seconds is not a usable delay
            ("5.5", None),
            ("(only a comment)", None),
            (";duration=30", None),
        ],
    )
    def test_read_is_tolerant(self, raw, expected):
        response = SipResponse(503)
        if raw is not None:
            response.headers.set("Retry-After", raw)
        assert response.retry_after == expected

    @pytest.mark.parametrize(
        ("seconds", "wire"),
        [(5, "5"), (0, "0"), (-3, "0"), (7200, "7200")],
    )
    def test_write_clamps_and_round_trips(self, seconds, wire):
        response = SipResponse(503, "Service Unavailable")
        response.headers.add("Via", "SIP/2.0/UDP h;branch=z9hG4bK-ra")
        response.set_retry_after(seconds)
        assert response.headers.get("Retry-After") == wire
        reparsed = parse_message(response.serialize())
        assert reparsed.retry_after == int(wire)

    def test_requests_read_retry_after_too(self):
        request = parse_message(INVITE_WIRE)
        assert request.retry_after is None
        request.headers.set("Retry-After", "11")
        assert parse_message(request.serialize()).retry_after == 11
