"""Re-INVITE glare handling (RFC 3261 §14): 491 + role-based retry timers.

Before the fix, a UAS that had its own re-INVITE in flight would happily
process the peer's crossing re-INVITE — both sides would apply each
other's offers as if they were answers, desynchronizing the dialogs.
Now the crossing request gets 491 Request Pending and the loser retries
after the §14.1 timer for its role (Call-ID owner 2.1–4.0 s, non-owner
0–2.0 s), so both updates eventually land.
"""

import pytest

from repro.sip import CallState, UserAgent
from repro.sip.sdp import SessionDescription
from tests.conftest import make_chain


@pytest.fixture
def established_pair(sim, medium):
    a, b = make_chain(sim, medium, 2, static_routes=True)
    alice = UserAgent(a, "sip:alice@voicehoc.ch", port=5070)
    bob = UserAgent(b, "sip:bob@voicehoc.ch", port=5070)

    def auto_answer(call):
        call.ring()
        sim.schedule(0.2, call.answer)

    bob.on_invite = auto_answer
    offer = SessionDescription.offer(a.ip, 16384)
    out_call = alice.call(f"sip:bob@{b.ip}:5070", sdp=offer)
    sim.run(3.0)
    assert out_call.state is CallState.ESTABLISHED
    in_call = bob.active_calls[0]
    return a, b, alice, bob, out_call, in_call


class TestReinviteGlare:
    def test_crossing_reinvites_both_eventually_succeed(self, sim, established_pair):
        a, b, alice, bob, out_call, in_call = established_pair
        results_a, results_b = [], []
        # Both ends fire a re-INVITE at the same sim instant: glare.
        sdp_a = SessionDescription.offer(a.ip, 16390)
        sdp_b = SessionDescription.offer(b.ip, 16392)
        sim.schedule(1.0, out_call.update_media, sdp_a, results_a.append)
        sim.schedule(1.0, in_call.update_media, sdp_b, results_b.append)
        sim.run(20.0)
        assert results_a == [True]
        assert results_b == [True]
        # At least one side answered 491 and the loser retried.
        stats = a.stats
        assert stats.count("sip.reinvite_glare_491") >= 1
        assert stats.count("sip.reinvite_glare_retry") >= 1
        # Both dialogs converged on the peer's refreshed media address.
        assert out_call.remote_sdp is not None
        assert in_call.remote_sdp is not None

    def test_owner_retry_waits_longer_than_non_owner(self, sim, established_pair):
        a, b, alice, bob, out_call, in_call = established_pair
        # RFC 3261 §14.1: the Call-ID owner backs off 2.1-4.0 s, the
        # non-owner 0-2.0 s — both in 10 ms multiples from the UA's
        # private glare RNG (never the shared scenario stream).
        assert out_call.is_call_id_owner
        assert not in_call.is_call_id_owner
        for _ in range(50):
            owner_delay = alice._glare_delay(True)
            other_delay = alice._glare_delay(False)
            assert 2.1 <= owner_delay <= 4.0
            assert 0.0 <= other_delay <= 2.0
            assert round(owner_delay * 100) == pytest.approx(owner_delay * 100)

    def test_pending_reinvite_gets_491(self, sim, established_pair):
        a, b, alice, bob, out_call, in_call = established_pair
        # Stall bob's answer path by firing both updates concurrently and
        # sampling the 491 counter before any retry can complete.
        sdp_a = SessionDescription.offer(a.ip, 16390)
        sdp_b = SessionDescription.offer(b.ip, 16392)
        sim.schedule(1.0, out_call.update_media, sdp_a)
        sim.schedule(1.0, in_call.update_media, sdp_b)
        sim.run(sim.now + 1.05)
        assert a.stats.count("sip.reinvite_glare_491") >= 1
