"""Unit tests for the SIP transaction layer (RFC 3261 section 17)."""

import pytest

from repro.sip import (
    Headers,
    SipRequest,
    SipTransport,
    TransactionLayer,
    parse_message,
)
from repro.sip.transaction import T1, T2, TIMER_B, TIMER_F
from tests.conftest import make_chain


def make_request(method, target_host):
    headers = Headers()
    headers.add("From", "<sip:alice@voicehoc.ch>;tag=a")
    headers.add("To", "<sip:bob@voicehoc.ch>")
    headers.add("Call-ID", "cid-txn-test")
    headers.add("CSeq", f"1 {method}")
    headers.add("Max-Forwards", "70")
    return SipRequest(method, f"sip:bob@{target_host}", headers=headers)


@pytest.fixture
def pair(sim, medium):
    """Two adjacent nodes with SIP transports and transaction layers."""
    a, b = make_chain(sim, medium, 2, static_routes=True)
    ta = SipTransport(a, 5060)
    tb = SipTransport(b, 5060)
    la = TransactionLayer(ta, sim)
    lb = TransactionLayer(tb, sim)
    return a, b, la, lb


class TestClientNonInvite:
    def test_request_retransmitted_until_response(self, sim, medium):
        # Count raw datagrams on the wire: the peer has no SIP stack at all.
        a, b = make_chain(sim, medium, 2, static_routes=True)
        ta = SipTransport(a, 5060)
        la = TransactionLayer(ta, sim)
        datagrams = []
        b.bind(5060, lambda data, src, sport: datagrams.append(sim.now))
        la.send_request(make_request("OPTIONS", b.ip), (b.ip, 5060), lambda r: None)
        sim.run(T1 * 3.5)
        # initial + retransmits at T1, 2*T1 (server never answers)
        assert len(datagrams) >= 3

    def test_timeout_fires_timer_f(self, sim, pair):
        a, b, la, lb = pair
        timeouts = []
        lb.on_request = lambda req, txn, src: None  # never answer
        la.send_request(
            make_request("OPTIONS", b.ip), (b.ip, 5060),
            lambda r: None, on_timeout=lambda: timeouts.append(sim.now),
        )
        sim.run(TIMER_F + 5.0)
        assert len(timeouts) == 1

    def test_final_response_stops_retransmission(self, sim, pair):
        a, b, la, lb = pair
        received = []
        responses = []

        def on_request(request, txn, source):
            received.append(sim.now)
            txn.send_response(request.create_response(200))

        lb.on_request = on_request
        la.send_request(
            make_request("OPTIONS", b.ip), (b.ip, 5060), responses.append
        )
        sim.run(TIMER_F + 5.0)
        assert len(received) == 1
        assert [r.status for r in responses] == [200]

    def test_provisional_then_final(self, sim, pair):
        a, b, la, lb = pair
        responses = []

        def on_request(request, txn, source):
            txn.send_response(request.create_response(100))
            sim.schedule(0.5, txn.send_response, request.create_response(404))

        lb.on_request = on_request
        la.send_request(make_request("OPTIONS", b.ip), (b.ip, 5060), responses.append)
        sim.run(10.0)
        statuses = [r.status for r in responses]
        # Provisionals may be passed up more than once (retransmissions);
        # the final response is delivered exactly once.
        assert statuses[0] == 100
        assert statuses.count(404) == 1
        assert statuses[-1] == 404


class TestClientInvite:
    def test_2xx_passed_up_and_transaction_ends(self, sim, pair):
        a, b, la, lb = pair
        responses = []

        def on_request(request, txn, source):
            txn.send_response(request.create_response(200, to_tag="bt"))

        lb.on_request = on_request
        la.send_request(make_request("INVITE", b.ip), (b.ip, 5060), responses.append)
        sim.run(2.0)
        assert [r.status for r in responses] == [200]
        assert la.active_transactions == 0

    def test_non_2xx_generates_ack(self, sim, pair):
        a, b, la, lb = pair
        methods = []

        def on_request(request, txn, source):
            methods.append(request.method)
            if request.method == "INVITE" and txn is not None:
                txn.send_response(request.create_response(486, to_tag="bt"))

        lb.on_request = on_request
        la.send_request(make_request("INVITE", b.ip), (b.ip, 5060), lambda r: None)
        sim.run(5.0)
        # The ACK for a non-2xx goes to the same server transaction, which
        # absorbs it — the TU sees only the INVITE.
        assert methods == ["INVITE"]

    def test_invite_timeout_timer_b(self, sim, pair):
        a, b, la, lb = pair
        timeouts = []
        lb.on_request = lambda req, txn, src: None
        la.send_request(
            make_request("INVITE", b.ip), (b.ip, 5060),
            lambda r: None, on_timeout=lambda: timeouts.append(sim.now),
        )
        sim.run(TIMER_B + 10.0)
        assert len(timeouts) == 1
        assert timeouts[0] >= TIMER_B


class TestServer:
    def test_retransmission_absorbed_with_response_resend(self, sim, pair):
        a, b, la, lb = pair
        tu_invocations = []
        client_responses = []

        def on_request(request, txn, source):
            tu_invocations.append(request.method)
            txn.send_response(request.create_response(486, to_tag="bt"))

        lb.on_request = on_request
        # Send the same INVITE twice, bypassing the client txn machinery.
        request = make_request("INVITE", b.ip)
        la.send_request(request, (b.ip, 5060), client_responses.append)
        raw = request.serialize()
        sim.schedule(0.05, a.send_udp, b.ip, 5060, 5060, raw)
        sim.run(3.0)
        assert tu_invocations == ["INVITE"]  # TU sees the request once

    def test_ack_for_2xx_reaches_tu(self, sim, pair):
        a, b, la, lb = pair
        seen = []

        def on_request(request, txn, source):
            seen.append((request.method, txn is None))
            if request.method == "INVITE":
                txn.send_response(request.create_response(200, to_tag="bt"))

        lb.on_request = on_request

        def on_response(response):
            if response.status == 200:
                ack = make_request("ACK", b.ip)
                ack.headers.add("Via", "SIP/2.0/UDP %s:5060;branch=z9hG4bK-ackbranch" % a.ip)
                ack.headers.set("CSeq", "1 ACK")
                la.send_stateless(ack, (b.ip, 5060))

        la.send_request(make_request("INVITE", b.ip), (b.ip, 5060), on_response)
        sim.run(3.0)
        assert ("INVITE", False) in seen
        assert ("ACK", True) in seen  # 2xx ACK is its own "transaction", txn=None


class TestTimerHygiene:
    """Regression tests for retransmission-timer leaks (ISSUE 4).

    The pre-fix layer never cancelled Timer A on an INVITE provisional and
    stacked a second Timer E chain on a non-INVITE provisional, and dead
    EventHandles accumulated in ``_timers`` until terminate().
    """

    def test_invite_provisional_cancels_timer_a(self, sim, pair):
        a, b, la, lb = pair

        def on_request(request, txn, source):
            txn.send_response(request.create_response(180))

        lb.on_request = on_request
        txn = la.send_request(
            make_request("INVITE", b.ip), (b.ip, 5060), lambda r: None
        )
        sim.run(1.0)
        assert txn.state.value == "proceeding"
        # RFC 3261 17.1.1.2: the INVITE reached the server, so the
        # retransmission timer must be cancelled, not left to spin.
        assert txn._retrans_timer is None

    def test_non_invite_provisional_keeps_single_retransmit_chain(self, sim, medium):
        # Raw peer: answer the first datagram with a 100 Trying, then go
        # silent. The client must retransmit on exactly one Timer E chain
        # (every T2) — pre-fix the TRYING-era chain kept running alongside
        # the PROCEEDING one, roughly doubling the datagram count.
        a, b = make_chain(sim, medium, 2, static_routes=True)
        ta = SipTransport(a, 5060)
        la = TransactionLayer(ta, sim)
        datagrams = []

        def wire(data, src, sport):
            datagrams.append(sim.now)
            if len(datagrams) == 1:
                request = parse_message(data)
                response = request.create_response(100)
                b.send_udp(a.ip, 5060, 5060, response.serialize())

        b.bind(5060, wire)
        la.send_request(make_request("OPTIONS", b.ip), (b.ip, 5060), lambda r: None)
        sim.run(TIMER_F - 2.0)
        # initial transmit + one retransmit every T2 until Timer F
        expected = 1 + int((TIMER_F - 2.0) / T2)
        assert len(datagrams) <= expected + 1

    def test_dead_timer_handles_are_pruned(self, sim, medium):
        # Black-hole peer: the request retransmits until Timer F, and each
        # reschedule must not leave the fired handle behind in _timers.
        a, b = make_chain(sim, medium, 2, static_routes=True)
        ta = SipTransport(a, 5060)
        la = TransactionLayer(ta, sim)
        txn = la.send_request(
            make_request("OPTIONS", b.ip), (b.ip, 5060), lambda r: None
        )
        sim.run(TIMER_F - 2.0)
        # pending: Timer F + the live retransmit timer (+ one just-appended)
        assert len(txn._timers) <= 3


class TestMatching:
    def test_stray_response_goes_to_fallback(self, sim, pair):
        a, b, la, lb = pair
        strays = []
        lb.on_stray_response = strays.append
        response = make_request("OPTIONS", b.ip).create_response(200)
        response.headers.add("Via", f"SIP/2.0/UDP {b.ip}:5060;branch=z9hG4bK-unknown")
        a.send_udp(b.ip, 5060, 5060, response.serialize())
        sim.run(1.0)
        assert len(strays) == 1

    def test_fresh_via_pushed_per_hop(self, sim, pair):
        a, b, la, lb = pair
        seen_vias = []
        lb.on_request = lambda req, txn, src: seen_vias.append(len(req.vias))
        request = make_request("OPTIONS", b.ip)
        request.headers.add("Via", "SIP/2.0/UDP upstream:5070;branch=z9hG4bK-up")
        la.send_request(request, (b.ip, 5060), lambda r: None)
        sim.run(1.0)
        assert seen_vias[0] == 2  # upstream Via + our own on top
