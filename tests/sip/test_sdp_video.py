"""Unit tests for multi-stream (audio+video) SDP offer/answer."""

import pytest

from repro.sip import SessionDescription, parse_sdp


class TestVideoOffer:
    def test_offer_with_video(self):
        offer = SessionDescription.offer("10.0.0.1", 16384, video_port=16386)
        assert offer.audio is not None and offer.audio.port == 16384
        assert offer.video is not None and offer.video.port == 16386
        assert offer.video.payload_types == [34]
        assert offer.video_endpoint == ("10.0.0.1", 16386)

    def test_offer_without_video(self):
        offer = SessionDescription.offer("10.0.0.1", 16384)
        assert offer.video is None
        assert offer.video_endpoint is None

    def test_video_rtpmap_present(self):
        offer = SessionDescription.offer("10.0.0.1", 16384, video_port=16386)
        assert offer.video.rtpmaps()[34] == "H263/90000"

    def test_round_trip(self):
        offer = SessionDescription.offer("10.0.0.1", 16384, video_port=16386)
        parsed = parse_sdp(offer.serialize())
        assert parsed.audio.port == 16384
        assert parsed.video.port == 16386


class TestVideoAnswer:
    def test_answer_accepts_video(self):
        offer = SessionDescription.offer("10.0.0.1", 16384, video_port=16386)
        answer = offer.answer("10.0.0.2", 20000, video_port=20002)
        assert answer.audio.port == 20000
        assert answer.video.port == 20002
        assert len(answer.media) == 2

    def test_answer_declines_video_with_port_zero(self):
        """RFC 3264: every offered m-line appears in the answer; port 0
        marks a rejected stream."""
        offer = SessionDescription.offer("10.0.0.1", 16384, video_port=16386)
        answer = offer.answer("10.0.0.2", 20000)  # no video_port
        assert answer.video is None  # .video skips port-0 streams
        assert len(answer.media) == 2
        video_line = answer.media[1]
        assert video_line.media == "video" and video_line.port == 0

    def test_answer_preserves_mline_order(self):
        offer = SessionDescription.offer("10.0.0.1", 16384, video_port=16386)
        answer = offer.answer("10.0.0.2", 20000, video_port=20002)
        assert [m.media for m in answer.media] == [m.media for m in offer.media]

    def test_audio_only_offer_ignores_video_port(self):
        offer = SessionDescription.offer("10.0.0.1", 16384)
        answer = offer.answer("10.0.0.2", 20000, video_port=20002)
        assert len(answer.media) == 1

    def test_unknown_stream_kind_rejected_with_port_zero(self):
        text = (
            "v=0\r\no=- 1 1 IN IP4 10.0.0.1\r\nc=IN IP4 10.0.0.1\r\n"
            "m=audio 16384 RTP/AVP 0\r\n"
            "m=application 5000 RTP/AVP 96\r\n"
        )
        offer = parse_sdp(text.encode())
        answer = offer.answer("10.0.0.2", 20000)
        assert answer.media[1].port == 0
