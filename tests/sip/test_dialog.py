"""Unit tests for SIP dialog state."""

import pytest

from repro.errors import SipDialogError
from repro.sip import Dialog, Headers, SipRequest, SipUri


def make_invite(record_routes=()):
    headers = Headers()
    headers.add("From", '"Alice" <sip:alice@voicehoc.ch>;tag=atag')
    headers.add("To", "<sip:bob@voicehoc.ch>")
    headers.add("Call-ID", "cid-1")
    headers.add("CSeq", "1 INVITE")
    headers.add("Contact", "<sip:alice@192.168.0.1:5070>")
    for rr in record_routes:
        headers.add("Record-Route", rr)
    return SipRequest("INVITE", "sip:bob@voicehoc.ch", headers=headers)


def make_200(invite, contact="<sip:bob@192.168.0.5:5070>"):
    response = invite.create_response(200, to_tag="btag")
    response.headers.add("Contact", contact)
    return response


class TestDialogCreation:
    def test_uac_dialog_from_response(self):
        invite = make_invite()
        dialog = Dialog.from_response(invite, make_200(invite))
        assert dialog.local_tag == "atag"
        assert dialog.remote_tag == "btag"
        assert dialog.call_id == "cid-1"
        assert dialog.remote_target.host == "192.168.0.5"
        assert dialog.local_seq == 1

    def test_uas_dialog_from_request(self):
        invite = make_invite()
        dialog = Dialog.from_request(invite, "btag", SipUri.parse("sip:bob@192.168.0.5:5070"))
        assert dialog.local_tag == "btag"
        assert dialog.remote_tag == "atag"
        assert dialog.remote_target.host == "192.168.0.1"
        assert dialog.remote_seq == 1

    def test_uac_route_set_reversed(self):
        invite = make_invite(record_routes=["<sip:p1:5060;lr>", "<sip:p2:5060;lr>"])
        dialog = Dialog.from_response(invite, make_200(invite))
        assert [u.host for u in dialog.route_set] == ["p2", "p1"]

    def test_uas_route_set_in_order(self):
        invite = make_invite(record_routes=["<sip:p1:5060;lr>", "<sip:p2:5060;lr>"])
        dialog = Dialog.from_request(invite, "btag", SipUri.parse("sip:b@h"))
        assert [u.host for u in dialog.route_set] == ["p1", "p2"]

    def test_missing_tags_rejected(self):
        invite = make_invite()
        bare = invite.create_response(200)  # no to tag
        with pytest.raises(SipDialogError):
            Dialog.from_response(invite, bare)


class TestInDialogRequests:
    def make_dialog(self, record_routes=()):
        invite = make_invite(record_routes=record_routes)
        return Dialog.from_response(invite, make_200(invite))

    def test_bye_structure(self):
        dialog = self.make_dialog()
        bye = dialog.create_request("BYE")
        assert bye.method == "BYE"
        assert bye.cseq.number == 2  # INVITE was 1
        assert bye.call_id == "cid-1"
        assert bye.from_.tag == "atag"
        assert bye.to.tag == "btag"
        assert bye.uri.host == "192.168.0.5"

    def test_cseq_increments(self):
        dialog = self.make_dialog()
        first = dialog.create_request("BYE")
        second = dialog.create_request("INFO")
        assert second.cseq.number == first.cseq.number + 1

    def test_explicit_cseq_for_ack(self):
        dialog = self.make_dialog()
        ack = dialog.create_request("ACK", cseq_number=1)
        assert ack.cseq.number == 1
        assert dialog.local_seq == 1  # not bumped

    def test_route_headers_copied(self):
        dialog = self.make_dialog(record_routes=["<sip:p1:5060;lr>", "<sip:p2:5060;lr>"])
        bye = dialog.create_request("BYE")
        assert [r.uri.host for r in bye.routes()] == ["p2", "p1"]

    def test_next_hop_prefers_route_set(self):
        dialog = self.make_dialog(record_routes=["<sip:p1:5080;lr>"])
        assert dialog.next_hop() == ("p1", 5080)

    def test_next_hop_falls_back_to_remote_target(self):
        dialog = self.make_dialog()
        assert dialog.next_hop() == ("192.168.0.5", 5070)


class TestDialogMatching:
    def test_matches_in_dialog_request(self):
        invite = make_invite()
        uas = Dialog.from_request(invite, "btag", SipUri.parse("sip:b@h"))
        bye = SipRequest("BYE", "sip:bob@h")
        bye.headers.add("From", "<sip:alice@voicehoc.ch>;tag=atag")
        bye.headers.add("To", "<sip:bob@voicehoc.ch>;tag=btag")
        bye.headers.add("Call-ID", "cid-1")
        assert uas.matches_request(bye)

    def test_wrong_call_id_rejected(self):
        invite = make_invite()
        uas = Dialog.from_request(invite, "btag", SipUri.parse("sip:b@h"))
        bye = SipRequest("BYE", "sip:bob@h")
        bye.headers.add("From", "<sip:alice@voicehoc.ch>;tag=atag")
        bye.headers.add("To", "<sip:bob@voicehoc.ch>;tag=btag")
        bye.headers.add("Call-ID", "other")
        assert not uas.matches_request(bye)
