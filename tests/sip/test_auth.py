"""Unit tests for SIP digest authentication."""

import pytest

from repro.sip.auth import (
    Credentials,
    DigestAuthenticator,
    digest_response,
    make_authorization,
    make_challenge,
    parse_auth_params,
)


class TestDigestMath:
    def test_rfc2617_worked_example_shape(self):
        # Deterministic: same inputs, same response; different password differs.
        a = digest_response("alice", "r", "pw", "REGISTER", "sip:h", "n1")
        b = digest_response("alice", "r", "pw", "REGISTER", "sip:h", "n1")
        c = digest_response("alice", "r", "other", "REGISTER", "sip:h", "n1")
        assert a == b
        assert a != c
        assert len(a) == 32 and all(ch in "0123456789abcdef" for ch in a)

    def test_response_binds_method_and_uri(self):
        base = digest_response("u", "r", "p", "REGISTER", "sip:h", "n")
        assert digest_response("u", "r", "p", "INVITE", "sip:h", "n") != base
        assert digest_response("u", "r", "p", "REGISTER", "sip:other", "n") != base


class TestHeaderCodec:
    def test_challenge_round_trip(self):
        params = parse_auth_params(make_challenge("siphoc.ch", "n42"))
        assert params["realm"] == "siphoc.ch"
        assert params["nonce"] == "n42"
        assert params["algorithm"] == "MD5"

    def test_authorization_round_trip(self):
        value = make_authorization("alice", "r", "n1", "sip:h", "resp")
        params = parse_auth_params(value)
        assert params["username"] == "alice"
        assert params["response"] == "resp"
        assert params["uri"] == "sip:h"

    def test_quoted_commas_survive(self):
        params = parse_auth_params('Digest realm="a,b", nonce="n"')
        assert params["realm"] == "a,b"

    def test_garbage_tolerated(self):
        assert parse_auth_params("Digest ===,,,") == {}


class TestCredentials:
    def test_answers_challenge(self):
        creds = Credentials("alice", "pw")
        challenge = make_challenge("siphoc.ch", "n7")
        value = creds.authorization_for(challenge, "REGISTER", "sip:siphoc.ch")
        params = parse_auth_params(value)
        assert params["response"] == digest_response(
            "alice", "siphoc.ch", "pw", "REGISTER", "sip:siphoc.ch", "n7"
        )

    def test_unusable_challenge_returns_none(self):
        creds = Credentials("alice", "pw")
        assert creds.authorization_for("Digest realm=only", "REGISTER", "sip:h") is None


class TestAuthenticator:
    def test_accepts_valid_response(self):
        auth = DigestAuthenticator("siphoc.ch")
        auth.add_user("alice", "pw")
        challenge = auth.challenge(now=0.0)
        creds = Credentials("alice", "pw")
        value = creds.authorization_for(challenge, "REGISTER", "sip:siphoc.ch")
        assert auth.verify(value, "REGISTER", now=1.0)

    def test_rejects_wrong_password(self):
        auth = DigestAuthenticator("siphoc.ch")
        auth.add_user("alice", "pw")
        challenge = auth.challenge(now=0.0)
        value = Credentials("alice", "WRONG").authorization_for(
            challenge, "REGISTER", "sip:siphoc.ch"
        )
        assert not auth.verify(value, "REGISTER", now=1.0)

    def test_rejects_unknown_user(self):
        auth = DigestAuthenticator("siphoc.ch")
        challenge = auth.challenge(now=0.0)
        value = Credentials("mallory", "x").authorization_for(
            challenge, "REGISTER", "sip:siphoc.ch"
        )
        assert not auth.verify(value, "REGISTER", now=1.0)

    def test_rejects_expired_nonce(self):
        auth = DigestAuthenticator("siphoc.ch")
        auth.add_user("alice", "pw")
        challenge = auth.challenge(now=0.0)
        value = Credentials("alice", "pw").authorization_for(
            challenge, "REGISTER", "sip:siphoc.ch"
        )
        assert not auth.verify(value, "REGISTER", now=auth.NONCE_LIFETIME + 1.0)

    def test_rejects_forged_nonce(self):
        auth = DigestAuthenticator("siphoc.ch")
        auth.add_user("alice", "pw")
        value = make_authorization(
            "alice", "siphoc.ch", "made-up-nonce", "sip:h",
            digest_response("alice", "siphoc.ch", "pw", "REGISTER", "sip:h", "made-up-nonce"),
        )
        assert not auth.verify(value, "REGISTER", now=1.0)

    def test_rejects_method_mismatch(self):
        auth = DigestAuthenticator("siphoc.ch")
        auth.add_user("alice", "pw")
        challenge = auth.challenge(now=0.0)
        value = Credentials("alice", "pw").authorization_for(
            challenge, "REGISTER", "sip:siphoc.ch"
        )
        assert not auth.verify(value, "INVITE", now=1.0)
