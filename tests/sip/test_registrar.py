"""Unit tests for the registrar and location service."""

from repro.sip import Headers, LocationService, Registrar, SipRequest, SipUri


def make_register(aor="sip:alice@voicehoc.ch", contact="<sip:alice@10.0.0.1:5070>", expires=None):
    headers = Headers()
    headers.add("From", f"<{aor}>;tag=t")
    headers.add("To", f"<{aor}>")
    headers.add("Call-ID", "reg-1")
    headers.add("CSeq", "1 REGISTER")
    if contact is not None:
        headers.add("Contact", contact)
    if expires is not None:
        headers.add("Expires", str(expires))
    return SipRequest("REGISTER", "sip:voicehoc.ch", headers=headers)


class TestLocationService:
    def test_register_and_lookup(self):
        location = LocationService()
        location.register("sip:a@h", SipUri.parse("sip:a@10.0.0.1:5070"), 60, now=0.0)
        assert [c.host for c in location.lookup("sip:a@h", now=30.0)] == ["10.0.0.1"]

    def test_expiry(self):
        location = LocationService()
        location.register("sip:a@h", SipUri.parse("sip:a@10.0.0.1"), 60, now=0.0)
        assert location.lookup("sip:a@h", now=61.0) == []

    def test_same_contact_refreshes_not_duplicates(self):
        location = LocationService()
        contact = SipUri.parse("sip:a@10.0.0.1:5070")
        location.register("sip:a@h", contact, 60, now=0.0)
        location.register("sip:a@h", contact, 60, now=10.0)
        assert len(location.lookup("sip:a@h", now=20.0)) == 1

    def test_multiple_contacts(self):
        location = LocationService()
        location.register("sip:a@h", SipUri.parse("sip:a@10.0.0.1"), 60, now=0.0)
        location.register("sip:a@h", SipUri.parse("sip:a@10.0.0.2"), 60, now=0.0)
        assert len(location.lookup("sip:a@h", now=1.0)) == 2

    def test_remove_specific_contact(self):
        location = LocationService()
        c1 = SipUri.parse("sip:a@10.0.0.1")
        c2 = SipUri.parse("sip:a@10.0.0.2")
        location.register("sip:a@h", c1, 60, now=0.0)
        location.register("sip:a@h", c2, 60, now=0.0)
        location.remove("sip:a@h", c1)
        assert [c.host for c in location.lookup("sip:a@h", now=1.0)] == ["10.0.0.2"]

    def test_bindings_snapshot_filters_expired(self):
        location = LocationService()
        location.register("sip:a@h", SipUri.parse("sip:a@10.0.0.1"), 10, now=0.0)
        location.register("sip:b@h", SipUri.parse("sip:b@10.0.0.2"), 100, now=0.0)
        snapshot = location.bindings(now=50.0)
        assert list(snapshot) == ["sip:b@h"]


class _FakeTxn:
    def __init__(self):
        self.responses = []

    def send_response(self, response):
        self.responses.append(response)


class TestRegistrar:
    def test_successful_registration(self):
        registrar = Registrar(LocationService())
        txn = _FakeTxn()
        registrar.process(make_register(expires=120), txn, now=0.0)
        assert txn.responses[0].status == 200
        assert "expires=120" in txn.responses[0].headers.get("Contact")
        assert registrar.location.lookup("sip:alice@voicehoc.ch", now=1.0)

    def test_deregistration_with_expires_zero(self):
        registrar = Registrar(LocationService())
        registrar.process(make_register(expires=120), _FakeTxn(), now=0.0)
        registrar.process(make_register(expires=0), _FakeTxn(), now=1.0)
        assert registrar.location.lookup("sip:alice@voicehoc.ch", now=2.0) == []

    def test_wildcard_deregistration(self):
        registrar = Registrar(LocationService())
        registrar.process(make_register(expires=120), _FakeTxn(), now=0.0)
        registrar.process(make_register(contact="*", expires=0), _FakeTxn(), now=1.0)
        assert registrar.location.lookup("sip:alice@voicehoc.ch", now=2.0) == []

    def test_malformed_expires_rejected(self):
        registrar = Registrar(LocationService())
        txn = _FakeTxn()
        registrar.process(make_register(expires="soon"), txn, now=0.0)
        assert txn.responses[0].status == 400

    def test_register_without_to_rejected(self):
        registrar = Registrar(LocationService())
        request = SipRequest("REGISTER", "sip:h")
        txn = _FakeTxn()
        registrar.process(request, txn, now=0.0)
        assert txn.responses[0].status == 400

    def test_query_registration_without_contact(self):
        registrar = Registrar(LocationService())
        registrar.process(make_register(expires=120), _FakeTxn(), now=0.0)
        txn = _FakeTxn()
        registrar.process(make_register(contact=None), txn, now=1.0)
        assert txn.responses[0].status == 200
        assert txn.responses[0].headers.get("Contact") is not None
