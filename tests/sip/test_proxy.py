"""Behavioural tests for the generic stateful proxy core."""

import pytest

from repro.sip import CallState, ProxyCore, SipTransport, UserAgent
from tests.conftest import make_chain


@pytest.fixture
def triangle(sim, medium):
    """alice -- proxy -- bob, all in radio range with static routes."""
    nodes = make_chain(sim, medium, 3, spacing=50.0, static_routes=True)
    a, p, b = nodes
    alice = UserAgent(a, "sip:alice@voicehoc.ch", port=5070, outbound_proxy=(p.ip, 5060))
    bob = UserAgent(b, "sip:bob@voicehoc.ch", port=5070)
    proxy = ProxyCore(p, port=5060)
    proxy.route_fn = lambda ctx: ctx.forward((b.ip, 5070))
    return a, p, b, alice, bob, proxy


def auto_answer(sim):
    def handler(call):
        call.ring()
        sim.schedule(0.2, call.answer)

    return handler


class TestForwarding:
    def test_call_through_proxy(self, sim, triangle):
        a, p, b, alice, bob, proxy = triangle
        bob.on_invite = auto_answer(sim)
        states = []
        call = alice.call("sip:bob@voicehoc.ch", on_state=lambda c: states.append(c.state))
        sim.run(3.0)
        assert states[-1] == CallState.ESTABLISHED
        # Dialog learned the proxy's Record-Route.
        assert [u.host for u in call.dialog.route_set] == [p.ip]

    def test_bye_traverses_record_route(self, sim, triangle):
        a, p, b, alice, bob, proxy = triangle
        bob.on_invite = auto_answer(sim)
        states = []
        call = alice.call("sip:bob@voicehoc.ch", on_state=lambda c: states.append(c.state))
        sim.run(3.0)
        handled_before = proxy.requests_processed
        call.hangup()
        sim.run(6.0)
        assert states[-1] == CallState.TERMINATED
        assert proxy.requests_processed > handled_before  # BYE went through us
        assert not bob.active_calls

    def test_route_fn_respond(self, sim, triangle):
        a, p, b, alice, bob, proxy = triangle
        proxy.route_fn = lambda ctx: ctx.respond(404)
        call = alice.call("sip:nobody@voicehoc.ch")
        sim.run(3.0)
        assert call.state is CallState.FAILED
        assert call.failure_status == 404

    def test_no_route_fn_means_404(self, sim, triangle):
        a, p, b, alice, bob, proxy = triangle
        proxy.route_fn = None
        call = alice.call("sip:bob@voicehoc.ch")
        sim.run(3.0)
        assert call.failure_status == 404

    def test_deferred_routing_decision(self, sim, triangle):
        a, p, b, alice, bob, proxy = triangle
        bob.on_invite = auto_answer(sim)

        def deferred(ctx):
            sim.schedule(0.8, ctx.forward, (b.ip, 5070))

        proxy.route_fn = deferred
        call = alice.call("sip:bob@voicehoc.ch")
        sim.run(5.0)
        assert call.state is CallState.ESTABLISHED

    def test_downstream_timeout_maps_to_408(self, sim, triangle):
        a, p, b, alice, bob, proxy = triangle
        bob.close()
        call = alice.call("sip:bob@voicehoc.ch")
        sim.run(60.0)
        assert call.state is CallState.FAILED
        assert call.failure_status in (408, 404)


class TestMaxForwards:
    def test_zero_max_forwards_rejected_with_483(self, sim, triangle):
        a, p, b, alice, bob, proxy = triangle
        from repro.sip import Headers, SipRequest

        headers = Headers()
        headers.add("From", "<sip:alice@voicehoc.ch>;tag=x")
        headers.add("To", "<sip:bob@voicehoc.ch>")
        headers.add("Call-ID", "mf-1")
        headers.add("CSeq", "1 OPTIONS")
        headers.add("Max-Forwards", "0")
        request = SipRequest("OPTIONS", "sip:bob@voicehoc.ch", headers=headers)
        responses = []
        alice.transactions.send_request(request, (p.ip, 5060), responses.append)
        sim.run(3.0)
        assert [r.status for r in responses] == [483]

    def test_max_forwards_decremented(self, sim, triangle):
        a, p, b, alice, bob, proxy = triangle
        seen = []
        original = proxy.route_fn

        def spy(ctx):
            seen.append(ctx.request.headers.get("Max-Forwards"))
            original(ctx)

        proxy.route_fn = spy
        bob.on_invite = auto_answer(sim)
        alice.call("sip:bob@voicehoc.ch")
        sim.run(3.0)
        assert seen == ["69"]  # UA sent 70


class TestCancelPropagation:
    def test_cancel_forwarded_downstream(self, sim, triangle):
        a, p, b, alice, bob, proxy = triangle
        incoming_states = []

        def ring_only(call):
            call.ring()
            call.on_state = lambda c: incoming_states.append(c.state)

        bob.on_invite = ring_only
        call = alice.call("sip:bob@voicehoc.ch")
        sim.run(1.5)
        call.cancel()
        sim.run(6.0)
        assert CallState.TERMINATED in incoming_states


class TestLegs:
    def test_select_leg_prefers_non_primary_for_internet(self, sim, medium):
        nodes = make_chain(sim, medium, 1)
        proxy = ProxyCore(nodes[0], port=5060)
        wan = proxy.add_leg("wan", SipTransport(nodes[0], 5061, address_override="10.0.0.9"))
        assert proxy.select_leg("10.1.2.3") is wan
        assert proxy.select_leg("192.168.0.5") is proxy.primary

    def test_pop_own_routes_handles_double_record_route(self, sim, medium):
        nodes = make_chain(sim, medium, 1)
        proxy = ProxyCore(nodes[0], port=5060)
        wan = proxy.add_leg("wan", SipTransport(nodes[0], 5061, address_override="10.0.0.9"))
        from repro.sip import Headers, SipRequest

        headers = Headers()
        headers.add("Route", f"<sip:{proxy.address}:5060;lr>")
        headers.add("Route", "<sip:10.0.0.9:5061;lr>")
        headers.add("Route", "<sip:elsewhere:5060;lr>")
        request = SipRequest("BYE", "sip:x@y", headers=headers)
        proxy._pop_own_routes(request)
        assert [r.uri.host for r in request.routes()] == ["elsewhere"]

    def test_remove_leg(self, sim, medium):
        nodes = make_chain(sim, medium, 1)
        proxy = ProxyCore(nodes[0], port=5060)
        proxy.add_leg("wan", SipTransport(nodes[0], 5061, address_override="10.0.0.9"))
        proxy.remove_leg("wan")
        assert proxy.select_leg("10.1.2.3") is proxy.primary
