"""Behavioural tests for the SIP user agent core."""

import pytest

from repro.sip import (
    CallState,
    LocationService,
    Registrar,
    ServerTransaction,
    SipTransport,
    TransactionLayer,
    UserAgent,
)
from tests.conftest import make_chain


@pytest.fixture
def ua_pair(sim, medium):
    a, b = make_chain(sim, medium, 2, static_routes=True)
    alice = UserAgent(a, "sip:alice@voicehoc.ch", port=5070)
    bob = UserAgent(b, "sip:bob@voicehoc.ch", port=5070)
    return a, b, alice, bob


def auto_answer(sim, delay=0.2):
    def handler(call):
        call.ring()
        sim.schedule(delay, call.answer)

    return handler


class TestRegistration:
    def test_register_against_registrar(self, sim, medium):
        a, b = make_chain(sim, medium, 2, static_routes=True)
        alice = UserAgent(a, "sip:alice@voicehoc.ch", port=5070)
        location = LocationService()
        registrar = Registrar(location)
        transport = SipTransport(b, 5060)
        layer = TransactionLayer(transport, sim)
        layer.on_request = lambda req, txn, src: registrar.process(req, txn, sim.now)
        results = []
        alice.register(registrar=(b.ip, 5060), on_result=lambda ok, resp: results.append(ok))
        sim.run(2.0)
        assert results == [True]
        assert alice.registered
        contacts = location.lookup("sip:alice@voicehoc.ch", sim.now)
        assert contacts and contacts[0].host == a.ip

    def test_register_timeout(self, sim, medium):
        a, b = make_chain(sim, medium, 2, static_routes=True)
        alice = UserAgent(a, "sip:alice@voicehoc.ch", port=5070)
        results = []
        alice.register(registrar=(b.ip, 5060), on_result=lambda ok, resp: results.append(ok))
        sim.run(40.0)
        assert results == [False]
        assert not alice.registered

    def test_register_without_destination_raises(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        alice = UserAgent(a, "sip:alice@voicehoc.ch", port=5070)
        from repro.errors import SipDialogError

        with pytest.raises(SipDialogError):
            alice.register()


class TestBasicCall:
    def test_full_call_lifecycle(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        bob.on_invite = auto_answer(sim)
        states = []
        call = alice.call(f"sip:bob@{b.ip}:5070", on_state=lambda c: states.append(c.state))
        sim.run(3.0)
        assert states == [CallState.CALLING, CallState.RINGING, CallState.ESTABLISHED]
        assert call.dialog is not None
        assert call.remote_rtp_endpoint is not None
        call.hangup()
        sim.run(6.0)
        assert states[-1] == CallState.TERMINATED
        assert not alice.active_calls and not bob.active_calls

    def test_callee_sees_caller_identity(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        callers = []

        def on_invite(call):
            callers.append(str(call.caller))
            call.answer()

        bob.on_invite = on_invite
        alice.call(f"sip:bob@{b.ip}:5070")
        sim.run(2.0)
        assert callers == ["sip:alice@voicehoc.ch"]

    def test_callee_hangup(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        incoming = []

        def on_invite(call):
            incoming.append(call)
            call.answer()

        bob.on_invite = on_invite
        states = []
        alice.call(f"sip:bob@{b.ip}:5070", on_state=lambda c: states.append(c.state))
        sim.run(3.0)
        assert states[-1] == CallState.ESTABLISHED
        incoming[0].hangup()
        sim.run(6.0)
        assert states[-1] == CallState.TERMINATED

    def test_reject_call(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        bob.on_invite = lambda call: call.reject(486)
        states = []
        call = alice.call(f"sip:bob@{b.ip}:5070", on_state=lambda c: states.append(c.state))
        sim.run(3.0)
        assert states[-1] == CallState.FAILED
        assert call.failure_status == 486

    def test_no_invite_handler_means_480(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        call = alice.call(f"sip:bob@{b.ip}:5070")
        sim.run(3.0)
        assert call.state is CallState.FAILED
        assert call.failure_status == 480

    def test_unreachable_callee_times_out(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        bob.close()
        call = alice.call(f"sip:bob@{b.ip}:5070")
        sim.run(40.0)
        assert call.state is CallState.FAILED
        assert call.failure_status == 408

    def test_sdp_negotiated_both_sides(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        answered = []

        def on_invite(call):
            call.answer()
            answered.append(call)

        bob.on_invite = on_invite
        call = alice.call(f"sip:bob@{b.ip}:5070")
        sim.run(3.0)
        assert call.remote_sdp is not None
        assert answered[0].remote_sdp is not None
        assert answered[0].local_sdp is not None
        # Each side streams to the other's advertised endpoint.
        assert call.remote_rtp_endpoint[0] == b.ip
        assert answered[0].remote_rtp_endpoint[0] == a.ip


class TestCancel:
    def test_cancel_before_answer(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        incoming_states = []

        def on_invite(call):
            call.ring()
            call.on_state = lambda c: incoming_states.append(c.state)

        bob.on_invite = on_invite
        states = []
        call = alice.call(f"sip:bob@{b.ip}:5070", on_state=lambda c: states.append(c.state))
        sim.run(1.0)
        call.cancel()
        sim.run(5.0)
        assert CallState.TERMINATED in incoming_states
        assert states[-1] in (CallState.FAILED, CallState.TERMINATED)

    def test_cancel_after_establish_is_noop(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        bob.on_invite = auto_answer(sim, delay=0.1)
        call = alice.call(f"sip:bob@{b.ip}:5070")
        sim.run(3.0)
        assert call.state is CallState.ESTABLISHED
        call.cancel()
        sim.run(5.0)
        assert call.state is CallState.ESTABLISHED


class TestOptions:
    def test_options_answered(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        from repro.sip import Headers, SipRequest

        headers = Headers()
        headers.add("From", "<sip:alice@voicehoc.ch>;tag=x")
        headers.add("To", "<sip:bob@voicehoc.ch>")
        headers.add("Call-ID", "opt-1")
        headers.add("CSeq", "1 OPTIONS")
        request = SipRequest("OPTIONS", f"sip:bob@{b.ip}:5070", headers=headers)
        responses = []
        alice.transactions.send_request(request, (b.ip, 5070), responses.append)
        sim.run(2.0)
        assert [r.status for r in responses] == [200]
