"""Unit tests for the SDP codec and offer/answer."""

import pytest

from repro.errors import SipParseError
from repro.sip import SessionDescription, parse_sdp


class TestOfferAnswer:
    def test_offer_shape(self):
        offer = SessionDescription.offer("192.168.0.1", 16384)
        assert offer.rtp_endpoint == ("192.168.0.1", 16384)
        assert offer.audio is not None
        assert offer.audio.payload_types == [0]

    def test_answer_accepts_first_payload(self):
        offer = SessionDescription.offer("192.168.0.1", 16384, payload_types=[18, 0])
        answer = offer.answer("192.168.0.2", 16500)
        assert answer.rtp_endpoint == ("192.168.0.2", 16500)
        assert answer.audio.payload_types == [18]

    def test_answer_without_media_rejected(self):
        empty = SessionDescription(origin_address="1.1.1.1", connection_address="1.1.1.1")
        with pytest.raises(SipParseError):
            empty.answer("2.2.2.2", 16384)


class TestAuxiliaryNegotiation:
    """RFC 2198 / CN / telephone-event payloads ride on SDP capability
    negotiation: the answer echoes an auxiliary payload only when it was
    both offered and locally accepted."""

    def test_accepted_auxiliary_payload_is_echoed(self):
        offer = SessionDescription.offer("10.0.0.1", 16384, payload_types=[0, 96, 101])
        answer = offer.answer("10.0.0.2", 16500, accept_payloads={96})
        assert answer.audio.payload_types == [0, 96]

    def test_unaccepted_auxiliary_payload_is_dropped(self):
        offer = SessionDescription.offer("10.0.0.1", 16384, payload_types=[0, 96])
        answer = offer.answer("10.0.0.2", 16500)
        assert answer.audio.payload_types == [0]

    def test_accepting_an_unoffered_payload_does_not_invent_it(self):
        offer = SessionDescription.offer("10.0.0.1", 16384, payload_types=[0])
        answer = offer.answer("10.0.0.2", 16500, accept_payloads={96, 101})
        assert answer.audio.payload_types == [0]

    def test_auxiliary_payloads_never_win_the_codec_slot(self):
        offer = SessionDescription.offer("10.0.0.1", 16384, payload_types=[96, 18, 0])
        answer = offer.answer("10.0.0.2", 16500, accept_payloads={96})
        assert answer.audio.payload_types == [18, 96]

    def test_offer_carries_rtpmaps_for_auxiliaries(self):
        offer = SessionDescription.offer("10.0.0.1", 16384, payload_types=[0, 96, 13, 101])
        maps = parse_sdp(offer.serialize()).audio.rtpmaps()
        assert maps[96] == "red/8000"
        assert maps[13] == "CN/8000"
        assert maps[101] == "telephone-event/8000"


class TestCodec:
    def test_round_trip(self):
        offer = SessionDescription.offer("10.0.0.1", 20000, payload_types=[0, 8])
        parsed = parse_sdp(offer.serialize())
        assert parsed.connection_address == "10.0.0.1"
        assert parsed.audio.port == 20000
        assert parsed.audio.payload_types == [0, 8]
        assert parsed.session_id == offer.session_id

    def test_rtpmap_attributes(self):
        offer = SessionDescription.offer("10.0.0.1", 20000, payload_types=[0])
        parsed = parse_sdp(offer.serialize())
        assert parsed.audio.rtpmaps()[0] == "PCMU/8000"

    def test_parse_lf_only_line_endings(self):
        text = "v=0\no=- 1 1 IN IP4 10.0.0.1\ns=-\nc=IN IP4 10.0.0.1\nt=0 0\nm=audio 9000 RTP/AVP 0\n"
        parsed = parse_sdp(text.encode())
        assert parsed.audio.port == 9000

    def test_connection_falls_back_to_origin(self):
        text = "v=0\r\no=- 1 1 IN IP4 10.0.0.7\r\ns=-\r\nt=0 0\r\nm=audio 9000 RTP/AVP 0\r\n"
        parsed = parse_sdp(text.encode())
        assert parsed.connection_address == "10.0.0.7"

    @pytest.mark.parametrize(
        "bad",
        [
            b"\xff\xfe",
            b"vequals0",
            b"v=0\r\nm=audio\r\n",
            b"v=0\r\nm=audio notaport RTP/AVP 0\r\n",
            b"v=0\r\ns=-\r\n",  # no addresses at all
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(SipParseError):
            parse_sdp(bad)

    def test_no_audio_media(self):
        text = "v=0\r\no=- 1 1 IN IP4 10.0.0.1\r\nc=IN IP4 10.0.0.1\r\nm=video 9000 RTP/AVP 96\r\n"
        parsed = parse_sdp(text.encode())
        assert parsed.audio is None
        assert parsed.rtp_endpoint is None
