"""Unit tests for PIDF documents and UA-level SUBSCRIBE/NOTIFY."""

import pytest

from repro.errors import SipParseError
from repro.sip.pidf import (
    AVAILABLE,
    OFFLINE,
    ON_THE_PHONE,
    PresenceStatus,
    build_pidf,
    parse_pidf,
)
from repro.sip.ua import UserAgent
from tests.conftest import make_chain


class TestPidf:
    def test_round_trip(self):
        entity, status = parse_pidf(build_pidf("sip:bob@voicehoc.ch", ON_THE_PHONE))
        assert entity == "sip:bob@voicehoc.ch"
        assert status == ON_THE_PHONE

    def test_closed_status(self):
        _, status = parse_pidf(build_pidf("sip:a@h", OFFLINE))
        assert not status.available

    def test_xml_escaping(self):
        weird = PresenceStatus(basic="open", note='meeting <with> "Q&A"')
        entity, status = parse_pidf(build_pidf("sip:a@h", weird))
        assert status.note == 'meeting <with> "Q&A"'

    def test_invalid_basic_rejected(self):
        with pytest.raises(SipParseError):
            PresenceStatus(basic="away")

    @pytest.mark.parametrize("garbage", [b"", b"<presence>", b"\xff\xfe", b"<basic>open</basic>"])
    def test_malformed_rejected(self, garbage):
        with pytest.raises(SipParseError):
            parse_pidf(garbage)


@pytest.fixture
def ua_pair(sim, medium):
    a, b = make_chain(sim, medium, 2, static_routes=True)
    alice = UserAgent(a, "sip:alice@voicehoc.ch", port=5070)
    bob = UserAgent(b, "sip:bob@voicehoc.ch", port=5070)
    return a, b, alice, bob


class TestSubscribeNotify:
    def test_initial_notify_carries_current_state(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        updates = []
        subscription = alice.subscribe(
            f"sip:bob@{b.ip}:5070", on_notify=lambda s: updates.append(s.status)
        )
        sim.run(2.0)
        assert subscription.active
        assert updates and updates[0] == AVAILABLE
        assert bob.watcher_count == 1

    def test_state_change_notifies_watcher(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        updates = []
        alice.subscribe(f"sip:bob@{b.ip}:5070", on_notify=lambda s: updates.append(s.status))
        sim.run(2.0)
        bob.set_presence(ON_THE_PHONE)
        sim.run(4.0)
        assert updates[-1] == ON_THE_PHONE
        bob.set_presence(AVAILABLE)
        sim.run(6.0)
        assert updates[-1] == AVAILABLE

    def test_terminate_sends_final_notify(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        updates = []
        subscription = alice.subscribe(
            f"sip:bob@{b.ip}:5070", on_notify=lambda s: updates.append(s.terminated)
        )
        sim.run(2.0)
        subscription.terminate()
        sim.run(4.0)
        assert bob.watcher_count == 0
        assert subscription.terminated

    def test_expired_watcher_dropped_when_subscriber_dies(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        subscription = alice.subscribe(f"sip:bob@{b.ip}:5070", expires=3)
        sim.run(2.0)
        assert bob.watcher_count == 1
        # Subscriber crashes: no more refreshes; the watcher times out.
        subscription._refresh_task.stop()
        sim.run(8.0)
        assert bob.watcher_count == 0
        # A state change after expiry notifies nobody new.
        bob.set_presence(OFFLINE)
        sim.run(9.0)

    def test_refresh_keeps_subscription_alive(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        updates = []
        alice.subscribe(
            f"sip:bob@{b.ip}:5070", expires=4,
            on_notify=lambda s: updates.append(s.status),
        )
        sim.run(15.0)  # several expiry windows
        assert bob.watcher_count == 1
        bob.set_presence(ON_THE_PHONE)
        sim.run(17.0)
        assert updates[-1] == ON_THE_PHONE

    def test_subscribe_to_unreachable_target_terminates(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        bob.close()
        subscription = alice.subscribe(f"sip:bob@{b.ip}:5070")
        sim.run(40.0)
        assert subscription.terminated
        assert not subscription.active

    def test_non_presence_event_rejected(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        from repro.sip import Headers, SipRequest

        headers = Headers()
        headers.add("From", "<sip:alice@voicehoc.ch>;tag=x")
        headers.add("To", "<sip:bob@voicehoc.ch>")
        headers.add("Call-ID", "sub-evil")
        headers.add("CSeq", "1 SUBSCRIBE")
        headers.add("Event", "dialog")
        request = SipRequest("SUBSCRIBE", f"sip:bob@{b.ip}:5070", headers=headers)
        responses = []
        alice.transactions.send_request(request, (b.ip, 5070), responses.append)
        sim.run(2.0)
        assert [r.status for r in responses] == [489]

    def test_stray_notify_481(self, sim, ua_pair):
        a, b, alice, bob = ua_pair
        from repro.sip import Headers, SipRequest

        headers = Headers()
        headers.add("From", "<sip:bob@voicehoc.ch>;tag=x")
        headers.add("To", "<sip:alice@voicehoc.ch>;tag=y")
        headers.add("Call-ID", "no-subscription")
        headers.add("CSeq", "1 NOTIFY")
        headers.add("Event", "presence")
        request = SipRequest("NOTIFY", f"sip:alice@{a.ip}:5070", headers=headers)
        responses = []
        bob.transactions.send_request(request, (a.ip, 5070), responses.append)
        sim.run(2.0)
        assert [r.status for r in responses] == [481]
