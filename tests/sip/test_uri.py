"""Unit tests for SIP URI and name-addr parsing."""

import pytest

from repro.errors import SipParseError
from repro.sip import NameAddr, SipUri


class TestSipUriParsing:
    def test_full_uri(self):
        uri = SipUri.parse("sip:alice@voicehoc.ch:5070;transport=udp;lr")
        assert uri.user == "alice"
        assert uri.host == "voicehoc.ch"
        assert uri.port == 5070
        assert uri.param("transport") == "udp"
        assert uri.has_param("lr")

    def test_minimal_uri(self):
        uri = SipUri.parse("sip:voicehoc.ch")
        assert uri.user is None
        assert uri.port is None
        assert uri.host == "voicehoc.ch"

    def test_host_lowercased(self):
        assert SipUri.parse("sip:Alice@VoiceHoc.CH").host == "voicehoc.ch"

    def test_sips_scheme(self):
        assert SipUri.parse("sips:a@b.c").scheme == "sips"

    @pytest.mark.parametrize(
        "bad",
        ["", "alice@host", "http://x.com", "sip:", "sip:@host", "sip:a@", "sip:a@h:99999",
         "sip:a@h:notaport"],
    )
    def test_invalid_uris(self, bad):
        with pytest.raises(SipParseError):
            SipUri.parse(bad)

    def test_round_trip(self):
        text = "sip:bob@192.168.0.5:5060;lr"
        assert str(SipUri.parse(text)) == text

    def test_address_of_record_strips_port_and_params(self):
        uri = SipUri.parse("sip:alice@voicehoc.ch:5070;transport=udp")
        assert uri.address_of_record == "sip:alice@voicehoc.ch"

    def test_with_param_replaces(self):
        uri = SipUri.parse("sip:h").with_param("lr").with_param("lr")
        assert str(uri).count("lr") == 1

    def test_effective_port_default(self):
        assert SipUri.parse("sip:h").effective_port() == 5060
        assert SipUri.parse("sip:h:5080").effective_port() == 5080

    def test_uris_hashable_and_comparable(self):
        a = SipUri.parse("sip:alice@h")
        b = SipUri.parse("sip:alice@h")
        assert a == b
        assert hash(a) == hash(b)


class TestNameAddr:
    def test_with_display_name_and_tag(self):
        addr = NameAddr.parse('"Alice Smith" <sip:alice@voicehoc.ch>;tag=abc123')
        assert addr.display_name == "Alice Smith"
        assert addr.uri.user == "alice"
        assert addr.tag == "abc123"

    def test_bare_addr_spec_params_belong_to_header(self):
        addr = NameAddr.parse("sip:bob@h;tag=xyz")
        assert addr.tag == "xyz"
        assert addr.uri.param("tag") is None

    def test_angle_bracket_uri_params_stay_in_uri(self):
        addr = NameAddr.parse("<sip:proxy:5060;lr>")
        assert addr.uri.has_param("lr")
        assert "lr" not in addr.params

    def test_round_trip(self):
        text = '"Bob" <sip:bob@voicehoc.ch>;tag=99'
        assert str(NameAddr.parse(text)) == text

    def test_with_tag_overwrites(self):
        addr = NameAddr.parse("<sip:a@b>;tag=old").with_tag("new")
        assert addr.tag == "new"

    def test_valueless_param(self):
        addr = NameAddr.parse("<sip:a@b>;flag")
        assert "flag" in addr.params
        assert addr.params["flag"] is None
