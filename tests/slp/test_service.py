"""Unit tests for SLP service URLs, attributes and predicates."""

import pytest

from repro.errors import SlpError
from repro.slp import (
    ServiceEntry,
    ServiceUrl,
    evaluate_predicate,
    format_attributes,
    parse_attributes,
)


class TestServiceUrl:
    def test_parse_full(self):
        url = ServiceUrl.parse("service:siphoc-sip://192.168.0.1:5060")
        assert url.service_type == "siphoc-sip"
        assert url.host == "192.168.0.1"
        assert url.port == 5060
        assert url.address == ("192.168.0.1", 5060)

    def test_parse_without_port(self):
        url = ServiceUrl.parse("service:gateway.siphoc://gw.local")
        assert url.port is None
        with pytest.raises(SlpError):
            _ = url.address

    def test_round_trip(self):
        text = "service:gateway.siphoc://192.168.0.7:5063"
        assert str(ServiceUrl.parse(text)) == text

    @pytest.mark.parametrize(
        "bad",
        ["", "siphoc-sip://x", "service:noaddress", "service:://h", "service:t://", "service:t://h:xx"],
    )
    def test_invalid(self, bad):
        with pytest.raises(SlpError):
            ServiceUrl.parse(bad)


class TestAttributes:
    def test_round_trip(self):
        attrs = {"user": "sip:alice@voicehoc.ch", "transport": "udp"}
        assert parse_attributes(format_attributes(attrs)) == attrs

    def test_empty(self):
        assert format_attributes({}) == ""
        assert parse_attributes("") == {}

    def test_value_containing_equals(self):
        attrs = {"k": "a=b=c"}
        assert parse_attributes(format_attributes(attrs)) == attrs

    def test_sorted_deterministic(self):
        assert format_attributes({"b": "2", "a": "1"}) == "(a=1),(b=2)"


class TestPredicates:
    ATTRS = {"user": "sip:bob@voicehoc.ch", "transport": "udp"}

    def test_empty_matches_everything(self):
        assert evaluate_predicate("", self.ATTRS)

    def test_simple_equality(self):
        assert evaluate_predicate("(user=sip:bob@voicehoc.ch)", self.ATTRS)
        assert not evaluate_predicate("(user=sip:alice@voicehoc.ch)", self.ATTRS)

    def test_missing_key_fails(self):
        assert not evaluate_predicate("(nope=1)", self.ATTRS)

    def test_wildcard_suffix(self):
        assert evaluate_predicate("(user=sip:bob*)", self.ATTRS)
        assert not evaluate_predicate("(user=sip:alice*)", self.ATTRS)

    def test_conjunction(self):
        assert evaluate_predicate(
            "(&(user=sip:bob@voicehoc.ch)(transport=udp))", self.ATTRS
        )
        assert not evaluate_predicate(
            "(&(user=sip:bob@voicehoc.ch)(transport=tcp))", self.ATTRS
        )

    @pytest.mark.parametrize("garbage", ["(unclosed", "user=x", "(&)extra", "((x=y))"])
    def test_garbage_fails_closed(self, garbage):
        assert not evaluate_predicate(garbage, self.ATTRS)


class TestServiceEntry:
    def make_entry(self, expires_at=100.0):
        return ServiceEntry(
            url=ServiceUrl.parse("service:siphoc-sip://192.168.0.1:5060"),
            attributes={"user": "sip:alice@voicehoc.ch"},
            lifetime=60.0,
            expires_at=expires_at,
            origin="192.168.0.1",
        )

    def test_validity(self):
        entry = self.make_entry(expires_at=100.0)
        assert entry.is_valid(99.0)
        assert not entry.is_valid(100.0)

    def test_matches_type_and_predicate(self):
        entry = self.make_entry()
        assert entry.matches("siphoc-sip")
        assert entry.matches("siphoc-sip", "(user=sip:alice@voicehoc.ch)")
        assert not entry.matches("gateway.siphoc")
        assert not entry.matches("siphoc-sip", "(user=sip:bob@voicehoc.ch)")
