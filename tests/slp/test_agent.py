"""Behavioural tests for the multicast (flooding) SLP agent baseline."""

import pytest

from repro.netsim import Node, Simulator, Stats, WirelessMedium, manet_ip, place_chain
from repro.routing import Aodv
from repro.slp import SlpAgent


def build_agents(n, seed=1):
    sim = Simulator(seed=seed)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    nodes, agents = [], []
    for index in range(n):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        Aodv(node).start()  # replies are unicast -> need real routing
        agents.append(SlpAgent(node))
        nodes.append(node)
    place_chain(nodes, 100.0)
    return sim, stats, nodes, agents


class TestLocalRegistration:
    def test_register_and_local_find(self):
        sim, stats, nodes, agents = build_agents(1)
        agents[0].register(
            "service:siphoc-sip://192.168.0.1:5060", {"user": "sip:a@h"}, lifetime=60
        )
        results = []
        agents[0].find_services("siphoc-sip", callback=results.append)
        sim.run(3.0)
        assert len(results[0]) == 1

    def test_deregister(self):
        sim, stats, nodes, agents = build_agents(1)
        agents[0].register("service:siphoc-sip://192.168.0.1:5060")
        agents[0].deregister("service:siphoc-sip://192.168.0.1:5060")
        assert agents[0].local_services() == []

    def test_expired_registration_not_served(self):
        sim, stats, nodes, agents = build_agents(1)
        agents[0].register("service:siphoc-sip://192.168.0.1:5060", lifetime=5.0)
        sim.run(6.0)
        assert agents[0].local_services() == []


class TestNetworkLookup:
    def test_multihop_lookup(self):
        sim, stats, nodes, agents = build_agents(4)
        agents[3].register(
            f"service:siphoc-sip://{nodes[3].ip}:5060",
            {"user": "sip:bob@voicehoc.ch"},
            lifetime=600,
        )
        sim.run(0.5)
        results = []
        agents[0].find_services(
            "siphoc-sip", "(user=sip:bob@voicehoc.ch)", timeout=5.0,
            callback=results.append,
        )
        sim.run(10.0)
        assert results and len(results[0]) == 1
        assert results[0][0].url.host == nodes[3].ip

    def test_no_match_returns_empty(self):
        sim, stats, nodes, agents = build_agents(3)
        results = []
        agents[0].find_services("siphoc-sip", "(user=sip:ghost@h)", callback=results.append)
        sim.run(10.0)
        assert results == [[]]

    def test_lookup_floods_network(self):
        """Every lookup costs a network-wide flood — the criticised overhead."""
        sim, stats, nodes, agents = build_agents(5)
        agents[0].find_services("siphoc-sip", callback=lambda e: None)
        sim.run(5.0)
        # Original request + rebroadcast by every other node exactly once.
        assert stats.traffic_packets("slp") >= 5
        assert stats.count("slp.requests_forwarded") == 4

    def test_duplicate_requests_suppressed(self):
        sim, stats, nodes, agents = build_agents(3)
        agents[0].find_services("siphoc-sip", callback=lambda e: None)
        sim.run(5.0)
        # Each node forwards at most once despite hearing multiple copies.
        assert stats.count("slp.requests_forwarded") <= 2

    def test_multiple_providers_all_reported(self):
        sim, stats, nodes, agents = build_agents(3)
        for index in (1, 2):
            agents[index].register(
                f"service:siphoc-sip://{nodes[index].ip}:5060",
                {"user": f"sip:u{index}@h"},
                lifetime=600,
            )
        sim.run(0.5)
        results = []
        agents[0].find_services("siphoc-sip", timeout=5.0, callback=results.append)
        sim.run(10.0)
        assert len(results[0]) == 2
