"""Unit tests for the SLP wire codec."""

import pytest

from repro.errors import CodecError
from repro.slp import (
    SrvAck,
    SrvDeReg,
    SrvReg,
    SrvRply,
    SrvRqst,
    UrlEntry,
    decode_slp,
    encode_slp,
)


class TestRoundTrips:
    def test_srvrqst(self):
        message = SrvRqst(
            xid=7,
            service_type="siphoc-sip",
            predicate="(user=sip:bob@voicehoc.ch)",
            requester="192.168.0.1",
        )
        assert decode_slp(encode_slp(message)) == message

    def test_srvrply_multiple_entries(self):
        message = SrvRply(
            xid=9,
            entries=[
                UrlEntry(url="service:siphoc-sip://192.168.0.5:5060", lifetime=60,
                         attributes="(user=sip:bob@voicehoc.ch)"),
                UrlEntry(url="service:siphoc-sip://192.168.0.6:5060", lifetime=30,
                         attributes=""),
            ],
        )
        assert decode_slp(encode_slp(message)) == message

    def test_srvreg(self):
        message = SrvReg(
            xid=2,
            entry=UrlEntry(url="service:gateway.siphoc://192.168.0.9:5063",
                           lifetime=120, attributes="(wired=10.0.0.3)"),
        )
        assert decode_slp(encode_slp(message)) == message

    def test_srvdereg_and_ack(self):
        assert decode_slp(encode_slp(SrvDeReg(xid=1, url="service:x://h"))) == SrvDeReg(
            xid=1, url="service:x://h"
        )
        assert decode_slp(encode_slp(SrvAck(xid=3, error=5))) == SrvAck(xid=3, error=5)

    def test_unicode_strings(self):
        message = SrvRqst(xid=1, service_type="tëst", predicate="(k=välue)", requester="1.2.3.4")
        assert decode_slp(encode_slp(message)) == message


class TestErrors:
    def test_bad_version(self):
        data = bytearray(encode_slp(SrvAck(xid=1)))
        data[0] = 9
        with pytest.raises(CodecError):
            decode_slp(bytes(data))

    def test_bad_function(self):
        data = bytearray(encode_slp(SrvAck(xid=1)))
        data[1] = 200
        with pytest.raises(CodecError):
            decode_slp(bytes(data))

    def test_truncated(self):
        data = encode_slp(
            SrvRqst(xid=1, service_type="siphoc-sip", predicate="", requester="1.2.3.4")
        )
        with pytest.raises(CodecError):
            decode_slp(data[:-3])


class TestUrlEntryConversion:
    def test_to_service_entry(self):
        entry = UrlEntry(
            url="service:siphoc-sip://192.168.0.5:5060",
            lifetime=60,
            attributes="(user=sip:bob@voicehoc.ch)",
        ).to_service_entry(now=10.0, origin="192.168.0.5")
        assert entry.url.host == "192.168.0.5"
        assert entry.expires_at == 70.0
        assert entry.attributes == {"user": "sip:bob@voicehoc.ch"}
        assert entry.origin == "192.168.0.5"

    def test_from_service_entry_clamps_lifetime(self):
        from repro.slp import ServiceEntry, ServiceUrl

        entry = ServiceEntry(
            url=ServiceUrl.parse("service:x://h:1"),
            attributes={},
            lifetime=0.2,
            expires_at=1.0,
        )
        url_entry = UrlEntry.from_service_entry(entry, remaining=0.2)
        assert url_entry.lifetime >= 1
