"""Unit tests for jitter buffer and E-model scoring."""

import pytest

from repro.rtp import G711, G729, JitterBuffer, mos_from_r, r_factor, score_stream
from repro.rtp.quality import delay_impairment, loss_impairment


class TestJitterBuffer:
    def make(self, playout=0.06):
        return JitterBuffer(frame_interval=0.02, playout_delay=playout)

    def test_on_time_frames_played(self):
        buffer = self.make()
        for index in range(10):
            assert buffer.on_packet(index, arrival_time=index * 0.02)
        assert buffer.stats.played == 10
        assert buffer.stats.late_dropped == 0

    def test_late_frame_dropped(self):
        buffer = self.make(playout=0.05)
        buffer.on_packet(0, arrival_time=0.0)
        # Frame 1's slot is 0.0 + 0.05 + 0.02 = 0.07; it arrives at 0.5.
        assert not buffer.on_packet(1, arrival_time=0.5)
        assert buffer.stats.late_dropped == 1

    def test_duplicate_counted_once(self):
        buffer = self.make()
        buffer.on_packet(5, arrival_time=0.0)
        assert not buffer.on_packet(5, arrival_time=0.01)
        assert buffer.stats.duplicates == 1
        assert buffer.stats.played == 1

    def test_sequence_wraparound(self):
        buffer = self.make()
        assert buffer.on_packet(0xFFFF, arrival_time=0.0)
        assert buffer.on_packet(0, arrival_time=0.02)  # wraps to +1
        assert buffer.stats.played == 2

    def test_accounting_invariant(self):
        buffer = self.make(playout=0.03)
        import random

        rng = random.Random(7)
        for index in range(200):
            buffer.on_packet(index, arrival_time=index * 0.02 + rng.uniform(0, 0.1))
        stats = buffer.stats
        assert stats.played + stats.late_dropped + stats.duplicates == stats.received


class TestEModel:
    def test_perfect_call_is_toll_quality(self):
        assert r_factor(G711, one_way_delay_s=0.02, loss_ratio=0.0) > 90
        assert mos_from_r(93.2) > 4.3

    def test_delay_impairment_kicks_in_past_177ms(self):
        low = delay_impairment(0.1)
        high = delay_impairment(0.3)
        assert high - low > 0.11 * (300 - 177.3) * 0.9

    def test_mos_monotone_in_loss(self):
        values = [
            mos_from_r(r_factor(G711, 0.05, loss)) for loss in (0.0, 0.02, 0.05, 0.1, 0.2)
        ]
        assert values == sorted(values, reverse=True)

    def test_mos_monotone_in_delay(self):
        values = [
            mos_from_r(r_factor(G711, delay, 0.0)) for delay in (0.02, 0.1, 0.2, 0.4)
        ]
        assert values == sorted(values, reverse=True)

    def test_g729_baseline_below_g711(self):
        assert r_factor(G729, 0.05, 0.0) < r_factor(G711, 0.05, 0.0)

    def test_mos_bounds(self):
        assert mos_from_r(0) == 1.0
        assert mos_from_r(-10) == 1.0
        assert mos_from_r(150) == 4.5

    def test_loss_impairment_saturates(self):
        assert loss_impairment(G711, 1.0) < 95.0
        assert loss_impairment(G711, 0.0) == G711.ie


class TestScoreStream:
    def test_effective_loss_includes_late_drops(self):
        quality = score_stream(
            codec=G711,
            packets_expected=100,
            packets_received=95,  # 5 lost in the network
            packets_played=90,  # 5 more late-dropped
            delays=[0.05] * 95,
            jitter=0.002,
        )
        assert quality.network_loss_ratio == pytest.approx(0.05)
        assert quality.effective_loss_ratio == pytest.approx(0.10)
        assert quality.mos < 4.2

    def test_acceptable_threshold(self):
        good = score_stream(G711, 100, 100, 100, [0.03] * 100, 0.001)
        assert good.is_acceptable
        bad = score_stream(G711, 100, 60, 55, [0.4] * 60, 0.05)
        assert not bad.is_acceptable

    def test_summary_is_readable(self):
        quality = score_stream(G711, 10, 10, 10, [0.02] * 10, 0.0)
        text = quality.summary()
        assert "MOS=" in text and "PCMU" in text
