"""Unit tests for RTP packets, codecs and sessions."""

import pytest

from repro.errors import CodecError, ConfigError
from repro.rtp import (
    G711,
    G729,
    RtpPacket,
    RtpSession,
    codec_for_payload_type,
    decode_rtp,
    extract_send_time,
    make_voice_payload,
)
from tests.conftest import make_chain


class TestRtpPacketCodec:
    def test_round_trip(self):
        packet = RtpPacket(
            payload_type=0, sequence=1234, timestamp=567890, ssrc=0xDEADBEEF,
            payload=b"x" * 160, marker=True,
        )
        decoded = decode_rtp(packet.encode())
        assert decoded == packet

    def test_sequence_wraps_at_16_bits(self):
        packet = RtpPacket(payload_type=0, sequence=0x1FFFF, timestamp=0, ssrc=1, payload=b"")
        assert decode_rtp(packet.encode()).sequence == 0xFFFF

    def test_size_includes_header(self):
        packet = RtpPacket(payload_type=0, sequence=0, timestamp=0, ssrc=1, payload=b"x" * 20)
        assert packet.size == 32

    def test_too_short_rejected(self):
        with pytest.raises(CodecError):
            decode_rtp(b"\x80\x00\x00")

    def test_wrong_version_rejected(self):
        data = bytearray(RtpPacket(0, 0, 0, 1, b"").encode())
        data[0] = 0x00  # version 0
        with pytest.raises(CodecError):
            decode_rtp(bytes(data))

    def test_voice_payload_carries_timestamp(self):
        payload = make_voice_payload(160, send_time=12.345)
        assert len(payload) == 160
        assert extract_send_time(payload) == 12.345

    def test_tiny_frame_rejected(self):
        with pytest.raises(CodecError):
            make_voice_payload(4, send_time=0.0)


class TestCodecs:
    def test_g711_properties(self):
        assert G711.frame_interval == 0.02
        assert G711.frame_bytes == 160
        assert G711.bitrate == 64000
        assert G711.timestamp_increment == 160

    def test_g729_properties(self):
        assert G729.bitrate == 8000

    def test_lookup_by_payload_type(self):
        assert codec_for_payload_type(0) is G711
        assert codec_for_payload_type(18) is G729
        with pytest.raises(ConfigError):
            codec_for_payload_type(99)


class TestRtpSession:
    def test_bidirectional_stream_and_measurement(self, sim, medium):
        a, b = make_chain(sim, medium, 2, static_routes=True)
        session_a = RtpSession(a, 16384, remote=(b.ip, 16384))
        session_b = RtpSession(b, 16384, remote=(a.ip, 16384))
        session_a.start_sending()
        session_b.start_sending()
        sim.run(10.0)
        session_a.stop_sending()
        session_b.stop_sending()
        assert session_a.packets_sent == pytest.approx(500, abs=2)
        assert session_b.packets_received >= 495
        quality = session_b.quality()
        assert quality.mos > 4.0
        assert quality.mean_delay < 0.05

    def test_no_remote_raises(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        session = RtpSession(a, 16384)
        with pytest.raises(CodecError):
            session.start_sending()

    def test_loss_degrades_quality(self, sim):
        from repro.netsim import WirelessMedium
        from tests.conftest import make_chain as chain

        lossy = WirelessMedium(sim, tx_range=150.0, loss_rate=0.25, mac_retries=0)
        a, b = chain(sim, lossy, 2, static_routes=True)
        tx = RtpSession(a, 16384, remote=(b.ip, 16384))
        rx = RtpSession(b, 16384)
        tx.start_sending()
        sim.run(20.0)
        tx.stop_sending()
        quality = rx.quality(expected_override=tx.packets_sent)
        assert quality.network_loss_ratio > 0.1
        assert quality.mos < 4.0

    def test_expected_counts_from_sequence_numbers(self, sim, medium):
        a, b = make_chain(sim, medium, 2, static_routes=True)
        tx = RtpSession(a, 16384, remote=(b.ip, 16384))
        rx = RtpSession(b, 16384)
        tx.start_sending()
        sim.run(2.0)
        tx.stop_sending()
        sim.run(3.0)
        assert rx.packets_expected == rx.packets_received  # nothing lost

    def test_close_releases_port(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        session = RtpSession(a, 16384)
        session.close()
        RtpSession(a, 16384)  # no PortInUseError
