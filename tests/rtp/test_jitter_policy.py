"""Unit tests for playout-delay policies, dedup windowing, and wraparound."""

import pytest

from repro.rtp import AdaptivePlayoutPolicy, FixedPlayoutPolicy, JitterBuffer
from repro.rtp.jitter import DUPLICATE, LATE, PLAYED, _seq_delta
from repro.rtp.session import _seq_greater


def make(playout=0.06, policy=None, window=None):
    kwargs = {} if window is None else {"dedup_window": window}
    return JitterBuffer(
        frame_interval=0.02, playout_delay=playout, policy=policy, **kwargs
    )


class TestPolicies:
    def test_fixed_policy_target_ignores_jitter(self):
        policy = FixedPlayoutPolicy(0.08)
        assert policy.initial_delay() == 0.08
        assert policy.target_delay(0.5) == 0.08
        assert not policy.adaptive

    def test_adaptive_target_is_clamped(self):
        policy = AdaptivePlayoutPolicy()
        assert policy.adaptive
        assert policy.target_delay(0.0) == policy.min_delay
        assert policy.target_delay(10.0) == policy.max_delay
        mid = policy.target_delay(0.02)
        assert mid == pytest.approx(policy.headroom + policy.multiplier * 0.02)

    def test_adaptive_start_delay_is_clamped_too(self):
        assert AdaptivePlayoutPolicy(start_delay=5.0).initial_delay() == 0.24
        assert AdaptivePlayoutPolicy(start_delay=0.001).initial_delay() == 0.04

    def test_buffer_defaults_to_fixed_policy(self):
        buffer = make(playout=0.09)
        assert buffer.policy.name == "fixed"
        assert buffer.playout_delay == 0.09


class TestMarkerReanchor:
    def test_marker_reanchors_after_silence_gap(self):
        """A talk-spurt start must restart the playout clock (any policy)."""
        buffer = make()
        assert buffer.classify(0, 0.0) == PLAYED
        # 10 s of silence: without the marker this frame is hopelessly late.
        assert buffer.classify(1, 10.0, marker=True) == PLAYED
        assert buffer.stats.retargets == 1

    def test_fixed_policy_keeps_its_delay_at_markers(self):
        buffer = make(playout=0.06)
        buffer.classify(0, 0.0)
        buffer.classify(1, 10.0, jitter=0.03, marker=True)
        assert buffer.playout_delay == 0.06

    def test_without_marker_the_gap_frame_is_late(self):
        buffer = make()
        buffer.classify(0, 0.0)
        assert buffer.classify(1, 10.0) == LATE


class TestAdaptiveBuffer:
    def test_marker_retargets_delay_from_jitter(self):
        buffer = make(policy=AdaptivePlayoutPolicy())
        buffer.classify(0, 0.0)
        buffer.classify(1, 10.0, jitter=0.02, marker=True)
        assert buffer.playout_delay == pytest.approx(0.01 + 6.0 * 0.02)
        assert buffer.stats.retargets == 1

    def test_late_streak_triggers_resync_without_markers(self):
        buffer = make(policy=AdaptivePlayoutPolicy(resync_after=2))
        buffer.classify(0, 0.0)
        assert buffer.classify(1, 5.0) == LATE
        assert buffer.classify(2, 5.02) == LATE  # streak reaches resync_after
        assert buffer.classify(3, 5.04, jitter=0.01) == PLAYED
        assert buffer.playout_delay == pytest.approx(0.01 + 6.0 * 0.01)
        assert buffer.stats.retargets == 1

    def test_fixed_policy_never_resyncs_on_late_streaks(self):
        buffer = make()
        buffer.classify(0, 0.0)
        for index in range(1, 8):
            assert buffer.classify(index, 5.0 + index * 0.02) == LATE
        assert buffer.stats.retargets == 0

    def test_delay_shrinks_back_after_a_spike(self):
        """A delay spike must not pin a marker-less stream at max_delay."""
        policy = AdaptivePlayoutPolicy(shrink_after=3)
        buffer = make(policy=policy)
        buffer.classify(0, 0.0)
        buffer.classify(1, 0.02, jitter=0.035, marker=True)  # spike: 0.22 s
        assert buffer.playout_delay == pytest.approx(0.22)
        # Jitter settles; three consecutive on-time frames walk it back down.
        buffer.classify(2, 0.04, jitter=0.0)
        buffer.classify(3, 0.06, jitter=0.0)
        assert buffer.playout_delay == pytest.approx(0.22)
        buffer.classify(4, 0.08, jitter=0.0)
        assert buffer.playout_delay == policy.min_delay
        assert buffer.stats.retargets == 2

    def test_late_frame_resets_the_shrink_streak(self):
        policy = AdaptivePlayoutPolicy(shrink_after=2, resync_after=10)
        buffer = make(policy=policy)
        buffer.classify(0, 0.0)
        buffer.classify(1, 0.02, jitter=0.035, marker=True)
        buffer.classify(2, 0.04, jitter=0.0)  # slack streak 1
        buffer.classify(3, 9.0, jitter=0.0)  # late: streak resets
        buffer.classify(4, 0.08, jitter=0.0)  # on time again: streak restarts at 1
        assert buffer.playout_delay == pytest.approx(0.22)

    def test_no_shrink_when_target_is_near_current_delay(self):
        buffer = make(policy=AdaptivePlayoutPolicy(shrink_after=1))
        buffer.classify(0, 0.0)  # initial delay 0.06
        # Target 0.05 is less than one frame below 0.06: stay put.
        for index in range(1, 6):
            buffer.classify(index, index * 0.02, jitter=(0.05 - 0.01) / 6.0)
        assert buffer.playout_delay == pytest.approx(0.06)
        assert buffer.stats.retargets == 0


class TestDedupWindow:
    def test_stale_replay_outside_window_is_rejected(self):
        """Regression: the pre-window buffer wholesale-cleared its dedup set,
        after which any replayed sequence was accepted and counted played."""
        buffer = make(window=16)
        for index in range(101):
            buffer.classify(index, index * 0.02)
        played = buffer.stats.played
        assert buffer.classify(50, 2.5) == DUPLICATE
        assert buffer.stats.played == played
        assert buffer.stats.duplicates == 1

    def test_window_boundary(self):
        buffer = make(window=16)
        for index in range(101):
            buffer.classify(index, index * 0.02)
        # ext_high is 100: 84 sits exactly on the floor (stale), 85 is the
        # oldest in-window entry and is caught by the seen-set instead.
        assert buffer.classify(84, 2.5) == DUPLICATE
        assert buffer.classify(85, 2.5) == DUPLICATE
        assert buffer.stats.duplicates == 2

    def test_unseen_in_window_sequence_is_admitted(self):
        buffer = make(window=16)
        for index in range(0, 20, 2):  # leave odd sequence numbers open
            buffer.classify(index, index * 0.02)
        assert buffer.classify(13, 13 * 0.02) == PLAYED

    def test_seen_set_stays_bounded(self):
        buffer = make(window=16)
        for index in range(10_000):
            buffer.classify(index & 0xFFFF, index * 0.02)
        assert len(buffer._seen) <= 2 * 16 + 1

    def test_replay_rejected_beyond_the_old_clear_point(self):
        """The old buffer cleared its set at 65536 entries; a replay right
        after the clear point replayed into the stream as a fresh frame."""
        buffer = make()
        for index in range(65_600):
            assert buffer.classify(index & 0xFFFF, index * 0.02) == PLAYED
        # Sequence 0 re-unwraps to extended 65536 — seen, so a duplicate.
        assert buffer.classify(0, 65_600 * 0.02) == DUPLICATE
        assert buffer.stats.duplicates == 1
        assert buffer.stats.played == 65_600


class TestRecoveredAccounting:
    def test_recovered_counts_in_played_not_received(self):
        buffer = make()
        buffer.classify(0, 0.0)
        assert buffer.on_recovered(1, 0.02)
        stats = buffer.stats
        assert stats.played == 2 and stats.recovered == 1
        assert stats.received == 1 and stats.unique == 1

    def test_recovery_anchors_an_empty_buffer(self):
        buffer = make()
        assert buffer.on_recovered(7, 1.0)
        assert buffer.classify(8, 1.02) == PLAYED

    def test_recovered_copy_of_seen_frame_is_ignored(self):
        buffer = make()
        buffer.classify(0, 0.0)
        buffer.classify(1, 0.02)
        assert not buffer.on_recovered(1, 0.04)
        assert buffer.stats.recovered == 0

    def test_recovered_too_late_counts_separately(self):
        buffer = make()
        buffer.classify(0, 0.0)
        assert not buffer.on_recovered(1, 5.0)
        stats = buffer.stats
        assert stats.recovered == 0 and stats.recovered_late == 1
        assert stats.played == 1

    def test_invariant_with_recovery(self):
        import random

        buffer = make(playout=0.03)
        rng = random.Random(11)
        for index in range(300):
            if rng.random() < 0.2:
                buffer.on_recovered(index, index * 0.02 + rng.uniform(0, 0.05))
            else:
                buffer.classify(index, index * 0.02 + rng.uniform(0, 0.05))
        stats = buffer.stats
        assert (
            stats.played - stats.recovered + stats.late_dropped + stats.duplicates
            == stats.received
        )


class TestLateRatio:
    def test_empty_buffer_has_zero_ratio(self):
        assert make().stats.late_ratio == 0.0

    def test_ratio_counts_raw_receipts(self):
        buffer = make()
        buffer.classify(0, 0.0)
        buffer.classify(1, 5.0)
        buffer.classify(1, 5.1)  # duplicate still counts in the denominator
        assert buffer.stats.late_ratio == pytest.approx(1 / 3)


class TestWraparound:
    @pytest.mark.parametrize(
        "sequence,anchor,expected",
        [
            (5, 5, 0),
            (6, 5, 1),
            (4, 5, -1),
            (0x0003, 0xFFFE, 5),
            (0xFFFE, 0x0003, -5),
            (0, 0x8000, -0x8000),
            (0x8000, 0, -0x8000),
            (0x7FFF, 0, 0x7FFF),
        ],
    )
    def test_seq_delta(self, sequence, anchor, expected):
        assert _seq_delta(sequence, anchor) == expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (1, 0, True),
            (0, 1, False),
            (5, 5, False),
            (0, 0xFFFF, True),  # wrapped: 0 is newer than 65535
            (0xFFFF, 0, False),
            (0x7FFF, 0, True),
            (0x8000, 0, False),  # exactly half the space away: not newer
        ],
    )
    def test_seq_greater(self, a, b, expected):
        assert _seq_greater(a, b) is expected

    def test_offsets_survive_many_rollovers(self):
        buffer = make()
        for index in range(0x2_0000 + 10):  # two full 16-bit rollovers
            assert buffer.classify(index & 0xFFFF, index * 0.02) == PLAYED
        assert buffer.stats.played == 0x2_0000 + 10
