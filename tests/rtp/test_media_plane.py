"""Tests for the media-plane extensions: RFC 2198 redundancy, silence
suppression with comfort noise, RFC 2833 telephone events, and the session
accounting regressions behind them (§5j)."""

import pytest

from repro.errors import CodecError, ConfigError
from repro.netsim import Node, Simulator, Stats, WirelessMedium, manet_ip
from repro.rtp import (
    G711,
    RedBlock,
    RtpPacket,
    RtpSession,
    decode_dtmf_payload,
    decode_red,
    encode_red,
    make_comfort_noise_payload,
    make_dtmf_payload,
    make_voice_payload,
)
from tests.conftest import make_chain


def build_pair(sim, medium, **session_kwargs):
    a, b = make_chain(sim, medium, 2, static_routes=True)
    tx = RtpSession(a, 16384, remote=(b.ip, 16384), **session_kwargs)
    rx = RtpSession(b, 16384, remote=(a.ip, 16384), **session_kwargs)
    return tx, rx


class TestRedCodec:
    def test_round_trip_with_secondaries(self):
        blocks = [
            RedBlock(payload_type=0, timestamp_offset=320, payload=b"oldest"),
            RedBlock(payload_type=0, timestamp_offset=160, payload=b"older"),
            RedBlock(payload_type=0, timestamp_offset=0, payload=b"primary frame"),
        ]
        assert decode_red(encode_red(blocks)) == blocks

    def test_primary_only_round_trip(self):
        blocks = [RedBlock(payload_type=18, timestamp_offset=0, payload=b"x" * 20)]
        assert decode_red(encode_red(blocks)) == blocks

    def test_empty_block_list_rejected(self):
        with pytest.raises(CodecError):
            encode_red([])

    def test_oversized_fields_rejected(self):
        primary = RedBlock(0, 0, b"p")
        with pytest.raises(CodecError):
            encode_red([RedBlock(0, 1 << 14, b"s"), primary])
        with pytest.raises(CodecError):
            encode_red([RedBlock(0, 0, b"s" * 1024), primary])

    @pytest.mark.parametrize(
        "bad",
        [
            b"",  # no headers at all
            b"\x80\x00",  # truncated secondary header
            bytes([0x80, 0, 1, 200, 0]),  # claims 200 payload bytes, has none
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(CodecError):
            decode_red(bad)


class TestAuxPayloadCodecs:
    def test_comfort_noise_level(self):
        assert make_comfort_noise_payload(70) == bytes([70])

    def test_dtmf_round_trip(self):
        payload = make_dtmf_payload("#", 640, end=True)
        assert decode_dtmf_payload(payload) == ("#", True, 640)

    def test_dtmf_rejects_non_digits(self):
        with pytest.raises(CodecError):
            make_dtmf_payload("x", 640)

    def test_dtmf_unknown_event_code_rejected(self):
        with pytest.raises(CodecError):
            decode_dtmf_payload(bytes([42, 0x80, 0, 100]))


class TestSessionRng:
    def test_construction_leaves_shared_rng_untouched(self, sim, medium):
        """Regression: the initial sequence number used to come from the
        shared ``sim.rng``, so building a media session perturbed every
        later draw in the scenario."""
        nodes = make_chain(sim, medium, 2, static_routes=True)
        state = sim.rng.getstate()
        RtpSession(nodes[0], 16384, remote=(nodes[1].ip, 16384), redundancy=2, vad=True)
        assert sim.rng.getstate() == state

    def test_initial_sequence_is_deterministic_per_endpoint(self):
        def sequence_of(port):
            sim = Simulator(seed=1234)
            medium = WirelessMedium(sim, stats=Stats(), tx_range=150.0)
            nodes = make_chain(sim, medium, 2, static_routes=True)
            return RtpSession(nodes[0], port, remote=(nodes[1].ip, port))._sequence

        assert sequence_of(16384) == sequence_of(16384)
        assert sequence_of(16384) != sequence_of(16500)

    def test_redundancy_depth_validated(self, sim, medium):
        nodes = make_chain(sim, medium, 2, static_routes=True)
        with pytest.raises(ConfigError):
            RtpSession(nodes[0], 16384, redundancy=99)


class TestDuplicateAccounting:
    def test_duplicated_datagram_counts_once(self, sim, medium):
        """Regression: ``packets_received`` used to count raw datagrams, so
        duplicated packets understated the loss the E-model saw."""
        tx, rx = build_pair(sim, medium)
        packet = RtpPacket(
            payload_type=0,
            sequence=100,
            timestamp=0,
            ssrc=tx.ssrc,
            payload=make_voice_payload(160, 0.0),
        )
        data = packet.encode()
        rx._on_datagram(data, tx.node.ip, 16384)
        rx._on_datagram(data, tx.node.ip, 16384)
        assert rx.packets_received == 1
        assert rx.jitter_buffer.stats.duplicates == 1
        assert rx.quality(expected_override=1).network_loss_ratio == 0.0

    def test_expected_spans_wraparound(self, sim, medium):
        _, rx = build_pair(sim, medium)
        for sequence in (0xFFFE, 0xFFFF, 0x0000, 0x0001):
            rx._note_sequence(sequence)
        assert rx.packets_expected == 4

    def test_expected_counts_reordered_first_packet(self, sim, medium):
        _, rx = build_pair(sim, medium)
        rx._note_sequence(0x0001)
        rx._note_sequence(0xFFFF)  # the true first frame, arriving second
        assert rx.packets_expected == 3


class TestRedRecovery:
    def test_lost_primaries_rebuilt_from_redundancy(self, sim):
        lossy = WirelessMedium(sim, tx_range=150.0, loss_rate=0.25, mac_retries=0)
        tx, rx = build_pair(sim, lossy, redundancy=2)
        tx.start_sending()
        sim.run(10.0)
        stats = rx.jitter_buffer.stats
        assert rx.packets_recovered > 20
        assert stats.played > stats.unique  # recovery on top of receipts
        quality = rx.quality(expected_override=tx.packets_sent)
        assert quality.effective_loss_ratio < quality.network_loss_ratio
        assert quality.packets_recovered == rx.packets_recovered

    def test_redundancy_bounds_history(self, sim, medium):
        tx, rx = build_pair(sim, medium, redundancy=2)
        tx.start_sending()
        sim.run(1.0)
        assert len(tx._red_history) <= 2
        # Clean channel: everything arrives as a primary, nothing to rebuild.
        assert rx.packets_recovered == 0


class TestSilenceSuppression:
    def test_vad_suppresses_frames_and_sends_comfort_noise(self, sim, medium):
        tx, rx = build_pair(sim, medium, vad=True)
        tx.start_sending()
        sim.run(30.0)
        nominal = int(30.0 / tx.codec.frame_interval)
        assert 0 < tx.packets_sent < nominal * 0.9
        assert rx.cn_received > 0
        # Talk-spurt starts carry the marker bit: the buffer re-anchors.
        assert rx.jitter_buffer.stats.retargets > 0
        assert rx.jitter_buffer.stats.played > 0

    def test_vad_schedule_is_deterministic(self):
        def run_once():
            sim = Simulator(seed=77)
            medium = WirelessMedium(sim, stats=Stats(), tx_range=150.0)
            a, b = make_chain(sim, medium, 2, static_routes=True)
            tx = RtpSession(a, 16384, remote=(b.ip, 16384), vad=True)
            rx = RtpSession(b, 16384, remote=(a.ip, 16384), vad=True)
            tx.start_sending()
            sim.run(20.0)
            return tx.packets_sent, rx.cn_received, rx.jitter_buffer.stats.played

        assert run_once() == run_once()


class TestDtmf:
    def test_digits_arrive_in_order(self, sim, medium):
        tx, rx = build_pair(sim, medium)
        tx.start_sending()
        tx.send_dtmf("1#A")
        sim.run(2.0)
        assert rx.dtmf_received == ["1", "#", "A"]
        assert rx.node.stats.count("rtp.dtmf_events") == 3

    def test_invalid_digit_rejected(self, sim, medium):
        tx, _ = build_pair(sim, medium)
        with pytest.raises(CodecError):
            tx.send_dtmf("1z")

    def test_dtmf_needs_a_remote(self, sim, medium):
        nodes = make_chain(sim, medium, 2, static_routes=True)
        session = RtpSession(nodes[0], 16384)
        with pytest.raises(CodecError):
            session.send_dtmf("1")


class TestMeasuredQuality:
    def test_playout_delay_feeds_the_delay_impairment(self, sim, medium):
        """Regression: ``quality()`` used to ignore the jitter-buffer
        playout delay, overstating MOS on long-buffer streams."""
        tx, _ = build_pair(sim, medium)
        slim, fat = (
            RtpSession(tx.node, port, remote=("192.168.0.2", port), playout_delay=delay)
            for port, delay in ((16400, 0.02), (16402, 0.22))
        )
        for session in (slim, fat):
            packet = RtpPacket(
                payload_type=0,
                sequence=1,
                timestamp=0,
                ssrc=7,
                payload=make_voice_payload(160, 0.0),
            )
            session._on_datagram(packet.encode(), "192.168.0.2", 16384)
        q_slim, q_fat = slim.quality(1), fat.quality(1)
        assert q_fat.playout_delay == pytest.approx(0.22)
        assert q_fat.mouth_to_ear_delay == pytest.approx(q_fat.mean_delay + 0.22)
        assert q_fat.mos < q_slim.mos

    def test_clean_two_node_stream_is_toll_quality(self, sim, medium):
        tx, rx = build_pair(sim, medium)
        tx.start_sending()
        sim.run(10.0)
        quality = rx.quality(expected_override=tx.packets_sent)
        assert quality.mos > 4.0
        assert quality.packets_recovered == 0


def test_score_stream_playout_delay_lowers_mos():
    """Pre-fix-failing form of the E-model accounting bug: the same stream
    measured behind a 200 ms jitter buffer must score strictly worse."""
    from repro.rtp import score_stream

    kwargs = dict(
        codec=G711,
        packets_expected=100,
        packets_received=100,
        packets_played=100,
        delays=[0.05] * 100,
        jitter=0.002,
    )
    unbuffered = score_stream(**kwargs)
    buffered = score_stream(**kwargs, playout_delay=0.2)
    assert unbuffered.mouth_to_ear_delay == pytest.approx(0.05)
    assert buffered.mouth_to_ear_delay == pytest.approx(0.25)
    assert buffered.mos < unbuffered.mos
