"""Behavioural tests for the softphone (Figure 2 contract, media, history)."""

import pytest

from repro.core import AnswerMode, SipAccount, SiphocStack
from repro.errors import ConfigError
from repro.netsim import Node, Simulator, Stats, WirelessMedium, manet_ip, place_chain
from repro.rtp import G729
from repro.sip import CallState


def build(n=2, seed=61, **phone_kwargs):
    sim = Simulator(seed=seed)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    stacks = []
    for index in range(n):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        stacks.append(SiphocStack(node, routing="aodv").start())
    place_chain([s.node for s in stacks], 100.0)
    return sim, stats, stacks


class TestConfiguration:
    def test_figure2_account_defaults_to_localhost_proxy(self):
        account = SipAccount(username="alice", domain="voicehoc.ch")
        assert account.outbound_proxy == "localhost"
        assert account.uses_local_proxy
        assert str(account.aor) == "sip:alice@voicehoc.ch"

    def test_invalid_accounts_rejected(self):
        with pytest.raises(ConfigError):
            SipAccount(username="", domain="voicehoc.ch")
        with pytest.raises(ConfigError):
            SipAccount(username="alice", domain="")

    def test_add_phone_requires_identity(self):
        sim, stats, stacks = build(n=1)
        with pytest.raises(ConfigError):
            stacks[0].add_phone()


class TestCallHistory:
    def test_outgoing_record_fields(self):
        sim, stats, stacks = build()
        alice = stacks[0].add_phone(username="alice")
        bob = stacks[1].add_phone(username="bob")
        sim.run(2.0)
        alice.place_call("sip:bob@voicehoc.ch", duration=4.0)
        sim.run(20.0)
        record = alice.history[0]
        assert record.direction == "out"
        assert record.peer == "sip:bob@voicehoc.ch"
        assert record.established
        assert record.setup_delay is not None and record.setup_delay < 3.0
        assert record.talk_time == pytest.approx(4.0, abs=0.5)
        assert record.final_state == "terminated"

    def test_incoming_record(self):
        sim, stats, stacks = build()
        alice = stacks[0].add_phone(username="alice")
        bob = stacks[1].add_phone(username="bob")
        sim.run(2.0)
        alice.place_call("sip:bob@voicehoc.ch", duration=2.0)
        sim.run(15.0)
        record = bob.history[0]
        assert record.direction == "in"
        assert "alice" in record.peer
        assert record.established

    def test_established_and_failed_partition(self):
        sim, stats, stacks = build()
        alice = stacks[0].add_phone(username="alice")
        bob = stacks[1].add_phone(username="bob")
        sim.run(2.0)
        alice.place_call("sip:bob@voicehoc.ch", duration=2.0)
        sim.run(15.0)
        alice.place_call("sip:ghost@voicehoc.ch")
        sim.run(30.0)
        assert len(alice.established_calls()) == 1
        assert len(alice.failed_calls()) == 1


class TestAnswerModes:
    def test_manual_mode_waits_for_app(self):
        sim, stats, stacks = build()
        alice = stacks[0].add_phone(username="alice")
        bob = stacks[1].add_phone(username="bob", answer_mode=AnswerMode.MANUAL)
        pending = []
        bob.on_incoming = pending.append
        sim.run(2.0)
        states = []
        alice.place_call("sip:bob@voicehoc.ch", on_state=lambda c: states.append(c.state))
        sim.run(5.0)
        assert states[-1] == CallState.RINGING
        assert pending
        pending[0].answer()
        sim.run(8.0)
        assert states[-1] == CallState.ESTABLISHED

    def test_reject_mode(self):
        sim, stats, stacks = build()
        alice = stacks[0].add_phone(username="alice")
        stacks[1].add_phone(username="bob", answer_mode=AnswerMode.REJECT)
        sim.run(2.0)
        alice.place_call("sip:bob@voicehoc.ch")
        sim.run(15.0)
        assert alice.history[0].failure_status == 486


class TestMedia:
    def test_quality_recorded_after_call(self):
        sim, stats, stacks = build()
        alice = stacks[0].add_phone(username="alice")
        bob = stacks[1].add_phone(username="bob")
        sim.run(2.0)
        alice.place_call("sip:bob@voicehoc.ch", duration=10.0)
        sim.run(30.0)
        for phone in (alice, bob):
            quality = phone.history[0].quality
            assert quality is not None
            assert quality.mos > 4.0
            assert quality.packets_played > 450

    def test_codec_negotiation_g729(self):
        sim, stats, stacks = build()
        alice = stacks[0].add_phone(username="alice", codec=G729)
        bob = stacks[1].add_phone(username="bob", codec=G729)
        sim.run(2.0)
        alice.place_call("sip:bob@voicehoc.ch", duration=5.0)
        sim.run(20.0)
        quality = bob.history[0].quality
        assert quality is not None
        assert quality.codec_name == "G729"
        # G.729's codec impairment caps MOS below G.711's ceiling.
        assert quality.mos < 4.2

    def test_media_disabled(self):
        sim, stats, stacks = build()
        alice = stacks[0].add_phone(username="alice", media=False)
        bob = stacks[1].add_phone(username="bob", media=False)
        sim.run(2.0)
        alice.place_call("sip:bob@voicehoc.ch", duration=3.0)
        sim.run(15.0)
        assert alice.history[0].established
        assert alice.history[0].quality is None
        assert stats.traffic_packets("rtp") == 0

    def test_rtp_flows_between_negotiated_ports(self):
        sim, stats, stacks = build()
        alice = stacks[0].add_phone(username="alice")
        bob = stacks[1].add_phone(username="bob")
        sim.run(2.0)
        alice.place_call("sip:bob@voicehoc.ch", duration=5.0)
        sim.run(20.0)
        assert stats.traffic_packets("rtp") > 400
