"""Media-plane negotiation through the softphone and scenario layers (§5j):
RFC 2198 runs only when both ends negotiated it in SDP, and the
``ManetConfig`` media knobs flow into every phone the scenario builds."""

import pytest

from repro.core import SiphocStack
from repro.errors import ConfigError
from repro.netsim import Node, Simulator, Stats, WirelessMedium, manet_ip, place_chain
from repro.rtp import (
    COMFORT_NOISE_PAYLOAD_TYPE,
    RED_PAYLOAD_TYPE,
    TELEPHONE_EVENT_PAYLOAD_TYPE,
)
from repro.scenarios import ManetConfig, ManetScenario


def build(n=2, seed=61):
    sim = Simulator(seed=seed)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    stacks = []
    for index in range(n):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        stacks.append(SiphocStack(node, routing="aodv").start())
    place_chain([s.node for s in stacks], 100.0)
    return sim, stats, stacks


def active_session(phone):
    return next(iter(phone._media_sessions.values()))


class TestRedNegotiation:
    def call_sessions(self, caller_red, callee_red):
        sim, stats, stacks = build()
        alice = stacks[0].add_phone(username="alice", redundancy=caller_red)
        bob = stacks[1].add_phone(username="bob", redundancy=callee_red)
        sim.run(2.0)
        alice.place_call("sip:bob@voicehoc.ch", duration=6.0)
        sim.run(4.0)  # mid-call: media sessions are live
        return active_session(alice), active_session(bob)

    def test_both_ends_capable_enables_redundancy(self):
        tx, rx = self.call_sessions(2, 2)
        assert tx.redundancy == 2
        assert rx.redundancy == 2

    def test_callee_without_red_disables_it_everywhere(self):
        tx, rx = self.call_sessions(2, 0)
        assert tx.redundancy == 0
        assert rx.redundancy == 0

    def test_caller_without_red_disables_it_everywhere(self):
        tx, rx = self.call_sessions(0, 2)
        assert tx.redundancy == 0
        assert rx.redundancy == 0

    def test_clean_channel_call_records_no_recovery(self):
        sim, stats, stacks = build()
        alice = stacks[0].add_phone(username="alice", redundancy=2)
        bob = stacks[1].add_phone(username="bob", redundancy=2)
        sim.run(2.0)
        alice.place_call("sip:bob@voicehoc.ch", duration=4.0)
        sim.run(20.0)
        quality = alice.history[0].quality
        assert quality is not None
        assert quality.packets_recovered == 0
        assert quality.mos > 4.0


class TestExtensionPayloads:
    def test_all_extensions_advertised(self):
        sim, stats, stacks = build(n=1)
        phone = stacks[0].add_phone(
            username="alice", redundancy=1, vad=True, dtmf=True
        )
        assert phone._extension_payloads() == [
            RED_PAYLOAD_TYPE,
            COMFORT_NOISE_PAYLOAD_TYPE,
            TELEPHONE_EVENT_PAYLOAD_TYPE,
        ]

    def test_defaults_advertise_nothing(self):
        sim, stats, stacks = build(n=1)
        phone = stacks[0].add_phone(username="alice")
        assert phone._extension_payloads() == []


class TestScenarioMediaKnobs:
    def make_scenario(self, **config_kwargs):
        scenario = ManetScenario(
            ManetConfig(n_nodes=2, topology="chain", routing="aodv", **config_kwargs)
        )
        scenario.start()
        return scenario

    def test_knobs_become_phone_defaults(self):
        scenario = self.make_scenario(
            media_jitter_policy="adaptive", media_redundancy=2, media_vad=True
        )
        phone = scenario.add_phone(0, "alice")
        assert phone.redundancy == 2
        assert phone.vad is True
        assert phone.jitter_policy is not None
        assert phone.jitter_policy.name == "adaptive"
        scenario.stop()

    def test_explicit_phone_kwargs_win(self):
        scenario = self.make_scenario(media_redundancy=2)
        phone = scenario.add_phone(0, "alice", redundancy=0)
        assert phone.redundancy == 0
        scenario.stop()

    def test_defaults_leave_phones_untouched(self):
        scenario = self.make_scenario()
        phone = scenario.add_phone(0, "alice")
        assert phone.redundancy == 0
        assert phone.vad is False
        assert phone.jitter_policy is None
        scenario.stop()

    def test_unknown_policy_name_rejected(self):
        scenario = self.make_scenario(media_jitter_policy="psychic")
        with pytest.raises(ConfigError):
            scenario.add_phone(0, "alice")
        scenario.stop()

    def test_aodv_net_diameter_flows_into_the_stacks(self):
        scenario = self.make_scenario(aodv_net_diameter=2)
        daemon = scenario.stacks[0].routing
        assert daemon.net_traversal_time == pytest.approx(2 * 0.04 * 2)
        scenario.stop()

    def test_default_diameter_keeps_the_rfc_horizon(self):
        scenario = self.make_scenario()
        daemon = scenario.stacks[0].routing
        assert daemon.net_traversal_time == pytest.approx(2.8)
        scenario.stop()
