"""Behavioural tests for the SIPHoc proxy (registration, routing, WAN leg)."""

import pytest

from repro.core import SipAccount, SiphocStack
from repro.netsim import (
    InternetCloud,
    Node,
    Simulator,
    Stats,
    WirelessMedium,
    manet_ip,
    place_chain,
)
from repro.sip import CallState
from repro.slp.service import SERVICE_SIP_CONTACT


def build_manet(n=3, seed=51, gateway=False, providers=(), strict_providers=()):
    sim = Simulator(seed=seed)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    cloud = None
    provider_objs = {}
    if gateway or providers or strict_providers:
        cloud = InternetCloud(sim, stats=stats)
        from repro.core import SipProvider

        for domain in providers:
            provider_objs[domain] = SipProvider(cloud, domain)
        for domain in strict_providers:
            provider_objs[domain] = SipProvider(cloud, domain, requires_outbound_proxy=True)
    nodes = []
    for index in range(n):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        nodes.append(node)
    place_chain(nodes, 100.0)
    if gateway:
        cloud.attach(nodes[-1])
    stacks = [SiphocStack(node, routing="aodv", cloud=cloud).start() for node in nodes]
    return sim, stats, cloud, nodes, stacks, provider_objs


class TestRegistration:
    def test_register_advertises_contact_via_slp(self):
        sim, stats, cloud, nodes, stacks, _ = build_manet()
        phone = stacks[0].add_phone(username="alice")
        sim.run(2.0)
        assert phone.registered
        local = stacks[0].manet_slp.local_services()
        assert any(
            entry.attributes.get("user") == "sip:alice@voicehoc.ch" for entry in local
        )
        # The advertised endpoint is the proxy, not the softphone.
        entry = local[0]
        assert entry.url.port == stacks[0].proxy.port

    def test_unregister_withdraws_advert(self):
        sim, stats, cloud, nodes, stacks, _ = build_manet()
        phone = stacks[0].add_phone(username="alice")
        sim.run(2.0)
        phone.ua.unregister()
        sim.run(4.0)
        assert not any(
            e.url.service_type == SERVICE_SIP_CONTACT
            for e in stacks[0].manet_slp.local_services()
        )

    def test_two_phones_one_node(self):
        sim, stats, cloud, nodes, stacks, _ = build_manet()
        alice = stacks[0].add_phone(username="alice")
        carol = stacks[0].add_phone(username="carol")
        sim.run(2.0)
        assert alice.registered and carol.registered
        states = []
        alice.place_call("sip:carol@voicehoc.ch", duration=2.0,
                         on_state=lambda c: states.append(c.state))
        sim.run(12.0)
        assert CallState.ESTABLISHED in states


class TestCallRouting:
    def test_manet_call_via_slp(self):
        sim, stats, cloud, nodes, stacks, _ = build_manet()
        alice = stacks[0].add_phone(username="alice")
        bob = stacks[2].add_phone(username="bob")
        sim.run(2.0)
        record = None
        alice.place_call("sip:bob@voicehoc.ch", duration=3.0)
        sim.run(20.0)
        record = alice.history[0]
        assert record.established
        assert record.final_state == "terminated"
        assert stats.count("siphoc.routed_in_manet") >= 1

    def test_unknown_user_gets_404(self):
        sim, stats, cloud, nodes, stacks, _ = build_manet()
        alice = stacks[0].add_phone(username="alice")
        sim.run(2.0)
        alice.place_call("sip:ghost@voicehoc.ch")
        sim.run(20.0)
        record = alice.history[0]
        assert record.final_state == "failed"
        assert record.failure_status == 404

    def test_busy_callee_propagates_486(self):
        from repro.core import AnswerMode

        sim, stats, cloud, nodes, stacks, _ = build_manet()
        alice = stacks[0].add_phone(username="alice")
        bob = stacks[2].add_phone(username="bob", answer_mode=AnswerMode.REJECT)
        sim.run(2.0)
        alice.place_call("sip:bob@voicehoc.ch")
        sim.run(20.0)
        assert alice.history[0].failure_status == 486


class TestInternetIntegration:
    def test_upstream_registration_through_gateway(self):
        sim, stats, cloud, nodes, stacks, providers = build_manet(
            gateway=True, providers=("siphoc.ch",)
        )
        alice = stacks[0].add_phone(account=SipAccount(username="alice", domain="siphoc.ch"))
        sim.run(20.0)
        assert stacks[0].internet_available
        assert stacks[0].proxy.upstream_registrations.get("sip:alice@siphoc.ch") is True
        provider = providers["siphoc.ch"]
        contacts = provider.location.lookup("sip:alice@siphoc.ch", sim.now)
        assert contacts
        # The provider-side binding points at the proxy's tunnel endpoint.
        assert contacts[0].host == stacks[0].connection.tunnel_ip

    def test_call_to_internet_user(self):
        sim, stats, cloud, nodes, stacks, providers = build_manet(
            gateway=True, providers=("siphoc.ch",)
        )
        carol = providers["siphoc.ch"].create_user("carol")
        carol.on_invite = lambda call: (call.ring(), sim.schedule(0.2, call.answer))
        alice = stacks[0].add_phone(account=SipAccount(username="alice", domain="siphoc.ch"))
        sim.run(20.0)
        alice.place_call("sip:carol@siphoc.ch", duration=3.0)
        sim.run(50.0)
        record = alice.history[0]
        assert record.established and record.final_state == "terminated"
        assert stats.count("siphoc.routed_to_internet") >= 1

    def test_call_from_internet_user(self):
        sim, stats, cloud, nodes, stacks, providers = build_manet(
            gateway=True, providers=("siphoc.ch",)
        )
        carol = providers["siphoc.ch"].create_user("carol")
        alice = stacks[0].add_phone(account=SipAccount(username="alice", domain="siphoc.ch"))
        sim.run(20.0)
        states = []
        call = carol.call("sip:alice@siphoc.ch", on_state=lambda c: states.append(c.state))
        sim.run(40.0)
        assert CallState.ESTABLISHED in states
        call.hangup()
        sim.run(45.0)
        assert states[-1] == CallState.TERMINATED

    def test_manet_resolution_preferred_over_internet(self):
        """A user reachable in the MANET is called directly, not via gateway."""
        sim, stats, cloud, nodes, stacks, providers = build_manet(
            gateway=True, providers=("siphoc.ch",)
        )
        alice = stacks[0].add_phone(account=SipAccount(username="alice", domain="siphoc.ch"))
        bob = stacks[1].add_phone(account=SipAccount(username="bob", domain="siphoc.ch"))
        sim.run(20.0)
        alice.place_call("sip:bob@siphoc.ch", duration=2.0)
        sim.run(40.0)
        assert alice.history[0].established
        assert stats.count("siphoc.routed_in_manet") >= 1
        assert stats.count("siphoc.routed_to_internet") == 0


class TestPolyphoneCase:
    def test_strict_provider_rejects_default_path(self):
        sim, stats, cloud, nodes, stacks, providers = build_manet(
            gateway=True, strict_providers=("polyphone.ethz.ch",)
        )
        dave = providers["polyphone.ethz.ch"].create_user("dave")
        alice = stacks[0].add_phone(
            account=SipAccount(username="alice", domain="polyphone.ethz.ch")
        )
        sim.run(20.0)
        assert (
            stacks[0].proxy.upstream_registrations.get("sip:alice@polyphone.ethz.ch")
            is False
        )
        alice.place_call("sip:dave@polyphone.ethz.ch")
        sim.run(40.0)
        assert alice.history[0].failure_status == 403

    def test_future_work_fix_with_configured_sbc(self):
        sim, stats, cloud, nodes, stacks, providers = build_manet(
            gateway=True, strict_providers=("polyphone.ethz.ch",)
        )
        dave = providers["polyphone.ethz.ch"].create_user("dave")
        dave.on_invite = lambda call: (call.ring(), sim.schedule(0.2, call.answer))
        account = SipAccount(
            username="alice",
            domain="polyphone.ethz.ch",
            provider_outbound_proxy="sbc.polyphone.ethz.ch",
        )
        alice = stacks[0].add_phone(account=account)
        sim.run(20.0)
        assert (
            stacks[0].proxy.upstream_registrations.get("sip:alice@polyphone.ethz.ch")
            is True
        )
        alice.place_call("sip:dave@polyphone.ethz.ch", duration=2.0)
        sim.run(50.0)
        assert alice.history[0].established
