"""Tests for the boundary-crossing media relay (SDP rewriting + pumping)."""

import pytest

from repro.core import SipAccount, SiphocStack
from repro.core.media_relay import MediaRelay
from repro.netsim import (
    InternetCloud,
    Node,
    Simulator,
    Stats,
    WirelessMedium,
    manet_ip,
    place_chain,
)
from repro.sip import SessionDescription, parse_sdp


class TestSdpRewriting:
    @pytest.fixture
    def relay(self, sim):
        stats = Stats()
        medium = WirelessMedium(sim, stats=stats)
        node = Node(sim, 0, manet_ip(0), stats=stats)
        node.join_medium(medium)
        return MediaRelay(node)

    def test_offer_rewritten_to_b_side(self, relay):
        offer = SessionDescription.offer("192.168.0.1", 16384).serialize()
        rewritten = relay.rewrite_offer("cid-1", offer, "192.168.0.1", "10.0.0.9")
        sdp = parse_sdp(rewritten)
        assert sdp.connection_address == "10.0.0.9"
        session = relay.session_for("cid-1")
        assert session is not None
        assert sdp.audio.port == session.b_port
        assert session.a_remote == ("192.168.0.1", 16384)

    def test_answer_rewritten_to_a_side(self, relay):
        offer = SessionDescription.offer("192.168.0.1", 16384).serialize()
        relay.rewrite_offer("cid-1", offer, "192.168.0.1", "10.0.0.9")
        answer = SessionDescription.offer("10.0.0.3", 20000).serialize()
        rewritten = relay.rewrite_answer("cid-1", answer)
        sdp = parse_sdp(rewritten)
        session = relay.session_for("cid-1")
        assert sdp.connection_address == "192.168.0.1"
        assert sdp.audio.port == session.a_port
        assert session.b_remote == ("10.0.0.3", 20000)

    def test_answer_without_session_passthrough(self, relay):
        answer = SessionDescription.offer("10.0.0.3", 20000).serialize()
        assert relay.rewrite_answer("unknown-cid", answer) == answer

    def test_malformed_body_passthrough(self, relay):
        assert relay.rewrite_offer("cid", b"not sdp at all", "a", "b") == b"not sdp at all"
        assert relay.session_for("cid") is None

    def test_codec_payloads_preserved(self, relay):
        offer = SessionDescription.offer("192.168.0.1", 16384, payload_types=[18]).serialize()
        rewritten = relay.rewrite_offer("cid-1", offer, "192.168.0.1", "10.0.0.9")
        assert parse_sdp(rewritten).audio.payload_types == [18]

    def test_close_session_releases_ports(self, relay):
        offer = SessionDescription.offer("192.168.0.1", 16384).serialize()
        relay.rewrite_offer("cid-1", offer, "192.168.0.1", "10.0.0.9")
        assert relay.active_sessions == 1
        relay.close_session("cid-1")
        assert relay.active_sessions == 0

    def test_same_call_id_reuses_session(self, relay):
        offer = SessionDescription.offer("192.168.0.1", 16384).serialize()
        relay.rewrite_offer("cid-1", offer, "192.168.0.1", "10.0.0.9")
        relay.rewrite_offer("cid-1", offer, "192.168.0.1", "10.0.0.9")
        assert relay.active_sessions == 1


class TestEndToEndMedia:
    def test_bidirectional_media_across_gateway(self):
        sim = Simulator(seed=77)
        stats = Stats()
        medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
        cloud = InternetCloud(sim, stats=stats)
        from repro.core import SipProvider

        provider = SipProvider(cloud, "siphoc.ch")
        nodes = []
        for index in range(3):
            node = Node(sim, index, manet_ip(index), stats=stats)
            node.join_medium(medium)
            nodes.append(node)
        place_chain(nodes, 100.0)
        cloud.attach(nodes[-1])
        stacks = [SiphocStack(node, routing="aodv", cloud=cloud).start() for node in nodes]
        carol = provider.create_softphone("carol")
        alice = stacks[0].add_phone(account=SipAccount(username="alice", domain="siphoc.ch"))
        sim.run(20.0)
        alice.place_call("sip:carol@siphoc.ch", duration=8.0)
        sim.run(60.0)
        # BOTH directions measured: alice heard carol and vice versa.
        for phone in (alice, carol):
            record = phone.history[0]
            assert record.established, phone.aor
            assert record.quality is not None, f"{phone.aor} got no media"
            assert record.quality.mos > 3.5
        # The relay carried the stream.
        assert stats.count("mediarelay.sessions_opened") >= 1

    def test_in_manet_media_stays_direct(self):
        sim = Simulator(seed=78)
        stats = Stats()
        medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
        nodes = []
        for index in range(2):
            node = Node(sim, index, manet_ip(index), stats=stats)
            node.join_medium(medium)
            nodes.append(node)
        place_chain(nodes, 100.0)
        stacks = [SiphocStack(node, routing="aodv").start() for node in nodes]
        alice = stacks[0].add_phone(username="alice")
        bob = stacks[1].add_phone(username="bob")
        sim.run(2.0)
        alice.place_call("sip:bob@voicehoc.ch", duration=3.0)
        sim.run(15.0)
        assert alice.history[0].established
        assert stats.count("mediarelay.sessions_opened") == 0
