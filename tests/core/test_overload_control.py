"""Overload-control unit tests (§5f): admission 503s, seeded retry jitter,
tunnel lease caps and SLP re-advertisement rate limiting."""

import pytest

from repro.core import ManetSlp, ManetSlpConfig, TunnelClient, TunnelServer, make_handler
from repro.core.connection import backoff_with_jitter, node_backoff_rng
from repro.netsim import (
    InternetCloud,
    Node,
    Simulator,
    Stats,
    WirelessMedium,
    manet_ip,
)
from repro.routing import Aodv
from repro.sip import AdmissionControl, CallState, ProxyCore, UserAgent
from repro.slp.service import SERVICE_SIP_CONTACT
from tests.conftest import make_chain


# ---------------------------------------------------------------------------
# Proxy admission control
# ---------------------------------------------------------------------------


@pytest.fixture
def triangle(sim, medium):
    """alice -- proxy -- bob, all in radio range with static routes."""
    nodes = make_chain(sim, medium, 3, spacing=50.0, static_routes=True)
    a, p, b = nodes
    alice = UserAgent(a, "sip:alice@voicehoc.ch", port=5070, outbound_proxy=(p.ip, 5060))
    bob = UserAgent(b, "sip:bob@voicehoc.ch", port=5070)
    proxy = ProxyCore(p, port=5060)
    proxy.route_fn = lambda ctx: ctx.forward((b.ip, 5070))
    return a, p, b, alice, bob, proxy


def advance(sim, dt):
    sim.run(sim.now + dt)


def ring_only(call):
    call.ring()  # never answers: the INVITE stays inflight at the proxy


def auto_answer(sim):
    def handler(call):
        call.ring()
        sim.schedule(0.2, call.answer)

    return handler


class TestAdmissionControl:
    def test_watermark_sheds_with_503_and_retry_after(self, sim, triangle):
        a, p, b, alice, bob, proxy = triangle
        proxy.admission = AdmissionControl(max_inflight=1, retry_after=9)
        bob.on_invite = ring_only
        alice.call("sip:bob@voicehoc.ch")
        advance(sim, 1.0)
        assert proxy.inflight_forwards == 1
        second = alice.call("sip:bob@voicehoc.ch")
        advance(sim, 2.0)
        assert second.state is CallState.FAILED
        assert second.failure_status == 503
        assert second.retry_after == 9
        assert proxy.rejected_overload == 1
        assert p.stats.count("sip.admission_rejected") == 1
        # Rejections themselves must not inflate the pressure gauge.
        assert proxy.inflight_forwards == 1

    def test_gauge_settles_on_final_response(self, sim, triangle):
        a, p, b, alice, bob, proxy = triangle
        proxy.admission = AdmissionControl(max_inflight=1)
        bob.on_invite = auto_answer(sim)
        first = alice.call("sip:bob@voicehoc.ch")
        advance(sim, 3.0)
        assert first.state is CallState.ESTABLISHED
        assert proxy.inflight_forwards == 0
        second = alice.call("sip:bob@voicehoc.ch")
        advance(sim, 3.0)
        assert second.state is CallState.ESTABLISHED
        assert proxy.rejected_overload == 0

    def test_established_dialogs_survive_the_watermark(self, sim, triangle):
        a, p, b, alice, bob, proxy = triangle
        proxy.admission = AdmissionControl(max_inflight=1)
        bob.on_invite = auto_answer(sim)
        first = alice.call("sip:bob@voicehoc.ch")
        advance(sim, 3.0)
        assert first.state is CallState.ESTABLISHED
        bob.on_invite = ring_only
        alice.call("sip:bob@voicehoc.ch")  # holds the gauge at the watermark
        advance(sim, 1.0)
        assert proxy.inflight_forwards == 1
        # In-dialog traffic (the BYE) passes while new INVITEs would shed.
        first.hangup()
        advance(sim, 3.0)
        assert first.state is CallState.TERMINATED

    def test_queue_depth_watermark_rejects(self, sim, triangle):
        a, p, b, alice, bob, proxy = triangle
        p.configure_tx_queue(4)
        # Occupancy fraction 0.0 means "shed whenever a TX queue exists":
        # the empty queue (depth 0 >= 0.0 * 4) already trips the watermark.
        proxy.admission = AdmissionControl(queue_watermark=0.0)
        bob.on_invite = auto_answer(sim)
        call = alice.call("sip:bob@voicehoc.ch")
        advance(sim, 2.0)
        assert call.failure_status == 503

    def test_queue_watermark_ignored_without_a_queue(self, sim, triangle):
        a, p, b, alice, bob, proxy = triangle
        assert p.tx_queue is None
        proxy.admission = AdmissionControl(queue_watermark=0.0)
        bob.on_invite = auto_answer(sim)
        call = alice.call("sip:bob@voicehoc.ch")
        advance(sim, 3.0)
        assert call.state is CallState.ESTABLISHED


# ---------------------------------------------------------------------------
# Seeded retry backoff jitter
# ---------------------------------------------------------------------------


class _ZeroRng:
    def random(self):
        return 0.0


class _MaxRng:
    def random(self):
        return 1.0


class TestBackoffJitter:
    def test_same_node_reproducible(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        first = [node_backoff_rng(a).random() for _ in range(3)]
        second = [node_backoff_rng(a).random() for _ in range(3)]
        assert first == second == [node_backoff_rng(a).random() for _ in range(3)]

    def test_same_seed_stable_across_simulations(self):
        draws = []
        for _ in range(2):
            node = Node(Simulator(seed=9), 3, manet_ip(3))
            rng = node_backoff_rng(node)
            draws.append([rng.random() for _ in range(4)])
        assert draws[0] == draws[1]

    def test_different_nodes_desynchronize(self, sim, medium):
        a, b = make_chain(sim, medium, 2)
        assert node_backoff_rng(a).random() != node_backoff_rng(b).random()

    def test_salt_separates_streams(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        assert node_backoff_rng(a, salt=0).random() != node_backoff_rng(a, salt=1).random()

    def test_exponential_shape_without_jitter(self):
        rng = _ZeroRng()
        assert backoff_with_jitter(2.0, 1, 60.0, rng) == 2.0
        assert backoff_with_jitter(2.0, 2, 60.0, rng) == 4.0
        assert backoff_with_jitter(2.0, 3, 60.0, rng) == 8.0

    def test_cap_applies_before_jitter(self):
        assert backoff_with_jitter(2.0, 10, 60.0, _ZeroRng()) == 60.0
        assert backoff_with_jitter(2.0, 10, 60.0, _MaxRng()) == 60.0 * 1.5

    def test_jitter_stretches_at_most_half(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        rng = node_backoff_rng(a)
        for failures in range(1, 8):
            delay = backoff_with_jitter(1.0, failures, 30.0, rng)
            bare = min(1.0 * 2 ** (failures - 1), 30.0)
            assert bare <= delay <= bare * 1.5


# ---------------------------------------------------------------------------
# Tunnel lease capacity
# ---------------------------------------------------------------------------


@pytest.fixture
def capped_gateway(sim):
    """Two MANET clients in a chain behind a gateway with max_leases=1."""
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    c1, c2, gw = make_chain(sim, medium, 3, static_routes=True)
    cloud = InternetCloud(sim, stats=stats)
    cloud.attach(gw)
    server = TunnelServer(gw, cloud, max_leases=1)
    return stats, c1, c2, gw, server


class TestLeaseCapacity:
    def test_second_client_refused_with_nak(self, sim, capped_gateway):
        stats, c1, c2, gw, server = capped_gateway
        outcomes = []
        TunnelClient(c1, gw.ip).connect(lambda ok: outcomes.append(("c1", ok)))
        advance(sim, 3.0)
        TunnelClient(c2, gw.ip).connect(lambda ok: outcomes.append(("c2", ok)))
        advance(sim, 3.0)
        assert outcomes == [("c1", True), ("c2", False)]
        assert len(server.active_leases) == 1
        assert stats.count("tunnel.leases_rejected") == 1

    def test_renewal_passes_at_capacity(self, sim, capped_gateway):
        stats, c1, c2, gw, server = capped_gateway
        client = TunnelClient(c1, gw.ip)
        client.connect()
        advance(sim, 3.0)
        first_expiry = server.active_leases[0].expires_at
        advance(sim, TunnelClient.RENEW_INTERVAL + 3.0)
        assert server.active_leases[0].expires_at > first_expiry
        assert stats.count("tunnel.leases_rejected") == 0

    def test_capacity_frees_on_disconnect(self, sim, capped_gateway):
        stats, c1, c2, gw, server = capped_gateway
        first = TunnelClient(c1, gw.ip)
        first.connect()
        advance(sim, 3.0)
        outcomes = []
        second = TunnelClient(c2, gw.ip)
        second.connect(outcomes.append)
        advance(sim, 3.0)
        assert outcomes == [False]
        first.disconnect()
        advance(sim, 2.0)
        second.connect(outcomes.append)
        advance(sim, 3.0)
        assert outcomes == [False, True]


# ---------------------------------------------------------------------------
# SLP re-advertisement rate limiting
# ---------------------------------------------------------------------------


def build_slp(config=None, seed=21):
    sim = Simulator(seed=seed)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    node = Node(sim, 0, manet_ip(0), stats=stats)
    node.join_medium(medium)
    daemon = Aodv(node)
    daemon.start()
    slp = ManetSlp(node, make_handler(daemon), config).start()
    return sim, stats, node, slp


def sip_url(node):
    return f"service:siphoc-sip://{node.ip}:5060"


class TestReadvertiseRateLimit:
    def test_first_registration_always_advertises(self):
        sim, stats, node, slp = build_slp(ManetSlpConfig(min_readvertise_interval=30.0))
        slp.register(sip_url(node), {"user": "sip:a@h"})
        assert stats.count("manetslp.adverts_suppressed") == 0

    def test_rearm_within_interval_suppressed_but_state_updates(self):
        sim, stats, node, slp = build_slp(
            ManetSlpConfig(min_readvertise_interval=30.0, refresh_interval=0)
        )
        slp.register(sip_url(node), {"user": "sip:a@h"})
        slp.register(sip_url(node), {"user": "sip:b@h"})
        assert stats.count("manetslp.adverts_suppressed") == 1
        # The local entry still carries the rearmed attributes.
        hits = slp.lookup_cached(SERVICE_SIP_CONTACT, "(user=sip:b@h)")
        assert len(hits) == 1

    def test_advertises_again_once_interval_elapses(self):
        sim, stats, node, slp = build_slp(
            ManetSlpConfig(min_readvertise_interval=5.0, refresh_interval=0)
        )
        slp.register(sip_url(node), {"user": "sip:a@h"})
        advance(sim, 6.0)
        slp.register(sip_url(node), {"user": "sip:a@h"})
        assert stats.count("manetslp.adverts_suppressed") == 0

    def test_default_config_never_suppresses(self):
        sim, stats, node, slp = build_slp()
        slp.register(sip_url(node), {"user": "sip:a@h"})
        slp.register(sip_url(node), {"user": "sip:a@h"})
        assert stats.count("manetslp.adverts_suppressed") == 0

    def test_periodic_refresh_respects_the_limit(self):
        sim, stats, node, slp = build_slp(
            ManetSlpConfig(min_readvertise_interval=30.0, refresh_interval=2.0)
        )
        slp.register(sip_url(node), {"user": "sip:a@h"})
        advance(sim, 7.0)  # several refresh ticks, all inside the interval
        assert stats.count("manetslp.adverts_suppressed") >= 2
