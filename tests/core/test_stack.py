"""Tests for the SiphocStack composition (the Figure 1 component set)."""

import pytest

from repro.core import SiphocStack, make_routing
from repro.errors import ConfigError
from repro.netsim import (
    InternetCloud,
    Node,
    Simulator,
    Stats,
    WirelessMedium,
    manet_ip,
)
from repro.routing import Aodv, Olsr


@pytest.fixture
def lone_node(sim):
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats)
    node = Node(sim, 0, manet_ip(0), stats=stats)
    node.join_medium(medium)
    return node


class TestComposition:
    def test_figure1_components_present(self, sim, lone_node):
        stack = SiphocStack(lone_node, routing="aodv")
        assert stack.routing is not None  # MANET routing
        assert stack.handler is not None  # routing handler plugin
        assert stack.manet_slp is not None  # MANET SLP
        assert stack.proxy is not None  # SIPHoc proxy
        assert stack.connection is not None  # Connection Provider
        assert stack.gateway is None  # no wired interface -> no Gateway Provider

    def test_gateway_component_on_wired_node(self, sim, lone_node):
        cloud = InternetCloud(sim)
        cloud.attach(lone_node)
        stack = SiphocStack(lone_node, routing="aodv", cloud=cloud)
        assert stack.gateway is not None
        assert stack.connection is None  # wired node does not tunnel

    def test_gateway_without_cloud_rejected(self, sim, lone_node):
        lone_node.wired_ip = "10.0.0.1"
        with pytest.raises(ConfigError):
            SiphocStack(lone_node, routing="aodv")

    def test_routing_selection(self, sim, lone_node):
        assert isinstance(make_routing(lone_node, "aodv"), Aodv)
        node2 = Node(sim, 1, manet_ip(1))
        assert isinstance(make_routing(node2, "olsr"), Olsr)
        node3 = Node(sim, 2, manet_ip(2))
        with pytest.raises(ConfigError):
            make_routing(node3, "dsr")

    def test_phone_ports_do_not_collide(self, sim, lone_node):
        stack = SiphocStack(lone_node, routing="aodv")
        p1 = stack.add_phone(username="a", register=False)
        p2 = stack.add_phone(username="b", register=False)
        assert p1.ua.transport.port != p2.ua.transport.port


class TestLifecycle:
    def test_start_is_idempotent(self, sim, lone_node):
        stack = SiphocStack(lone_node, routing="aodv")
        stack.start()
        stack.start()
        assert stack.routing.started

    def test_stop_halts_components(self, sim, lone_node):
        stack = SiphocStack(lone_node, routing="aodv").start()
        phone = stack.add_phone(username="alice", register=False)
        stack.stop()
        assert not stack.routing.started
        # Ports are released: a new stack can bind them again.
        SiphocStack(lone_node, routing="aodv")

    def test_stop_before_start_is_safe(self, sim, lone_node):
        SiphocStack(lone_node, routing="aodv").stop()

    def test_phone_added_before_start_registers_on_start(self, sim, lone_node):
        stack = SiphocStack(lone_node, routing="aodv")
        phone = stack.add_phone(username="alice")
        stack.start()
        sim.run(2.0)
        assert phone.registered
