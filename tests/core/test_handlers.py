"""Unit tests for the routing handler plugins and piggyback extensions."""

import pytest

from repro.core import (
    EXT_SLP_ADVERT,
    ManetSlp,
    ManetSlpConfig,
    advert_extension,
    decode_extension,
    is_slp_extension,
    make_handler,
    query_extension,
    reply_extension,
)
from repro.core.handlers import AodvHandler, OlsrHandler
from repro.netsim import (
    Node,
    PacketCapture,
    Simulator,
    Stats,
    WirelessMedium,
    manet_ip,
    place_chain,
)
from repro.routing import (
    OLSR_SLP,
    Aodv,
    Olsr,
    decode_aodv,
    decode_olsr_packet,
)
from repro.slp import SrvReg, SrvRply, SrvRqst, UrlEntry, decode_slp, encode_slp


class TestExtensionCodec:
    def test_advert_round_trip(self):
        reg = SrvReg(xid=1, entry=UrlEntry(url="service:x://h:1", lifetime=60, attributes=""))
        ext = advert_extension(reg)
        assert ext.ext_type == EXT_SLP_ADVERT
        assert is_slp_extension(ext)
        assert decode_extension(ext) == reg

    def test_query_and_reply(self):
        query = SrvRqst(xid=2, service_type="t", predicate="", requester="1.2.3.4")
        reply = SrvRply(xid=2, entries=[])
        assert decode_extension(query_extension(query)) == query
        assert decode_extension(reply_extension(reply)) == reply

    def test_foreign_extension_returns_none(self):
        from repro.routing import Extension

        assert decode_extension(Extension(0x42, b"whatever")) is None
        assert not is_slp_extension(Extension(0x42, b""))

    def test_corrupt_body_returns_none(self):
        from repro.routing import Extension

        assert decode_extension(Extension(EXT_SLP_ADVERT, b"\x00\x01garbage")) is None


def build(protocol, n=3, seed=31):
    sim = Simulator(seed=seed)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    nodes, daemons, slps = [], [], []
    for index in range(n):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        daemon = (Aodv if protocol == "aodv" else Olsr)(node)
        daemon.start()
        slps.append(ManetSlp(node, make_handler(daemon)).start())
        nodes.append(node)
        daemons.append(daemon)
    place_chain(nodes, 100.0)
    return sim, stats, medium, nodes, daemons, slps


class TestMakeHandler:
    def test_dispatch_by_daemon_type(self, sim):
        stats = Stats()
        medium = WirelessMedium(sim, stats=stats)
        node = Node(sim, 0, manet_ip(0), stats=stats)
        node.join_medium(medium)
        assert isinstance(make_handler(Aodv(node)), AodvHandler)
        node2 = Node(sim, 1, manet_ip(1), stats=stats)
        node2.join_medium(medium)
        assert isinstance(make_handler(Olsr(node2)), OlsrHandler)

    def test_unknown_daemon_rejected(self):
        with pytest.raises(TypeError):
            make_handler(object())


class TestAodvPiggybacking:
    def test_adverts_attached_to_outgoing_rreqs(self):
        sim, stats, medium, nodes, daemons, slps = build("aodv")
        capture = PacketCapture(port_filter={Aodv.port})
        medium.add_sniffer(capture.on_frame)
        slps[0].register(f"service:siphoc-sip://{nodes[0].ip}:5060", {"user": "sip:a@h"})
        daemons[0].discover(nodes[2].ip)  # emits an RREQ that carries the advert
        sim.run(3.0)
        carried = 0
        for frame in capture.frames:
            _, extensions = decode_aodv(frame.packet.data)
            carried += sum(1 for ext in extensions if ext.ext_type == EXT_SLP_ADVERT)
        assert carried >= 1

    def test_piggyback_budget_respected(self):
        config = ManetSlpConfig(piggyback_budget=2)
        sim = Simulator(seed=5)
        stats = Stats()
        medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
        nodes = []
        slps = []
        daemons = []
        for index in range(2):
            node = Node(sim, index, manet_ip(index), stats=stats)
            node.join_medium(medium)
            daemon = Aodv(node)
            daemon.start()
            slps.append(ManetSlp(node, make_handler(daemon), config).start())
            nodes.append(node)
            daemons.append(daemon)
        place_chain(nodes, 100.0)
        capture = PacketCapture(port_filter={Aodv.port})
        medium.add_sniffer(capture.on_frame)
        for index in range(6):
            slps[0].register(
                f"service:siphoc-sip://{nodes[0].ip}:{5060 + index}", {"user": f"sip:u{index}@h"}
            )
        daemons[0].discover(nodes[1].ip)
        sim.run(3.0)
        for frame in capture.frames:
            _, extensions = decode_aodv(frame.packet.data)
            adverts = [e for e in extensions if e.ext_type == EXT_SLP_ADVERT]
            assert len(adverts) <= 2

    def test_duplicate_queries_answered_once(self):
        sim, stats, medium, nodes, daemons, slps = build("aodv")
        slps[2].register(f"service:siphoc-sip://{nodes[2].ip}:5060", {"user": "sip:bob@h"})
        sim.run(0.2)
        results = []
        slps[0].find_services("siphoc-sip", "(user=sip:bob@h)", callback=results.append)
        sim.run(5.0)
        assert stats.count("manetslp.replies_sent") == 1

    def test_advert_redundancy_consumed(self):
        sim, stats, medium, nodes, daemons, slps = build("aodv", n=2)
        handler = slps[0].handler
        slps[0].register(f"service:siphoc-sip://{nodes[0].ip}:5060", {"user": "sip:a@h"})
        assert handler.pending_count() == 1
        # Default redundancy is 2: two carrier packets drain the queue.
        daemons[0].discover(nodes[1].ip)
        sim.run(1.0)
        daemons[0].discover("192.168.0.77")
        sim.run(8.0)
        assert handler.pending_count() == 0


class TestOlsrPiggybacking:
    def test_adverts_ride_hello_packets_as_type_130(self):
        sim, stats, medium, nodes, daemons, slps = build("olsr", n=2)
        sim.run(10.0)
        capture = PacketCapture(port_filter={Olsr.port})
        medium.add_sniffer(capture.on_frame)
        slps[0].register(f"service:siphoc-sip://{nodes[0].ip}:5060", {"user": "sip:a@h"})
        sim.run(14.0)
        slp_messages = []
        for frame in capture.frames:
            _, messages = decode_olsr_packet(frame.packet.data)
            slp_messages.extend(m for m in messages if m.msg_type == OLSR_SLP)
        assert slp_messages
        decoded = decode_slp(slp_messages[0].body)
        assert isinstance(decoded, SrvReg)

    def test_handler_dedupes_flooded_copies(self):
        sim, stats, medium, nodes, daemons, slps = build("olsr", n=3)
        sim.run(12.0)
        slps[0].register(f"service:siphoc-sip://{nodes[0].ip}:5060", {"user": "sip:a@h"})
        sim.run(30.0)
        # Entry learned despite many flooded copies; cache has exactly one.
        hits = slps[2].lookup_cached("siphoc-sip", "(user=sip:a@h)")
        assert len(hits) == 1
