"""Unit tests for component configuration."""

import pytest

from repro.core import ManetSlpConfig, SipAccount, SiphocConfig
from repro.errors import ConfigError
from repro.sip.auth import Credentials


class TestSipAccount:
    def test_figure2_defaults(self):
        account = SipAccount(username="alice", domain="voicehoc.ch")
        assert account.outbound_proxy == "localhost"
        assert account.outbound_proxy_port == 5060
        assert account.uses_local_proxy
        assert account.provider_outbound_proxy is None
        assert account.password is None
        assert account.credentials is None

    def test_aor(self):
        account = SipAccount(username="alice", domain="siphoc.ch")
        assert account.aor.address_of_record == "sip:alice@siphoc.ch"

    def test_credentials_derived_from_password(self):
        account = SipAccount(username="alice", domain="d", password="pw")
        assert account.credentials == Credentials("alice", "pw")

    def test_explicit_outbound_proxy_not_local(self):
        account = SipAccount(username="a", domain="d", outbound_proxy="10.0.0.1")
        assert not account.uses_local_proxy

    @pytest.mark.parametrize("field", ["username", "domain"])
    def test_required_fields(self, field):
        kwargs = {"username": "a", "domain": "d"}
        kwargs[field] = ""
        with pytest.raises(ConfigError):
            SipAccount(**kwargs)


class TestSiphocConfig:
    def test_defaults(self):
        config = SiphocConfig()
        assert config.proxy_port == 5060
        assert config.wan_port == 5061
        assert config.register_upstream is True
        assert isinstance(config.slp, ManetSlpConfig)

    def test_slp_config_is_independent(self):
        a = SiphocConfig()
        b = SiphocConfig()
        a.slp.advert_lifetime = 1.0
        assert b.slp.advert_lifetime != 1.0


class TestManetSlpConfig:
    def test_ablation_knobs_exist(self):
        config = ManetSlpConfig(
            advert_lifetime=10.0,
            refresh_interval=5.0,
            advert_redundancy=1,
            piggyback_budget=2,
            lookup_timeout=1.0,
            resolve_on_first=False,
        )
        assert config.piggyback_budget == 2
        assert not config.resolve_on_first
