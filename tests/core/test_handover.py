"""Mid-call multihomed handover: policy behaviour and failure drills (§5k).

Covers the HandoverPolicy end to end (the happy path rides the
repro.handover drill harness), the two required failure drills — peer
crash and MANET partition during the migration window — and the
ConnectionProvider cooldown-map pruning regression that the handover
work is layered on.
"""

from repro.core import ConnectionProvider, ManetSlp, make_handler
from repro.faults import FaultPlan
from repro.handover.harness import DrillConfig, run_drill
from repro.netsim import Node, Simulator, Stats, WirelessMedium, manet_ip, place_chain
from repro.routing import Aodv
from repro.scenarios import ManetConfig, ManetScenario
from repro.sip.ua import CallState


class TestFailedCooldownPrune:
    """Satellite: ConnectionProvider._failed must not grow without bound."""

    def build_provider(self, cooldown=5.0):
        sim = Simulator(seed=11)
        stats = Stats()
        medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
        node = Node(sim, 0, manet_ip(0), stats=stats)
        node.join_medium(medium)
        daemon = Aodv(node)
        daemon.start()
        slp = ManetSlp(node, make_handler(daemon)).start()
        provider = ConnectionProvider(
            node, slp, poll_interval=1.0, gateway_cooldown=cooldown
        ).start()
        return sim, provider

    def test_expired_entries_dropped_on_poll(self):
        sim, provider = self.build_provider(cooldown=5.0)
        provider._failed["10.0.0.9"] = sim.now + 5.0
        sim.run(sim.now + 10.0)  # idle polling, no gateways anywhere
        assert provider._failed == {}

    def test_live_entries_survive_the_prune(self):
        sim, provider = self.build_provider(cooldown=5.0)
        provider._failed["10.0.0.8"] = sim.now + 2.0
        provider._failed["10.0.0.9"] = sim.now + 1000.0
        sim.run(sim.now + 6.0)
        assert provider._failed == {"10.0.0.9": sim.now + 1000.0 - 6.0 + 0.0} or list(
            provider._failed
        ) == ["10.0.0.9"]


class TestMidCallHandover:
    """Happy path: the coverage-loss drill from the harness."""

    def test_call_survives_radio_loss(self):
        result = run_drill(DrillConfig(seed=7, handover=True))
        assert result.established
        assert result.survived
        assert result.succeeded == 1
        assert result.abandoned == 0
        # Same RtpSession object across the migration: SSRC, sequence
        # space and jitter buffer were never reset.
        assert result.ssrc_stable
        # The media gap stays under the policy's own RTP-silence trigger.
        assert result.media_gap_ms is not None and result.media_gap_ms < 1000.0

    def test_trace_ladder_records_the_migration(self):
        result = run_drill(DrillConfig(seed=7, handover=True))
        kinds = [line.split('"kind":"')[1].split('"')[0]
                 for line in result.trace_jsonl.splitlines()]
        for expected in (
            "fault.interface_down",
            "iface.down",
            "handover.trigger",
            "handover.attempt",
            "handover.complete",
            "handover.media_restored",
        ):
            assert expected in kinds, f"missing {expected} in {kinds}"

    def test_baseline_without_policy_dies(self):
        result = run_drill(DrillConfig(seed=7, handover=False))
        assert result.established
        assert not result.survived
        assert result.attempted == 0


def build_handover_scenario(plan, multihomed, seed=7, hops=3):
    from repro.core.config import HandoverConfig, SiphocConfig

    scenario = ManetScenario(
        ManetConfig(
            n_nodes=hops + 1,
            topology="chain",
            routing="aodv",
            seed=seed,
            multihomed=multihomed,
            siphoc=SiphocConfig(handover=HandoverConfig()),
            faults=plan,
            tracing=True,
        )
    )
    scenario.start()
    scenario.add_phone(0, "alice")
    scenario.add_phone(hops, "bob")
    return scenario


def establish_call(scenario, duration=16.0):
    scenario.converge(5.0)
    alice = scenario.phones["alice"]
    call = alice.place_call("sip:bob@voicehoc.ch", duration=duration)
    scenario.sim.run_until(
        lambda: call.state is CallState.ESTABLISHED, timeout=6.0, step=0.1
    )
    assert call.state is CallState.ESTABLISHED
    return alice, call


class TestCrashDuringHandover:
    """Peer dies as coverage is lost: the give-up deadline must fire."""

    def test_giveup_tears_the_call_down_cleanly(self):
        # Bob's node crashes just before alice's radio dies, so every
        # migration re-INVITE lands on a dead wired address.
        plan = FaultPlan().crash(11.5, 3).interface_down(12.0, 0)
        scenario = build_handover_scenario(plan, multihomed=(0, 3))
        alice, call = establish_call(scenario)
        # Run well past giveup_after (6 s) plus SIP Timer F (32 s).
        scenario.sim.run(60.0)
        policy = scenario.stacks[0].handover
        assert policy is not None
        assert policy.attempted >= 1
        assert policy.succeeded == 0
        assert policy.abandoned == 1
        assert policy.active_attempts == 0
        stats = scenario.stats.counters
        assert stats.get("handover.abandoned", 0) == 1
        abandoned = scenario.trace.select(kind="handover.abandoned")
        assert abandoned and abandoned[0].detail["cause"] == "deadline"
        # Multiple attempts were made inside the give-up budget.
        assert len(scenario.trace.select(kind="handover.attempt")) >= 2
        # Clean teardown: the call left ESTABLISHED via the policy's BYE;
        # Timer F has fired, so no SIP timers or RTP sessions leak.
        assert call.state is CallState.TERMINATED
        assert alice._media_sessions == {}
        assert alice.ua.transactions.active_transactions == 0
        scenario.stop()


class TestPartitionDuringHandover:
    """Coverage loss with no usable fallback: abandon, don't wedge."""

    def test_peer_without_alt_contact_hits_the_deadline(self):
        # Only alice is multihomed: bob never advertised a wired fallback
        # contact, so every migration attempt fails immediately. Alice is
        # cut off by a partition (radio still up — the neighbor-loss and
        # RTP-silence triggers carry this drill, not interface_down).
        plan = FaultPlan().partition(12.0, (0,), (1, 2, 3), name="drift")
        scenario = build_handover_scenario(plan, multihomed=(0,))
        alice, call = establish_call(scenario)
        scenario.sim.run(70.0)
        policy = scenario.stacks[0].handover
        assert policy is not None
        assert policy.attempted >= 1
        assert policy.succeeded == 0
        assert policy.abandoned == 1
        alice_ip = scenario.nodes[0].ip
        triggers = scenario.trace.select(kind="handover.trigger", node=alice_ip)
        assert triggers[0].detail["cause"] in ("neighbor_loss", "rtp_silence")
        abandoned = scenario.trace.select(kind="handover.abandoned", node=alice_ip)
        assert abandoned and abandoned[0].detail["cause"] == "deadline"
        # Bob's side (no wired uplink at all) abandons immediately too —
        # with its own distinct cause — instead of wedging.
        bob_abandoned = scenario.trace.select(
            kind="handover.abandoned", node=scenario.nodes[3].ip
        )
        assert bob_abandoned and bob_abandoned[0].detail["cause"] == "no_uplink"
        assert call.state is CallState.TERMINATED
        assert alice._media_sessions == {}
        assert alice.ua.transactions.active_transactions == 0
        # Recovery metrics recorded even for the failure path.
        assert scenario.stats.counters.get("handover.attempted", 0) >= 1
        scenario.stop()
