"""Instant messaging (SIP MESSAGE) through the SIPHoc infrastructure.

The paper's intro: any handheld becomes "a wireless phone and text
communicator simply by adding a small piece of software" — text rides the
same proxy + MANET SLP path as calls.
"""

import pytest

from repro.core import SipAccount, SiphocStack
from repro.netsim import (
    InternetCloud,
    Node,
    Simulator,
    Stats,
    WirelessMedium,
    manet_ip,
    place_chain,
)


def build(n=3, seed=81, gateway=False, providers=()):
    sim = Simulator(seed=seed)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    cloud = None
    provider_objs = {}
    if gateway or providers:
        cloud = InternetCloud(sim, stats=stats)
        from repro.core import SipProvider

        for domain in providers:
            provider_objs[domain] = SipProvider(cloud, domain)
    nodes = []
    for index in range(n):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        nodes.append(node)
    place_chain(nodes, 100.0)
    if gateway:
        cloud.attach(nodes[-1])
    stacks = [SiphocStack(node, routing="aodv", cloud=cloud).start() for node in nodes]
    return sim, stats, nodes, stacks, provider_objs


class TestManetMessaging:
    def test_text_delivered_across_manet(self):
        sim, stats, nodes, stacks, _ = build()
        alice = stacks[0].add_phone(username="alice")
        bob = stacks[2].add_phone(username="bob")
        sim.run(2.0)
        results = []
        alice.send_text("sip:bob@voicehoc.ch", "meet at the library?",
                        on_result=lambda ok, status: results.append((ok, status)))
        sim.run(10.0)
        assert results == [(True, 200)]
        assert len(bob.inbox) == 1
        assert bob.inbox[0].text == "meet at the library?"
        assert bob.inbox[0].peer == "sip:alice@voicehoc.ch"
        assert alice.outbox[0].delivered is True

    def test_text_to_unknown_user_fails_with_404(self):
        sim, stats, nodes, stacks, _ = build()
        alice = stacks[0].add_phone(username="alice")
        sim.run(2.0)
        results = []
        alice.send_text("sip:ghost@voicehoc.ch", "anyone there?",
                        on_result=lambda ok, status: results.append((ok, status)))
        sim.run(15.0)
        assert results == [(False, 404)]
        assert alice.outbox[0].delivered is False

    def test_reply_conversation(self):
        sim, stats, nodes, stacks, _ = build()
        alice = stacks[0].add_phone(username="alice")
        bob = stacks[2].add_phone(username="bob")
        bob.on_text = lambda message: bob.send_text(message.peer, f"re: {message.text}")
        sim.run(2.0)
        alice.send_text("sip:bob@voicehoc.ch", "ping")
        sim.run(10.0)
        assert len(alice.inbox) == 1
        assert alice.inbox[0].text == "re: ping"

    def test_unicode_payload(self):
        sim, stats, nodes, stacks, _ = build()
        alice = stacks[0].add_phone(username="alice")
        bob = stacks[2].add_phone(username="bob")
        sim.run(2.0)
        alice.send_text("sip:bob@voicehoc.ch", "café 🚑 Zürich")
        sim.run(10.0)
        assert bob.inbox[0].text == "café 🚑 Zürich"


class TestInternetMessaging:
    def test_text_to_internet_user(self):
        sim, stats, nodes, stacks, providers = build(gateway=True, providers=("siphoc.ch",))
        carol = providers["siphoc.ch"].create_softphone("carol")
        alice = stacks[0].add_phone(account=SipAccount(username="alice", domain="siphoc.ch"))
        sim.run(20.0)
        results = []
        alice.send_text("sip:carol@siphoc.ch", "hello from the MANET",
                        on_result=lambda ok, status: results.append(ok))
        sim.run(40.0)
        assert results == [True]
        assert carol.inbox[0].text == "hello from the MANET"

    def test_text_from_internet_user(self):
        sim, stats, nodes, stacks, providers = build(gateway=True, providers=("siphoc.ch",))
        carol = providers["siphoc.ch"].create_softphone("carol")
        alice = stacks[0].add_phone(account=SipAccount(username="alice", domain="siphoc.ch"))
        sim.run(20.0)
        carol.send_text("sip:alice@siphoc.ch", "hello MANET user")
        sim.run(40.0)
        assert alice.inbox and alice.inbox[0].text == "hello MANET user"


class TestRegistrationRefresh:
    def test_binding_survives_past_expiry(self):
        sim, stats, nodes, stacks, _ = build(n=2)
        alice = stacks[0].add_phone(username="alice")
        bob = stacks[1].add_phone(username="bob")
        # Short registrations with automatic refresh.
        for phone in (alice, bob):
            phone._refresh_task.stop()
            phone._refresh_task = None
            phone.start(expires=20)
        sim.run(50.0)  # well past two expiries
        record = None
        alice.place_call("sip:bob@voicehoc.ch", duration=2.0)
        sim.run(65.0)
        record = alice.history[-1]
        assert record.established, "refreshed binding should keep bob callable"

    def test_without_refresh_binding_expires(self):
        sim, stats, nodes, stacks, _ = build(n=2)
        bob = stacks[1].add_phone(username="bob", register=False)
        bob.start(register=True, expires=10)
        if bob._refresh_task is not None:
            bob._refresh_task.stop()  # kill the keep-alive
        alice = stacks[0].add_phone(username="alice")
        sim.run(30.0)
        # bob's local binding and advert have expired.
        contacts = stacks[1].proxy.location.lookup("sip:bob@voicehoc.ch", sim.now)
        assert contacts == []
