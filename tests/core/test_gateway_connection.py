"""Behavioural tests for Gateway Provider and Connection Provider."""

import pytest

from repro.core import (
    ConnectionProvider,
    GatewayProvider,
    ManetSlp,
    make_handler,
)
from repro.core.tunnel import TunnelServer
from repro.errors import GatewayError
from repro.netsim import (
    InternetCloud,
    Node,
    Simulator,
    Stats,
    WirelessMedium,
    make_internet_host,
    manet_ip,
    place_chain,
)
from repro.routing import Aodv
from repro.slp.service import SERVICE_GATEWAY


def build(n=3, seed=41, gateway_index=None):
    sim = Simulator(seed=seed)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    cloud = InternetCloud(sim, stats=stats)
    nodes, slps = [], []
    for index in range(n):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        daemon = Aodv(node)
        daemon.start()
        slps.append(ManetSlp(node, make_handler(daemon)).start())
        nodes.append(node)
    place_chain(nodes, 100.0)
    gateway = None
    if gateway_index is not None:
        cloud.attach(nodes[gateway_index])
        gateway = GatewayProvider(nodes[gateway_index], cloud, slps[gateway_index]).start()
    return sim, stats, cloud, nodes, slps, gateway


class TestGatewayProvider:
    def test_requires_wired_attachment(self):
        sim, stats, cloud, nodes, slps, _ = build(gateway_index=None)
        provider = GatewayProvider(nodes[0], cloud, slps[0])
        with pytest.raises(GatewayError):
            provider.start()

    def test_publishes_gateway_service(self):
        sim, stats, cloud, nodes, slps, gateway = build(gateway_index=2)
        local = slps[2].local_services()
        assert any(e.url.service_type == SERVICE_GATEWAY for e in local)
        assert gateway.running

    def test_stop_withdraws_service(self):
        sim, stats, cloud, nodes, slps, gateway = build(gateway_index=2)
        gateway.stop()
        assert not gateway.running
        assert not any(
            e.url.service_type == SERVICE_GATEWAY for e in slps[2].local_services()
        )

    def test_start_twice_is_idempotent(self):
        sim, stats, cloud, nodes, slps, gateway = build(gateway_index=2)
        gateway.start()
        assert len(slps[2].local_services()) == 1


class TestConnectionProvider:
    def test_discovers_gateway_and_connects(self):
        sim, stats, cloud, nodes, slps, gateway = build(gateway_index=2)
        connected = []
        provider = ConnectionProvider(nodes[0], slps[0], poll_interval=2.0)
        provider.on_connected = connected.append
        provider.start()
        sim.run(20.0)
        assert provider.connected
        assert connected and connected[0] == provider.tunnel_ip
        assert nodes[0].has_default_route()

    def test_no_gateway_means_no_connection(self):
        sim, stats, cloud, nodes, slps, _ = build(gateway_index=None)
        provider = ConnectionProvider(nodes[0], slps[0], poll_interval=2.0).start()
        sim.run(20.0)
        assert not provider.connected

    def test_gateway_node_itself_does_not_tunnel(self):
        sim, stats, cloud, nodes, slps, gateway = build(gateway_index=2)
        provider = ConnectionProvider(nodes[2], slps[2], poll_interval=2.0).start()
        sim.run(20.0)
        assert not provider.connected  # it already has wired connectivity

    def test_dead_gateway_detected_and_reconnect_possible(self):
        sim, stats, cloud, nodes, slps, gateway = build(gateway_index=2)
        disconnects = []
        provider = ConnectionProvider(nodes[0], slps[0], poll_interval=2.0)
        provider.on_disconnected = lambda: disconnects.append(sim.now)
        provider.start()
        sim.run(15.0)
        assert provider.connected
        nodes[2].up = False  # gateway crashes
        sim.run(15.0 + 3 * 25.0)
        assert not provider.connected
        assert disconnects

    def test_stop_tears_down_tunnel(self):
        sim, stats, cloud, nodes, slps, gateway = build(gateway_index=2)
        provider = ConnectionProvider(nodes[0], slps[0], poll_interval=2.0).start()
        sim.run(15.0)
        assert provider.connected
        provider.stop()
        sim.run(17.0)
        assert not provider.connected
        assert "tunnel" not in nodes[0].default_route_names()

    def test_failed_gateway_cooled_down_prefers_alternative(self):
        """Regression (ISSUE 4): a gateway that failed on us must not be
        re-selected over a working alternative while it cools down.

        Pre-fix the provider always picked min-metric, so it hammered the
        broken near gateway forever and never reached the far one.
        """
        sim, stats, cloud, nodes, slps, _ = build(n=4, gateway_index=None)
        cloud.attach(nodes[1])
        cloud.attach(nodes[3])
        near = GatewayProvider(nodes[1], cloud, slps[1]).start()
        GatewayProvider(nodes[3], cloud, slps[3]).start()
        nodes[0].router.discover(nodes[1].ip)
        nodes[0].router.discover(nodes[3].ip)
        sim.run(3.0)
        # The near gateway keeps advertising but its tunnel server is gone:
        # lease requests to it black-hole.
        near.tunnel_server.close()
        provider = ConnectionProvider(nodes[0], slps[0], poll_interval=2.0).start()
        sim.run(40.0)
        assert provider.connected
        assert provider.tunnel.gateway_ip == nodes[3].ip
        assert stats.count("connection.gateway_failures") >= 1

    def test_consecutive_failures_back_off_lookups(self):
        """Regression (ISSUE 4): with no working gateway, retry attempts
        must back off exponentially instead of polling at full rate."""
        sim, stats, cloud, nodes, slps, gateway = build(gateway_index=2)
        gateway.tunnel_server.close()  # advert up, lease requests black-hole
        lookups = []
        original = slps[0].find_services

        def counting(service_type, callback=None, **kwargs):
            lookups.append(sim.now)
            return original(service_type, callback=callback, **kwargs)

        slps[0].find_services = counting
        provider = ConnectionProvider(nodes[0], slps[0], poll_interval=2.0).start()
        sim.run(120.0)
        assert not provider.connected
        # Backoff doubles from poll_interval up to MAX_BACKOFF: roughly
        # 7 attempts fit in 120s. Pre-fix, one every ~4s (about 30).
        assert len(lookups) <= 12

    def test_cooldown_is_preference_not_blacklist(self):
        # The only gateway fails, enters cooldown, then comes back: the
        # provider must still reconnect to it (fallback to cooled-down
        # candidates when no alternative exists).
        sim, stats, cloud, nodes, slps, gateway = build(gateway_index=2)
        gateway.tunnel_server.close()
        provider = ConnectionProvider(nodes[0], slps[0], poll_interval=2.0).start()
        sim.run(10.0)
        assert not provider.connected
        assert stats.count("connection.gateway_failures") >= 1
        gateway.tunnel_server = TunnelServer(nodes[2], cloud)
        sim.run(sim.now + 20.0)  # well inside the 30s cooldown window
        assert provider.connected
        assert provider.tunnel.gateway_ip == nodes[2].ip

    def test_gateway_restart_nack_reconnects_promptly(self):
        """Regression (ISSUE 4): a restarted gateway NACKs frames for the
        lost lease, and the client re-establishes within seconds instead
        of waiting out the ~45s liveness deadline."""
        sim, stats, cloud, nodes, slps, gateway = build(gateway_index=2)
        provider = ConnectionProvider(nodes[0], slps[0], poll_interval=2.0).start()
        sim.run(15.0)
        assert provider.connected
        # Power-cycle the gateway's tunnel endpoint: lease table wiped.
        gateway.tunnel_server.close()
        gateway.tunnel_server = TunnelServer(nodes[2], cloud)
        host = make_internet_host(sim, cloud, "remote.example")
        nodes[0].send_udp(host.wired_ip, 6000, 7000, b"probe")
        sim.run(sim.now + 10.0)
        assert stats.count("tunnel.nacks_received") >= 1
        assert stats.count("connection.established") == 2
        assert provider.connected

    def test_prefers_closer_gateway(self):
        sim, stats, cloud, nodes, slps, _ = build(n=4, gateway_index=None)
        # Two gateways: node 1 (1 hop from node 0) and node 3 (3 hops).
        cloud.attach(nodes[1])
        cloud.attach(nodes[3])
        GatewayProvider(nodes[1], cloud, slps[1]).start()
        GatewayProvider(nodes[3], cloud, slps[3]).start()
        # Prime a route toward both so hop counts are known.
        nodes[0].router.discover(nodes[1].ip)
        nodes[0].router.discover(nodes[3].ip)
        sim.run(3.0)
        provider = ConnectionProvider(nodes[0], slps[0], poll_interval=2.0).start()
        sim.run(20.0)
        assert provider.connected
        assert provider.tunnel.gateway_ip == nodes[1].ip
