"""Direct tests for the Internet SIP provider model."""

import pytest

from repro.core import SipProvider
from repro.netsim import InternetCloud, Simulator, Stats
from repro.sip import CallState


@pytest.fixture
def cloud(sim):
    return InternetCloud(sim, stats=Stats())


def auto_answer(sim):
    def handler(call):
        call.ring()
        sim.schedule(0.2, call.answer)

    return handler


class TestPlainProvider:
    def test_dns_registered(self, sim, cloud):
        provider = SipProvider(cloud, "siphoc.ch")
        assert cloud.dns.resolve("siphoc.ch") == provider.address

    def test_subscriber_call_same_domain(self, sim, cloud):
        provider = SipProvider(cloud, "siphoc.ch")
        carol = provider.create_user("carol")
        dave = provider.create_user("dave")
        dave.on_invite = auto_answer(sim)
        sim.run(1.0)  # registrations settle
        call = carol.call("sip:dave@siphoc.ch")
        sim.run(5.0)
        assert call.state is CallState.ESTABLISHED
        call.hangup()
        sim.run(8.0)
        assert call.state is CallState.TERMINATED

    def test_federation_between_providers(self, sim, cloud):
        a = SipProvider(cloud, "siphoc.ch")
        b = SipProvider(cloud, "netvoip.ch")
        carol = a.create_user("carol")
        erik = b.create_user("erik")
        erik.on_invite = auto_answer(sim)
        sim.run(1.0)
        call = carol.call("sip:erik@netvoip.ch")
        sim.run(5.0)
        assert call.state is CallState.ESTABLISHED

    def test_unknown_domain_404(self, sim, cloud):
        provider = SipProvider(cloud, "siphoc.ch")
        carol = provider.create_user("carol")
        call = carol.call("sip:nobody@nowhere.invalid")
        sim.run(5.0)
        assert call.state is CallState.FAILED
        assert call.failure_status == 404

    def test_unregistered_user_404(self, sim, cloud):
        provider = SipProvider(cloud, "siphoc.ch")
        carol = provider.create_user("carol")
        call = carol.call("sip:ghost@siphoc.ch")
        sim.run(5.0)
        assert call.failure_status == 404


class TestStrictProvider:
    def test_sbc_registered_in_dns(self, sim, cloud):
        provider = SipProvider(cloud, "polyphone.ethz.ch", requires_outbound_proxy=True)
        assert provider.sbc_address is not None
        assert cloud.dns.resolve("sbc.polyphone.ethz.ch") == provider.sbc_address

    def test_subscribers_work_through_sbc(self, sim, cloud):
        provider = SipProvider(cloud, "polyphone.ethz.ch", requires_outbound_proxy=True)
        carol = provider.create_user("carol")  # outbound proxy = SBC
        dave = provider.create_user("dave")
        dave.on_invite = auto_answer(sim)
        sim.run(2.0)
        assert carol.registered and dave.registered
        call = carol.call("sip:dave@polyphone.ethz.ch")
        sim.run(8.0)
        assert call.state is CallState.ESTABLISHED

    def test_direct_access_rejected(self, sim, cloud):
        provider = SipProvider(cloud, "polyphone.ethz.ch", requires_outbound_proxy=True)
        from repro.netsim import make_internet_host
        from repro.sip import UserAgent, SipUri

        host = make_internet_host(sim, cloud, "direct.example")
        ua = UserAgent(
            host,
            aor=SipUri(user="mallory", host="polyphone.ethz.ch"),
            port=5060,
            outbound_proxy=(provider.address, 5060),  # bypassing the SBC
        )
        results = []
        ua.register(on_result=lambda ok, resp: results.append((ok, resp.status if resp else None)))
        sim.run(3.0)
        assert results == [(False, 403)]

    def test_plain_provider_has_no_sbc(self, sim, cloud):
        provider = SipProvider(cloud, "siphoc.ch")
        assert provider.sbc_address is None


class TestAuthenticatedProvider:
    def test_softphone_autoprovisioned(self, sim, cloud):
        provider = SipProvider(cloud, "secure.example", auth_required=True)
        carol = provider.create_softphone("carol")
        sim.run(3.0)
        assert carol.registered
        assert provider.auth.has_user("carol")

    def test_add_subscriber_returns_credentials(self, sim, cloud):
        provider = SipProvider(cloud, "secure.example", auth_required=True)
        creds = provider.add_subscriber("erin", "pw")
        assert creds.username == "erin"
        assert provider.auth.has_user("erin")
