"""Unit tests for the layer-2 tunnel (codec, leases, data plane)."""

import pytest

from repro.core import TunnelClient, TunnelServer, decode_inner_packet, encode_inner_packet
from repro.errors import CodecError, GatewayError
from repro.netsim import (
    Datagram,
    InternetCloud,
    Node,
    Packet,
    Simulator,
    Stats,
    WirelessMedium,
    make_internet_host,
    manet_ip,
    place_chain,
)
from tests.conftest import make_chain


class TestInnerPacketCodec:
    def test_round_trip(self):
        packet = Packet("10.0.0.1", "10.0.0.2", Datagram(5060, 5061, b"sip data"), ttl=40)
        decoded = decode_inner_packet(encode_inner_packet(packet))
        assert decoded.src == packet.src
        assert decoded.dst == packet.dst
        assert decoded.ttl == 40
        assert (decoded.sport, decoded.dport) == (5060, 5061)
        assert decoded.data == b"sip data"

    def test_truncated_rejected(self):
        packet = Packet("10.0.0.1", "10.0.0.2", Datagram(1, 2, b"xyz"))
        with pytest.raises(CodecError):
            decode_inner_packet(encode_inner_packet(packet)[:6])


@pytest.fixture
def tunnel_setup(sim):
    """Gateway (wired+wireless) and client node adjacent on the MANET."""
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    client, gateway = make_chain(sim, medium, 2, static_routes=True)
    cloud = InternetCloud(sim, stats=stats)
    cloud.attach(gateway)
    server = TunnelServer(gateway, cloud)
    return stats, cloud, client, gateway, server


class TestLeases:
    def test_server_requires_wired_interface(self, sim, medium):
        (orphan,) = make_chain(sim, medium, 1)
        cloud = InternetCloud(sim)
        with pytest.raises(GatewayError):
            TunnelServer(orphan, cloud)

    def test_connect_grants_lease_and_address(self, sim, tunnel_setup):
        stats, cloud, client_node, gateway, server = tunnel_setup
        client = TunnelClient(client_node, gateway.ip)
        outcome = []
        client.connect(outcome.append)
        sim.run(2.0)
        assert outcome == [True]
        assert client.connected
        assert client.tunnel_ip is not None
        assert client_node.is_local_address(client.tunnel_ip)
        assert "tunnel" in client_node.default_route_names()
        assert len(server.active_leases) == 1

    def test_connect_timeout_when_gateway_gone(self, sim, tunnel_setup):
        stats, cloud, client_node, gateway, server = tunnel_setup
        gateway.up = False
        client = TunnelClient(client_node, gateway.ip)
        outcome = []
        client.connect(outcome.append)
        sim.run(10.0)
        assert outcome == [False]
        assert not client.connected

    def test_renewal_extends_lease(self, sim, tunnel_setup):
        stats, cloud, client_node, gateway, server = tunnel_setup
        client = TunnelClient(client_node, gateway.ip)
        client.connect()
        sim.run(2.0)
        lease = server.active_leases[0]
        first_expiry = lease.expires_at
        sim.run(2.0 + TunnelClient.RENEW_INTERVAL + 2.0)
        assert server.active_leases[0].expires_at > first_expiry

    def test_disconnect_releases_everything(self, sim, tunnel_setup):
        stats, cloud, client_node, gateway, server = tunnel_setup
        client = TunnelClient(client_node, gateway.ip)
        client.connect()
        sim.run(2.0)
        tunnel_ip = client.tunnel_ip
        client.disconnect()
        sim.run(3.0)
        assert not client_node.is_local_address(tunnel_ip)
        assert "tunnel" not in client_node.default_route_names()
        assert server.active_leases == []

    def test_stale_lease_expires(self, sim, tunnel_setup):
        stats, cloud, client_node, gateway, server = tunnel_setup
        client = TunnelClient(client_node, gateway.ip)
        client.connect()
        sim.run(2.0)
        client._renew_task.stop()  # simulate a crashed client
        sim.run(2.0 + TunnelServer.LEASE_TIME + 15.0)
        assert server.active_leases == []


class TestDataPlane:
    def test_manet_node_reaches_internet_host(self, sim, tunnel_setup):
        stats, cloud, client_node, gateway, server = tunnel_setup
        host = make_internet_host(sim, cloud, "remote.example")
        client = TunnelClient(client_node, gateway.ip)
        client.connect()
        sim.run(2.0)
        got = []
        host.bind(7000, lambda data, src, sport: got.append((data, src)))
        client_node.send_udp(host.wired_ip, 6000, 7000, b"up and out")
        sim.run(4.0)
        assert got and got[0][0] == b"up and out"
        # Source was NATed to the tunnel address.
        assert got[0][1] == client.tunnel_ip

    def test_internet_host_reaches_manet_node(self, sim, tunnel_setup):
        stats, cloud, client_node, gateway, server = tunnel_setup
        host = make_internet_host(sim, cloud, "remote.example")
        client = TunnelClient(client_node, gateway.ip)
        client.connect()
        sim.run(2.0)
        got = []
        client_node.bind(7000, lambda data, src, sport: got.append((data, src)))
        host.send_udp(client.tunnel_ip, 6000, 7000, b"down and in")
        sim.run(4.0)
        assert got == [(b"down and in", host.wired_ip)]

    def test_round_trip_request_reply(self, sim, tunnel_setup):
        stats, cloud, client_node, gateway, server = tunnel_setup
        host = make_internet_host(sim, cloud, "echo.example")
        client = TunnelClient(client_node, gateway.ip)
        client.connect()
        sim.run(2.0)

        def echo(data, src, sport):
            host.send_udp(src, 7000, sport, data + b"!")

        host.bind(7000, echo)
        got = []
        client_node.bind(6000, lambda data, src, sport: got.append(data))
        client_node.send_udp(host.wired_ip, 6000, 7000, b"ping")
        sim.run(5.0)
        assert got == [b"ping!"]

    def test_unauthorized_frames_dropped(self, sim, tunnel_setup):
        stats, cloud, client_node, gateway, server = tunnel_setup
        # No lease: hand-crafted frame claiming a bogus source address.
        inner = Packet("10.99.99.99", "10.0.0.1", Datagram(1, 2, b"spoof"))
        from repro.netsim.packet import PORT_SIPHOC_TUNNEL

        client_node.send_udp(
            gateway.ip, PORT_SIPHOC_TUNNEL, PORT_SIPHOC_TUNNEL, encode_inner_packet(inner)
        )
        sim.run(2.0)
        assert gateway.stats.count("tunnel.unauthorized_frames") == 1

    def test_unknown_lease_frame_nacked_and_client_tears_down(self, sim, tunnel_setup):
        """Regression (ISSUE 4): upstream data for a lease the gateway no
        longer knows (e.g. after a gateway restart) is NACKed, and the
        client reacts by tearing the tunnel down instead of black-holing
        traffic until the liveness timeout."""
        stats, cloud, client_node, gateway, server = tunnel_setup
        client = TunnelClient(client_node, gateway.ip)
        client.connect()
        sim.run(2.0)
        assert client.connected
        # Gateway process restarts: same node, fresh lease table.
        server.close()
        TunnelServer(gateway, cloud)
        client_node.send_udp("198.51.100.9", 6000, 7000, b"going nowhere")
        sim.run(sim.now + 2.0)
        assert client_node.stats.count("tunnel.nacks_received") == 1
        assert not client.connected
        assert "tunnel" not in client_node.default_route_names()

    def test_lease_is_dead_exactly_at_expiry_instant(self, sim, tunnel_setup):
        """Regression (ISSUE 4): ``active_leases`` and the upstream data
        path must agree about a lease at the ``expires_at == now`` boundary
        — inactive in both, with the frame NACKed rather than relayed."""
        stats, cloud, client_node, gateway, server = tunnel_setup
        client = TunnelClient(client_node, gateway.ip)
        client.connect()
        sim.run(2.0)
        (lease,) = server.active_leases
        lease.expires_at = sim.now
        assert server.active_leases == []  # active iff now < expires_at
        client_node.send_udp("198.51.100.9", 6000, 7000, b"stale lease")
        sim.run(sim.now + 2.0)
        # The gateway treated the frame as unauthorized (not relayed) and
        # expired the lease on the data path, not just in the sweep.
        assert gateway.stats.count("tunnel.unauthorized_frames") == 1
        assert gateway.stats.count("tunnel.leases_expired") == 1
        assert client_node.stats.count("tunnel.nacks_received") == 1
        assert not client.connected

    def test_nack_during_connect_fails_fast(self, sim, tunnel_setup):
        # A NACK racing the initial REQUEST resolves the connect callback
        # immediately instead of leaving it to the request timeout.
        stats, cloud, client_node, gateway, server = tunnel_setup
        from repro.core.tunnel import CTRL_NAK, _encode_ctrl
        from repro.netsim.packet import PORT_SIPHOC_CTRL

        server.close()  # nobody answers the REQUEST
        client = TunnelClient(client_node, gateway.ip)
        outcome = []
        client.connect(outcome.append)
        gateway.send_udp(
            client_node.ip, PORT_SIPHOC_CTRL, PORT_SIPHOC_CTRL, _encode_ctrl(CTRL_NAK)
        )
        sim.run(1.0)  # well before REQUEST_TIMEOUT
        assert outcome == [False]
        assert not client.connected

    def test_traffic_without_lease_dropped_client_side(self, sim, tunnel_setup):
        stats, cloud, client_node, gateway, server = tunnel_setup
        client = TunnelClient(client_node, gateway.ip)
        # Install the default route by hand without a lease.
        client_node.set_default_route("tunnel", client._upstream, priority=10)
        client_node.send_udp("10.1.2.3", 6000, 7000, b"nowhere")
        assert stats.count("tunnel.dropped_no_lease") == 1
