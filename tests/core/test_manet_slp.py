"""Behavioural tests for MANET SLP over both routing handler plugins."""

import pytest

from repro.core import ManetSlp, ManetSlpConfig, make_handler
from repro.netsim import Node, Simulator, Stats, WirelessMedium, manet_ip, place_chain
from repro.routing import Aodv, Olsr
from repro.slp.service import SERVICE_SIP_CONTACT


def build(protocol, n=4, seed=21, config=None):
    sim = Simulator(seed=seed)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    nodes, slps = [], []
    for index in range(n):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        daemon = (Aodv if protocol == "aodv" else Olsr)(node)
        daemon.start()
        slps.append(ManetSlp(node, make_handler(daemon), config).start())
        nodes.append(node)
    place_chain(nodes, 100.0)
    return sim, stats, nodes, slps


def sip_url(node):
    return f"service:siphoc-sip://{node.ip}:5060"


class TestLocalOperations:
    def test_register_and_cached_lookup(self):
        sim, stats, nodes, slps = build("aodv", n=1)
        slps[0].register(sip_url(nodes[0]), {"user": "sip:a@h"})
        hits = slps[0].lookup_cached(SERVICE_SIP_CONTACT, "(user=sip:a@h)")
        assert len(hits) == 1

    def test_find_services_local_hit_is_async(self):
        sim, stats, nodes, slps = build("aodv", n=1)
        slps[0].register(sip_url(nodes[0]), {"user": "sip:a@h"})
        results = []
        slps[0].find_services(SERVICE_SIP_CONTACT, "(user=sip:a@h)", callback=results.append)
        assert results == []  # not synchronous
        sim.run(0.1)
        assert len(results[0]) == 1

    def test_deregister_removes_local(self):
        sim, stats, nodes, slps = build("aodv", n=1)
        slps[0].register(sip_url(nodes[0]), {"user": "sip:a@h"})
        slps[0].deregister(sip_url(nodes[0]))
        assert slps[0].local_services() == []

    def test_expired_local_entry_not_served(self):
        sim, stats, nodes, slps = build("aodv", n=1, config=ManetSlpConfig(refresh_interval=0))
        slps[0].register(sip_url(nodes[0]), {"user": "sip:a@h"}, lifetime=2.0)
        sim.run(3.0)
        assert slps[0].lookup_cached(SERVICE_SIP_CONTACT) == []

    def test_state_dump_mentions_plugin_and_entries(self):
        sim, stats, nodes, slps = build("aodv", n=1)
        slps[0].register(sip_url(nodes[0]), {"user": "sip:alice@voicehoc.ch"})
        dump = slps[0].state_dump()
        assert "aodv" in dump
        assert "sip:alice@voicehoc.ch" in dump


class TestAodvLookups:
    def test_on_demand_query_resolves_across_chain(self):
        sim, stats, nodes, slps = build("aodv")
        slps[3].register(sip_url(nodes[3]), {"user": "sip:bob@h"})
        sim.run(0.2)
        results = []
        slps[0].find_services(SERVICE_SIP_CONTACT, "(user=sip:bob@h)", callback=results.append)
        sim.run(5.0)
        assert results and results[0][0].url.host == nodes[3].ip

    def test_lookup_installs_route_to_responder(self):
        sim, stats, nodes, slps = build("aodv")
        slps[3].register(sip_url(nodes[3]), {"user": "sip:bob@h"})
        sim.run(0.2)
        slps[0].find_services(SERVICE_SIP_CONTACT, "(user=sip:bob@h)", callback=lambda e: None)
        sim.run(5.0)
        route = nodes[0].router.route_to(nodes[3].ip)
        assert route is not None and route.hop_count == 3

    def test_unresolvable_lookup_times_out_empty(self):
        sim, stats, nodes, slps = build("aodv")
        results = []
        slps[0].find_services(SERVICE_SIP_CONTACT, "(user=sip:ghost@h)", callback=results.append)
        sim.run(10.0)
        assert results == [[]]
        assert stats.count("manetslp.lookups_failed") == 1

    def test_queries_ride_routing_packets_only(self):
        """No dedicated discovery traffic: everything is on port 654."""
        sim, stats, nodes, slps = build("aodv")
        slps[3].register(sip_url(nodes[3]), {"user": "sip:bob@h"})
        sim.run(0.2)
        slps[0].find_services(SERVICE_SIP_CONTACT, "(user=sip:bob@h)", callback=lambda e: None)
        sim.run(5.0)
        assert stats.traffic_packets("slp") == 0
        assert stats.traffic_packets("aodv") > 0


class TestOlsrDissemination:
    def test_adverts_converge_proactively(self):
        sim, stats, nodes, slps = build("olsr")
        sim.run(15.0)
        slps[3].register(sip_url(nodes[3]), {"user": "sip:bob@h"})
        sim.run(45.0)
        for slp in slps[:3]:
            assert slp.lookup_cached(SERVICE_SIP_CONTACT, "(user=sip:bob@h)")

    def test_cache_hit_after_convergence(self):
        sim, stats, nodes, slps = build("olsr")
        sim.run(15.0)
        slps[3].register(sip_url(nodes[3]), {"user": "sip:bob@h"})
        sim.run(45.0)
        misses = stats.count("manetslp.cache_misses")
        results = []
        slps[0].find_services(SERVICE_SIP_CONTACT, "(user=sip:bob@h)", callback=results.append)
        sim.run(46.0)
        assert results and results[0]
        assert stats.count("manetslp.cache_misses") == misses

    def test_query_resolves_before_convergence(self):
        sim, stats, nodes, slps = build("olsr")
        sim.run(15.0)
        slps[3].register(sip_url(nodes[3]), {"user": "sip:bob@h"})
        # Immediately query from the far end (cache cannot have converged).
        results = []
        slps[0].find_services(SERVICE_SIP_CONTACT, "(user=sip:bob@h)", callback=results.append)
        sim.run(25.0)
        assert results and results[0]


class TestCacheSemantics:
    def test_remote_removal_on_dereg_advert(self):
        sim, stats, nodes, slps = build("olsr", n=2)
        sim.run(10.0)
        slps[1].register(sip_url(nodes[1]), {"user": "sip:bob@h"})
        sim.run(20.0)
        assert slps[0].lookup_cached(SERVICE_SIP_CONTACT, "(user=sip:bob@h)")
        slps[1].deregister(sip_url(nodes[1]))
        sim.run(40.0)
        assert not slps[0].lookup_cached(SERVICE_SIP_CONTACT, "(user=sip:bob@h)")

    def test_cache_entry_expires(self):
        config = ManetSlpConfig(advert_lifetime=8.0, refresh_interval=0)
        sim, stats, nodes, slps = build("olsr", n=2, config=config)
        sim.run(10.0)
        slps[1].register(sip_url(nodes[1]), {"user": "sip:bob@h"}, lifetime=8.0)
        sim.run(16.0)
        assert slps[0].lookup_cached(SERVICE_SIP_CONTACT, "(user=sip:bob@h)")
        slps[1].stop()  # no refresh
        sim.run(30.0)
        assert not slps[0].lookup_cached(SERVICE_SIP_CONTACT, "(user=sip:bob@h)")

    def test_own_adverts_never_cached(self):
        sim, stats, nodes, slps = build("olsr", n=2)
        sim.run(10.0)
        slps[0].register(sip_url(nodes[0]), {"user": "sip:a@h"})
        sim.run(30.0)
        assert slps[0].cached_services() == [] or all(
            entry.origin != nodes[0].ip for entry in slps[0].cached_services()
        )

    def test_refresh_keeps_remote_entries_alive(self):
        config = ManetSlpConfig(advert_lifetime=10.0, refresh_interval=4.0)
        sim, stats, nodes, slps = build("olsr", n=2, config=config)
        sim.run(10.0)
        slps[1].register(sip_url(nodes[1]), {"user": "sip:bob@h"}, lifetime=10.0)
        sim.run(60.0)
        assert slps[0].lookup_cached(SERVICE_SIP_CONTACT, "(user=sip:bob@h)")
