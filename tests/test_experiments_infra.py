"""Tests for the experiment infrastructure: tables and the CLI."""

import math

import pytest

from repro.experiments import Table
from repro.experiments.__main__ import ARTIFACTS, main


class TestTable:
    def make(self):
        table = Table(title="demo", columns=["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", float("nan"))
        return table

    def test_add_row_arity_checked(self):
        table = Table(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_access(self):
        table = self.make()
        assert table.column("a") == [1, "x"]
        with pytest.raises(ValueError):
            table.column("missing")

    def test_to_dicts(self):
        rows = self.make().to_dicts()
        assert rows[0] == {"a": 1, "b": 2.5}

    def test_format_contains_everything(self):
        table = self.make()
        table.add_note("a note")
        text = table.format()
        assert "demo" in text
        assert "2.5" in text
        assert "-" in text  # NaN renders as dash
        assert "note: a note" in text

    def test_format_empty_table(self):
        table = Table(title="empty", columns=["only"])
        text = table.format()
        assert "only" in text

    def test_large_numbers_grouped(self):
        table = Table(title="t", columns=["n"])
        table.add_row(1234567.0)
        assert "1,234,567" in table.format()


class TestCli:
    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "F3" in out and "E1" in out

    def test_unknown_artifact_rejected(self, capsys):
        assert main(["E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown artifacts" in err

    def test_runs_selected_artifact(self, capsys):
        assert main(["F3"]) == 0
        out = capsys.readouterr().out
        assert "F3: call flow steps" in out
        assert "[F3:" in out

    def test_artifact_registry_complete(self):
        # Every quick config must be a subset of what the function accepts.
        for key, (description, quick, full, fn) in ARTIFACTS.items():
            assert description
            assert callable(fn)
            # quick/full kwargs must be valid parameter names
            import inspect

            parameters = inspect.signature(fn).parameters
            for kwargs in (quick, full):
                for name in kwargs:
                    assert name in parameters, f"{key}: bad kwarg {name}"
