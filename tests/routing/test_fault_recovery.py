"""Route recovery under faults (ISSUE 4 satellite coverage).

Three gaps the fault-injection work flushed out: AODV re-discovery after a
route idles past ACTIVE_ROUTE_TIMEOUT, RERR propagation when a relay
crashes mid-call, and OLSR topology repair after a relay crash.
"""

from repro.faults import FaultPlan
from repro.routing import Aodv
from repro.scenarios import ManetConfig, ManetScenario
from repro.trace import TraceCollector
from tests.routing.test_aodv import build_aodv_chain


class TestAodvRouteExpiry:
    def test_route_rediscovered_after_idle_expiry(self):
        sim, stats, nodes, daemons = build_aodv_chain(4)
        collector = TraceCollector().attach(sim)
        got = []
        nodes[3].bind(9000, lambda data, src, sport: got.append(sim.now))
        nodes[0].send_udp(nodes[3].ip, 9000, 9000, b"one")
        sim.run(5.0)
        assert len(got) == 1
        assert daemons[0].hop_count_to(nodes[3].ip) == 3
        # Idle well past ACTIVE_ROUTE_TIMEOUT: every route on the path dies.
        sim.run(5.0 + Aodv.ACTIVE_ROUTE_TIMEOUT + 3.0)
        assert daemons[0].hop_count_to(nodes[3].ip) is None
        nodes[0].send_udp(nodes[3].ip, 9000, 9000, b"two")
        sim.run(sim.now + 5.0)
        assert len(got) == 2  # delivered again after a fresh discovery
        assert daemons[0].hop_count_to(nodes[3].ip) == 3
        kinds = [event.kind for event in collector]
        assert "aodv.route_expired" in kinds
        # Two full discoveries completed at the originator.
        completions = [
            event for event in collector
            if event.kind == "aodv.discovery_complete" and event.node == nodes[0].ip
        ]
        assert len(completions) == 2


class TestAodvRelayCrash:
    def test_rerr_propagates_and_traffic_reroutes(self):
        # Chain at 70m spacing / 150m tx range: each node reaches +-2
        # neighbours, so the path survives any single relay crash.
        plan = FaultPlan().crash(8.0, 2)
        scenario = ManetScenario(
            ManetConfig(
                n_nodes=5,
                topology="chain",
                routing="aodv",
                spacing=70.0,
                seed=11,
                tracing=True,
                faults=plan,
            )
        )
        scenario.start()
        scenario.add_phone(0, "alice")
        scenario.add_phone(4, "bob")
        scenario.converge()
        # First call spans the relay crash at t=8.
        first = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=10.0)
        assert first.established
        rerrs = [event for event in scenario.trace if event.kind == "aodv.rerr"]
        assert any(event.detail.get("origin") for event in rerrs)
        # A second call must come up over the repaired route.
        second = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=3.0)
        assert second.established
        scenario.stop()


class TestOlsrRelayCrash:
    def test_topology_repairs_and_call_succeeds(self):
        plan = FaultPlan().crash(14.0, 2)
        scenario = ManetScenario(
            ManetConfig(
                n_nodes=5,
                topology="chain",
                routing="olsr",
                spacing=70.0,
                seed=4,
                faults=plan,
            )
        )
        scenario.start()
        scenario.add_phone(0, "alice")
        scenario.add_phone(4, "bob")
        scenario.converge()
        scenario.sim.run(14.0)
        assert not scenario.nodes[2].up
        # Let OLSR age out the dead relay and re-run topology control.
        scenario.sim.run(40.0)
        assert scenario.stacks[0].routing.hop_count_to(scenario.nodes[4].ip) is not None
        record = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=3.0)
        assert record.established
        scenario.stop()
