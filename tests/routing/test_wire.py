"""Unit tests for the binary reader/writer helpers."""

import pytest

from repro.errors import CodecError
from repro.routing.wire import Reader, Writer, decode_ip, encode_ip


class TestIpCodec:
    def test_round_trip(self):
        assert decode_ip(encode_ip("192.168.0.1")) == "192.168.0.1"
        assert decode_ip(encode_ip("0.0.0.0")) == "0.0.0.0"
        assert decode_ip(encode_ip("255.255.255.255")) == "255.255.255.255"

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "a.b.c.d", "300.1.1.1"])
    def test_invalid_addresses(self, bad):
        with pytest.raises(CodecError):
            encode_ip(bad)

    def test_decode_truncated(self):
        with pytest.raises(CodecError):
            decode_ip(b"\x01\x02")


class TestWriterReader:
    def test_round_trip_all_types(self):
        writer = Writer()
        writer.u8(7).u16(1000).u32(70000).ip("10.1.2.3").raw(b"tail")
        data = writer.getvalue()
        reader = Reader(data)
        assert reader.u8() == 7
        assert reader.u16() == 1000
        assert reader.u32() == 70000
        assert reader.ip() == "10.1.2.3"
        assert reader.rest() == b"tail"
        assert reader.remaining == 0

    def test_reader_bounds_checked(self):
        reader = Reader(b"\x01")
        reader.u8()
        with pytest.raises(CodecError):
            reader.u16()

    def test_writer_len(self):
        writer = Writer()
        writer.u32(1).u8(2)
        assert len(writer) == 5

    def test_network_byte_order(self):
        writer = Writer()
        writer.u16(0x0102)
        assert writer.getvalue() == b"\x01\x02"
