"""Unit tests for AODV and OLSR wire codecs."""

import pytest

from repro.errors import CodecError
from repro.routing import (
    Extension,
    HelloBody,
    OlsrMessage,
    Rerr,
    Rrep,
    Rreq,
    TcBody,
    decode_aodv,
    decode_hello_body,
    decode_olsr_packet,
    decode_tc_body,
    encode_aodv,
    encode_hello_body,
    encode_olsr_packet,
    encode_tc_body,
)
from repro.routing.messages import RREQ_FLAG_DEST_ONLY, RREQ_FLAG_UNKNOWN_SEQ


class TestAodvCodec:
    def test_rreq_round_trip(self):
        rreq = Rreq(
            rreq_id=42,
            dest_ip="192.168.0.9",
            dest_seq=7,
            orig_ip="192.168.0.1",
            orig_seq=11,
            hop_count=3,
            flags=RREQ_FLAG_DEST_ONLY | RREQ_FLAG_UNKNOWN_SEQ,
        )
        decoded, extensions = decode_aodv(encode_aodv(rreq))
        assert decoded == rreq
        assert extensions == []
        assert decoded.dest_only and decoded.unknown_seq

    def test_rreq_wire_size_is_rfc_24_bytes(self):
        rreq = Rreq(rreq_id=1, dest_ip="1.1.1.1", dest_seq=0, orig_ip="2.2.2.2", orig_seq=0)
        assert len(encode_aodv(rreq)) == 24

    def test_rrep_round_trip(self):
        rrep = Rrep(
            dest_ip="192.168.0.9",
            dest_seq=3,
            orig_ip="192.168.0.1",
            lifetime_ms=6000,
            hop_count=2,
        )
        decoded, _ = decode_aodv(encode_aodv(rrep))
        assert decoded == rrep
        assert not decoded.is_hello()

    def test_rrep_wire_size_is_rfc_20_bytes(self):
        rrep = Rrep(dest_ip="1.1.1.1", dest_seq=0, orig_ip="2.2.2.2", lifetime_ms=0)
        assert len(encode_aodv(rrep)) == 20

    def test_hello_detection(self):
        hello = Rrep(
            dest_ip="192.168.0.1", dest_seq=5, orig_ip="192.168.0.1",
            lifetime_ms=3000, hop_count=0,
        )
        decoded, _ = decode_aodv(encode_aodv(hello))
        assert decoded.is_hello()

    def test_rerr_round_trip(self):
        rerr = Rerr(unreachable=[("192.168.0.5", 9), ("192.168.0.6", 10)])
        decoded, _ = decode_aodv(encode_aodv(rerr))
        assert decoded == rerr

    def test_rerr_too_many_destinations(self):
        rerr = Rerr(unreachable=[(f"10.0.{i // 250}.{i % 250}", i) for i in range(300)])
        with pytest.raises(CodecError):
            encode_aodv(rerr)

    def test_extensions_round_trip(self):
        rreq = Rreq(rreq_id=1, dest_ip="1.1.1.1", dest_seq=0, orig_ip="2.2.2.2", orig_seq=0)
        extensions = [Extension(0x11, b"advert-body"), Extension(0x12, b"")]
        decoded, got = decode_aodv(encode_aodv(rreq, extensions))
        assert got == extensions

    def test_unknown_type_rejected(self):
        with pytest.raises(CodecError):
            decode_aodv(b"\x63" + b"\x00" * 23)

    def test_truncated_rejected(self):
        rreq = Rreq(rreq_id=1, dest_ip="1.1.1.1", dest_seq=0, orig_ip="2.2.2.2", orig_seq=0)
        with pytest.raises(CodecError):
            decode_aodv(encode_aodv(rreq)[:10])

    def test_extension_type_range(self):
        with pytest.raises(CodecError):
            Extension(300, b"")


class TestOlsrCodec:
    def test_hello_body_round_trip(self):
        body = HelloBody(
            links={2: ["192.168.0.2", "192.168.0.3"], 3: ["192.168.0.4"]},
            willingness=3,
        )
        decoded = decode_hello_body(encode_hello_body(body))
        assert decoded.links == body.links
        assert decoded.willingness == 3
        assert set(decoded.all_neighbors()) == {"192.168.0.2", "192.168.0.3", "192.168.0.4"}

    def test_tc_body_round_trip(self):
        body = TcBody(ansn=99, neighbors=["192.168.0.2", "192.168.0.7"])
        decoded = decode_tc_body(encode_tc_body(body))
        assert decoded == body

    def test_packet_with_multiple_messages(self):
        messages = [
            OlsrMessage(msg_type=1, orig_ip="192.168.0.1", seq=1, body=b"h", ttl=1),
            OlsrMessage(msg_type=2, orig_ip="192.168.0.1", seq=2, body=b"tc-body", ttl=255),
            OlsrMessage(msg_type=130, orig_ip="192.168.0.1", seq=3, body=b"slp!", ttl=255),
        ]
        packet_seq, decoded = decode_olsr_packet(encode_olsr_packet(17, messages))
        assert packet_seq == 17
        assert len(decoded) == 3
        for original, got in zip(messages, decoded):
            assert got.msg_type == original.msg_type
            assert got.orig_ip == original.orig_ip
            assert got.seq == original.seq
            assert got.body == original.body
            assert got.ttl == original.ttl

    def test_vtime_quantized_to_quarter_seconds(self):
        message = OlsrMessage(msg_type=1, orig_ip="1.1.1.1", seq=1, body=b"", vtime=6.1)
        _, (decoded,) = decode_olsr_packet(encode_olsr_packet(1, [message]))
        assert decoded.vtime == pytest.approx(6.0, abs=0.25)

    def test_length_mismatch_rejected(self):
        data = encode_olsr_packet(1, [])
        with pytest.raises(CodecError):
            decode_olsr_packet(data + b"extra")

    def test_duplicate_key(self):
        message = OlsrMessage(msg_type=2, orig_ip="10.0.0.1", seq=5, body=b"")
        assert message.key() == ("10.0.0.1", 5)

    def test_empty_packet_round_trip(self):
        packet_seq, messages = decode_olsr_packet(encode_olsr_packet(3, []))
        assert packet_seq == 3
        assert messages == []
