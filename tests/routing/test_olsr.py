"""Unit/behavioural tests for the OLSR daemon."""

import pytest

from repro.netsim import (
    Node,
    PacketCapture,
    Simulator,
    Stats,
    WirelessMedium,
    manet_ip,
    place_chain,
)
from repro.routing import OLSR_SLP, Olsr, OlsrMessage, decode_olsr_packet


def build_olsr(positions, seed=1, tx_range=150.0):
    sim = Simulator(seed=seed)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=tx_range)
    nodes, daemons = [], []
    for index, position in enumerate(positions):
        node = Node(sim, index, manet_ip(index), position=position, stats=stats)
        node.join_medium(medium)
        daemon = Olsr(node)
        daemon.start()
        nodes.append(node)
        daemons.append(daemon)
    return sim, stats, medium, nodes, daemons


def chain_positions(n, spacing=100.0):
    return [(i * spacing, 0.0) for i in range(n)]


class TestNeighborSensing:
    def test_symmetric_links_after_handshake(self):
        sim, stats, medium, nodes, daemons = build_olsr(chain_positions(2))
        sim.run(6.0)
        assert nodes[1].ip in daemons[0].symmetric_neighbors()
        assert nodes[0].ip in daemons[1].symmetric_neighbors()

    def test_out_of_range_not_neighbor(self):
        sim, stats, medium, nodes, daemons = build_olsr([(0, 0), (1000, 0)])
        sim.run(10.0)
        assert daemons[0].symmetric_neighbors() == []

    def test_link_times_out_when_node_leaves(self):
        sim, stats, medium, nodes, daemons = build_olsr(chain_positions(2))
        sim.run(6.0)
        assert daemons[0].symmetric_neighbors()
        nodes[1].position = (5000.0, 0.0)
        sim.run(6.0 + Olsr.NEIGHB_HOLD_TIME + 2.0)
        assert daemons[0].symmetric_neighbors() == []


class TestMprSelection:
    def test_chain_middle_node_is_mpr(self):
        sim, stats, medium, nodes, daemons = build_olsr(chain_positions(3))
        sim.run(10.0)
        # Node 0 must select node 1 as MPR to reach node 2.
        assert nodes[1].ip in daemons[0].mpr_set
        assert nodes[0].ip in daemons[1].mpr_selectors()

    def test_no_mprs_needed_in_full_mesh(self):
        positions = [(0, 0), (50, 0), (0, 50)]
        sim, stats, medium, nodes, daemons = build_olsr(positions)
        sim.run(10.0)
        assert daemons[0].mpr_set == set()

    def test_star_center_covers_all(self):
        # 4 leaves around a center; leaves only reach each other via center.
        positions = [(0, 0), (140, 0), (-140, 0), (0, 140), (0, -140)]
        sim, stats, medium, nodes, daemons = build_olsr(positions)
        sim.run(12.0)
        for leaf in range(1, 5):
            assert daemons[leaf].mpr_set == {nodes[0].ip}


class TestRouting:
    def test_multihop_routes_computed(self):
        sim, stats, medium, nodes, daemons = build_olsr(chain_positions(5))
        sim.run(20.0)
        daemons[0].recompute_routes()
        assert daemons[0].hop_count_to(nodes[4].ip) == 4
        assert daemons[0].route_to(nodes[4].ip).next_hop == nodes[1].ip

    def test_data_delivery_over_chain(self):
        sim, stats, medium, nodes, daemons = build_olsr(chain_positions(4))
        sim.run(20.0)
        got = []
        nodes[3].bind(9000, lambda data, src, sport: got.append(data))
        nodes[0].send_udp(nodes[3].ip, 9000, 9000, b"proactive")
        sim.run(22.0)
        assert got == [b"proactive"]

    def test_no_route_counted_when_unconverged(self):
        sim, stats, medium, nodes, daemons = build_olsr(chain_positions(3))
        nodes[0].send_udp(nodes[2].ip, 9000, 9000, b"early")
        assert stats.count("olsr.no_route") == 1

    def test_reroute_after_node_failure(self):
        # Diamond: 0 - (1 top, 2 bottom) - 3; both paths 2 hops.
        positions = [(0, 0), (100, 60), (100, -60), (200, 0)]
        sim, stats, medium, nodes, daemons = build_olsr(positions)
        sim.run(20.0)
        daemons[0].recompute_routes()
        assert daemons[0].hop_count_to(nodes[3].ip) == 2
        first_hop = daemons[0].route_to(nodes[3].ip).next_hop
        failed = nodes[1] if first_hop == nodes[1].ip else nodes[2]
        failed.up = False
        sim.run(20.0 + Olsr.NEIGHB_HOLD_TIME + Olsr.TC_INTERVAL * 3)
        daemons[0].recompute_routes()
        route = daemons[0].route_to(nodes[3].ip)
        assert route is not None
        assert route.next_hop != failed.ip


class TestTcFlooding:
    def test_tc_spreads_topology_network_wide(self):
        sim, stats, medium, nodes, daemons = build_olsr(chain_positions(5))
        sim.run(25.0)
        daemons[4].recompute_routes()
        assert daemons[4].hop_count_to(nodes[0].ip) == 4

    def test_unknown_message_type_flooded(self):
        """RFC 3626 default forwarding: type-130 messages spread end to end."""
        sim, stats, medium, nodes, daemons = build_olsr(chain_positions(4))
        sim.run(15.0)  # let MPR relationships form
        capture = PacketCapture(port_filter={Olsr.port})
        medium.add_sniffer(capture.on_frame)
        daemons[0].send_packet(
            [
                OlsrMessage(
                    msg_type=OLSR_SLP,
                    orig_ip=nodes[0].ip,
                    seq=daemons[0].next_message_seq(),
                    body=b"opaque-slp-payload",
                    ttl=255,
                )
            ]
        )
        sim.run(18.0)
        senders = set()
        for frame in capture.frames:
            _, messages = decode_olsr_packet(frame.packet.data)
            if any(m.msg_type == OLSR_SLP for m in messages):
                senders.add(frame.sender_ip)
        # Re-flooded by at least the chain's interior MPR nodes.
        assert nodes[1].ip in senders
        assert nodes[2].ip in senders
