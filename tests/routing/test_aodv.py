"""Unit/behavioural tests for the AODV daemon."""

import pytest

from repro.netsim import Node, Simulator, Stats, WirelessMedium, manet_ip, place_chain
from repro.routing import Aodv


def build_aodv_chain(n, seed=1, spacing=100.0, tx_range=150.0, use_hello=False):
    sim = Simulator(seed=seed)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=tx_range)
    nodes, daemons = [], []
    for index in range(n):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        daemon = Aodv(node, use_hello=use_hello)
        daemon.start()
        nodes.append(node)
        daemons.append(daemon)
    place_chain(nodes, spacing)
    return sim, stats, nodes, daemons


class TestRouteDiscovery:
    def test_multihop_delivery_and_hop_counts(self):
        sim, stats, nodes, daemons = build_aodv_chain(5)
        got = []
        nodes[4].bind(9000, lambda data, src, sport: got.append(data))
        nodes[0].send_udp(nodes[4].ip, 9000, 9000, b"payload")
        sim.run(5.0)
        assert got == [b"payload"]
        assert daemons[0].hop_count_to(nodes[4].ip) == 4
        # Forward route at the destination too (reverse path).
        assert daemons[4].hop_count_to(nodes[0].ip) == 4

    def test_intermediate_nodes_learn_routes(self):
        sim, stats, nodes, daemons = build_aodv_chain(5)
        nodes[4].bind(9000, lambda *args: None)
        nodes[0].send_udp(nodes[4].ip, 9000, 9000, b"x")
        sim.run(5.0)
        assert daemons[2].hop_count_to(nodes[4].ip) == 2
        assert daemons[2].hop_count_to(nodes[0].ip) == 2

    def test_packets_buffered_during_discovery(self):
        sim, stats, nodes, daemons = build_aodv_chain(4)
        got = []
        nodes[3].bind(9000, lambda data, src, sport: got.append(data))
        for i in range(5):
            nodes[0].send_udp(nodes[3].ip, 9000, 9000, f"pkt{i}".encode())
        sim.run(5.0)
        # All buffered packets flush once the route is found (UDP may reorder).
        assert sorted(got) == [f"pkt{i}".encode() for i in range(5)]

    def test_discovery_failure_for_unreachable_destination(self):
        sim, stats, nodes, daemons = build_aodv_chain(3)
        nodes[0].send_udp("192.168.0.200", 9000, 9000, b"void")
        sim.run(30.0)
        assert stats.count("aodv.discovery_failed") == 1
        assert stats.count("ip.no_route") >= 1

    def test_discovery_retries_before_giving_up(self):
        sim, stats, nodes, daemons = build_aodv_chain(1)  # no neighbors at all
        nodes[0].send_udp("192.168.0.200", 9000, 9000, b"void")
        sim.run(30.0)
        assert stats.count("aodv.rreq_originated") == 1 + Aodv.RREQ_RETRIES

    def test_proactive_discover(self):
        sim, stats, nodes, daemons = build_aodv_chain(3)
        daemons[0].discover(nodes[2].ip)
        sim.run(3.0)
        assert daemons[0].hop_count_to(nodes[2].ip) == 2

    def test_second_send_uses_cached_route(self):
        sim, stats, nodes, daemons = build_aodv_chain(3)
        nodes[2].bind(9000, lambda *args: None)
        nodes[0].send_udp(nodes[2].ip, 9000, 9000, b"one")
        sim.run(3.0)
        rreqs = stats.count("aodv.rreq_originated")
        nodes[0].send_udp(nodes[2].ip, 9000, 9000, b"two")
        sim.run(4.0)
        assert stats.count("aodv.rreq_originated") == rreqs


class TestRouteMaintenance:
    def test_link_failure_triggers_rerr_and_invalidates(self):
        sim, stats, nodes, daemons = build_aodv_chain(4)
        nodes[3].bind(9000, lambda *args: None)
        nodes[0].send_udp(nodes[3].ip, 9000, 9000, b"x")
        sim.run(3.0)
        assert daemons[0].route_to(nodes[3].ip) is not None
        # Node 2 walks out of range: the 1->2 link breaks.
        nodes[2].position = (5000.0, 5000.0)
        nodes[3].position = (5100.0, 5000.0)
        nodes[0].send_udp(nodes[3].ip, 9000, 9000, b"y")
        sim.run(8.0)
        assert stats.count("aodv.rerr_originated") >= 1

    def test_route_expiry(self):
        sim, stats, nodes, daemons = build_aodv_chain(3)
        nodes[2].bind(9000, lambda *args: None)
        nodes[0].send_udp(nodes[2].ip, 9000, 9000, b"x")
        sim.run(3.0)
        assert daemons[0].route_to(nodes[2].ip) is not None
        sim.run(3.0 + Aodv.ACTIVE_ROUTE_TIMEOUT * 3)
        assert daemons[0].route_to(nodes[2].ip) is None


class TestHello:
    def test_hello_builds_neighbor_routes(self):
        sim, stats, nodes, daemons = build_aodv_chain(2, use_hello=True)
        sim.run(3.0)
        assert daemons[0].hop_count_to(nodes[1].ip) == 1
        assert daemons[1].hop_count_to(nodes[0].ip) == 1

    def test_hello_disabled_means_no_periodic_traffic(self):
        sim, stats, nodes, daemons = build_aodv_chain(2, use_hello=False)
        sim.run(5.0)
        assert stats.traffic_packets("aodv") == 0


class TestSequenceNumbers:
    def test_fresher_route_replaces_stale(self):
        sim, stats, nodes, daemons = build_aodv_chain(3)
        daemon = daemons[0]
        daemon._update_route("192.168.0.50", nodes[1].ip, 4, seq_no=5, lifetime=100.0)
        daemon._update_route("192.168.0.50", nodes[1].ip, 6, seq_no=9, lifetime=100.0)
        assert daemon.route_to("192.168.0.50").seq_no == 9
        assert daemon.route_to("192.168.0.50").hop_count == 6

    def test_same_seq_shorter_wins(self):
        sim, stats, nodes, daemons = build_aodv_chain(3)
        daemon = daemons[0]
        daemon._update_route("192.168.0.50", nodes[1].ip, 4, seq_no=5, lifetime=100.0)
        daemon._update_route("192.168.0.50", nodes[1].ip, 2, seq_no=5, lifetime=100.0)
        assert daemon.route_to("192.168.0.50").hop_count == 2

    def test_stale_update_only_extends_lifetime(self):
        sim, stats, nodes, daemons = build_aodv_chain(3)
        daemon = daemons[0]
        daemon._update_route("192.168.0.50", nodes[1].ip, 2, seq_no=9, lifetime=10.0)
        daemon._update_route("192.168.0.50", nodes[1].ip, 1, seq_no=5, lifetime=100.0)
        route = daemon.route_to("192.168.0.50")
        assert route.seq_no == 9
        assert route.hop_count == 2

    def test_plugin_rreq_id_space_disjoint(self):
        sim, stats, nodes, daemons = build_aodv_chain(2)
        daemon = daemons[0]
        assert daemon.next_rreq_id() >= 1 << 24
        assert daemon.next_rreq_id() > 1 << 24


class TestNetDiameter:
    def test_default_traversal_time_matches_rfc3561(self):
        sim, stats, nodes, daemons = build_aodv_chain(1)
        # NET_TRAVERSAL_TIME = 2 * NODE_TRAVERSAL_TIME * NET_DIAMETER
        assert daemons[0].net_traversal_time == pytest.approx(
            2 * Aodv.NODE_TRAVERSAL_TIME * Aodv.NET_DIAMETER
        )

    def test_override_shrinks_the_rreq_retry_horizon(self):
        sim = Simulator(seed=1)
        medium = WirelessMedium(sim, stats=Stats(), tx_range=150.0)
        node = Node(sim, 0, manet_ip(0), stats=medium.stats)
        node.join_medium(medium)
        daemon = Aodv(node, net_diameter=2)
        assert daemon.net_traversal_time == pytest.approx(
            2 * Aodv.NODE_TRAVERSAL_TIME * 2
        )

    def test_small_diameter_retries_sooner(self):
        """With the RFC horizon a lone node waits 2.8 s before each retry;
        with diameter 2 all retries fit well inside a second."""
        sim = Simulator(seed=1)
        stats = Stats()
        medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
        node = Node(sim, 0, manet_ip(0), stats=stats)
        node.join_medium(medium)
        daemon = Aodv(node, net_diameter=2)
        daemon.start()
        node.send_udp("192.168.0.200", 9000, 9000, b"void")
        sim.run(1.0)
        assert stats.count("aodv.rreq_originated") == 1 + Aodv.RREQ_RETRIES
