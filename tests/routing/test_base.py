"""Unit tests for the route table."""

from repro.routing import Route, RouteTable


class TestRouteTable:
    def test_lookup_valid_route(self):
        table = RouteTable()
        table.upsert(Route("10.0.0.1", "10.0.0.2", hop_count=2, expires_at=100.0))
        route = table.lookup("10.0.0.1", now=50.0)
        assert route is not None and route.next_hop == "10.0.0.2"

    def test_lookup_expired_route(self):
        table = RouteTable()
        table.upsert(Route("10.0.0.1", "10.0.0.2", hop_count=2, expires_at=100.0))
        assert table.lookup("10.0.0.1", now=100.0) is None
        # ... but the stale entry is still inspectable.
        assert table.get("10.0.0.1") is not None

    def test_invalidate(self):
        table = RouteTable()
        table.upsert(Route("10.0.0.1", "10.0.0.2", hop_count=1))
        table.invalidate("10.0.0.1")
        assert table.lookup("10.0.0.1", now=0.0) is None
        assert not table.get("10.0.0.1").valid

    def test_invalidate_missing_is_noop(self):
        table = RouteTable()
        assert table.invalidate("10.0.0.1") is None

    def test_routes_via(self):
        table = RouteTable()
        table.upsert(Route("10.0.0.1", "10.0.0.9", hop_count=2))
        table.upsert(Route("10.0.0.2", "10.0.0.9", hop_count=3))
        table.upsert(Route("10.0.0.3", "10.0.0.8", hop_count=1))
        via = table.routes_via("10.0.0.9", now=0.0)
        assert {route.destination for route in via} == {"10.0.0.1", "10.0.0.2"}

    def test_usable_routes_excludes_invalid(self):
        table = RouteTable()
        table.upsert(Route("10.0.0.1", "10.0.0.9", hop_count=2))
        table.upsert(Route("10.0.0.2", "10.0.0.9", hop_count=3, valid=False))
        assert len(table.usable_routes(now=0.0)) == 1

    def test_upsert_replaces(self):
        table = RouteTable()
        table.upsert(Route("10.0.0.1", "10.0.0.2", hop_count=5))
        table.upsert(Route("10.0.0.1", "10.0.0.3", hop_count=1))
        assert table.lookup("10.0.0.1", now=0.0).next_hop == "10.0.0.3"
        assert len(table) == 1

    def test_remove_and_clear(self):
        table = RouteTable()
        table.upsert(Route("10.0.0.1", "10.0.0.2", hop_count=1))
        table.upsert(Route("10.0.0.2", "10.0.0.2", hop_count=1))
        table.remove("10.0.0.1")
        assert table.destinations() == ["10.0.0.2"]
        table.clear()
        assert len(table) == 0
