"""Unit tests for the offered-load soak harness (repro.overload)."""

import math

from repro.overload.__main__ import build_parser
from repro.overload.harness import (
    MODE_CONTROLLED,
    MODE_UNCONTROLLED,
    LoadPoint,
    OverloadConfig,
    SweepReport,
    build_overload_scenario,
    run_load_point,
    smoke_config,
)


def point(load, mode, ok, attempted=20, **overrides):
    fields = dict(
        load=load,
        mode=mode,
        attempted=attempted,
        ok=ok,
        established=ok,
        rejected_503=0,
        failed_other=attempted - ok,
        setup_p50=0.5,
        setup_p95=0.8,
        mos_mean=4.2,
        queue_drops=0,
        admission_rejected=0,
    )
    fields.update(overrides)
    return LoadPoint(**fields)


def report_with(*points):
    report = SweepReport(config=OverloadConfig(loads=(0.5, 1.0, 2.0, 4.0)))
    report.points.extend(points)
    return report


class TestLoadPoint:
    def test_ok_rate(self):
        assert point(1.0, MODE_CONTROLLED, ok=15, attempted=20).ok_rate == 0.75

    def test_ok_rate_of_empty_point_is_zero(self):
        assert point(1.0, MODE_CONTROLLED, ok=0, attempted=0).ok_rate == 0.0


class TestSweepReport:
    def test_point_lookup_tolerates_float_noise(self):
        p = point(2.0, MODE_CONTROLLED, ok=20)
        report = report_with(p)
        assert report.point(2.0 + 1e-12, MODE_CONTROLLED) is p
        assert report.point(2.0, MODE_UNCONTROLLED) is None
        assert report.point(3.0, MODE_CONTROLLED) is None

    def test_knee_is_highest_passing_controlled_load(self):
        report = report_with(
            point(0.5, MODE_CONTROLLED, ok=20),
            point(1.0, MODE_CONTROLLED, ok=20),
            point(2.0, MODE_CONTROLLED, ok=10),  # 0.5 < knee_threshold 0.8
            point(1.0, MODE_UNCONTROLLED, ok=20),  # uncontrolled never counts
        )
        assert report.knee == 1.0

    def test_no_knee_when_nothing_clears_threshold(self):
        report = report_with(point(1.0, MODE_CONTROLLED, ok=5))
        assert report.knee is None
        assert report.graceful() is None
        assert not report.graceful_pass
        assert "knee: none" in report.render()

    def test_graceful_pass_at_half_the_knee_rate(self):
        report = report_with(
            point(1.0, MODE_CONTROLLED, ok=20),
            point(2.0, MODE_CONTROLLED, ok=11),
        )
        knee, at_knee, at_double, passed = report.graceful()
        assert (knee, at_knee, at_double) == (1.0, 1.0, 0.55)
        assert passed and report.graceful_pass

    def test_collapse_below_half_fails(self):
        report = report_with(
            point(1.0, MODE_CONTROLLED, ok=20),
            point(2.0, MODE_CONTROLLED, ok=9),
        )
        assert report.graceful() == (1.0, 1.0, 0.45, False)
        assert not report.graceful_pass
        assert "COLLAPSED" in report.render()

    def test_graceful_na_when_double_not_swept(self):
        report = report_with(point(4.0, MODE_CONTROLLED, ok=20))
        assert report.knee == 4.0
        assert report.graceful() is None
        assert "not swept" in report.render()

    def test_render_mentions_every_point_and_uses_dash_for_nan(self):
        report = report_with(
            point(1.0, MODE_UNCONTROLLED, ok=20),
            point(
                1.0,
                MODE_CONTROLLED,
                ok=0,
                attempted=0,
                setup_p50=math.nan,
                setup_p95=math.nan,
                mos_mean=math.nan,
            ),
        )
        rendered = report.render()
        assert MODE_UNCONTROLLED in rendered and MODE_CONTROLLED in rendered
        assert "     -" in rendered  # nan percentiles render as dashes
        assert rendered.endswith("\n")

    def test_render_is_pure(self):
        report = report_with(point(1.0, MODE_CONTROLLED, ok=20))
        assert report.render() == report.render()


class TestScenarioWiring:
    def test_controlled_arms_admission_everywhere(self):
        cfg = smoke_config()
        scenario = build_overload_scenario(cfg, controlled=True)
        try:
            for stack in scenario.stacks:
                admission = stack.proxy.core.admission
                assert admission is not None
                assert admission.max_inflight == cfg.admission_max_inflight
                assert admission.retry_after == cfg.admission_retry_after
                assert stack.node.tx_queue is not None
                assert stack.node.tx_queue.capacity == cfg.tx_queue_capacity
        finally:
            scenario.stop()

    def test_uncontrolled_keeps_queues_but_no_admission(self):
        scenario = build_overload_scenario(smoke_config(), controlled=False)
        try:
            for stack in scenario.stacks:
                assert stack.proxy.core.admission is None
                assert stack.node.tx_queue is not None
        finally:
            scenario.stop()


class TestRunLoadPoint:
    def test_light_load_all_ok(self):
        cfg = OverloadConfig(loads=(0.5,), window=4.5, grace=10.0)
        result = run_load_point(cfg, 0.5, controlled=True)
        assert result.mode == MODE_CONTROLLED
        assert result.attempted == 2  # round(0.5 * 4.5)
        assert result.ok == result.established == result.attempted
        assert result.rejected_503 == 0
        assert result.setup_p50 <= cfg.setup_sla
        assert result.mos_mean >= 3.6


class TestCli:
    def test_parser_accepts_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "--seed", "3", "--routing", "olsr", "--loads", "1", "2"]
        )
        assert (args.seed, args.routing, args.loads) == (3, "olsr", [1.0, 2.0])

    def test_parser_accepts_smoke(self):
        args = build_parser().parse_args(["smoke"])
        assert args.fn is not None
