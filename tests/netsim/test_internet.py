"""Unit tests for the Internet cloud and DNS."""

import pytest

from repro.errors import NetworkError
from repro.netsim import (
    Datagram,
    InternetCloud,
    Node,
    Packet,
    Simulator,
    make_internet_host,
    manet_ip,
)


class TestAttachment:
    def test_attach_assigns_wired_ip_and_default_route(self, sim):
        cloud = InternetCloud(sim)
        node = Node(sim, 0, manet_ip(0))
        ip = cloud.attach(node)
        assert node.wired_ip == ip
        assert node.has_default_route()
        assert cloud.is_attached(ip)

    def test_detach_removes_everything(self, sim):
        cloud = InternetCloud(sim)
        node = Node(sim, 0, manet_ip(0))
        ip = cloud.attach(node)
        cloud.detach(node)
        assert node.wired_ip is None
        assert not node.has_default_route()
        assert not cloud.is_attached(ip)

    def test_duplicate_attach_rejected(self, sim):
        cloud = InternetCloud(sim)
        a = Node(sim, 0, manet_ip(0))
        b = Node(sim, 1, manet_ip(1))
        ip = cloud.attach(a)
        with pytest.raises(NetworkError):
            cloud.attach(b, ip=ip)

    def test_virtual_endpoint(self, sim):
        cloud = InternetCloud(sim)
        got = []
        cloud.attach_endpoint("10.9.9.9", got.append)
        cloud.send(Packet("10.1.1.1", "10.9.9.9", Datagram(1, 2, b"x")))
        sim.run(1.0)
        assert len(got) == 1
        cloud.detach_endpoint("10.9.9.9")
        cloud.send(Packet("10.1.1.1", "10.9.9.9", Datagram(1, 2, b"x")))
        sim.run(2.0)
        assert len(got) == 1


class TestForwarding:
    def test_host_to_host_delivery(self, sim):
        cloud = InternetCloud(sim)
        a = make_internet_host(sim, cloud, "a.example")
        b = make_internet_host(sim, cloud, "b.example")
        got = []
        b.bind(5000, lambda data, src, sport: got.append((data, src)))
        a.send_udp(b.wired_ip, 4000, 5000, b"hello internet")
        sim.run(1.0)
        assert got == [(b"hello internet", a.wired_ip)]

    def test_unknown_destination_counted(self, sim):
        cloud = InternetCloud(sim)
        cloud.send(Packet("10.1.1.1", "10.250.250.1", Datagram(1, 2, b"x")))
        assert cloud.stats.count("internet.unroutable") == 1

    def test_latency_applied(self, sim):
        cloud = InternetCloud(sim, latency=0.1, jitter=0.0)
        a = make_internet_host(sim, cloud, "a")
        b = make_internet_host(sim, cloud, "b")
        arrivals = []
        b.bind(5000, lambda data, src, sport: arrivals.append(sim.now))
        a.send_udp(b.wired_ip, 4000, 5000, b"x")
        sim.run(1.0)
        assert arrivals[0] >= 0.1

    def test_loss_rate(self, sim):
        cloud = InternetCloud(sim, loss_rate=1.0)
        a = make_internet_host(sim, cloud, "a")
        b = make_internet_host(sim, cloud, "b")
        got = []
        b.bind(5000, lambda data, src, sport: got.append(data))
        a.send_udp(b.wired_ip, 4000, 5000, b"x")
        sim.run(1.0)
        assert got == []


class TestDns:
    def test_register_resolve(self, sim):
        cloud = InternetCloud(sim)
        cloud.dns.register("Example.COM", "10.0.0.1")
        assert cloud.dns.resolve("example.com") == "10.0.0.1"
        assert cloud.dns.resolve("EXAMPLE.com") == "10.0.0.1"

    def test_unknown_domain(self, sim):
        cloud = InternetCloud(sim)
        assert cloud.dns.resolve("nope.invalid") is None

    def test_unregister(self, sim):
        cloud = InternetCloud(sim)
        cloud.dns.register("x.com", "10.0.0.1")
        cloud.dns.unregister("x.com")
        assert cloud.dns.resolve("x.com") is None

    def test_domains_listing(self, sim):
        cloud = InternetCloud(sim)
        cloud.dns.register("b.com", "10.0.0.2")
        cloud.dns.register("a.com", "10.0.0.1")
        assert cloud.dns.domains() == ["a.com", "b.com"]
