"""Cross-kernel same-seed parity: calendar queue vs. reference heap.

The calendar-queue kernel and batched medium delivery are pure performance
work — a seeded scenario must produce *bit-identical* results under either
kernel and either delivery path. This mirrors ``test_determinism.py`` but
turns the screws harder: the scenario runs with tracing, a bursty-loss
channel model, a timed fault schedule (crash/restart + partition/heal) and
bounded TX queues all enabled, then compares complete Stats summaries,
event/pending counts AND the byte-for-byte trace export.

Identifier counters (call-ids, branches, packet uids, ...) are process-
global, so in-process reruns reset them via the global-state registry's
``reset_all`` — the subprocess variant of this gate (``tools/check.sh``)
needs no reset.
"""

import pytest

from repro.faults.channel import GilbertElliottChannel
from repro.faults.plan import FaultPlan
from repro.globalstate import registry
from repro.scenarios import ManetConfig, ManetScenario

KERNELS = ("heap", "calendar")


def build_plan() -> FaultPlan:
    return (
        FaultPlan()
        .crash(at=14.0, node=7)
        .partition(at=16.0, group_a=(0, 1, 2), group_b=(20, 21, 22), name="split")
        .heal(at=20.0, name="split")
        .restart(at=22.0, node=7)
        .with_channel(GilbertElliottChannel(p_gb=0.05, p_bg=0.3, loss_bad=0.8))
    )


def run_scenario(kernel: str, batch_delivery: bool = True) -> tuple[dict, int, int, str]:
    registry.reset_all()
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=25,
            topology="random",
            routing="aodv",
            seed=2026,
            tx_range=250.0,
            area=(700.0, 700.0),
            mobility=True,
            tracing=True,
            faults=build_plan(),
            tx_queue_capacity=16,
            tx_queue_policy="tail-drop",
            kernel=kernel,
            batch_delivery=batch_delivery,
        )
    )
    scenario.start()
    scenario.add_phone(0, "alice")
    scenario.add_phone(24, "bob")
    scenario.converge()
    scenario.phones["alice"].place_call("sip:bob@voicehoc.ch", duration=5.0)
    scenario.sim.run(scenario.sim.now + 15.0)
    scenario.stop()
    assert scenario.trace is not None
    return (
        scenario.stats.summary(),
        scenario.sim.events_processed,
        scenario.sim.pending_events,
        scenario.trace.export_jsonl(),
    )


class TestKernelParity:
    def test_calendar_matches_heap_bit_for_bit(self):
        heap = run_scenario("heap")
        calendar = run_scenario("calendar")
        assert heap[1] == calendar[1]  # events processed: schedule identity
        assert heap[2] == calendar[2]  # pending events
        assert heap[0]["traffic"] == calendar[0]["traffic"]
        assert heap[0]["counters"] == calendar[0]["counters"]
        assert heap[0]["samples"] == calendar[0]["samples"]
        assert heap[3] == calendar[3]  # byte-identical trace export
        # The scenario exercised faults and shedding, not just happy paths.
        assert '"fault.node_crash"' in heap[3]
        assert '"fault.partition"' in heap[3]
        assert heap[0]["traffic"]["total"]["packets"] > 100

    def test_batched_delivery_matches_per_neighbor_schedule(self):
        batched = run_scenario("calendar", batch_delivery=True)
        unbatched = run_scenario("calendar", batch_delivery=False)
        assert batched == unbatched

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_same_seed_same_run(self, kernel):
        assert run_scenario(kernel) == run_scenario(kernel)
