"""Unit tests for the wireless medium."""

import pytest

from repro.netsim import (
    BROADCAST,
    CapturedFrame,
    Datagram,
    Node,
    Packet,
    Simulator,
    Stats,
    WirelessMedium,
    manet_ip,
)


def make_nodes(sim, medium, positions):
    nodes = []
    for index, position in enumerate(positions):
        node = Node(sim, index, manet_ip(index), position=position, stats=medium.stats)
        node.join_medium(medium)
        nodes.append(node)
    return nodes


def packet_to(dst, data=b"payload"):
    return Packet("192.168.0.1", dst, Datagram(1000, 2000, data))


class TestTopology:
    def test_neighbors_respect_range(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0)
        a, b, c = make_nodes(sim, medium, [(0, 0), (90, 0), (180, 0)])
        assert medium.neighbors(a) == [b]
        assert set(medium.neighbors(b)) == {a, c}

    def test_duplicate_ip_rejected(self, sim):
        medium = WirelessMedium(sim)
        node = Node(sim, 0, manet_ip(0))
        node.join_medium(medium)
        clone = Node(sim, 1, manet_ip(0))
        with pytest.raises(ValueError):
            clone.join_medium(medium)

    def test_node_by_ip(self, sim):
        medium = WirelessMedium(sim)
        (a,) = make_nodes(sim, medium, [(0, 0)])
        assert medium.node_by_ip(a.ip) is a
        assert medium.node_by_ip("10.9.9.9") is None


class TestBroadcast:
    def test_broadcast_reaches_all_in_range(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0)
        a, b, c = make_nodes(sim, medium, [(0, 0), (50, 0), (99, 0)])
        got = []
        b.bind(2000, lambda data, src, sport: got.append(("b", data)))
        c.bind(2000, lambda data, src, sport: got.append(("c", data)))
        medium.broadcast(a, packet_to(BROADCAST))
        sim.run(1.0)
        assert sorted(tag for tag, _ in got) == ["b", "c"]

    def test_broadcast_does_not_reach_out_of_range(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0)
        a, b = make_nodes(sim, medium, [(0, 0), (500, 0)])
        got = []
        b.bind(2000, lambda data, src, sport: got.append(data))
        medium.broadcast(a, packet_to(BROADCAST))
        sim.run(1.0)
        assert got == []

    def test_full_loss_drops_everything(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0, loss_rate=1.0)
        a, b = make_nodes(sim, medium, [(0, 0), (50, 0)])
        got = []
        b.bind(2000, lambda data, src, sport: got.append(data))
        medium.broadcast(a, packet_to(BROADCAST))
        sim.run(1.0)
        assert got == []


class TestUnicast:
    def test_unicast_delivers_to_next_hop(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0)
        a, b = make_nodes(sim, medium, [(0, 0), (50, 0)])
        got = []
        b.bind(2000, lambda data, src, sport: got.append(data))
        medium.unicast(a, b.ip, packet_to(b.ip))
        sim.run(1.0)
        assert got == [b"payload"]

    def test_unicast_out_of_range_triggers_link_failure(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0)
        a, b = make_nodes(sim, medium, [(0, 0), (500, 0)])
        failures = []
        medium.unicast(a, b.ip, packet_to(b.ip), lambda hop, pkt: failures.append(hop))
        sim.run(1.0)
        assert failures == [b.ip]
        assert medium.stats.count("medium.unicast_failures") == 1

    def test_mac_retries_beat_moderate_loss(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0, loss_rate=0.4, mac_retries=6)
        a, b = make_nodes(sim, medium, [(0, 0), (50, 0)])
        got = []
        b.bind(2000, lambda data, src, sport: got.append(data))
        for _ in range(20):
            medium.unicast(a, b.ip, packet_to(b.ip))
        sim.run(5.0)
        assert len(got) >= 18  # P(all 7 attempts lost) = 0.4^7 ~ 0.16%

    def test_delay_scales_with_size(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0, bitrate=1_000_000, jitter=0.0)
        a, b = make_nodes(sim, medium, [(0, 0), (50, 0)])
        arrivals = []
        b.bind(2000, lambda data, src, sport: arrivals.append(sim.now))
        medium.unicast(a, b.ip, packet_to(b.ip, b"x"))
        sim.run(1.0)
        small = arrivals[-1]
        start = sim.now
        medium.unicast(a, b.ip, packet_to(b.ip, b"x" * 10000))
        sim.run(sim.now + 1.0)
        big = arrivals[-1] - start
        assert big > small


class TestSniffers:
    def test_sniffer_sees_all_transmissions(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0)
        a, b = make_nodes(sim, medium, [(0, 0), (50, 0)])
        frames: list[CapturedFrame] = []
        medium.add_sniffer(frames.append)
        medium.broadcast(a, packet_to(BROADCAST))
        medium.unicast(a, b.ip, packet_to(b.ip))
        sim.run(1.0)
        assert len(frames) == 2
        assert frames[0].receiver_ip == "*"
        assert frames[1].receiver_ip == b.ip

    def test_remove_sniffer(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0)
        a, b = make_nodes(sim, medium, [(0, 0), (50, 0)])
        frames = []
        medium.add_sniffer(frames.append)
        medium.remove_sniffer(frames.append)
        medium.broadcast(a, packet_to(BROADCAST))
        assert frames == []

    def test_traffic_accounted_per_class(self, sim):
        stats = Stats()
        medium = WirelessMedium(sim, stats=stats, tx_range=100.0)
        a, b = make_nodes(sim, medium, [(0, 0), (50, 0)])
        medium.unicast(a, b.ip, Packet(a.ip, b.ip, Datagram(654, 654, b"r")))
        assert stats.traffic_packets("aodv") == 1
        assert stats.traffic_packets("total") == 1
