"""Unit tests for the bounded interface TX queue (§5f overload control)."""

import pytest

from repro.netsim import Simulator, WirelessMedium
from repro.netsim.node import InterfaceTxQueue
from repro.trace import TraceCollector
from tests.conftest import make_chain


@pytest.fixture
def quiet(sim, stats):
    """Zero-jitter medium: delivery order mirrors transmission order."""
    return WirelessMedium(sim, stats=stats, tx_range=150.0, jitter=0.0)


def burst(a, b, count, start=0):
    """Send ``count`` back-to-back datagrams a -> b in one event slot."""
    for k in range(start, start + count):
        a.send_udp(b.ip, 4000, 5000, f"p{k}".encode())


def collect(b):
    got = []
    b.bind(5000, lambda data, src, sport: got.append(data))
    return got


class TestConstruction:
    def test_capacity_must_be_positive(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        with pytest.raises(ValueError):
            InterfaceTxQueue(a, 0)

    def test_unknown_policy_rejected(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        with pytest.raises(ValueError):
            InterfaceTxQueue(a, 8, policy="newest-first")

    def test_default_watermark_is_three_quarters(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        assert InterfaceTxQueue(a, 16).high_watermark == 12
        assert InterfaceTxQueue(a, 1).high_watermark == 1  # floor at 1

    def test_explicit_watermark_honored(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        assert InterfaceTxQueue(a, 16, high_watermark=5).high_watermark == 5

    def test_configure_installs_and_removes(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        assert a.tx_queue is None
        a.configure_tx_queue(8, policy="oldest-first")
        assert a.tx_queue is not None
        assert a.tx_queue.policy == "oldest-first"
        a.configure_tx_queue(None)
        assert a.tx_queue is None


class TestSerialization:
    def test_idle_interface_cuts_through(self, sim, quiet):
        a, b = make_chain(sim, quiet, 2, static_routes=True)
        a.configure_tx_queue(8)
        got = collect(b)
        a.send_udp(b.ip, 4000, 5000, b"solo")
        sim.run(1.0)
        assert got == [b"solo"]
        assert a.tx_queue.transmitted == 1
        assert a.tx_queue.enqueued == 0
        assert a.tx_queue.depth == 0

    def test_burst_queues_and_drains_in_order(self, sim, quiet):
        a, b = make_chain(sim, quiet, 2, static_routes=True)
        a.configure_tx_queue(8)
        got = collect(b)
        burst(a, b, 4)
        assert a.tx_queue.depth == 3  # first frame is on the air, not queued
        sim.run(1.0)
        assert got == [b"p0", b"p1", b"p2", b"p3"]
        assert a.tx_queue.enqueued == 3
        assert a.tx_queue.transmitted == 4
        assert a.tx_queue.dropped == 0
        assert a.tx_queue.depth == 0
        assert a.stats.count("txqueue.enqueued") == 3

    def test_spaced_sends_never_queue(self, sim, quiet):
        a, b = make_chain(sim, quiet, 2, static_routes=True)
        a.configure_tx_queue(8)
        got = collect(b)
        for k in range(3):
            sim.schedule(k * 0.1, a.send_udp, b.ip, 4000, 5000, f"p{k}".encode())
        sim.run(1.0)
        assert got == [b"p0", b"p1", b"p2"]
        assert a.tx_queue.enqueued == 0


class TestDropPolicies:
    def test_tail_drop_sheds_the_arrival(self, sim, quiet):
        a, b = make_chain(sim, quiet, 2, static_routes=True)
        a.configure_tx_queue(2, policy="tail-drop")
        got = collect(b)
        burst(a, b, 5)  # 1 on air + 2 queued; p3, p4 shed on arrival
        sim.run(1.0)
        assert got == [b"p0", b"p1", b"p2"]
        assert a.tx_queue.dropped == 2
        assert a.stats.count("txqueue.drops") == 2

    def test_oldest_first_sheds_the_head(self, sim, quiet):
        a, b = make_chain(sim, quiet, 2, static_routes=True)
        a.configure_tx_queue(2, policy="oldest-first")
        got = collect(b)
        burst(a, b, 5)  # p0 on air; p1/p2 displaced by p3/p4
        sim.run(1.0)
        assert got == [b"p0", b"p3", b"p4"]
        assert a.tx_queue.dropped == 2

    def test_capacity_one_keeps_newest_under_oldest_first(self, sim, quiet):
        a, b = make_chain(sim, quiet, 2, static_routes=True)
        a.configure_tx_queue(1, policy="oldest-first")
        got = collect(b)
        burst(a, b, 4)
        sim.run(1.0)
        assert got == [b"p0", b"p3"]


class TestWatermark:
    def test_single_event_per_upward_crossing(self, sim, quiet):
        a, b = make_chain(sim, quiet, 2, static_routes=True)
        a.configure_tx_queue(4)  # default watermark: 3
        collect(b)
        burst(a, b, 5)  # queue depth reaches 4, crossing 3 exactly once
        assert a.stats.count("txqueue.high_watermarks") == 1
        sim.run(1.0)
        assert a.stats.count("txqueue.high_watermarks") == 1

    def test_rearms_after_draining_below(self, sim, quiet):
        a, b = make_chain(sim, quiet, 2, static_routes=True)
        a.configure_tx_queue(4)
        collect(b)
        burst(a, b, 5)
        sim.run(0.5)  # fully drained
        assert a.tx_queue.depth == 0
        sim.schedule(0.0, burst, a, b, 5, 5)
        sim.run(1.0)
        assert a.stats.count("txqueue.high_watermarks") == 2

    def test_below_watermark_burst_emits_nothing(self, sim, quiet):
        a, b = make_chain(sim, quiet, 2, static_routes=True)
        a.configure_tx_queue(8)  # watermark 6
        collect(b)
        burst(a, b, 4)
        sim.run(1.0)
        assert a.stats.count("txqueue.high_watermarks") == 0


class TestTraceEvents:
    def test_enqueue_drop_and_watermark_traces(self):
        sim = Simulator(seed=1)
        collector = TraceCollector().attach(sim)
        medium = WirelessMedium(sim, tx_range=150.0, jitter=0.0)
        a, b = make_chain(sim, medium, 2, static_routes=True)
        a.configure_tx_queue(2, policy="oldest-first", high_watermark=2)
        collect(b)
        burst(a, b, 4)
        sim.run(1.0)
        kinds = [event.kind for event in collector.events]
        assert kinds.count("queue.enqueue") == 3  # p1, p2 and displaced-for p3
        assert kinds.count("queue.drop") == 1
        assert kinds.count("queue.high_watermark") == 1
        drop = next(e for e in collector.events if e.kind == "queue.drop")
        assert drop.node == a.ip
        assert drop.detail["policy"] == "oldest-first"
        assert drop.detail["capacity"] == 2
        enqueue_depths = [
            e.detail["depth"] for e in collector.events if e.kind == "queue.enqueue"
        ]
        assert enqueue_depths == [1, 2, 2]


class TestCrash:
    def test_crash_clears_queued_frames(self, sim, quiet):
        a, b = make_chain(sim, quiet, 2, static_routes=True)
        a.configure_tx_queue(8)
        got = collect(b)
        burst(a, b, 4)
        assert a.tx_queue.depth == 3
        a.crash()
        assert a.tx_queue.depth == 0
        sim.run(1.0)
        # Only the frame already on the air at crash time arrives.
        assert got == [b"p0"]


class TestDefaultsOff:
    def test_nodes_ship_without_a_queue(self, sim, quiet):
        a, b = make_chain(sim, quiet, 2, static_routes=True)
        assert a.tx_queue is None and b.tx_queue is None
        got = collect(b)
        burst(a, b, 6)
        sim.run(1.0)
        # Unbounded legacy path: everything delivered, no queue accounting.
        assert got == [f"p{k}".encode() for k in range(6)]
        assert a.stats.count("txqueue.enqueued") == 0
        assert a.stats.count("txqueue.drops") == 0
