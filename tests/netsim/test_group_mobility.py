"""Unit tests for the Reference Point Group Mobility model."""

import math

import pytest

from repro.netsim import Node, ReferencePointGroupMobility, Simulator, manet_ip


def make_nodes(sim, count, base=0):
    return [Node(sim, base + i, manet_ip(base + i)) for i in range(count)]


class TestRpgm:
    def test_members_stay_near_their_center(self, sim):
        group_a = make_nodes(sim, 4)
        group_b = make_nodes(sim, 4, base=10)
        mobility = ReferencePointGroupMobility(
            sim, [group_a, group_b], 500.0, 500.0, group_radius=40.0, pause_time=0.0
        ).start()
        for step in range(20):
            sim.run(sim.now + 5.0)
            for index, group in enumerate((group_a, group_b)):
                cx, cy = mobility.group_center(index)
                for node in group:
                    x, y = node.position
                    # Within radius unless clamped at the area boundary.
                    interior = 40.0 < cx < 460.0 and 40.0 < cy < 460.0
                    if interior:
                        assert math.hypot(x - cx, y - cy) <= 40.0 + 1e-6
        mobility.stop()

    def test_groups_move_coherently(self, sim):
        group = make_nodes(sim, 5)
        for node in group:
            node.position = (250.0, 250.0)
        mobility = ReferencePointGroupMobility(
            sim, [group], 1000.0, 1000.0, min_speed=2.0, max_speed=3.0,
            group_radius=30.0, pause_time=0.0,
        ).start()
        sim.run(60.0)
        positions = [node.position for node in group]
        # The whole group travelled together: max pairwise spread bounded.
        spread = max(
            math.hypot(a[0] - b[0], a[1] - b[1]) for a in positions for b in positions
        )
        assert spread <= 2 * 30.0 + 1e-6
        # ...and it actually travelled.
        assert any(math.hypot(x - 250.0, y - 250.0) > 20.0 for x, y in positions)
        mobility.stop()

    def test_nodes_stay_in_area(self, sim):
        group = make_nodes(sim, 3)
        mobility = ReferencePointGroupMobility(
            sim, [group], 100.0, 100.0, group_radius=50.0, pause_time=0.0
        ).start()
        sim.run(120.0)
        for node in group:
            assert 0.0 <= node.position[0] <= 100.0
            assert 0.0 <= node.position[1] <= 100.0
        mobility.stop()

    def test_invalid_parameters_rejected(self, sim):
        group = make_nodes(sim, 2)
        with pytest.raises(ValueError):
            ReferencePointGroupMobility(sim, [group], 100, 100, min_speed=0)
        with pytest.raises(ValueError):
            ReferencePointGroupMobility(sim, [group], 100, 100, group_radius=0)

    def test_stop_freezes(self, sim):
        group = make_nodes(sim, 3)
        mobility = ReferencePointGroupMobility(
            sim, [group], 500.0, 500.0, min_speed=3.0, max_speed=3.0, pause_time=0.0
        ).start()
        sim.run(10.0)
        mobility.stop()
        frozen = [node.position for node in group]
        sim.run(30.0)
        assert [node.position for node in group] == frozen
