"""Seeded determinism regression: optimized vs. brute-force fast paths.

The spatial neighbor index, event-queue compaction and serialization caches
are pure performance work — a seeded scenario must produce *bit-identical*
measurements with them on or off. This runs a mid-size (25-node) mobile
scenario with SIP call traffic both ways and compares the complete Stats
output: per-protocol packet counts, byte totals, counters and samples.
"""

from repro.scenarios import ManetConfig, ManetScenario


def run_scenario(spatial_index: bool) -> tuple[dict, int, int]:
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=25,
            topology="random",
            routing="aodv",
            seed=2026,
            tx_range=250.0,
            area=(700.0, 700.0),
            mobility=True,
            spatial_index=spatial_index,
        )
    )
    scenario.start()
    scenario.add_phone(0, "alice")
    scenario.add_phone(24, "bob")
    scenario.converge()
    scenario.phones["alice"].place_call("sip:bob@voicehoc.ch", duration=5.0)
    scenario.sim.run(scenario.sim.now + 15.0)
    scenario.stop()
    return (
        scenario.stats.summary(),
        scenario.sim.events_processed,
        scenario.sim.pending_events,
    )


def test_optimized_and_brute_force_paths_are_bit_identical():
    fast_summary, fast_events, fast_pending = run_scenario(spatial_index=True)
    slow_summary, slow_events, slow_pending = run_scenario(spatial_index=False)
    assert fast_events == slow_events
    assert fast_pending == slow_pending
    assert fast_summary["traffic"] == slow_summary["traffic"]
    assert fast_summary["counters"] == slow_summary["counters"]
    assert fast_summary["samples"] == slow_summary["samples"]
    # The scenario actually exercised the medium: routing + SIP traffic flowed.
    assert fast_summary["traffic"]["total"]["packets"] > 100
    assert fast_summary["traffic"]["aodv"]["packets"] > 0
    assert fast_summary["traffic"]["sip"]["packets"] > 0


def test_same_seed_same_stats_with_index_enabled():
    first = run_scenario(spatial_index=True)
    second = run_scenario(spatial_index=True)
    assert first == second
