"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.errors import SimulationError
from repro.netsim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.3, fired.append, "c")
        sim.schedule(0.1, fired.append, "a")
        sim.schedule(0.2, fired.append, "b")
        sim.run(1.0)
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_insertion_order(self):
        sim = Simulator()
        fired = []
        for label in "abcde":
            sim.schedule(0.5, fired.append, label)
        sim.run(1.0)
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.25, lambda: seen.append(sim.now))
        sim.run(1.0)
        assert seen == [0.25]
        assert sim.now == 1.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.run(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.run(2.0)
        with pytest.raises(SimulationError):
            sim.run(1.0)

    def test_events_scheduled_during_run_fire_within_window(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(0.1, chain)

        sim.schedule(0.1, chain)
        sim.run(1.0)
        assert fired == pytest.approx([0.1, 0.2, 0.3])

    def test_events_beyond_until_stay_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.run(1.0)
        assert fired == []
        sim.run(3.0)
        assert fired == ["late"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(0.5, fired.append, "x")
        handle.cancel()
        sim.run(1.0)
        assert fired == []
        assert handle.cancelled

    def test_cancel_twice_is_safe(self):
        sim = Simulator()
        handle = sim.schedule(0.5, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run(1.0)


class TestQueueHygiene:
    def test_pending_events_counts_live_only(self):
        sim = Simulator()
        handles = [sim.schedule(0.1 * (i + 1), lambda: None) for i in range(10)]
        assert sim.pending_events == 10
        for handle in handles[:4]:
            handle.cancel()
        assert sim.pending_events == 6
        sim.run(0.55)  # fires the 0.5 s event (0.1-0.4 s are tombstones)
        assert sim.pending_events == 5

    def test_cancel_after_fire_does_not_corrupt_counter(self):
        sim = Simulator()
        handle = sim.schedule(0.1, lambda: None)
        sim.run(1.0)
        assert sim.pending_events == 0
        handle.cancel()
        handle.cancel()
        assert sim.pending_events == 0
        assert sim.queue_size == 0

    def test_heap_compaction_bounds_tombstones(self):
        sim = Simulator(kernel="heap")
        for _ in range(50_000):
            sim.schedule(1.0, lambda: None).cancel()
        # Without compaction the heap would hold 50k tombstones.
        assert sim.queue_size < Simulator.COMPACT_MIN_QUEUE
        assert sim.pending_events == 0
        assert sim.compactions > 0

    def test_calendar_tail_pop_leaves_no_tombstones(self):
        # Schedule-then-cancel churn cancels the newest entry in its bucket:
        # the calendar kernel pops it O(1) — no tombstone, no compaction.
        sim = Simulator(kernel="calendar")
        for _ in range(50_000):
            sim.schedule(1.0, lambda: None).cancel()
        assert sim.queue_size == 0
        assert sim.pending_events == 0
        assert sim.compactions == 0

    def test_calendar_compaction_bounds_interleaved_tombstones(self):
        # Cancel out of LIFO order so the first cancellation is never the
        # bucket tail — forcing the tombstone path — then verify the sweep
        # keeps the structure bounded without disturbing live events.
        sim = Simulator(kernel="calendar")
        keep = sim.schedule(2.0, lambda: None)
        for _ in range(25_000):
            first = sim.schedule(1.0, lambda: None)
            second = sim.schedule(1.0, lambda: None)
            first.cancel()  # non-tail: tombstone
            second.cancel()  # tail: O(1) pop
        assert sim.queue_size < 4 * Simulator.COMPACT_MIN_QUEUE
        assert sim.pending_events == 1
        assert sim.compactions > 0
        assert not keep.done

    def test_compaction_preserves_live_events_and_order(self):
        sim = Simulator(kernel="heap")
        fired = []
        sim.schedule(0.5, fired.append, "b")
        sim.schedule(0.2, fired.append, "a")
        sim.schedule(0.9, fired.append, "c")
        for _ in range(10_000):
            sim.schedule(0.3, lambda: None).cancel()
        assert sim.compactions > 0
        assert sim.pending_events == 3
        sim.run(1.0)
        assert fired == ["a", "b", "c"]

    def test_periodic_stop_churn_stays_bounded(self):
        for kernel in ("heap", "calendar"):
            sim = Simulator(kernel=kernel)
            for _ in range(5_000):
                sim.schedule_periodic(1.0, lambda: None).stop()
            assert sim.queue_size < Simulator.COMPACT_MIN_QUEUE
            assert sim.pending_events == 0

    def test_compaction_invisible_to_event_stream(self):
        """Same seed + same schedule => same firing trace with/without churn."""

        def run(churn: bool):
            sim = Simulator(seed=5)
            trace = []

            def tick(label):
                trace.append((round(sim.now, 6), label))
                if churn:
                    # Schedule-and-cancel storms between real events.
                    for _ in range(500):
                        sim.schedule(0.01, lambda: None).cancel()
                if len(trace) < 40:
                    sim.schedule(sim.rng.uniform(0.01, 0.1), tick, len(trace))

            sim.schedule(0.01, tick, 0)
            sim.run(10.0)
            return trace

        assert run(churn=False) == run(churn=True)


class TestPeriodic:
    def test_periodic_task_repeats(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(0.5, lambda: ticks.append(sim.now))
        sim.run(2.6)
        assert len(ticks) == 5

    def test_periodic_task_stop(self):
        sim = Simulator()
        ticks = []
        task = sim.schedule_periodic(0.5, lambda: ticks.append(sim.now))
        sim.run(1.1)
        task.stop()
        sim.run(5.0)
        assert len(ticks) == 2
        assert not task.running

    def test_periodic_with_jitter_stays_near_interval(self):
        sim = Simulator(seed=7)
        ticks = []
        sim.schedule_periodic(1.0, lambda: ticks.append(sim.now), jitter=0.1)
        sim.run(10.0)
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(0.9 <= gap <= 1.1 for gap in gaps)

    def test_zero_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_periodic(0.0, lambda: None)

    def test_initial_delay_override(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(5.0, lambda: ticks.append(sim.now), initial_delay=0.1)
        sim.run(1.0)
        assert ticks == [pytest.approx(0.1)]


class TestRunUntil:
    def test_run_until_predicate(self):
        sim = Simulator()
        flag = []
        sim.schedule(1.3, flag.append, True)
        assert sim.run_until(lambda: bool(flag), timeout=5.0)
        assert sim.now <= 1.5

    def test_run_until_timeout(self):
        sim = Simulator()
        assert not sim.run_until(lambda: False, timeout=1.0)
        assert sim.now == pytest.approx(1.0)


class TestDeterminism:
    def test_same_seed_same_random_sequence(self):
        a = Simulator(seed=99)
        b = Simulator(seed=99)
        assert [a.rng.random() for _ in range(10)] == [b.rng.random() for _ in range(10)]

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(0.1, lambda: None)
        sim.run(1.0)
        assert sim.events_processed == 4
