"""Unit tests for node IP forwarding, sockets, hooks and default routes."""

import pytest

from repro.errors import PortInUseError
from repro.netsim import (
    BROADCAST,
    Chain,
    Datagram,
    Node,
    Packet,
    Simulator,
    StaticRouter,
    Verdict,
    WirelessMedium,
    manet_ip,
)
from tests.conftest import make_chain


class TestSockets:
    def test_bind_and_receive(self, sim, medium):
        a, b = make_chain(sim, medium, 2, static_routes=True)
        got = []
        b.bind(5000, lambda data, src, sport: got.append((data, src, sport)))
        a.send_udp(b.ip, 4000, 5000, b"hi")
        sim.run(1.0)
        assert got == [(b"hi", a.ip, 4000)]

    def test_double_bind_rejected(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        a.bind(5000, lambda *args: None)
        with pytest.raises(PortInUseError):
            a.bind(5000, lambda *args: None)

    def test_closed_socket_port_reusable(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        socket = a.bind(5000, lambda *args: None)
        socket.close()
        a.bind(5000, lambda *args: None)  # no exception

    def test_send_on_closed_socket_raises(self, sim, medium):
        a, b = make_chain(sim, medium, 2, static_routes=True)
        socket = a.bind(5000, lambda *args: None)
        socket.close()
        with pytest.raises(OSError):
            socket.send(b.ip, 5000, b"x")

    def test_ephemeral_ports_distinct(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        s1 = a.bind_ephemeral(lambda *args: None)
        s2 = a.bind_ephemeral(lambda *args: None)
        assert s1.port != s2.port
        assert s1.port >= 49152

    def test_unbound_port_counts_unreachable(self, sim, medium):
        a, b = make_chain(sim, medium, 2, static_routes=True)
        a.send_udp(b.ip, 4000, 9999, b"x")
        sim.run(1.0)
        assert b.stats.count("udp.port_unreachable") == 1


class TestLocalDelivery:
    def test_loopback_delivery(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        got = []
        a.bind(5000, lambda data, src, sport: got.append(data))
        a.send_udp("127.0.0.1", 4000, 5000, b"loop")
        sim.run(0.1)
        assert got == [b"loop"]

    def test_own_address_delivery(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        got = []
        a.bind(5000, lambda data, src, sport: got.append(data))
        a.send_udp(a.ip, 4000, 5000, b"self")
        sim.run(0.1)
        assert got == [b"self"]

    def test_extra_local_address(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        a.add_local_address("10.0.0.42")
        assert a.is_local_address("10.0.0.42")
        a.remove_local_address("10.0.0.42")
        assert not a.is_local_address("10.0.0.42")


class TestForwarding:
    def test_multihop_forwarding(self, sim, medium, chain3):
        a, b, c = chain3
        got = []
        c.bind(5000, lambda data, src, sport: got.append(src))
        a.send_udp(c.ip, 4000, 5000, b"via-b")
        sim.run(1.0)
        assert got == [a.ip]

    def test_ttl_expiry_drops_packet(self, sim, medium, chain3):
        a, b, c = chain3
        got = []
        c.bind(5000, lambda data, src, sport: got.append(src))
        a.send_udp(c.ip, 4000, 5000, b"x", ttl=1)
        sim.run(1.0)
        assert got == []
        assert b.stats.count("ip.ttl_expired") == 1

    def test_no_router_counts_no_route(self, sim, medium):
        a, b = make_chain(sim, medium, 2, static_routes=False)
        a.send_udp(b.ip, 4000, 5000, b"x")
        assert a.stats.count("ip.no_route") == 1

    def test_down_node_ignores_traffic(self, sim, medium, chain3):
        a, b, c = chain3
        got = []
        c.bind(5000, lambda data, src, sport: got.append(src))
        b.up = False
        a.send_udp(c.ip, 4000, 5000, b"x")
        sim.run(1.0)
        assert got == []


class TestDefaultRoutes:
    def test_priority_order(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        taken = []
        a.set_default_route("tunnel", lambda pkt: taken.append("tunnel"), priority=10)
        a.set_default_route("wired", lambda pkt: taken.append("wired"), priority=0)
        a.send_udp("10.0.0.1", 4000, 5000, b"x")
        assert taken == ["wired"]

    def test_clear_falls_back(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        taken = []
        a.set_default_route("wired", lambda pkt: taken.append("wired"), priority=0)
        a.set_default_route("tunnel", lambda pkt: taken.append("tunnel"), priority=10)
        a.clear_default_route("wired")
        a.send_udp("10.0.0.1", 4000, 5000, b"x")
        assert taken == ["tunnel"]

    def test_no_default_route_counts(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        a.send_udp("10.0.0.1", 4000, 5000, b"x")
        assert a.stats.count("ip.no_route") == 1

    def test_replace_same_name(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        taken = []
        a.set_default_route("wired", lambda pkt: taken.append(1))
        a.set_default_route("wired", lambda pkt: taken.append(2))
        a.send_udp("10.0.0.1", 4000, 5000, b"x")
        assert taken == [2]


class TestNetfilterHooks:
    def test_output_hook_mutates_payload(self, sim, medium, chain3):
        a, b, c = chain3
        a.hooks.register(
            Chain.OUTPUT, {5000}, lambda pkt: (Verdict.ACCEPT, pkt.with_data(b"mangled"))
        )
        got = []
        b.bind(5000, lambda data, src, sport: got.append(data))
        a.send_udp(b.ip, 4000, 5000, b"original")
        sim.run(1.0)
        assert got == [b"mangled"]

    def test_output_hook_drop(self, sim, medium, chain3):
        a, b, c = chain3
        a.hooks.register(Chain.OUTPUT, {5000}, lambda pkt: (Verdict.DROP, pkt))
        got = []
        b.bind(5000, lambda data, src, sport: got.append(data))
        a.send_udp(b.ip, 4000, 5000, b"x")
        sim.run(1.0)
        assert got == []

    def test_input_hook_sees_broadcast(self, sim, medium, chain3):
        a, b, c = chain3
        seen = []

        def hook(pkt):
            seen.append(pkt.data)
            return (Verdict.ACCEPT, pkt)

        b.hooks.register(Chain.INPUT, {5000}, hook)
        b.bind(5000, lambda *args: None)
        a.send_udp(BROADCAST, 4000, 5000, b"bcast")
        sim.run(1.0)
        assert seen == [b"bcast"]

    def test_hook_port_filter(self, sim, medium, chain3):
        a, b, c = chain3
        seen = []
        a.hooks.register(
            Chain.OUTPUT, {6000}, lambda pkt: (seen.append(1), (Verdict.ACCEPT, pkt))[1]
        )
        b.bind(5000, lambda *args: None)
        a.send_udp(b.ip, 4000, 5000, b"x")
        assert seen == []

    def test_unregister_hook(self, sim, medium, chain3):
        a, b, c = chain3
        seen = []

        def hook(pkt):
            seen.append(1)
            return (Verdict.ACCEPT, pkt)

        handle = a.hooks.register(Chain.OUTPUT, {5000}, hook)
        a.hooks.unregister(handle)
        b.bind(5000, lambda *args: None)
        a.send_udp(b.ip, 4000, 5000, b"x")
        assert seen == []

    def test_hooks_chain_in_order(self, sim, medium, chain3):
        a, b, c = chain3
        a.hooks.register(
            Chain.OUTPUT, {5000}, lambda pkt: (Verdict.ACCEPT, pkt.with_data(pkt.data + b"1"))
        )
        a.hooks.register(
            Chain.OUTPUT, {5000}, lambda pkt: (Verdict.ACCEPT, pkt.with_data(pkt.data + b"2"))
        )
        got = []
        b.bind(5000, lambda data, src, sport: got.append(data))
        a.send_udp(b.ip, 4000, 5000, b"x")
        sim.run(1.0)
        assert got == [b"x12"]


class TestStaticRouter:
    def test_missing_route_counts(self, sim, medium):
        a, b = make_chain(sim, medium, 2)
        router = StaticRouter(a)
        a.set_router(router)
        a.send_udp(b.ip, 4000, 5000, b"x")
        assert a.stats.count("ip.no_route") == 1
