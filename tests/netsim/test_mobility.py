"""Unit tests for placement helpers and the random waypoint model."""

import math

import pytest

from repro.netsim import (
    Node,
    RandomWaypointMobility,
    Simulator,
    WirelessMedium,
    manet_ip,
    place_chain,
    place_grid,
    place_random,
)


def make_plain_nodes(sim, count):
    return [Node(sim, i, manet_ip(i)) for i in range(count)]


class TestPlacement:
    def test_chain_spacing(self, sim):
        nodes = make_plain_nodes(sim, 4)
        place_chain(nodes, 120.0)
        xs = [node.position[0] for node in nodes]
        assert xs == [0.0, 120.0, 240.0, 360.0]
        assert all(node.position[1] == 0.0 for node in nodes)

    def test_grid_is_square_ish(self, sim):
        nodes = make_plain_nodes(sim, 9)
        place_grid(nodes, 50.0)
        positions = {node.position for node in nodes}
        assert len(positions) == 9
        assert max(p[0] for p in positions) == 100.0
        assert max(p[1] for p in positions) == 100.0

    def test_grid_explicit_columns(self, sim):
        nodes = make_plain_nodes(sim, 4)
        place_grid(nodes, 10.0, columns=2)
        assert nodes[2].position == (0.0, 10.0)

    def test_random_within_bounds(self, sim):
        nodes = make_plain_nodes(sim, 20)
        place_random(nodes, sim, 300.0, 200.0)
        for node in nodes:
            assert 0 <= node.position[0] <= 300
            assert 0 <= node.position[1] <= 200


class TestRandomWaypoint:
    def test_nodes_stay_in_area(self, sim):
        nodes = make_plain_nodes(sim, 5)
        place_random(nodes, sim, 100.0, 100.0)
        mob = RandomWaypointMobility(sim, nodes, 100.0, 100.0, pause_time=0.0).start()
        sim.run(120.0)
        for node in nodes:
            assert -1 <= node.position[0] <= 101
            assert -1 <= node.position[1] <= 101
        mob.stop()

    def test_nodes_actually_move(self, sim):
        nodes = make_plain_nodes(sim, 3)
        place_random(nodes, sim, 500.0, 500.0)
        before = [node.position for node in nodes]
        mob = RandomWaypointMobility(
            sim, nodes, 500.0, 500.0, min_speed=2.0, max_speed=5.0, pause_time=0.0
        ).start()
        sim.run(30.0)
        after = [node.position for node in nodes]
        moved = sum(
            1
            for (x0, y0), (x1, y1) in zip(before, after)
            if math.hypot(x1 - x0, y1 - y0) > 1.0
        )
        assert moved == 3
        mob.stop()

    def test_speed_bounds_respected(self, sim):
        nodes = make_plain_nodes(sim, 1)
        nodes[0].position = (0.0, 0.0)
        mob = RandomWaypointMobility(
            sim, nodes, 1000.0, 1000.0, min_speed=1.0, max_speed=2.0,
            pause_time=0.0, tick=0.5,
        ).start()
        previous = nodes[0].position
        max_step = 0.0
        for _ in range(100):
            sim.run(sim.now + 0.5)
            x, y = nodes[0].position
            max_step = max(max_step, math.hypot(x - previous[0], y - previous[1]))
            previous = (x, y)
        assert max_step <= 2.0 * 0.5 + 1e-6
        mob.stop()

    def test_stop_freezes_positions(self, sim):
        nodes = make_plain_nodes(sim, 2)
        mob = RandomWaypointMobility(
            sim, nodes, 100.0, 100.0, min_speed=5.0, max_speed=5.0, pause_time=0.0
        ).start()
        sim.run(5.0)
        mob.stop()
        frozen = [node.position for node in nodes]
        sim.run(20.0)
        assert [node.position for node in nodes] == frozen

    def test_invalid_speeds_rejected(self, sim):
        nodes = make_plain_nodes(sim, 1)
        with pytest.raises(ValueError):
            RandomWaypointMobility(sim, nodes, 10, 10, min_speed=0.0, max_speed=1.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(sim, nodes, 10, 10, min_speed=2.0, max_speed=1.0)

    def test_mobility_changes_neighborhoods(self, sim):
        medium = WirelessMedium(sim, tx_range=60.0)
        nodes = []
        for i in range(2):
            node = Node(sim, i, manet_ip(i))
            node.join_medium(medium)
            nodes.append(node)
        nodes[0].position = (0.0, 0.0)
        nodes[1].position = (50.0, 0.0)
        assert medium.in_range(nodes[0], nodes[1])
        nodes[1].position = (500.0, 0.0)
        assert not medium.in_range(nodes[0], nodes[1])
