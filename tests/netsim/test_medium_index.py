"""Spatial-index neighbor cache: parity with brute force, cache invalidation.

The grid index must be observationally identical to the brute-force O(N)
scan — same neighbor sets, same (membership) ordering — under node churn,
mobility and reconfiguration, because delivery order drives RNG draw order
and therefore bit-for-bit determinism.
"""

import pytest

from repro.netsim import (
    Node,
    Simulator,
    WirelessMedium,
    manet_ip,
)
from repro.netsim.mobility import RandomWaypointMobility, place_random


def build_pair(seed=42, n=30, tx_range=150.0, area=600.0):
    """Two identical topologies, one indexed and one brute-force."""
    mediums, all_nodes = [], []
    for indexed in (True, False):
        sim = Simulator(seed=seed)
        medium = WirelessMedium(sim, tx_range=tx_range, use_spatial_index=indexed)
        nodes = []
        for i in range(n):
            node = Node(sim, i, manet_ip(i))
            node.join_medium(medium)
            nodes.append(node)
        place_random(nodes, sim, area, area)
        mediums.append(medium)
        all_nodes.append(nodes)
    return mediums[0], all_nodes[0], mediums[1], all_nodes[1]


def assert_parity(fast_medium, fast_nodes, slow_medium, slow_nodes):
    for fast_node, slow_node in zip(fast_nodes, slow_nodes):
        fast = [n.node_id for n in fast_medium.neighbors(fast_node)]
        slow = [n.node_id for n in slow_medium.neighbors(slow_node)]
        assert fast == slow, f"neighbor mismatch for node {fast_node.node_id}"


class TestParity:
    def test_random_topology_parity(self):
        assert_parity(*build_pair())

    def test_parity_after_add_node(self):
        fast_medium, fast_nodes, slow_medium, slow_nodes = build_pair(n=20)
        for medium, nodes in ((fast_medium, fast_nodes), (slow_medium, slow_nodes)):
            extra = Node(medium.sim, 99, manet_ip(99), position=(123.0, 45.0))
            extra.join_medium(medium)
            nodes.append(extra)
        assert_parity(fast_medium, fast_nodes, slow_medium, slow_nodes)

    def test_parity_after_remove_node(self):
        fast_medium, fast_nodes, slow_medium, slow_nodes = build_pair(n=20)
        for medium, nodes in ((fast_medium, fast_nodes), (slow_medium, slow_nodes)):
            medium.remove_node(nodes.pop(7))
            medium.remove_node(nodes.pop(0))
        assert_parity(fast_medium, fast_nodes, slow_medium, slow_nodes)

    def test_parity_under_mobility_steps(self):
        fast_medium, fast_nodes, slow_medium, slow_nodes = build_pair(n=25)
        for medium, nodes in ((fast_medium, fast_nodes), (slow_medium, slow_nodes)):
            RandomWaypointMobility(
                medium.sim, nodes, width=600.0, height=600.0, max_speed=20.0
            ).start()
        for t in (1.0, 5.0, 20.0):
            fast_medium.sim.run(t)
            slow_medium.sim.run(t)
            assert_parity(fast_medium, fast_nodes, slow_medium, slow_nodes)

    def test_parity_after_tx_range_change(self):
        fast_medium, fast_nodes, slow_medium, slow_nodes = build_pair()
        fast_medium.tx_range = 80.0
        slow_medium.tx_range = 80.0
        assert_parity(fast_medium, fast_nodes, slow_medium, slow_nodes)

    def test_neighbors_cross_cell_boundaries(self, sim):
        # Nodes just inside range but in different grid cells must be found.
        medium = WirelessMedium(sim, tx_range=100.0)
        a = Node(sim, 0, manet_ip(0), position=(99.0, 0.0))
        b = Node(sim, 1, manet_ip(1), position=(101.0, 0.0))  # next cell over
        c = Node(sim, 2, manet_ip(2), position=(99.0, 199.0))  # out of range
        for node in (a, b, c):
            node.join_medium(medium)
        assert medium.neighbors(a) == [b]
        assert medium.neighbors(b) == [a]

    def test_negative_coordinates(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0)
        a = Node(sim, 0, manet_ip(0), position=(-50.0, -50.0))
        b = Node(sim, 1, manet_ip(1), position=(10.0, 10.0))
        for node in (a, b):
            node.join_medium(medium)
        assert medium.neighbors(a) == [b]


class TestCacheInvalidation:
    def test_cache_reused_while_static(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0)
        a = Node(sim, 0, manet_ip(0), position=(0.0, 0.0))
        b = Node(sim, 1, manet_ip(1), position=(50.0, 0.0))
        for node in (a, b):
            node.join_medium(medium)
        first = medium.neighbors(a)
        assert medium.neighbors(a) is first  # cached list, no recompute

    def test_position_write_invalidates(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0)
        a = Node(sim, 0, manet_ip(0), position=(0.0, 0.0))
        b = Node(sim, 1, manet_ip(1), position=(50.0, 0.0))
        for node in (a, b):
            node.join_medium(medium)
        assert medium.neighbors(a) == [b]
        epoch = medium.position_epoch
        b.position = (500.0, 0.0)
        assert medium.position_epoch > epoch
        assert medium.neighbors(a) == []
        b.position = (60.0, 0.0)
        assert medium.neighbors(a) == [b]

    def test_in_cell_move_still_invalidates(self, sim):
        # Moving within the same grid cell changes distances and must not
        # serve a stale cached list.
        medium = WirelessMedium(sim, tx_range=100.0)
        a = Node(sim, 0, manet_ip(0), position=(0.0, 0.0))
        b = Node(sim, 1, manet_ip(1), position=(99.0, 0.0))
        for node in (a, b):
            node.join_medium(medium)
        assert medium.neighbors(a) == [b]
        # Stays in cell (0, 0) of the 100 m grid but leaves radio range
        # (diagonal distance ~ 139 m).
        b.position = (99.0, 99.0)
        assert medium.neighbors(a) == []

    def test_add_remove_invalidate(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0)
        a = Node(sim, 0, manet_ip(0), position=(0.0, 0.0))
        a.join_medium(medium)
        assert medium.neighbors(a) == []
        b = Node(sim, 1, manet_ip(1), position=(50.0, 0.0))
        b.join_medium(medium)
        assert medium.neighbors(a) == [b]
        medium.remove_node(b)
        assert medium.neighbors(a) == []

    def test_non_member_query_not_cached(self, sim):
        medium = WirelessMedium(sim, tx_range=100.0)
        a = Node(sim, 0, manet_ip(0), position=(0.0, 0.0))
        a.join_medium(medium)
        ghost = Node(sim, 99, None, position=(10.0, 0.0))
        assert medium.neighbors(ghost) == [a]
        assert medium.neighbors(ghost) == [a]


class TestBroadcastDeterminism:
    def test_broadcast_rng_stream_identical_across_modes(self):
        """Same seed + same frames => identical RNG state in both modes."""
        states = []
        for indexed in (True, False):
            sim = Simulator(seed=7)
            medium = WirelessMedium(
                sim, tx_range=150.0, loss_rate=0.3, use_spatial_index=indexed
            )
            nodes = []
            for i in range(20):
                node = Node(sim, i, manet_ip(i))
                node.join_medium(medium)
                nodes.append(node)
            place_random(nodes, sim, 400.0, 400.0)
            from repro.netsim import Datagram, Packet, BROADCAST

            for node in nodes:
                medium.broadcast(
                    node, Packet(node.ip, BROADCAST, Datagram(5060, 5060, b"x" * 40))
                )
            sim.run(1.0)
            states.append((sim.rng.getstate(), sim.events_processed))
        assert states[0] == states[1]
