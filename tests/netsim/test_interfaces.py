"""Unit tests for per-interface administrative state (§5k multihoming)."""

from repro.netsim import (
    InternetCloud,
    Node,
    Simulator,
    Stats,
    WirelessMedium,
    manet_ip,
    place_chain,
)
from tests.conftest import make_chain


def build_pair(sim, medium):
    return make_chain(sim, medium, 2, static_routes=True)


class TestInterfaceObjects:
    def test_wireless_interface_exists_and_starts_up(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        assert "wireless" in a.interfaces
        assert a.interface_up("wireless")

    def test_unknown_interface_counts_up(self, sim, medium):
        # Permissive by design: legacy hosts without interface objects
        # must behave exactly as before the multihoming work.
        (a,) = make_chain(sim, medium, 1)
        assert a.interface_up("wired")
        assert a.interface_up("no-such-thing")

    def test_cloud_attach_creates_wired_interface(self, sim):
        stats = Stats()
        cloud = InternetCloud(sim, stats=stats)
        node = Node(sim, 0, manet_ip(0), stats=stats)
        cloud.attach(node)
        assert "wired" in node.interfaces
        assert node.interface_up("wired")

    def test_add_interface_is_idempotent(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        first = a.add_interface("wired")
        first.up = False
        assert a.add_interface("wired") is first
        assert not a.interface_up("wired")

    def test_set_interface_up_counts_and_notifies(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        seen = []
        a.on_interface_change.append(lambda name, up: seen.append((name, up)))
        a.set_interface_up("wireless", False)
        a.set_interface_up("wireless", False)  # no-op: unchanged
        a.set_interface_up("wireless", True)
        assert seen == [("wireless", False), ("wireless", True)]
        assert a.stats.count("iface.down") == 1
        assert a.stats.count("iface.up") == 1


class TestInterfaceGating:
    def test_down_wireless_blocks_tx(self, sim, medium):
        a, b = build_pair(sim, medium)
        got = []
        b.bind(5000, lambda data, src, sport: got.append(data))
        a.set_interface_up("wireless", False)
        a.send_udp(b.ip, 4000, 5000, b"hi")
        sim.run(1.0)
        assert got == []

    def test_down_wireless_blocks_rx(self, sim, medium):
        a, b = build_pair(sim, medium)
        got = []
        b.bind(5000, lambda data, src, sport: got.append(data))
        b.set_interface_up("wireless", False)
        a.send_udp(b.ip, 4000, 5000, b"hi")
        sim.run(1.0)
        assert got == []

    def test_interface_restored_traffic_flows(self, sim, medium):
        a, b = build_pair(sim, medium)
        got = []
        b.bind(5000, lambda data, src, sport: got.append(data))
        a.set_interface_up("wireless", False)
        a.set_interface_up("wireless", True)
        a.send_udp(b.ip, 4000, 5000, b"hi")
        sim.run(1.0)
        assert got == [b"hi"]

    def test_down_iface_drop_cause(self, sim, medium):
        a, b = build_pair(sim, medium)
        a.set_interface_up("wireless", False)
        a.send_udp(b.ip, 4000, 5000, b"x")
        sim.run(1.0)
        assert a.stats.count("ip.iface_down") + a.stats.count("iface.tx_down") >= 1

    def test_node_down_still_independent_of_admin_state(self, sim, medium):
        a, b = build_pair(sim, medium)
        a.set_interface_up("wireless", False)
        assert a.up  # the host keeps running; only the radio is off

    def test_source_address_prefers_live_interface(self, sim):
        stats = Stats()
        cloud = InternetCloud(sim, stats=stats)
        medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
        node = Node(sim, 0, manet_ip(0), stats=stats)
        node.join_medium(medium)
        cloud.attach(node)
        assert node._source_address() == node.ip
        node.set_interface_up("wireless", False)
        assert node._source_address() == node.wired_ip
        node.set_interface_up("wireless", True)
        assert node._source_address() == node.ip

    def test_wired_route_skipped_while_wired_down(self, sim):
        stats = Stats()
        cloud = InternetCloud(sim, stats=stats)
        a = Node(sim, 0, "", stats=stats)
        b = Node(sim, 1, "", stats=stats)
        cloud.attach(a)
        cloud.attach(b)
        got = []
        b.bind(5000, lambda data, src, sport: got.append(data))
        a.set_interface_up("wired", False)
        a.send_udp(b.wired_ip, 4000, 5000, b"x")
        sim.run(1.0)
        assert got == []
        a.set_interface_up("wired", True)
        a.send_udp(b.wired_ip, 4000, 5000, b"y")
        sim.run(2.0)
        assert got == [b"y"]


class TestTxQueueInteraction:
    def test_radio_off_clears_queue(self, sim, medium):
        a, b = build_pair(sim, medium)
        a.configure_tx_queue(8)
        for _ in range(4):
            a.send_udp(b.ip, 4000, 5000, b"x")
        a.set_interface_up("wireless", False)
        assert a.tx_queue.depth == 0

    def test_kick_resumes_drain_after_radio_returns(self, sim, medium):
        a, b = build_pair(sim, medium)
        got = []
        b.bind(5000, lambda data, src, sport: got.append(data))
        a.configure_tx_queue(8)
        a.set_interface_up("wireless", False)
        a.set_interface_up("wireless", True)
        a.send_udp(b.ip, 4000, 5000, b"back")
        sim.run(1.0)
        assert got == [b"back"]


class TestCrashResetsInterfaces:
    def test_crash_power_cycles_administrative_state(self, sim, medium):
        a, b = build_pair(sim, medium)
        a.set_interface_up("wireless", False)
        a.crash()
        assert a.interface_up("wireless")
        a.restart()
        assert a.interface_up("wireless")

    def test_crash_clears_observers(self, sim, medium):
        (a,) = make_chain(sim, medium, 1)
        a.on_interface_change.append(lambda name, up: None)
        a.crash()
        assert a.on_interface_change == []


class TestMediumHonoursReceiverRadio:
    def test_unicast_to_radio_off_receiver_fails_like_out_of_range(self, sim, medium):
        a, b = build_pair(sim, medium)
        b.set_interface_up("wireless", False)
        got = []
        b.bind(5000, lambda data, src, sport: got.append(data))
        a.send_udp(b.ip, 4000, 5000, b"x")
        sim.run(2.0)
        assert got == []
        # MAC retries exhausted against a dead receiver, like a crash.
        assert a.stats.count("medium.unicast_failures") > 0
