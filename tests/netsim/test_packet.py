"""Unit tests for the packet model and addressing helpers."""

import pytest

from repro.netsim import (
    BROADCAST,
    FRAMING_BYTES,
    Datagram,
    Packet,
    internet_ip,
    is_internet_address,
    is_manet_address,
    manet_ip,
)


class TestDatagram:
    def test_payload_must_be_bytes(self):
        with pytest.raises(TypeError):
            Datagram(1, 2, "not bytes")

    def test_bytearray_coerced(self):
        datagram = Datagram(1, 2, bytearray(b"xy"))
        assert datagram.data == b"xy"

    def test_size_includes_udp_header(self):
        assert Datagram(1, 2, b"12345").size == 5 + 8


class TestPacket:
    def test_size_includes_all_framing(self):
        packet = Packet("1.2.3.4", "5.6.7.8", Datagram(1, 2, b"x" * 10))
        assert packet.size == 10 + FRAMING_BYTES

    def test_forwarded_decrements_ttl_keeps_uid(self):
        packet = Packet("1.2.3.4", "5.6.7.8", Datagram(1, 2, b""), ttl=10)
        hop = packet.forwarded()
        assert hop.ttl == 9
        assert hop.uid == packet.uid
        assert packet.ttl == 10  # original untouched

    def test_with_data_replaces_payload_only(self):
        packet = Packet("1.2.3.4", "5.6.7.8", Datagram(7, 9, b"old"))
        mutated = packet.with_data(b"new payload")
        assert mutated.data == b"new payload"
        assert (mutated.sport, mutated.dport) == (7, 9)
        assert mutated.uid == packet.uid
        assert packet.data == b"old"

    def test_broadcast_detection(self):
        packet = Packet("1.2.3.4", BROADCAST, Datagram(1, 2, b""))
        assert packet.is_broadcast()

    def test_uids_unique(self):
        a = Packet("1.1.1.1", "2.2.2.2", Datagram(1, 2, b""))
        b = Packet("1.1.1.1", "2.2.2.2", Datagram(1, 2, b""))
        assert a.uid != b.uid


class TestAddressing:
    def test_manet_ips_unique_and_valid(self):
        ips = {manet_ip(i) for i in range(500)}
        assert len(ips) == 500
        assert all(is_manet_address(ip) for ip in ips)

    def test_manet_ip_range_check(self):
        with pytest.raises(ValueError):
            manet_ip(-1)
        with pytest.raises(ValueError):
            manet_ip(250 * 250)

    def test_internet_ips_distinct_space(self):
        assert is_internet_address(internet_ip(3))
        assert not is_manet_address(internet_ip(3))
        assert not is_internet_address(manet_ip(3))
