"""Unit tests for the measurement registry."""

import math

import pytest

from repro.netsim import SampleSeries, Stats
from repro.netsim.packet import PORT_AODV, PORT_OLSR, PORT_SIP, PORT_SLP
from repro.netsim.stats import traffic_class_for_port

#: (port, expected class) — every labelled port plus each range boundary.
TRAFFIC_CLASS_TABLE = [
    # labelled well-known ports
    (PORT_AODV, "aodv"),
    (PORT_OLSR, "olsr"),
    (PORT_SLP, "slp"),
    (PORT_SIP, "sip"),
    # RTP range [16384, 32768): both edges, interior, and both off-by-ones
    (16383, "other"),
    (16384, "rtp"),
    (30000, "rtp"),
    (32767, "rtp"),
    (32768, "other"),
    # SIPHoc control ports and the baseline-scheme ports
    (5062, "siphoc"),
    (5063, "siphoc"),
    (5065, "flooding-register"),
    (5066, "proactive-hello"),
    # softphone/WAN-leg SIP range [5060, 5100): edges and interior
    (5059, "other"),
    (5060, "sip"),
    (5070, "sip"),
    (5099, "sip"),
    (5100, "other"),
    # fallback
    (0, "other"),
    (12345, "other"),
    (65535, "other"),
]


class TestTrafficClasses:
    @pytest.mark.parametrize("port,expected", TRAFFIC_CLASS_TABLE)
    def test_classification(self, port, expected):
        assert traffic_class_for_port(port) == expected

    def test_labelled_ports_shadow_the_sip_range(self):
        # 5062/5063 fall inside [5060, 5100) but the explicit labels win.
        assert traffic_class_for_port(5062) != "sip"
        assert traffic_class_for_port(5065) != "sip"


class TestStats:
    def test_transmission_counts_class_and_total(self):
        stats = Stats()
        stats.record_transmission(654, 100)
        stats.record_transmission(654, 50)
        stats.record_transmission(5060, 200)
        assert stats.traffic_bytes("aodv") == 150
        assert stats.traffic_packets("aodv") == 2
        assert stats.traffic_bytes("total") == 350
        assert stats.traffic_packets("total") == 3

    def test_counters(self):
        stats = Stats()
        stats.increment("x")
        stats.increment("x", 4)
        assert stats.count("x") == 5
        assert stats.count("unknown") == 0

    def test_summary_shape(self):
        stats = Stats()
        stats.record_transmission(654, 10)
        stats.increment("c")
        stats.sample("s", 1.0)
        summary = stats.summary()
        assert summary["traffic"]["aodv"] == {"packets": 1, "bytes": 10}
        assert summary["counters"] == {"c": 1}
        assert summary["samples"]["s"]["count"] == 1

    def test_summary_includes_percentiles(self):
        stats = Stats()
        for value in range(1, 101):
            stats.sample("delay", float(value))
        snapshot = stats.summary()["samples"]["delay"]
        assert snapshot["p50"] == 50.0
        assert snapshot["p95"] == 95.0
        assert snapshot["p99"] == 99.0
        assert abs(snapshot["stddev"] - 29.011) < 0.01


class TestSampleSeries:
    def test_basic_stats(self):
        series = SampleSeries()
        for value in (1.0, 2.0, 3.0, 4.0):
            series.add(value)
        assert series.mean == 2.5
        assert series.minimum == 1.0
        assert series.maximum == 4.0
        assert series.count == 4

    def test_stddev(self):
        series = SampleSeries(values=[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert abs(series.stddev - 2.138) < 0.01

    def test_empty_series(self):
        series = SampleSeries()
        assert math.isnan(series.mean)
        assert math.isnan(series.percentile(50))
        assert series.stddev == 0.0

    def test_percentiles(self):
        series = SampleSeries(values=[float(v) for v in range(1, 101)])
        assert series.percentile(50) == 50.0
        assert series.percentile(95) == 95.0
        assert series.percentile(100) == 100.0
        assert series.percentile(0) == 1.0

    def test_percentile_cache_reused_until_growth(self):
        series = SampleSeries(values=[3.0, 1.0, 2.0])
        assert series.percentile(50) == 2.0
        first_sorted = series._sorted
        assert series.percentile(95) == 3.0
        assert series._sorted is first_sorted  # no re-sort while unchanged
        series.add(0.0)
        assert series.percentile(0) == 0.0  # cache invalidated by growth
        assert series._sorted is not first_sorted


class TestPercentileEdgeCases:
    """Nearest-rank boundary behavior: the cases summaries actually hit."""

    def test_empty_series_every_pct_is_nan(self):
        series = SampleSeries()
        for pct in (0, 50, 100):
            assert math.isnan(series.percentile(pct))

    def test_single_sample_every_pct_returns_it(self):
        series = SampleSeries(values=[42.0])
        for pct in (0, 1, 50, 99, 100):
            assert series.percentile(pct) == 42.0

    def test_p0_is_minimum_and_p100_is_maximum(self):
        series = SampleSeries(values=[9.0, 7.0, 3.0, 5.0])
        assert series.percentile(0) == series.minimum == 3.0
        assert series.percentile(100) == series.maximum == 9.0

    def test_rank_boundaries_round_up(self):
        # Nearest-rank with ceil: pct exactly on a rank boundary selects
        # that rank; one epsilon above tips to the next sample.
        series = SampleSeries(values=[10.0, 20.0, 30.0, 40.0])
        assert series.percentile(25) == 10.0
        assert series.percentile(25.0001) == 20.0
        assert series.percentile(50) == 20.0
        assert series.percentile(50.0001) == 30.0
        assert series.percentile(75) == 30.0
        assert series.percentile(75.0001) == 40.0

    def test_unsorted_input_is_ranked_by_value(self):
        series = SampleSeries(values=[5.0, 1.0, 4.0, 2.0, 3.0])
        assert [series.percentile(p) for p in (20, 40, 60, 80, 100)] == [
            1.0,
            2.0,
            3.0,
            4.0,
            5.0,
        ]

    def test_duplicate_values(self):
        series = SampleSeries(values=[1.0, 1.0, 1.0, 9.0])
        assert series.percentile(75) == 1.0
        assert series.percentile(76) == 9.0


class TestStatsSerialization:
    @staticmethod
    def _populated():
        stats = Stats()
        stats.record_transmission(654, 100)   # aodv
        stats.record_transmission(5060, 200)  # sip
        stats.increment("zeta", 3)
        stats.increment("alpha")
        stats.sample("delay", 1.5)
        stats.sample("delay", 0.5)
        stats.sample("mos", 4.2)
        return stats

    def test_round_trip_preserves_everything(self):
        original = self._populated()
        restored = Stats.from_dict(original.to_dict())
        assert restored.summary() == original.summary()
        assert restored.to_dict() == original.to_dict()
        # raw sample order survives, not just the aggregates
        assert restored.samples["delay"].values == [1.5, 0.5]

    def test_to_dict_is_schema_versioned_and_sorted(self):
        data = self._populated().to_dict()
        assert data["schema_version"] == Stats.SCHEMA_VERSION
        assert list(data["counters"]) == ["alpha", "zeta"]
        assert list(data["traffic"]) == sorted(data["traffic"])
        assert list(data["samples"]) == ["delay", "mos"]

    def test_to_dict_json_round_trips(self):
        import json

        data = self._populated().to_dict()
        assert json.loads(json.dumps(data, sort_keys=True)) == data

    def test_from_dict_rejects_unknown_schema_version(self):
        data = self._populated().to_dict()
        data["schema_version"] = Stats.SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            Stats.from_dict(data)
        with pytest.raises(ValueError, match="schema_version"):
            Stats.from_dict({})

    def test_round_trip_of_empty_stats(self):
        restored = Stats.from_dict(Stats().to_dict())
        assert restored.summary() == Stats().summary()
