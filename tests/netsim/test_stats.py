"""Unit tests for the measurement registry."""

import math

from repro.netsim import SampleSeries, Stats
from repro.netsim.stats import traffic_class_for_port


class TestTrafficClasses:
    def test_well_known_ports(self):
        assert traffic_class_for_port(654) == "aodv"
        assert traffic_class_for_port(698) == "olsr"
        assert traffic_class_for_port(5060) == "sip"
        assert traffic_class_for_port(427) == "slp"

    def test_rtp_range(self):
        assert traffic_class_for_port(16384) == "rtp"
        assert traffic_class_for_port(30000) == "rtp"

    def test_siphoc_and_baseline_ports(self):
        assert traffic_class_for_port(5062) == "siphoc"
        assert traffic_class_for_port(5063) == "siphoc"
        assert traffic_class_for_port(5065) == "flooding-register"
        assert traffic_class_for_port(5066) == "proactive-hello"

    def test_softphone_ports_are_sip(self):
        assert traffic_class_for_port(5070) == "sip"

    def test_unknown_port(self):
        assert traffic_class_for_port(12345) == "other"


class TestStats:
    def test_transmission_counts_class_and_total(self):
        stats = Stats()
        stats.record_transmission(654, 100)
        stats.record_transmission(654, 50)
        stats.record_transmission(5060, 200)
        assert stats.traffic_bytes("aodv") == 150
        assert stats.traffic_packets("aodv") == 2
        assert stats.traffic_bytes("total") == 350
        assert stats.traffic_packets("total") == 3

    def test_counters(self):
        stats = Stats()
        stats.increment("x")
        stats.increment("x", 4)
        assert stats.count("x") == 5
        assert stats.count("unknown") == 0

    def test_summary_shape(self):
        stats = Stats()
        stats.record_transmission(654, 10)
        stats.increment("c")
        stats.sample("s", 1.0)
        summary = stats.summary()
        assert summary["traffic"]["aodv"] == {"packets": 1, "bytes": 10}
        assert summary["counters"] == {"c": 1}
        assert summary["samples"]["s"]["count"] == 1


class TestSampleSeries:
    def test_basic_stats(self):
        series = SampleSeries()
        for value in (1.0, 2.0, 3.0, 4.0):
            series.add(value)
        assert series.mean == 2.5
        assert series.minimum == 1.0
        assert series.maximum == 4.0
        assert series.count == 4

    def test_stddev(self):
        series = SampleSeries(values=[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert abs(series.stddev - 2.138) < 0.01

    def test_empty_series(self):
        series = SampleSeries()
        assert math.isnan(series.mean)
        assert math.isnan(series.percentile(50))
        assert series.stddev == 0.0

    def test_percentiles(self):
        series = SampleSeries(values=[float(v) for v in range(1, 101)])
        assert series.percentile(50) == 50.0
        assert series.percentile(95) == 95.0
        assert series.percentile(100) == 100.0
        assert series.percentile(0) == 1.0
