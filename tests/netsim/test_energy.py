"""Unit tests for the radio energy model."""

import pytest

from repro.netsim import (
    BROADCAST,
    Datagram,
    EnergyCoefficients,
    EnergyModel,
    Node,
    Packet,
    Simulator,
    WirelessMedium,
    manet_ip,
)


def build(sim, positions, loss_rate=0.0, mac_retries=3):
    energy = EnergyModel()
    medium = WirelessMedium(
        sim, tx_range=100.0, loss_rate=loss_rate, mac_retries=mac_retries, energy=energy
    )
    nodes = []
    for index, position in enumerate(positions):
        node = Node(sim, index, manet_ip(index), position=position)
        node.join_medium(medium)
        nodes.append(node)
    return energy, medium, nodes


def packet(dst, size=100):
    return Packet("192.168.0.1", dst, Datagram(1000, 2000, b"x" * size))


class TestModel:
    def test_linear_cost_formula(self):
        model = EnergyModel(EnergyCoefficients(send_m=2.0, send_b=100.0))
        sim = Simulator()
        node = Node(sim, 0, manet_ip(0))
        pkt = packet(BROADCAST, size=38)  # 38 + 62 framing = 100 bytes
        model.on_send(node, pkt)
        assert model.spent_uj(node.ip) == pytest.approx(2.0 * pkt.size + 100.0)

    def test_retries_multiply_send_cost(self):
        model = EnergyModel()
        sim = Simulator()
        node = Node(sim, 0, manet_ip(0))
        pkt = packet("192.168.0.2")
        model.on_send(node, pkt, attempts=3)
        single = EnergyModel()
        single.on_send(node, pkt, attempts=1)
        assert model.spent_uj(node.ip) == pytest.approx(3 * single.spent_uj(node.ip))

    def test_reporting_totals(self):
        model = EnergyModel()
        sim = Simulator()
        a = Node(sim, 0, manet_ip(0))
        b = Node(sim, 1, manet_ip(1))
        model.on_send(a, packet(BROADCAST))
        model.on_receive_broadcast(b, packet(BROADCAST))
        per_node = model.per_node_joules()
        assert per_node[a.ip] > per_node[b.ip] > 0
        assert model.total_joules() == pytest.approx(sum(per_node.values()))
        assert model.max_node_joules() == pytest.approx(per_node[a.ip])


class TestMediumIntegration:
    def test_broadcast_bills_sender_and_all_receivers(self, sim):
        energy, medium, nodes = build(sim, [(0, 0), (50, 0), (90, 0)])
        medium.broadcast(nodes[0], packet(BROADCAST))
        assert energy.spent_uj(nodes[0].ip) > 0  # sender
        assert energy.spent_uj(nodes[1].ip) > 0  # both neighbors
        assert energy.spent_uj(nodes[2].ip) > 0

    def test_unicast_bills_bystanders_with_discard_cost(self, sim):
        energy, medium, nodes = build(sim, [(0, 0), (50, 0), (90, 0)])
        medium.unicast(nodes[0], nodes[1].ip, packet(nodes[1].ip))
        receiver_cost = energy.spent_uj(nodes[1].ip)
        bystander_cost = energy.spent_uj(nodes[2].ip)
        assert receiver_cost > bystander_cost > 0

    def test_lossy_unicast_costs_more_than_clean(self):
        def run(loss):
            sim = Simulator(seed=9)
            energy, medium, nodes = build(
                sim, [(0, 0), (50, 0)], loss_rate=loss, mac_retries=6
            )
            for _ in range(50):
                medium.unicast(nodes[0], nodes[1].ip, packet(nodes[1].ip))
            return energy.spent_uj(nodes[0].ip)

        assert run(0.4) > run(0.0)

    def test_no_energy_model_by_default(self, sim, medium):
        assert medium.energy is None  # opt-in: zero cost when not measuring
