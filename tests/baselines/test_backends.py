"""Behavioural tests for the related-work discovery baselines.

Every backend is exercised through the common interface on the same
4-node chain; scheme-specific properties (traffic shape, convergence
mode) get dedicated tests.
"""

import pytest

from repro.baselines import (
    FloodingSipBackend,
    ManetSlpBackend,
    MulticastSlpBackend,
    ProactiveHelloBackend,
)
from repro.netsim import Node, Simulator, Stats, WirelessMedium, manet_ip, place_chain
from repro.routing import Aodv

BACKENDS = {
    "siphoc": lambda node, daemon: ManetSlpBackend(node, daemon),
    "multicast-slp": lambda node, daemon: MulticastSlpBackend(node),
    "flooding-register": lambda node, daemon: FloodingSipBackend(node),
    "proactive-hello": lambda node, daemon: ProactiveHelloBackend(node),
}


def build(factory, n=4, seed=71):
    sim = Simulator(seed=seed)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    nodes, backends = [], []
    for index in range(n):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        daemon = Aodv(node)
        daemon.start()
        backend = factory(node, daemon)
        backend.start()
        nodes.append(node)
        backends.append(backend)
    place_chain(nodes, 100.0)
    return sim, stats, nodes, backends


@pytest.mark.parametrize("name", sorted(BACKENDS))
class TestCommonInterface:
    def test_resolve_remote_user(self, name):
        sim, stats, nodes, backends = build(BACKENDS[name])
        backends[3].register_user("sip:bob@voicehoc.ch", nodes[3].ip, 5060)
        sim.run(12.0)  # proactive schemes need a refresh cycle
        results = []
        backends[0].resolve("sip:bob@voicehoc.ch", results.append, timeout=4.0)
        sim.run(20.0)
        assert results, f"{name}: no callback"
        binding = results[0]
        assert binding is not None, f"{name}: unresolved"
        assert binding.host == nodes[3].ip
        assert binding.port == 5060

    def test_resolve_unknown_user_returns_none(self, name):
        sim, stats, nodes, backends = build(BACKENDS[name])
        results = []
        backends[0].resolve("sip:ghost@voicehoc.ch", results.append, timeout=3.0)
        sim.run(20.0)
        assert results == [None]

    def test_resolve_own_user(self, name):
        sim, stats, nodes, backends = build(BACKENDS[name])
        backends[0].register_user("sip:me@voicehoc.ch", nodes[0].ip, 5060)
        results = []
        backends[0].resolve("sip:me@voicehoc.ch", results.append)
        sim.run(5.0)  # multicast SLP waits out its collection window
        assert results[0] is not None


class TestFloodingRegister:
    def test_registration_traffic_is_periodic(self):
        sim, stats, nodes, backends = build(BACKENDS["flooding-register"])
        backends[0].register_user("sip:a@h", nodes[0].ip, 5060)
        sim.run(35.0)
        # Initial flood + ~3 refresh floods, each re-flooded by 3 nodes.
        assert stats.count("flooding.registers_sent") >= 3
        assert stats.count("flooding.registers_forwarded") >= 6
        assert stats.traffic_bytes("flooding-register") > 0

    def test_all_nodes_learn_the_table(self):
        sim, stats, nodes, backends = build(BACKENDS["flooding-register"])
        for index, backend in enumerate(backends):
            backend.register_user(f"sip:u{index}@h", nodes[index].ip, 5060)
        sim.run(15.0)
        assert all(backend.table_size() == 4 for backend in backends)

    def test_bindings_expire_without_refresh(self):
        sim, stats, nodes, backends = build(BACKENDS["flooding-register"])
        backends[0].register_user("sip:a@h", nodes[0].ip, 5060)
        sim.run(5.0)
        backends[0].stop()  # no more refresh floods
        expiry = FloodingSipBackend.BINDING_LIFETIME
        sim.run(5.0 + expiry + 15.0)
        assert backends[3].table_size() == 0


class TestProactiveHello:
    def test_gossip_spreads_mappings(self):
        sim, stats, nodes, backends = build(BACKENDS["proactive-hello"])
        backends[0].register_user("sip:a@h", nodes[0].ip, 5060)
        sim.run(20.0)
        assert backends[3].table_size() == 1
        assert stats.traffic_bytes("proactive-hello") > 0

    def test_hello_size_grows_with_table(self):
        sim, stats, nodes, backends = build(BACKENDS["proactive-hello"])
        for index, backend in enumerate(backends):
            backend.register_user(f"sip:user{index}@voicehoc.ch", nodes[index].ip, 5060)
        sim.run(12.0)
        early_bytes = stats.traffic_bytes("proactive-hello")
        early_packets = stats.traffic_packets("proactive-hello")
        sim.run(24.0)
        late_bytes = stats.traffic_bytes("proactive-hello") - early_bytes
        late_packets = stats.traffic_packets("proactive-hello") - early_packets
        # Once everyone gossips everyone's mappings, per-packet size grows.
        assert late_bytes / max(1, late_packets) > early_bytes / max(1, early_packets)


class TestSiphocBackendCharacter:
    def test_no_dedicated_discovery_traffic(self):
        sim, stats, nodes, backends = build(BACKENDS["siphoc"])
        backends[3].register_user("sip:bob@h", nodes[3].ip, 5060)
        sim.run(1.0)
        results = []
        backends[0].resolve("sip:bob@h", results.append, timeout=4.0)
        sim.run(10.0)
        assert results[0] is not None
        assert stats.traffic_bytes("slp") == 0
        assert stats.traffic_bytes("flooding-register") == 0
        assert stats.traffic_bytes("proactive-hello") == 0
