"""Property-based tests for routing/SLP wire codecs (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.errors import CodecError
from repro.routing import (
    Extension,
    HelloBody,
    OlsrMessage,
    Rerr,
    Rrep,
    Rreq,
    TcBody,
    decode_aodv,
    decode_hello_body,
    decode_olsr_packet,
    decode_tc_body,
    encode_aodv,
    encode_hello_body,
    encode_olsr_packet,
    encode_tc_body,
)
from repro.slp import (
    SrvAck,
    SrvDeReg,
    SrvReg,
    SrvRply,
    SrvRqst,
    UrlEntry,
    decode_slp,
    encode_slp,
)

ips = st.integers(min_value=0, max_value=0xFFFFFFFF).map(
    lambda v: ".".join(str((v >> shift) & 0xFF) for shift in (24, 16, 8, 0))
)
u8 = st.integers(min_value=0, max_value=255)
u16 = st.integers(min_value=0, max_value=0xFFFF)
u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)

rreqs = st.builds(
    Rreq, rreq_id=u32, dest_ip=ips, dest_seq=u32, orig_ip=ips, orig_seq=u32,
    hop_count=u8, flags=st.integers(min_value=0, max_value=3),
)
rreps = st.builds(
    Rrep, dest_ip=ips, dest_seq=u32, orig_ip=ips, lifetime_ms=u32, hop_count=u8
)
rerrs = st.builds(
    Rerr, unreachable=st.lists(st.tuples(ips, u32), max_size=20)
)
extensions = st.lists(
    st.builds(Extension, ext_type=u8, body=st.binary(max_size=100)), max_size=4
)


class TestAodvProperties:
    @settings(max_examples=80)
    @given(st.one_of(rreqs, rreps, rerrs), extensions)
    def test_round_trip(self, message, exts):
        decoded, decoded_exts = decode_aodv(encode_aodv(message, exts))
        assert decoded == message
        assert decoded_exts == exts

    @given(st.binary(max_size=120))
    def test_decoder_never_crashes(self, data):
        try:
            decode_aodv(data)
        except CodecError:
            pass


text = st.text(max_size=30)
url_entries = st.builds(
    UrlEntry,
    url=st.just("service:siphoc-sip://192.168.0.1:5060"),
    lifetime=u16,
    attributes=text,
)
slp_messages = st.one_of(
    st.builds(SrvRqst, xid=u16, service_type=text, predicate=text, requester=text),
    st.builds(SrvRply, xid=u16, entries=st.lists(url_entries, max_size=5),
              error=u16),
    st.builds(SrvReg, xid=u16, entry=url_entries),
    st.builds(SrvDeReg, xid=u16, url=text),
    st.builds(SrvAck, xid=u16, error=u16),
)


class TestSlpProperties:
    @settings(max_examples=80)
    @given(slp_messages)
    def test_round_trip(self, message):
        assert decode_slp(encode_slp(message)) == message

    @given(st.binary(max_size=120))
    def test_decoder_never_crashes(self, data):
        try:
            decode_slp(data)
        except CodecError:
            pass


olsr_messages = st.builds(
    OlsrMessage,
    msg_type=u8,
    orig_ip=ips,
    seq=u16,
    body=st.binary(max_size=60),
    vtime=st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
    ttl=u8,
    hops=u8,
)


class TestOlsrProperties:
    @settings(max_examples=80)
    @given(u16, st.lists(olsr_messages, max_size=5))
    def test_packet_round_trip_preserves_payloads(self, seq, messages):
        decoded_seq, decoded = decode_olsr_packet(encode_olsr_packet(seq, messages))
        assert decoded_seq == seq
        assert [m.body for m in decoded] == [m.body for m in messages]
        assert [m.orig_ip for m in decoded] == [m.orig_ip for m in messages]
        assert [m.ttl for m in decoded] == [m.ttl for m in messages]

    @settings(max_examples=60)
    @given(
        st.dictionaries(
            st.sampled_from([1, 2, 3]), st.lists(ips, max_size=6, unique=True), max_size=3
        ),
        st.integers(min_value=0, max_value=7),
    )
    def test_hello_body_round_trip(self, links, willingness):
        body = HelloBody(links=links, willingness=willingness)
        decoded = decode_hello_body(encode_hello_body(body))
        assert {k: v for k, v in decoded.links.items() if v} == {
            k: v for k, v in links.items() if v
        }

    @settings(max_examples=60)
    @given(u16, st.lists(ips, max_size=10))
    def test_tc_body_round_trip(self, ansn, neighbors):
        decoded = decode_tc_body(encode_tc_body(TcBody(ansn=ansn, neighbors=neighbors)))
        assert decoded.ansn == ansn
        assert decoded.neighbors == neighbors

    @given(st.binary(max_size=120))
    def test_decoder_never_crashes(self, data):
        try:
            decode_olsr_packet(data)
        except CodecError:
            pass
