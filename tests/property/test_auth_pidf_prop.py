"""Property-based tests for digest auth and PIDF codecs (hypothesis)."""

import string

from hypothesis import given, settings, strategies as st

from repro.errors import SipParseError
from repro.sip.auth import (
    Credentials,
    DigestAuthenticator,
    make_challenge,
    parse_auth_params,
)
from repro.sip.pidf import PresenceStatus, build_pidf, parse_pidf

identifiers = st.text(string.ascii_letters + string.digits + ".-_", min_size=1, max_size=20)
passwords = st.text(min_size=1, max_size=30).filter(lambda s: '"' not in s)
notes = st.text(max_size=60).filter(lambda s: "]]>" not in s)


class TestAuthProperties:
    @settings(max_examples=50)
    @given(identifiers, passwords, identifiers)
    def test_correct_password_always_verifies(self, username, password, realm):
        auth = DigestAuthenticator(realm)
        auth.add_user(username, password)
        challenge = auth.challenge(now=0.0)
        value = Credentials(username, password).authorization_for(
            challenge, "REGISTER", "sip:" + realm
        )
        assert auth.verify(value, "REGISTER", now=1.0)

    @settings(max_examples=50)
    @given(identifiers, passwords, passwords)
    def test_wrong_password_never_verifies(self, username, real, wrong):
        if real == wrong:
            return
        auth = DigestAuthenticator("r")
        auth.add_user(username, real)
        challenge = auth.challenge(now=0.0)
        value = Credentials(username, wrong).authorization_for(challenge, "REGISTER", "sip:r")
        assert not auth.verify(value, "REGISTER", now=1.0)

    @given(st.text(max_size=100))
    def test_param_parser_never_crashes(self, text):
        result = parse_auth_params(text)
        assert isinstance(result, dict)

    @settings(max_examples=50)
    @given(identifiers, identifiers)
    def test_challenge_parses_back(self, realm, nonce):
        params = parse_auth_params(make_challenge(realm, nonce))
        assert params["realm"] == realm
        assert params["nonce"] == nonce


class TestPidfProperties:
    @settings(max_examples=60)
    @given(identifiers, st.sampled_from(["open", "closed"]), notes)
    def test_round_trip(self, user, basic, note):
        entity = f"sip:{user}@voicehoc.ch"
        status = PresenceStatus(basic=basic, note=note)
        parsed_entity, parsed_status = parse_pidf(build_pidf(entity, status))
        assert parsed_entity == entity
        assert parsed_status.basic == basic
        assert parsed_status.note == note

    @given(st.binary(max_size=150))
    def test_parser_never_crashes(self, data):
        try:
            parse_pidf(data)
        except SipParseError:
            pass
