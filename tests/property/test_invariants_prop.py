"""Property-based invariants: simulator ordering, jitter buffer, E-model,
route table, SLP predicates, tunnel codec."""

from hypothesis import given, settings, strategies as st

from repro.core import decode_inner_packet, encode_inner_packet
from repro.netsim import Datagram, Packet, Simulator
from repro.routing import Route, RouteTable
from repro.rtp import G711, JitterBuffer, mos_from_r, r_factor
from repro.slp import evaluate_predicate, format_attributes, parse_attributes

ips = st.integers(min_value=0, max_value=0xFFFFFFFF).map(
    lambda v: ".".join(str((v >> shift) & 0xFF) for shift in (24, 16, 8, 0))
)


class TestSimulatorOrdering:
    @settings(max_examples=50)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=40))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator(seed=0)
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run(101.0)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=1, max_value=30))
    def test_same_seed_same_schedule(self, seed, count):
        def run(seed):
            sim = Simulator(seed=seed)
            values = []
            for _ in range(count):
                sim.schedule(sim.rng.random(), lambda: values.append(sim.now))
            sim.run(2.0)
            return values

        assert run(seed) == run(seed)


class TestJitterBufferInvariants:
    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=300),  # sequence
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),  # arrival
            ),
            max_size=80,
        )
    )
    def test_accounting_always_balances(self, arrivals):
        buffer = JitterBuffer(frame_interval=0.02, playout_delay=0.06)
        for sequence, arrival in sorted(arrivals, key=lambda pair: pair[1]):
            buffer.on_packet(sequence, arrival)
        stats = buffer.stats
        assert stats.played + stats.late_dropped + stats.duplicates == stats.received
        assert 0.0 <= stats.late_ratio <= 1.0


class TestEModelInvariants:
    @settings(max_examples=60)
    @given(
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_r_and_mos_bounded(self, delay, loss):
        r = r_factor(G711, delay, loss)
        assert 0.0 <= r <= 100.0
        assert 1.0 <= mos_from_r(r) <= 4.5

    @settings(max_examples=40)
    @given(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    )
    def test_more_loss_never_helps(self, loss_a, loss_b, delay):
        low, high = sorted((loss_a, loss_b))
        assert r_factor(G711, delay, high) <= r_factor(G711, delay, low)


class TestRouteTableInvariants:
    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(ips, ips, st.integers(min_value=1, max_value=30),
                      st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
            max_size=30,
        ),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    def test_lookup_only_returns_usable(self, entries, now):
        table = RouteTable()
        for dest, hop, hops, expiry in entries:
            table.upsert(Route(dest, hop, hop_count=hops, expires_at=expiry))
        for dest, *_ in entries:
            route = table.lookup(dest, now)
            if route is not None:
                assert route.valid and route.expires_at > now

    @settings(max_examples=50)
    @given(st.lists(st.tuples(ips, ips), max_size=30))
    def test_one_entry_per_destination(self, pairs):
        table = RouteTable()
        for dest, hop in pairs:
            table.upsert(Route(dest, hop, hop_count=1))
        assert len(table) == len({dest for dest, _ in pairs})


_attr_keys = st.text("abcdefghij", min_size=1, max_size=6)
_attr_values = st.text("abcdefghij0123456789:@.-", min_size=1, max_size=12)


class TestSlpPredicateInvariants:
    @settings(max_examples=60)
    @given(st.dictionaries(_attr_keys, _attr_values, max_size=5))
    def test_attribute_round_trip(self, attrs):
        assert parse_attributes(format_attributes(attrs)) == attrs

    @settings(max_examples=60)
    @given(st.dictionaries(_attr_keys, _attr_values, min_size=1, max_size=5))
    def test_every_attribute_matches_itself(self, attrs):
        for key, value in attrs.items():
            assert evaluate_predicate(f"({key}={value})", attrs)
            assert evaluate_predicate(f"({key}={value[:1]}*)", attrs)

    @given(st.text(max_size=30), st.dictionaries(_attr_keys, _attr_values, max_size=3))
    def test_evaluator_never_crashes(self, predicate, attrs):
        evaluate_predicate(predicate, attrs)


class TestTunnelCodecInvariants:
    @settings(max_examples=60)
    @given(
        ips, ips,
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.binary(max_size=200),
    )
    def test_round_trip(self, src, dst, ttl, sport, dport, data):
        packet = Packet(src, dst, Datagram(sport, dport, data), ttl=ttl)
        decoded = decode_inner_packet(encode_inner_packet(packet))
        assert (decoded.src, decoded.dst, decoded.ttl) == (src, dst, ttl)
        assert (decoded.sport, decoded.dport, decoded.data) == (sport, dport, data)
