"""Property-based tests for the SIP grammar (hypothesis)."""

import string

from hypothesis import given, settings, strategies as st

from repro.errors import SipParseError
from repro.sip import Headers, SipRequest, SipResponse, SipUri, parse_message

_user_chars = string.ascii_letters + string.digits + ".-_"
_host_chars = string.ascii_lowercase + string.digits + ".-"

users = st.text(_user_chars, min_size=1, max_size=16)
hosts = st.from_regex(r"[a-z0-9]([a-z0-9\-]{0,10}[a-z0-9])?(\.[a-z0-9]{1,8}){0,3}", fullmatch=True)
ports = st.integers(min_value=1, max_value=65535)
methods = st.sampled_from(["INVITE", "ACK", "BYE", "CANCEL", "REGISTER", "OPTIONS"])
header_values = st.text(
    string.ascii_letters + string.digits + " .-_@:;=<>", min_size=1, max_size=40
).map(str.strip).filter(bool)
statuses = st.integers(min_value=100, max_value=699)


@st.composite
def sip_uris(draw):
    user = draw(st.one_of(st.none(), users))
    host = draw(hosts)
    port = draw(st.one_of(st.none(), ports))
    return SipUri(user=user, host=host, port=port)


class TestUriProperties:
    @given(sip_uris())
    def test_round_trip(self, uri):
        assert SipUri.parse(str(uri)) == uri

    @given(sip_uris())
    def test_aor_is_parseable_prefix(self, uri):
        aor = SipUri.parse(uri.address_of_record)
        assert aor.user == uri.user
        assert aor.host == uri.host
        assert aor.port is None

    @given(st.text(max_size=30))
    def test_parser_never_crashes(self, text):
        try:
            SipUri.parse(text)
        except SipParseError:
            pass  # the only acceptable failure mode


@st.composite
def sip_requests(draw):
    method = draw(methods)
    uri = draw(sip_uris())
    headers = Headers()
    headers.add("Via", f"SIP/2.0/UDP {draw(hosts)}:{draw(ports)};branch=z9hG4bK-{draw(st.integers(0, 9999))}")
    headers.add("From", f"<sip:{draw(users)}@{draw(hosts)}>;tag={draw(users)}")
    headers.add("To", f"<sip:{draw(users)}@{draw(hosts)}>")
    headers.add("Call-ID", draw(users))
    headers.add("CSeq", f"{draw(st.integers(1, 99999))} {method}")
    for _ in range(draw(st.integers(0, 3))):
        headers.add(draw(st.sampled_from(["Contact", "Route", "Record-Route", "Subject"])),
                    draw(header_values))
    body = draw(st.binary(max_size=64))
    return SipRequest(method, uri, headers=headers, body=body)


class TestMessageProperties:
    @settings(max_examples=60)
    @given(sip_requests())
    def test_request_round_trip(self, request):
        parsed = parse_message(request.serialize())
        assert isinstance(parsed, SipRequest)
        assert parsed.method == request.method
        assert parsed.uri == request.uri
        assert parsed.body == request.body
        assert parsed.headers.get_all("Via") == request.headers.get_all("Via")

    @settings(max_examples=60)
    @given(sip_requests(), statuses)
    def test_response_round_trip(self, request, status):
        response = request.create_response(status, to_tag="prop")
        parsed = parse_message(response.serialize())
        assert isinstance(parsed, SipResponse)
        assert parsed.status == status
        assert parsed.call_id == request.call_id

    @settings(max_examples=60)
    @given(sip_requests())
    def test_serialization_idempotent(self, request):
        once = request.serialize()
        again = parse_message(once).serialize()
        assert once == again

    @given(st.binary(max_size=200))
    def test_parser_never_crashes_on_garbage(self, data):
        try:
            parse_message(data)
        except SipParseError:
            pass

    @settings(max_examples=40)
    @given(sip_requests())
    def test_content_length_always_correct(self, request):
        wire = request.serialize()
        parsed = parse_message(wire)
        assert int(parsed.headers.get("Content-Length")) == len(parsed.body)
