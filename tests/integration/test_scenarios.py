"""Tests for the scenario builders themselves."""

import pytest

from repro.errors import ConfigError
from repro.scenarios import ManetConfig, ManetScenario, build_chain_call_scenario


class TestConstruction:
    def test_chain_topology_positions(self):
        scenario = ManetScenario(ManetConfig(n_nodes=4, topology="chain", spacing=80.0))
        xs = [node.position[0] for node in scenario.nodes]
        assert xs == [0.0, 80.0, 160.0, 240.0]

    def test_grid_topology(self):
        scenario = ManetScenario(ManetConfig(n_nodes=9, topology="grid", spacing=50.0))
        assert len({node.position for node in scenario.nodes}) == 9

    def test_random_topology_bounded(self):
        scenario = ManetScenario(
            ManetConfig(n_nodes=10, topology="random", area=(200.0, 100.0))
        )
        assert all(0 <= n.position[0] <= 200 and 0 <= n.position[1] <= 100
                   for n in scenario.nodes)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigError):
            ManetScenario(ManetConfig(topology="torus"))

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigError):
            ManetScenario(n_nodez=5)

    def test_overrides_apply(self):
        scenario = ManetScenario(n_nodes=7, routing="olsr")
        assert len(scenario.nodes) == 7
        assert scenario.stacks[0].routing.name == "olsr"

    def test_gateways_are_last_nodes(self):
        scenario = ManetScenario(
            ManetConfig(n_nodes=4, internet_gateways=1, providers=("siphoc.ch",))
        )
        assert scenario.nodes[-1].wired_ip is not None
        assert scenario.nodes[0].wired_ip is None
        assert scenario.stacks[-1].gateway is not None

    def test_providers_registered_in_dns(self):
        scenario = ManetScenario(
            ManetConfig(n_nodes=2, internet_gateways=1,
                        providers=("siphoc.ch",), strict_providers=("polyphone.ethz.ch",))
        )
        assert scenario.cloud.dns.resolve("siphoc.ch") is not None
        assert scenario.cloud.dns.resolve("sbc.polyphone.ethz.ch") is not None

    def test_same_seed_reproducible(self):
        a = build_chain_call_scenario(hops=2, seed=33)
        a.converge()
        record_a = a.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=2.0)
        a.stop()
        b = build_chain_call_scenario(hops=2, seed=33)
        b.converge()
        record_b = b.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=2.0)
        b.stop()
        assert record_a.setup_delay == pytest.approx(record_b.setup_delay, abs=1e-9)


class TestHelpers:
    def test_hop_count(self):
        scenario = build_chain_call_scenario(hops=3, routing="olsr", seed=34)
        scenario.converge(20.0)
        assert scenario.hop_count(0, 3) == 3
        scenario.stop()

    def test_call_and_wait_returns_failed_record(self):
        scenario = build_chain_call_scenario(hops=1, seed=35)
        scenario.converge()
        record = scenario.call_and_wait("alice", "sip:ghost@voicehoc.ch", duration=1.0)
        assert record.final_state == "failed"
        scenario.stop()


class TestMultihomed:
    def test_multihomed_nodes_get_uplink_without_gateway_role(self):
        from repro.scenarios import ManetConfig, ManetScenario

        scenario = ManetScenario(
            ManetConfig(
                n_nodes=4,
                topology="chain",
                seed=9,
                multihomed=(0, 3),
                internet_gateways=1,
            )
        )
        # Wired attachment everywhere it was asked for...
        assert scenario.nodes[0].wired_ip is not None
        assert scenario.nodes[3].wired_ip is not None
        assert scenario.nodes[1].wired_ip is None
        # ...but only the declared gateway runs a GatewayProvider: the
        # multihomed phone node must not advertise gateway.siphoc.
        assert scenario.stacks[0].gateway is None
        assert scenario.stacks[3].gateway is not None

    def test_restarted_multihomed_node_keeps_phone_role(self):
        from repro.scenarios import ManetConfig, ManetScenario

        scenario = ManetScenario(
            ManetConfig(n_nodes=3, topology="chain", seed=9, multihomed=(0,))
        )
        scenario.start()
        scenario.sim.run(2.0)
        scenario.crash_node(0)
        stack = scenario.restart_node(0)
        assert stack.gateway is None
        assert scenario.nodes[0].wired_ip is not None
        scenario.stop()
