"""Integration: digest authentication end-to-end through the system."""

import pytest

from repro.core import SipAccount, SipProvider, SiphocStack
from repro.netsim import (
    InternetCloud,
    Node,
    Simulator,
    Stats,
    WirelessMedium,
    make_internet_host,
    manet_ip,
    place_chain,
)
from repro.sip import UserAgent
from repro.sip.auth import Credentials
from repro.sip.uri import SipUri


def build(seed=91):
    sim = Simulator(seed=seed)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    cloud = InternetCloud(sim, stats=stats)
    provider = SipProvider(cloud, "secure.example", auth_required=True)
    nodes = []
    for index in range(3):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        nodes.append(node)
    place_chain(nodes, 100.0)
    cloud.attach(nodes[-1])
    stacks = [SiphocStack(node, routing="aodv", cloud=cloud).start() for node in nodes]
    return sim, stats, cloud, provider, nodes, stacks


class TestDirectUaAuth:
    def test_register_with_credentials_succeeds(self):
        sim, stats, cloud, provider, nodes, stacks = build()
        creds = provider.add_subscriber("erin", "hunter2")
        host = make_internet_host(sim, cloud, "erin.secure.example")
        ua = UserAgent(
            host,
            aor=SipUri(user="erin", host="secure.example"),
            port=5060,
            outbound_proxy=(provider.address, 5060),
            credentials=creds,
        )
        results = []
        ua.register(on_result=lambda ok, resp: results.append(ok))
        sim.run(3.0)
        assert results == [True]
        assert provider.host.stats.count("provider.auth_challenges") == 1
        assert provider.location.lookup("sip:erin@secure.example", sim.now)

    def test_register_without_credentials_rejected(self):
        sim, stats, cloud, provider, nodes, stacks = build()
        host = make_internet_host(sim, cloud, "mallory.example")
        ua = UserAgent(
            host,
            aor=SipUri(user="mallory", host="secure.example"),
            port=5060,
            outbound_proxy=(provider.address, 5060),
        )
        results = []
        ua.register(on_result=lambda ok, resp: results.append((ok, resp.status if resp else None)))
        sim.run(3.0)
        assert results == [(False, 401)]

    def test_register_with_wrong_password_rejected(self):
        sim, stats, cloud, provider, nodes, stacks = build()
        provider.add_subscriber("erin", "hunter2")
        host = make_internet_host(sim, cloud, "erin.secure.example")
        ua = UserAgent(
            host,
            aor=SipUri(user="erin", host="secure.example"),
            port=5060,
            outbound_proxy=(provider.address, 5060),
            credentials=Credentials("erin", "wrong"),
        )
        results = []
        ua.register(on_result=lambda ok, resp: results.append(ok))
        sim.run(3.0)
        assert results == [False]


class TestSiphocUpstreamAuth:
    def test_proxy_answers_provider_challenge(self):
        sim, stats, cloud, provider, nodes, stacks = build()
        provider.add_subscriber("alice", "s3cret")
        account = SipAccount(username="alice", domain="secure.example", password="s3cret")
        stacks[0].add_phone(account=account)
        sim.run(20.0)
        assert (
            stacks[0].proxy.upstream_registrations.get("sip:alice@secure.example") is True
        )
        contacts = provider.location.lookup("sip:alice@secure.example", sim.now)
        assert contacts  # binding installed after the 401 round-trip

    def test_proxy_without_password_fails_upstream(self):
        sim, stats, cloud, provider, nodes, stacks = build()
        provider.add_subscriber("alice", "s3cret")
        account = SipAccount(username="alice", domain="secure.example")  # no password
        stacks[0].add_phone(account=account)
        sim.run(20.0)
        assert (
            stacks[0].proxy.upstream_registrations.get("sip:alice@secure.example") is False
        )

    def test_authenticated_end_to_end_call(self):
        sim, stats, cloud, provider, nodes, stacks = build()
        carol = provider.create_softphone("carol")  # auto-provisioned credentials
        provider.add_subscriber("alice", "s3cret")
        alice = stacks[0].add_phone(
            account=SipAccount(username="alice", domain="secure.example", password="s3cret")
        )
        sim.run(20.0)
        alice.place_call("sip:carol@secure.example", duration=3.0)
        sim.run(50.0)
        assert alice.history[0].established
