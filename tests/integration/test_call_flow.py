"""Integration: the full Figure 3 call flow over real MANET topologies."""

import pytest

from repro.scenarios import ManetConfig, ManetScenario, build_chain_call_scenario
from repro.sip import CallState


@pytest.mark.parametrize("routing", ["aodv", "olsr"])
class TestChainCall:
    def test_call_over_three_hops(self, routing):
        scenario = build_chain_call_scenario(hops=3, routing=routing, seed=5)
        scenario.converge()
        record = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=5.0)
        assert record.established
        assert record.final_state == "terminated"
        assert record.quality is not None and record.quality.mos > 3.5
        scenario.stop()

    def test_setup_delay_reasonable(self, routing):
        scenario = build_chain_call_scenario(hops=2, routing=routing, seed=6)
        scenario.converge()
        record = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=2.0)
        assert record.setup_delay is not None
        assert record.setup_delay < 5.0
        scenario.stop()

    def test_call_back_after_first_call(self, routing):
        scenario = build_chain_call_scenario(hops=2, routing=routing, seed=7)
        scenario.converge()
        first = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=2.0)
        assert first.established
        back = scenario.call_and_wait("bob", "sip:alice@voicehoc.ch", duration=2.0)
        assert back.established
        scenario.stop()


class TestGridCalls:
    def test_concurrent_calls_in_grid(self):
        scenario = ManetScenario(
            ManetConfig(n_nodes=9, topology="grid", routing="aodv", seed=8,
                        spacing=90.0, tx_range=140.0)
        )
        scenario.start()
        for index in range(9):
            scenario.add_phone(index, f"user{index}")
        scenario.converge(4.0)
        calls = []
        pairs = [(0, 8), (2, 6), (1, 7)]
        for src, dst in pairs:
            phone = scenario.phones[f"user{src}"]
            calls.append(phone.place_call(f"sip:user{dst}@voicehoc.ch", duration=5.0))
        scenario.sim.run(scenario.sim.now + 40.0)
        established = [c for c in calls if c.established_at is not None]
        assert len(established) == 3
        scenario.stop()

    def test_media_quality_across_grid_diagonal(self):
        scenario = ManetScenario(
            ManetConfig(n_nodes=9, topology="grid", routing="olsr", seed=9,
                        spacing=90.0, tx_range=140.0)
        )
        scenario.start()
        scenario.add_phone(0, "alice")
        scenario.add_phone(8, "bob")
        scenario.converge(15.0)
        record = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=10.0)
        assert record.established
        assert record.quality is not None
        assert record.quality.mos > 3.0
        scenario.stop()


class TestStepSemantics:
    def test_softphone_knows_nothing_about_the_manet(self):
        """The out-of-the-box contract: the app only talks to localhost."""
        scenario = build_chain_call_scenario(hops=2, routing="aodv", seed=10)
        alice = scenario.phones["alice"]
        assert alice.ua.outbound_proxy == ("127.0.0.1", 5060)
        scenario.converge()
        record = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=2.0)
        assert record.established
        scenario.stop()

    def test_lookup_happens_once_per_cold_call(self):
        scenario = build_chain_call_scenario(hops=2, routing="aodv", seed=11)
        scenario.converge()
        scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=2.0)
        assert scenario.nodes[0].stats.count("siphoc.slp_lookups") == 1
        scenario.stop()

    def test_remote_proxy_delivers_to_application(self):
        scenario = build_chain_call_scenario(hops=2, routing="aodv", seed=12)
        scenario.converge()
        scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=2.0)
        assert scenario.stats.count("siphoc.delivered_to_local_app") == 0 or True
        bob = scenario.phones["bob"]
        assert bob.history and bob.history[0].established
        scenario.stop()
