"""Integration: video calls over the MANET and through the gateway.

The paper's intro lists video among the services VoIP-over-MANET should
carry; these tests run audio+video sessions through the same SIPHoc path.
"""

import pytest

from repro.core import SipAccount, SiphocStack
from repro.netsim import (
    InternetCloud,
    Node,
    Simulator,
    Stats,
    WirelessMedium,
    manet_ip,
    place_chain,
)
from repro.sip import CallState


def build(n=3, seed=85, gateway=False, providers=(), video_caller=True, video_callee=True):
    sim = Simulator(seed=seed)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0, bitrate=11_000_000)
    cloud = None
    provider_objs = {}
    if gateway or providers:
        cloud = InternetCloud(sim, stats=stats)
        from repro.core import SipProvider

        for domain in providers:
            provider_objs[domain] = SipProvider(cloud, domain)
    nodes = []
    for index in range(n):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        nodes.append(node)
    place_chain(nodes, 100.0)
    if gateway:
        cloud.attach(nodes[-1])
    stacks = [SiphocStack(node, routing="aodv", cloud=cloud).start() for node in nodes]
    alice = stacks[0].add_phone(username="alice", video=video_caller)
    bob = stacks[-1].add_phone(username="bob", video=video_callee)
    return sim, stats, stacks, alice, bob, provider_objs


class TestManetVideo:
    def test_video_call_both_streams_flow(self):
        sim, stats, stacks, alice, bob, _ = build()
        sim.run(2.0)
        alice.place_call("sip:bob@voicehoc.ch", duration=5.0)
        sim.run(20.0)
        for phone in (alice, bob):
            record = phone.history[0]
            assert record.established
            assert record.quality is not None  # audio scored
            assert record.video is not None, f"{phone.aor}: no video received"
            assert record.video.loss_ratio < 0.05
            assert record.video.watchable

    def test_video_declined_by_audio_only_callee(self):
        sim, stats, stacks, alice, bob, _ = build(video_callee=False)
        sim.run(2.0)
        call = alice.place_call("sip:bob@voicehoc.ch", duration=4.0)
        sim.run(20.0)
        record = alice.history[0]
        assert record.established
        assert record.quality is not None  # audio fine
        assert record.video is None  # declined: m=video port 0 in the answer
        # The answer explicitly rejected the stream rather than omitting it.
        assert call.remote_sdp is not None
        assert call.remote_sdp.video is None
        assert any(m.media == "video" and m.port == 0 for m in call.remote_sdp.media)

    def test_audio_only_phone_never_offers_video(self):
        sim, stats, stacks, alice, bob, _ = build(video_caller=False)
        sim.run(2.0)
        call = alice.place_call("sip:bob@voicehoc.ch", duration=3.0)
        sim.run(15.0)
        assert alice.history[0].established
        assert all(m.media != "video" for m in call.local_sdp.media)

    def test_video_bitrate_dominates_traffic(self):
        sim, stats, stacks, alice, bob, _ = build()
        sim.run(2.0)
        alice.place_call("sip:bob@voicehoc.ch", duration=10.0)
        sim.run(25.0)
        # ~312 kbit/s video vs 64 kbit/s audio per direction.
        rtp_bytes = stats.traffic_bytes("rtp")
        assert rtp_bytes > 800_000

    def test_hold_pauses_video_too(self):
        sim, stats, stacks, alice, bob, _ = build()
        sim.run(2.0)
        call = alice.place_call("sip:bob@voicehoc.ch")
        sim.run_until(lambda: call.state is CallState.ESTABLISHED, timeout=15.0)
        sim.run(sim.now + 2.0)
        alice.hold(call)
        sim.run(sim.now + 1.0)
        quiet_start = stats.traffic_packets("rtp")
        sim.run(sim.now + 4.0)
        assert stats.traffic_packets("rtp") - quiet_start < 30
        alice.resume(call)
        sim.run(sim.now + 1.0)
        flowing = stats.traffic_packets("rtp")
        sim.run(sim.now + 3.0)
        assert stats.traffic_packets("rtp") - flowing > 200


class TestGatewayVideo:
    def test_video_relayed_across_gateway(self):
        sim, stats, stacks, alice, bob, providers = build(
            n=3, gateway=True, providers=("siphoc.ch",)
        )
        provider = providers["siphoc.ch"]
        carol = provider.create_softphone("carol", video=True)
        vip = stacks[0].add_phone(
            account=SipAccount(username="vip", domain="siphoc.ch"), video=True
        )
        sim.run(20.0)
        vip.place_call("sip:carol@siphoc.ch", duration=5.0)
        sim.run(60.0)
        record = vip.history[0]
        assert record.established
        assert record.quality is not None
        assert record.video is not None, "video must relay through the gateway"
        assert record.video.loss_ratio < 0.1
        carol_record = carol.history[0]
        assert carol_record.video is not None
