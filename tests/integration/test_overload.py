"""Integration: SIP admission control under load on a relay chain (§5f).

The overload acceptance scenario: with the proxy at its admission
watermark, new INVITEs are shed with 503 + Retry-After while established
calls keep their RTP flowing, and a retry-capable phone waits out the
advertised delay and lands its redial once the pressure clears.
"""

from repro.core import AnswerMode
from repro.core.config import SiphocConfig
from repro.scenarios import ManetConfig, ManetScenario
from repro.sip import CallState

BOB = "sip:bob@voicehoc.ch"


def build(seed=11, **phone_kwargs):
    """3-node chain, admission max_inflight=1, alice calling bob end to end."""
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=3,
            topology="chain",
            routing="aodv",
            seed=seed,
            siphoc=SiphocConfig(admission_max_inflight=1, admission_retry_after=7),
        )
    )
    scenario.start()
    alice = scenario.add_phone(0, "alice", **phone_kwargs)
    bob = scenario.add_phone(2, "bob")
    scenario.converge()
    return scenario, alice, bob


def advance(scenario, dt):
    scenario.sim.run(scenario.sim.now + dt)


class TestAdmissionUnderLoad:
    def test_new_invites_shed_while_established_call_keeps_media(self):
        scenario, alice, bob = build()
        # Call 1 establishes and talks for 8 s.
        call1 = alice.place_call(BOB, duration=8.0)
        record1 = alice.history[-1]
        advance(scenario, 2.0)
        assert call1.state is CallState.ESTABLISHED

        # Call 2 rings forever (callee goes manual), pinning the proxy's
        # inflight gauge at the watermark.
        bob.answer_mode = AnswerMode.MANUAL
        alice.place_call(BOB)
        advance(scenario, 1.0)

        # Call 3 hits the watermark: shed with 503 + Retry-After, no queueing.
        alice.place_call(BOB)
        record3 = alice.history[-1]
        advance(scenario, 2.0)
        assert record3.failure_status == 503
        assert record3.retry_after == 7
        assert not record3.established
        assert scenario.stats.count("sip.admission_rejected") >= 1

        # The established call never noticed: still up right through the
        # rejection, then completes its talk time with media on the wire.
        assert call1.state is CallState.ESTABLISHED
        advance(scenario, 9.0)
        scenario.stop()
        assert record1.established
        assert record1.final_state == "terminated"
        assert record1.quality is not None
        assert record1.quality.packets_received > 0

    def test_rejected_phone_retries_after_retry_after_and_succeeds(self):
        scenario, alice, bob = build(retry_on_503=True)
        # Pin the watermark with a never-answered call.
        bob.answer_mode = AnswerMode.MANUAL
        blocker = alice.place_call(BOB)
        advance(scenario, 1.0)

        # This dial is shed; the phone schedules a redial for Retry-After
        # plus seeded jitter.
        alice.place_call(BOB, duration=2.0)
        first_record = alice.history[-1]
        advance(scenario, 1.0)
        assert first_record.failure_status == 503
        assert alice.node.stats.count("softphone.call_retries") == 1

        # Clear the pressure before the redial fires: CANCEL the blocker so
        # the 487 settles the proxy's inflight gauge.
        blocker.cancel()
        bob.answer_mode = AnswerMode.AUTO
        advance(scenario, 15.0)
        scenario.stop()

        retries = [r for r in alice.history if r.direction == "out" and r.attempt == 2]
        assert len(retries) == 1
        retry_record = retries[0]
        assert retry_record.established
        # The redial respected the proxy's advertised Retry-After (7 s)
        # plus at least the base unit of backoff jitter.
        assert retry_record.placed_at - first_record.placed_at >= 8.0

    def test_same_seed_runs_agree_on_shedding(self):
        outcomes = []
        for _ in range(2):
            scenario, alice, bob = build(seed=23)
            bob.answer_mode = AnswerMode.MANUAL
            alice.place_call(BOB)
            advance(scenario, 1.0)
            alice.place_call(BOB)
            advance(scenario, 2.0)
            scenario.stop()
            outcomes.append(
                (
                    [
                        (r.failure_status, r.retry_after)
                        for r in alice.history
                        if r.direction == "out"
                    ],
                    scenario.stats.count("sip.admission_rejected"),
                )
            )
        assert outcomes[0] == outcomes[1]
