"""Integration: presence through SIPHoc, across the MANET and the gateway."""

import pytest

from repro.scenarios import ManetConfig, ManetScenario, build_chain_call_scenario
from repro.sip import CallState
from repro.sip.pidf import AVAILABLE, OFFLINE, ON_THE_PHONE


class TestManetPresence:
    def test_buddy_list_across_manet(self):
        scenario = build_chain_call_scenario(hops=2, routing="aodv", seed=61)
        scenario.converge()
        alice = scenario.phones["alice"]
        bob = scenario.phones["bob"]
        changes = []
        alice.watch("sip:bob@voicehoc.ch", on_change=lambda aor, s: changes.append(s))
        scenario.sim.run(scenario.sim.now + 5.0)
        assert alice.buddies.get("sip:bob@voicehoc.ch") == AVAILABLE
        scenario.stop()

    def test_busy_state_propagates_during_call(self):
        scenario = build_chain_call_scenario(hops=2, routing="aodv", seed=62)
        scenario.converge()
        alice = scenario.phones["alice"]
        bob = scenario.phones["bob"]
        # A third watcher on the middle node observes bob.
        watcher = scenario.add_phone(1, "carol")
        scenario.sim.run(scenario.sim.now + 2.0)
        watcher.watch("sip:bob@voicehoc.ch")
        scenario.sim.run(scenario.sim.now + 5.0)
        assert watcher.buddies["sip:bob@voicehoc.ch"] == AVAILABLE

        call = alice.place_call("sip:bob@voicehoc.ch")
        scenario.sim.run_until(lambda: call.state is CallState.ESTABLISHED, timeout=15.0)
        scenario.sim.run(scenario.sim.now + 3.0)
        assert watcher.buddies["sip:bob@voicehoc.ch"] == ON_THE_PHONE

        call.hangup()
        scenario.sim.run(scenario.sim.now + 5.0)
        assert watcher.buddies["sip:bob@voicehoc.ch"] == AVAILABLE
        scenario.stop()

    def test_phone_shutdown_notifies_offline(self):
        scenario = build_chain_call_scenario(hops=2, routing="aodv", seed=63)
        scenario.converge()
        alice = scenario.phones["alice"]
        bob = scenario.phones["bob"]
        alice.watch("sip:bob@voicehoc.ch")
        scenario.sim.run(scenario.sim.now + 5.0)
        bob.stop()
        scenario.sim.run(scenario.sim.now + 5.0)
        assert alice.buddies["sip:bob@voicehoc.ch"] == OFFLINE
        scenario.stop()

    def test_unwatch_stops_updates(self):
        scenario = build_chain_call_scenario(hops=2, routing="aodv", seed=64)
        scenario.converge()
        alice = scenario.phones["alice"]
        bob = scenario.phones["bob"]
        alice.watch("sip:bob@voicehoc.ch")
        scenario.sim.run(scenario.sim.now + 5.0)
        alice.unwatch("sip:bob@voicehoc.ch")
        scenario.sim.run(scenario.sim.now + 3.0)
        assert bob.ua.watcher_count == 0
        assert "sip:bob@voicehoc.ch" not in alice.buddies
        scenario.stop()


class TestGatewayPresence:
    def test_internet_user_watches_manet_user(self):
        from repro.core import SipAccount

        scenario = ManetScenario(
            ManetConfig(
                n_nodes=3, topology="chain", routing="aodv", seed=65,
                internet_gateways=1, providers=("siphoc.ch",),
            )
        )
        scenario.start()
        carol = scenario.providers["siphoc.ch"].create_softphone("carol")
        alice = scenario.add_phone(
            0, "alice", account=SipAccount(username="alice", domain="siphoc.ch")
        )
        scenario.sim.run(20.0)
        carol.watch("sip:alice@siphoc.ch")
        scenario.sim.run(40.0)
        assert carol.buddies.get("sip:alice@siphoc.ch") == AVAILABLE
        scenario.stop()
