"""Integration: call hold/resume via mid-dialog re-INVITE."""

import pytest

from repro.scenarios import build_chain_call_scenario
from repro.sip import CallState
from repro.sip.sdp import SessionDescription


@pytest.fixture
def live_call():
    scenario = build_chain_call_scenario(hops=2, routing="aodv", seed=55)
    scenario.converge()
    alice = scenario.phones["alice"]
    bob = scenario.phones["bob"]
    call = alice.place_call("sip:bob@voicehoc.ch")
    scenario.sim.run_until(lambda: call.state is CallState.ESTABLISHED, timeout=15.0)
    assert call.state is CallState.ESTABLISHED
    yield scenario, alice, bob, call
    scenario.stop()


class TestHoldResume:
    def test_hold_pauses_media_both_ways(self, live_call):
        scenario, alice, bob, call = live_call
        sim = scenario.sim
        sim.run(sim.now + 3.0)  # some talk time
        rtp_before = scenario.stats.traffic_packets("rtp")
        results = []
        alice.hold(call, on_result=results.append)
        sim.run(sim.now + 1.0)
        assert results == [True]
        assert call.on_hold
        assert call.media_direction == "inactive"
        # During hold, (almost) no new RTP hits the air.
        quiet_start = scenario.stats.traffic_packets("rtp")
        sim.run(sim.now + 5.0)
        assert scenario.stats.traffic_packets("rtp") - quiet_start < 20

    def test_resume_restores_media(self, live_call):
        scenario, alice, bob, call = live_call
        sim = scenario.sim
        alice.hold(call)
        sim.run(sim.now + 2.0)
        results = []
        alice.resume(call, on_result=results.append)
        sim.run(sim.now + 1.0)
        assert results == [True]
        assert not call.on_hold
        flowing_start = scenario.stats.traffic_packets("rtp")
        sim.run(sim.now + 5.0)
        # ~50 pps per direction resumed.
        assert scenario.stats.traffic_packets("rtp") - flowing_start > 300

    def test_callee_sees_hold_state(self, live_call):
        scenario, alice, bob, call = live_call
        sim = scenario.sim
        alice.hold(call)
        sim.run(sim.now + 2.0)
        bob_call = bob.ua.active_calls[0]
        assert bob_call.media_direction == "inactive"
        alice.resume(call)
        sim.run(sim.now + 2.0)
        assert bob_call.media_direction == "sendrecv"

    def test_hangup_after_hold(self, live_call):
        scenario, alice, bob, call = live_call
        sim = scenario.sim
        alice.hold(call)
        sim.run(sim.now + 1.0)
        call.hangup()
        sim.run(sim.now + 5.0)
        assert call.state is CallState.TERMINATED
        assert not bob.ua.active_calls

    def test_reinvite_outside_dialog_rejected(self, live_call):
        scenario, alice, bob, call = live_call
        sim = scenario.sim
        # Craft a re-INVITE with bogus tags straight at bob's UA.
        from repro.sip import Headers, SipRequest

        headers = Headers()
        headers.add("From", "<sip:alice@voicehoc.ch>;tag=wrong")
        headers.add("To", "<sip:bob@voicehoc.ch>;tag=alsowrong")
        headers.add("Call-ID", "no-such-dialog")
        headers.add("CSeq", "2 INVITE")
        request = SipRequest("INVITE", f"sip:bob@{scenario.nodes[2].ip}:5070", headers=headers)
        responses = []
        alice.ua.transactions.send_request(
            request, (scenario.nodes[2].ip, 5070), responses.append
        )
        sim.run(sim.now + 3.0)
        final = [r.status for r in responses if r.is_final]
        assert final == [481]

    def test_hold_on_unestablished_call_fails(self):
        scenario = build_chain_call_scenario(hops=1, routing="aodv", seed=56)
        scenario.converge()
        alice = scenario.phones["alice"]
        call = alice.place_call("sip:ghost@voicehoc.ch")
        results = []
        call.hold(results.append)
        scenario.sim.run(scenario.sim.now + 1.0)
        assert results == [False]
        scenario.stop()


class TestSdpDirections:
    def test_with_direction_round_trip(self):
        offer = SessionDescription.offer("10.0.0.1", 16384)
        assert offer.direction == "sendrecv"
        held = offer.with_direction("inactive")
        assert held.direction == "inactive"
        resumed = held.with_direction("sendrecv")
        assert resumed.direction == "sendrecv"
        # Direction attributes never accumulate.
        assert sum(
            1 for a in resumed.audio.attributes
            if a in ("sendrecv", "sendonly", "recvonly", "inactive")
        ) == 1

    def test_invalid_direction_rejected(self):
        from repro.errors import SipParseError

        offer = SessionDescription.offer("10.0.0.1", 16384)
        with pytest.raises(SipParseError):
            offer.with_direction("backwards")
