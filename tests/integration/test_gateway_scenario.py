"""Integration: the section 3.2 gateway scenarios, including dynamics."""

import pytest

from repro.core import GatewayProvider, SipAccount
from repro.scenarios import ManetConfig, ManetScenario
from repro.sip import CallState


def build(n_nodes=4, seed=13, providers=("siphoc.ch",), gateways=1):
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=n_nodes,
            topology="chain",
            routing="aodv",
            seed=seed,
            internet_gateways=gateways,
            providers=providers,
        )
    )
    scenario.start()
    return scenario


class TestTransparency:
    def test_same_account_works_in_manet_and_to_internet(self):
        """The paper's transparency claim: one official SIP address for both."""
        scenario = build()
        provider = scenario.providers["siphoc.ch"]
        carol = provider.create_user("carol")
        carol.on_invite = lambda call: (call.ring(), scenario.sim.schedule(0.2, call.answer))
        alice = scenario.add_phone(0, "alice", account=SipAccount(username="alice", domain="siphoc.ch"))
        bob = scenario.add_phone(1, "bob", account=SipAccount(username="bob", domain="siphoc.ch"))
        scenario.sim.run(20.0)
        in_manet = scenario.call_and_wait("alice", "sip:bob@siphoc.ch", duration=2.0)
        assert in_manet.established
        to_internet = scenario.call_and_wait("alice", "sip:carol@siphoc.ch", duration=2.0)
        assert to_internet.established
        scenario.stop()

    def test_inbound_calls_reach_manet_user(self):
        scenario = build()
        provider = scenario.providers["siphoc.ch"]
        carol = provider.create_user("carol")
        alice = scenario.add_phone(0, "alice", account=SipAccount(username="alice", domain="siphoc.ch"))
        scenario.sim.run(20.0)
        states = []
        call = carol.call("sip:alice@siphoc.ch", on_state=lambda c: states.append(c.state))
        scenario.sim.run_until(
            lambda: call.state in (CallState.ESTABLISHED, CallState.FAILED), timeout=30.0
        )
        assert call.state is CallState.ESTABLISHED
        call.hangup()
        scenario.sim.run(scenario.sim.now + 3.0)
        assert states[-1] == CallState.TERMINATED
        scenario.stop()


class TestDynamics:
    def test_gateway_appearing_later_enables_internet(self):
        """'Should the MANET be temporarily connected to the Internet...'"""
        scenario = ManetScenario(
            ManetConfig(n_nodes=3, topology="chain", routing="aodv", seed=14,
                        providers=("siphoc.ch",), internet_gateways=0)
        )
        scenario.start()
        alice = scenario.add_phone(0, "alice", account=SipAccount(username="alice", domain="siphoc.ch"))
        scenario.sim.run(10.0)
        assert not scenario.stacks[0].internet_available
        # Now the last node gains Internet connectivity.
        gateway_node = scenario.nodes[-1]
        scenario.cloud.attach(gateway_node)
        gateway_stack = scenario.stacks[-1]
        gateway_stack.gateway = GatewayProvider(
            gateway_node, scenario.cloud, gateway_stack.manet_slp
        ).start()
        scenario.sim.run_until(lambda: scenario.stacks[0].internet_available, timeout=60.0)
        assert scenario.stacks[0].internet_available
        scenario.sim.run(scenario.sim.now + 5.0)
        assert scenario.stacks[0].proxy.upstream_registrations.get("sip:alice@siphoc.ch")
        scenario.stop()

    def test_gateway_loss_disables_internet_but_not_manet_calls(self):
        scenario = build()
        alice = scenario.add_phone(0, "alice", account=SipAccount(username="alice", domain="siphoc.ch"))
        bob = scenario.add_phone(1, "bob", account=SipAccount(username="bob", domain="siphoc.ch"))
        scenario.sim.run(20.0)
        assert scenario.stacks[0].internet_available
        scenario.nodes[-1].up = False  # gateway crashes
        scenario.sim.run(scenario.sim.now + 80.0)
        assert not scenario.stacks[0].internet_available
        record = scenario.call_and_wait("alice", "sip:bob@siphoc.ch", duration=2.0)
        assert record.established  # MANET-local calls unaffected
        scenario.stop()

    def test_two_gateways_redundancy(self):
        scenario = ManetScenario(
            ManetConfig(n_nodes=5, topology="chain", routing="aodv", seed=15,
                        providers=("siphoc.ch",), internet_gateways=2)
        )
        scenario.start()
        alice = scenario.add_phone(0, "alice", account=SipAccount(username="alice", domain="siphoc.ch"))
        scenario.sim.run(20.0)
        assert scenario.stacks[0].internet_available
        first_gateway = scenario.stacks[0].connection.tunnel.gateway_ip
        # Kill the gateway currently in use; the other one takes over.
        scenario.medium.node_by_ip(first_gateway).up = False
        scenario.sim.run_until(
            lambda: (
                scenario.stacks[0].connection.connected
                and scenario.stacks[0].connection.tunnel.gateway_ip != first_gateway
            ),
            timeout=240.0,
            step=1.0,
        )
        assert scenario.stacks[0].connection.tunnel.gateway_ip != first_gateway
        scenario.stop()
