"""Integration: failure injection — crashes, partitions, lossy links."""

import pytest

from repro.scenarios import ManetConfig, ManetScenario, build_chain_call_scenario
from repro.sip import CallState


class TestNodeFailures:
    def test_relay_crash_mid_call_degrades_then_reroutes(self):
        """Diamond topology: the active relay dies mid-call; AODV finds the
        alternate path and media continues."""
        scenario = ManetScenario(
            ManetConfig(n_nodes=4, topology="chain", routing="aodv", seed=21)
        )
        # Rewire into a diamond: 0 - {1,2} - 3.
        scenario.nodes[0].position = (0.0, 0.0)
        scenario.nodes[1].position = (100.0, 60.0)
        scenario.nodes[2].position = (100.0, -60.0)
        scenario.nodes[3].position = (200.0, 0.0)
        scenario.start()
        alice = scenario.add_phone(0, "alice")
        bob = scenario.add_phone(3, "bob")
        scenario.converge()
        call = scenario.phones["alice"].place_call("sip:bob@voicehoc.ch", duration=30.0)
        scenario.sim.run_until(lambda: call.state is CallState.ESTABLISHED, timeout=15.0)
        assert call.state is CallState.ESTABLISHED
        # Kill whichever relay carries the route.
        route = scenario.stacks[0].routing.route_to(scenario.nodes[3].ip)
        relay = scenario.medium.node_by_ip(route.next_hop)
        relay.up = False
        scenario.sim.run(scenario.sim.now + 35.0)
        record = scenario.phones["alice"].history[0]
        assert record.established
        quality = record.quality
        assert quality is not None
        # Some frames died with the relay, but the call survived overall.
        assert quality.packets_played > 0.5 * quality.packets_expected

    def test_callee_crash_means_call_timeout(self):
        scenario = build_chain_call_scenario(hops=2, routing="aodv", seed=22)
        scenario.converge()
        scenario.nodes[2].up = False
        phone = scenario.phones["alice"]
        call = phone.place_call("sip:bob@voicehoc.ch")
        scenario.sim.run(scenario.sim.now + 60.0)
        record = phone.history[0]
        assert record.final_state == "failed"
        assert record.failure_status in (404, 408)

    def test_partitioned_network_call_fails_cleanly(self):
        scenario = build_chain_call_scenario(hops=4, routing="aodv", seed=23)
        scenario.converge()
        # Move the middle node far away: two partitions.
        scenario.nodes[2].position = (10_000.0, 10_000.0)
        phone = scenario.phones["alice"]
        call = phone.place_call("sip:bob@voicehoc.ch")
        scenario.sim.run(scenario.sim.now + 60.0)
        assert phone.history[0].final_state == "failed"


class TestLossyLinks:
    @pytest.mark.parametrize("loss", [0.05, 0.15])
    def test_calls_survive_moderate_loss(self, loss):
        scenario = build_chain_call_scenario(hops=2, routing="aodv", seed=24, loss_rate=loss)
        scenario.converge()
        record = scenario.call_and_wait(
            "alice", "sip:bob@voicehoc.ch", duration=8.0, setup_timeout=40.0
        )
        assert record.established  # SIP retransmissions beat the loss
        assert record.quality is not None

    def test_heavy_loss_degrades_mos(self):
        clean = build_chain_call_scenario(hops=2, routing="aodv", seed=25, loss_rate=0.0)
        clean.converge()
        good = clean.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=8.0)
        clean.stop()
        noisy = build_chain_call_scenario(hops=2, routing="aodv", seed=25, loss_rate=0.2)
        noisy.converge()
        bad = noisy.call_and_wait(
            "alice", "sip:bob@voicehoc.ch", duration=8.0, setup_timeout=60.0
        )
        noisy.stop()
        assert good.established
        if bad.established and bad.quality is not None:
            assert bad.quality.mos < good.quality.mos


class TestMobility:
    def test_call_in_mobile_network(self):
        scenario = ManetScenario(
            ManetConfig(
                n_nodes=12,
                topology="random",
                routing="aodv",
                seed=26,
                area=(350.0, 350.0),
                tx_range=150.0,
                mobility=True,
                mobility_speed=(0.5, 1.5),
            )
        )
        scenario.start()
        scenario.add_phone(0, "alice")
        scenario.add_phone(11, "bob")
        scenario.converge(5.0)
        established = 0
        for attempt in range(3):
            record = scenario.call_and_wait(
                "alice", "sip:bob@voicehoc.ch", duration=5.0, setup_timeout=30.0
            )
            if record.established:
                established += 1
        assert established >= 1  # dense-enough network keeps working under motion
        scenario.stop()
