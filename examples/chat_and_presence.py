#!/usr/bin/env python3
"""Chat and presence over the ad hoc network.

The paper's introduction: VoIP "allows to easily combine telephony with
other services known from the Internet, such as video, chat, file
sharing" — and any handheld becomes "a wireless phone and text
communicator". This script runs instant messaging (SIP MESSAGE) and a
presence buddy list (SUBSCRIBE/NOTIFY with PIDF) over the same SIPHoc
infrastructure that carries the calls — zero additional servers.

Run:  python examples/chat_and_presence.py
"""

from repro.scenarios import build_chain_call_scenario
from repro.sip import CallState


def main() -> None:
    scenario = build_chain_call_scenario(hops=3, routing="aodv", seed=77)
    sim = scenario.sim
    scenario.converge()
    alice = scenario.phones["alice"]
    bob = scenario.phones["bob"]

    print("alice adds bob to her buddy list ...")
    alice.watch(
        "sip:bob@voicehoc.ch",
        on_change=lambda aor, status: print(
            f"  [{sim.now:6.2f}s] {aor} is now "
            f"{'available' if status.available else 'offline'}"
            + (f" ({status.note})" if status.note else "")
        ),
    )
    sim.run(sim.now + 3.0)

    print("alice texts bob ...")
    bob.on_text = lambda msg: (
        print(f'  [{sim.now:6.2f}s] bob received: "{msg.text}"'),
        bob.send_text(msg.peer, "sure - call me"),
    )
    alice.on_text = lambda msg: print(f'  [{sim.now:6.2f}s] alice received: "{msg.text}"')
    alice.send_text("sip:bob@voicehoc.ch", "got a minute?")
    sim.run(sim.now + 3.0)

    print("alice calls bob (watch the presence change) ...")
    call = alice.place_call("sip:bob@voicehoc.ch")
    sim.run_until(lambda: call.state is CallState.ESTABLISHED, timeout=15.0)
    sim.run(sim.now + 3.0)

    print("alice puts bob on hold, then resumes ...")
    alice.hold(call)
    sim.run(sim.now + 2.0)
    print(f"  call on hold: {call.on_hold} (media {call.media_direction})")
    alice.resume(call)
    sim.run(sim.now + 2.0)
    print(f"  call resumed: media {call.media_direction}")

    call.hangup()
    sim.run(sim.now + 3.0)
    print("bob's phone shuts down ...")
    bob.stop()
    sim.run(sim.now + 3.0)
    scenario.stop()


if __name__ == "__main__":
    main()
