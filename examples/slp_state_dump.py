#!/usr/bin/env python3
"""MANET SLP process state: regenerate the Figure 4 view.

Figure 4 of the paper shows the MANET SLP process after the proxy has
advertised its own SIP endpoint address as the responsible contact for a
user. This script registers two users on different nodes and dumps every
node's MANET SLP state: local registrations plus the remote cache filled
purely by routing-message piggybacking.

Run:  python examples/slp_state_dump.py
"""

from repro.core import SiphocStack
from repro.netsim import Node, Simulator, Stats, WirelessMedium, manet_ip, place_chain


def main() -> None:
    sim = Simulator(seed=4)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    stacks = []
    for index in range(3):
        node = Node(sim, index, manet_ip(index), stats=stats, hostname=f"node-{index}")
        node.join_medium(medium)
        stacks.append(SiphocStack(node, routing="aodv").start())
    place_chain([stack.node for stack in stacks], 100.0)

    stacks[0].add_phone(username="alice")
    stacks[2].add_phone(username="bob")
    sim.run(8.0)  # registration + gateway polls disseminate the adverts

    for stack in stacks:
        print(stack.manet_slp.state_dump())
        print()
    print(
        "dissemination cost: "
        f"{stats.count('manetslp.adverts_piggybacked')} adverts piggybacked, "
        f"{stats.traffic_packets('slp')} dedicated SLP packets on the air"
    )


if __name__ == "__main__":
    main()
