#!/usr/bin/env python3
"""Call-flow tracing: reconstruct the Figure 3 SIP ladder from a trace.

Builds a two-party call across a 2-hop AODV chain with event tracing
enabled, then uses the repro.trace analysis passes to print the SIP
call-flow ladder (INVITE -> 200 -> ACK -> BYE and everything in between),
a trace summary, and the lifecycle of one dropped-or-delivered packet.

The same analyses are available offline: pass ``--trace out.jsonl`` to
``python -m repro.experiments`` and inspect the file with
``python -m repro.trace ladder out.jsonl``. See examples/packet_capture.py
for the frame-level (Wireshark-style) view of the same traffic.

Run:  python examples/trace_callflow.py
"""

from repro.scenarios import build_chain_call_scenario
from repro.trace.analysis import reconstruct_packets, render_summary, summarize
from repro.trace.ladder import sip_ladder


def main() -> None:
    scenario = build_chain_call_scenario(hops=2, routing="aodv", seed=7, tracing=True)
    scenario.converge()
    record = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=2.0)
    scenario.stop()

    events = list(scenario.trace)
    print(f"call established={record.established}, trace captured {len(events)} events")
    print()
    print("SIP call flow (Figure 3):")
    print(sip_ladder(events))
    print()
    print(render_summary(summarize(events)))
    print()

    lifecycles = reconstruct_packets(events)
    delivered = [p for p in lifecycles if p.outcome == "rx" and p.hops]
    if delivered:
        print("one multihop packet, reconstructed from the trace:")
        print(delivered[0].describe())


if __name__ == "__main__":
    main()
