#!/usr/bin/env python3
"""Surviving failures: relay crash + gateway power loss mid-call.

A 5-node chain with redundant radio coverage (70 m spacing, 150 m range:
every node hears its neighbours' neighbours) and two Internet gateways.
While alice talks to bob, a scripted fault plan

1. crashes the middle relay (its whole SIPHoc stack dies silently),
2. cuts power to the primary gateway — abrupt, so no SLP withdrawal is
   sent and remote caches keep the stale advert until it expires,
3. restarts the relay, which re-registers from scratch.

AODV routes around the dead relay, the Connection Provider cools the
dead gateway down and fails over to the survivor, and a second call
proves the system recovered. The same schedule replays byte-for-byte on
every run: faults are simulator-clock events, not wall-clock accidents.

Run:  python examples/gateway_failover.py
"""

from repro.faults.harness import build_chaos_scenario, default_chaos_plan
from repro.faults.metrics import analyze_recovery


def main() -> None:
    plan = default_chaos_plan(n_nodes=5, t0=3.0)
    print("fault schedule (deterministic, JSONL):")
    for line in plan.describe().splitlines():
        print(f"  {line}")
    print()

    scenario = build_chaos_scenario(hops=4, routing="aodv", seed=7, plan=plan)
    scenario.start()
    sim = scenario.sim
    scenario.converge()

    print("alice calls bob; the relay dies and the gateway loses power mid-call ...")
    first = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=15.0)
    print(f"  first call: {first.final_state}"
          f" (established={first.established}) despite the faults")

    print("placing the recovery call ...")
    second = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=5.0)
    print(f"  second call: {second.final_state} — the MANET healed itself")

    # Let the failover and re-registration latencies finish materializing.
    last_fault = max(event.at for event in plan.events)
    sim.run(max(sim.now, last_fault) + 60.0)
    scenario.stop()

    report = analyze_recovery(list(scenario.trace), scenario.call_records())
    print()
    print(report.render())


if __name__ == "__main__":
    main()
