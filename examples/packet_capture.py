#!/usr/bin/env python3
"""Packet capture: regenerate the Figure 5 Wireshark view.

Figure 5 of the paper shows "a snapshot of a packet analyzer showing an
AODV route reply with encapsulated SIP contact information" — the moment
MANET SLP answers a lookup by piggybacking the callee's binding onto the
routing reply. This script runs that exact scenario against a promiscuous
capture and renders both the packet-list pane and the detail pane.

Run:  python examples/packet_capture.py
"""

from repro.analyzer import render_capture, render_frame
from repro.analyzer.dissect import dissect_frame
from repro.core import SiphocStack
from repro.netsim import (
    Node,
    PacketCapture,
    Simulator,
    Stats,
    WirelessMedium,
    manet_ip,
    place_chain,
)


def main() -> None:
    sim = Simulator(seed=5)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    capture = PacketCapture()
    medium.add_sniffer(capture.on_frame)

    stacks = []
    for index in range(3):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        stacks.append(
            SiphocStack(node, routing="aodv", run_connection_provider=False).start()
        )
    place_chain([stack.node for stack in stacks], 100.0)
    alice = stacks[0].add_phone(username="alice")
    stacks[2].add_phone(username="bob")
    sim.run(1.0)
    alice.place_call("sip:bob@voicehoc.ch", duration=2.0)
    sim.run(8.0)

    print("packet list (first 20 frames, RTP suppressed):")
    non_rtp = [f for f in capture.frames if not 16384 <= f.packet.dport < 32768]
    print(render_capture(non_rtp[:20]))
    print()

    for number, frame in enumerate(capture.frames, start=1):
        dissection = dissect_frame(frame, number)
        aodv = dissection.find("Ad hoc On-demand")
        if aodv is not None and any("SLP Reply" in child.name for child in aodv.children):
            print("Figure 5 — AODV route reply with encapsulated SIP contact:")
            print(render_frame(frame, number))
            break
    else:
        print("no matching frame captured (unexpected)")


if __name__ == "__main__":
    main()
