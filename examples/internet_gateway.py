#!/usr/bin/env python3
"""Phone calls to and from the Internet (section 3.2 of the paper).

A MANET chain with one gateway node, three SIP providers on the Internet
(two plain, one that mandates its own outbound proxy — the
polyphone.ethz.ch case), and MANET users holding official accounts. The
script demonstrates:

1. gateway discovery + transparent tunnel attachment,
2. a MANET user's official SIP address registered upstream,
3. calls MANET -> Internet and Internet -> MANET,
4. the polyphone failure mode and the paper's future-work fix.

Run:  python examples/internet_gateway.py
"""

from repro.core import SipAccount
from repro.scenarios import ManetConfig, ManetScenario
from repro.sip import CallState


def auto_answer(scenario):
    def handler(call):
        call.ring()
        scenario.sim.schedule(0.3, call.answer)

    return handler


def main() -> None:
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=4,
            topology="chain",
            routing="aodv",
            seed=7,
            internet_gateways=1,
            providers=("siphoc.ch", "netvoip.ch"),
            strict_providers=("polyphone.ethz.ch",),
        )
    )
    scenario.start()
    sim = scenario.sim

    # Internet-side subscribers (full softphones with media).
    carol = scenario.providers["siphoc.ch"].create_softphone("carol")
    dave = scenario.providers["polyphone.ethz.ch"].create_softphone("dave")

    # MANET users with their official accounts (Figure 2 config).
    alice = scenario.add_phone(
        0, "alice", account=SipAccount(username="alice", domain="siphoc.ch")
    )
    erin = scenario.add_phone(
        1, "erin", account=SipAccount(username="erin", domain="polyphone.ethz.ch")
    )

    print("waiting for gateway discovery and tunnel attachment ...")
    sim.run_until(lambda: scenario.stacks[0].internet_available, timeout=60.0)
    sim.run(sim.now + 5.0)
    stack0 = scenario.stacks[0]
    print(f"node 0 attached to the Internet via tunnel {stack0.connection.tunnel_ip}")
    print(f"upstream registration (siphoc.ch):    "
          f"{stack0.proxy.upstream_registrations.get('sip:alice@siphoc.ch')}")
    print(f"upstream registration (polyphone):    "
          f"{scenario.stacks[1].proxy.upstream_registrations.get('sip:erin@polyphone.ethz.ch')}"
          "   <- rejected: provider mandates its own outbound proxy")
    print()

    print("alice calls carol on the Internet ...")
    record = scenario.call_and_wait("alice", "sip:carol@siphoc.ch", duration=5.0)
    print(f"  {record.final_state}, setup {record.setup_delay:.2f}s,"
          f" quality {record.quality.summary() if record.quality else 'n/a'}")

    print("carol calls alice's official address from the Internet ...")
    call = carol.place_call("sip:alice@siphoc.ch", duration=5.0)
    sim.run_until(
        lambda: call.state in (CallState.TERMINATED, CallState.FAILED), 45.0, step=0.5
    )
    inbound = carol.history[-1]
    print(f"  {inbound.final_state},"
          f" quality {inbound.quality.summary() if inbound.quality else 'n/a'}")

    print()
    print("erin calls dave at the strict provider (no fix configured) ...")
    record = scenario.call_and_wait("erin", "sip:dave@polyphone.ethz.ch", duration=3.0)
    print(f"  {record.final_state} ({record.failure_status}) — the open issue of section 3.2")

    print("reconfiguring erin's account with the provider's outbound proxy (the fix) ...")
    fixed = SipAccount(
        username="erin",
        domain="polyphone.ethz.ch",
        provider_outbound_proxy="sbc.polyphone.ethz.ch",
    )
    scenario.stacks[1].proxy.configure_account(fixed)
    erin.ua.register()  # re-register so the proxy retries upstream
    sim.run(sim.now + 5.0)
    record = scenario.call_and_wait("erin", "sip:dave@polyphone.ethz.ch", duration=3.0)
    print(f"  {record.final_state} — transparent again")
    scenario.stop()


if __name__ == "__main__":
    main()
