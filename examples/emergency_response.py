#!/usr/bin/env python3
"""Emergency response: VoIP when the infrastructure is gone.

The paper's emergency scenario: responders arrive where the network
infrastructure is broken, their devices self-organize into a MANET, and
voice communication works immediately — no servers, no configuration
beyond the Figure 2 dialog. Later a command vehicle with a satellite
uplink arrives; the moment its Gateway Provider starts, everyone can also
reach (and be reached from) the outside world.

Run:  python examples/emergency_response.py
"""

from repro.core import GatewayProvider, SipAccount
from repro.scenarios import ManetConfig, ManetScenario


def main() -> None:
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=10,
            topology="random",
            routing="aodv",
            seed=42,  # a connected random placement
            area=(320.0, 320.0),
            tx_range=150.0,
            mobility=True,
            mobility_speed=(0.5, 1.5),  # responders on foot
            providers=("hq.example.org",),
            internet_gateways=0,  # no uplink yet
        )
    )
    scenario.start()
    sim = scenario.sim
    hq = scenario.providers["hq.example.org"].create_softphone("dispatch")

    for index in range(10):
        scenario.add_phone(
            index,
            f"responder{index}",
            account=SipAccount(username=f"responder{index}", domain="hq.example.org"),
        )
    scenario.converge(5.0)

    print("phase 1: isolated incident site (no infrastructure)")
    ok = 0
    for src, dst in [(0, 7), (3, 9), (5, 1)]:
        record = scenario.call_and_wait(
            f"responder{src}", f"sip:responder{dst}@hq.example.org", duration=5.0
        )
        status = record.final_state
        mos = f", MOS {record.quality.mos:.2f}" if record.quality else ""
        print(f"  responder{src} -> responder{dst}: {status}{mos}")
        ok += record.established
    print(f"  {ok}/3 calls on the isolated MANET")
    print()

    print("phase 2: command vehicle with satellite uplink arrives")
    vehicle = scenario.nodes[9]
    vehicle.position = (160.0, 160.0)  # parks mid-site
    scenario.cloud.attach(vehicle)
    vehicle_stack = scenario.stacks[9]
    vehicle_stack.gateway = GatewayProvider(
        vehicle, scenario.cloud, vehicle_stack.manet_slp
    ).start()
    sim.run_until(lambda: scenario.stacks[0].internet_available, timeout=60.0)
    sim.run(sim.now + 5.0)
    attached = sum(1 for stack in scenario.stacks[:9] if stack.internet_available)
    print(f"  {attached}/9 responder devices transparently attached to the uplink")

    record = scenario.call_and_wait(
        "responder0", "sip:dispatch@hq.example.org", duration=6.0, setup_timeout=30.0
    )
    mos = f", MOS {record.quality.mos:.2f}" if record.quality else ""
    print(f"  responder0 -> HQ dispatch: {record.final_state}{mos}")

    print("  HQ dispatch calls responder3's official address ...")
    inbound = hq.place_call("sip:responder3@hq.example.org", duration=5.0)
    sim.run(sim.now + 30.0)
    print(f"  HQ -> responder3: {hq.history[-1].final_state}")
    scenario.stop()


if __name__ == "__main__":
    main()
