#!/usr/bin/env python3
"""Quickstart: out-of-the-box VoIP in an isolated MANET.

Builds a three-node ad hoc chain (alice -- relay -- bob), boots the full
SIPHoc component stack of Figure 1 on every node, configures two stock
softphones exactly like the Figure 2 dialog (outbound proxy = localhost),
and places a call: the complete Figure 3 flow, with voice quality scored
by the ITU-T E-model at the end.

Run:  python examples/quickstart.py
"""

from repro.core import SipAccount, SiphocStack
from repro.netsim import Node, Simulator, Stats, WirelessMedium, manet_ip, place_chain


def main() -> None:
    # -- the physical world: 3 laptops, radios reach ~150 m, 100 m apart --
    sim = Simulator(seed=2007)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150.0)
    stacks = []
    for index in range(3):
        node = Node(sim, index, manet_ip(index), stats=stats, hostname=f"laptop-{index}")
        node.join_medium(medium)
        # One SiphocStack = the five components of Figure 1 on this node.
        stacks.append(SiphocStack(node, routing="aodv").start())
    place_chain([stack.node for stack in stacks], spacing=100.0)

    # -- the Figure 2 configuration: provider + user, outbound proxy localhost --
    alice_account = SipAccount(username="alice", domain="voicehoc.ch",
                               display_name="Alice")
    bob_account = SipAccount(username="bob", domain="voicehoc.ch", display_name="Bob")
    alice = stacks[0].add_phone(account=alice_account)
    bob = stacks[2].add_phone(account=bob_account)

    sim.run(2.0)  # phones boot and REGISTER with their local proxies
    print(f"alice registered: {alice.registered}")
    print(f"bob registered:   {bob.registered}")
    print()
    print("MANET SLP state on bob's node after registration (Figure 4):")
    print(stacks[2].manet_slp.state_dump())
    print()

    # -- the call (Figure 3, steps 5-8) --
    print("alice dials sip:bob@voicehoc.ch ...")
    alice.place_call("sip:bob@voicehoc.ch", duration=15.0)
    sim.run(25.0)

    record = alice.history[0]
    print(f"outcome:       {record.final_state}")
    print(f"post-dial:     {record.post_dial_delay * 1000:.0f} ms to ringback")
    print(f"setup delay:   {record.setup_delay:.2f} s (includes bob picking up)")
    print(f"talk time:     {record.talk_time:.1f} s")
    print(f"voice quality: {record.quality.summary()}")
    print()
    print("traffic on the air:")
    for name, counter in sorted(stats.traffic.items()):
        print(f"  {name:8} {counter.packets:6} packets  {counter.bytes:9,} bytes")


if __name__ == "__main__":
    main()
