#!/usr/bin/env python3
"""Campus VoIP: free voice communication on a university campus.

One of the paper's motivating scenarios: "in densely populated areas like
big cities or on a university campus ... VoIP over a MANET would provide
users with a free communication system."

A 5x5 grid of devices runs OLSR (proactive — lookups become cache hits),
every node hosts a user, and a random call workload exercises the system.
The script reports success ratio, setup delays and MOS distribution.

Run:  python examples/campus_voip.py
"""

from repro.netsim import SampleSeries
from repro.scenarios import ManetConfig, ManetScenario


def main() -> None:
    n_nodes = 25
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=n_nodes,
            topology="grid",
            routing="olsr",
            seed=42,
            spacing=90.0,
            tx_range=140.0,
        )
    )
    scenario.start()
    for index in range(n_nodes):
        scenario.add_phone(index, f"student{index}")
    print(f"campus MANET: {n_nodes} devices on a grid, OLSR routing")
    print("waiting for routing + SLP dissemination to converge ...")
    scenario.converge(25.0)

    hits_before = scenario.stats.count("manetslp.cache_hits")
    rng = scenario.sim.rng
    outcomes = []
    setup = SampleSeries()
    mos = SampleSeries()
    n_calls = 15
    print(f"placing {n_calls} random calls ...")
    for _ in range(n_calls):
        src = rng.randrange(n_nodes)
        dst = rng.randrange(n_nodes)
        while dst == src:
            dst = rng.randrange(n_nodes)
        record = scenario.call_and_wait(
            f"student{src}", f"sip:student{dst}@voicehoc.ch", duration=8.0
        )
        outcomes.append(record.established)
        if record.post_dial_delay is not None:
            setup.add(record.post_dial_delay)
        if record.quality is not None:
            mos.add(record.quality.mos)

    established = sum(outcomes)
    print()
    print(f"calls established : {established}/{n_calls}")
    print(f"post-dial delay   : mean {setup.mean * 1000:.0f} ms,"
          f" p95 {setup.percentile(95) * 1000:.0f} ms")
    print(f"voice quality     : mean MOS {mos.mean:.2f},"
          f" worst {mos.minimum:.2f}")
    hits = scenario.stats.count("manetslp.cache_hits") - hits_before
    print(f"SLP cache hits    : {hits}/{n_calls} lookups answered instantly"
          " (proactive piggybacking over OLSR)")
    print()
    print("control overhead for the whole session:")
    for name in ("olsr", "sip"):
        counter = scenario.stats.traffic[name]
        print(f"  {name:5} {counter.packets:7} packets  {counter.bytes:11,} bytes")
    scenario.stop()


if __name__ == "__main__":
    main()
