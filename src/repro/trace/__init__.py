"""repro.trace — deterministic structured event tracing for the SIPHoc stack.

A :class:`TraceCollector` attaches to a :class:`~repro.netsim.simulator.
Simulator` (opt in via ``ManetConfig(tracing=True)`` or ``collector.attach(
sim)``) and records typed :class:`TraceEvent` observations from emission
points across the medium, routing daemons, MANET SLP, the SIPHoc proxy,
tunnel/gateway providers, and SIP endpoints. Traces export to JSONL and
feed the analysis passes in :mod:`repro.trace.analysis`, the SIP ladder
diagrams in :mod:`repro.trace.ladder`, and the ``python -m repro.trace``
CLI. Timestamps always come from ``Simulator.now``, so seeded runs
produce byte-identical trace files.
"""

from repro.trace.collector import (
    DEFAULT_CAPACITY,
    TraceCollector,
    default_capacity,
    disable_default,
    enable_default,
    export_registered,
    read_jsonl,
    register,
)
from repro.trace.events import (
    CATEGORIES,
    EVENT_KINDS,
    TraceError,
    TraceEvent,
    parse_jsonl_line,
    validate_event_dict,
)

__all__ = [
    "CATEGORIES",
    "DEFAULT_CAPACITY",
    "EVENT_KINDS",
    "TraceCollector",
    "TraceError",
    "TraceEvent",
    "default_capacity",
    "disable_default",
    "enable_default",
    "export_registered",
    "parse_jsonl_line",
    "read_jsonl",
    "register",
    "validate_event_dict",
]
