"""Analysis passes over trace event streams.

Everything here is pure: functions take a list of :class:`TraceEvent`
records (from a live collector or re-read from JSONL) and return plain
data or rendered text. Three passes are provided:

* :func:`summarize` — counts by category/kind/node plus drop causes,
  the dashboard view of a run;
* :func:`timeline` / :func:`render_timeline` — chronological per-node or
  per-category event listing;
* :func:`reconstruct_packets` — packet-lifecycle reconstruction, stitching
  ``packet.tx`` → ``packet.forward`` hops → ``packet.rx``/``packet.drop``
  by the packet ``uid`` that forwarding preserves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.trace.events import TraceEvent


def filter_events(
    events: Iterable[TraceEvent],
    kinds: Sequence[str] = (),
    categories: Sequence[str] = (),
    nodes: Sequence[str] = (),
    t_min: float | None = None,
    t_max: float | None = None,
) -> list[TraceEvent]:
    """Events passing every given criterion (empty criterion = no filter)."""
    kind_set = set(kinds)
    category_set = set(categories)
    node_set = set(nodes)
    out = []
    for event in events:
        if kind_set and event.kind not in kind_set:
            continue
        if category_set and event.category not in category_set:
            continue
        if node_set and event.node not in node_set:
            continue
        if t_min is not None and event.t < t_min:
            continue
        if t_max is not None and event.t > t_max:
            continue
        out.append(event)
    return out


# ---------------------------------------------------------------------------
# Summary
# ---------------------------------------------------------------------------

def summarize(events: Sequence[TraceEvent]) -> dict[str, object]:
    """Aggregate counts: total/time-span, by category, kind, node, drop cause."""
    by_category: dict[str, int] = {}
    by_kind: dict[str, int] = {}
    by_node: dict[str, int] = {}
    drop_causes: dict[str, int] = {}
    for event in events:
        by_category[event.category] = by_category.get(event.category, 0) + 1
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        if event.node:
            by_node[event.node] = by_node.get(event.node, 0) + 1
        if event.kind == "packet.drop":
            cause = str(event.detail.get("cause", "unknown"))
            drop_causes[cause] = drop_causes.get(cause, 0) + 1
    return {
        "total": len(events),
        "t_first": events[0].t if events else None,
        "t_last": events[-1].t if events else None,
        "by_category": dict(sorted(by_category.items())),
        "by_kind": dict(sorted(by_kind.items())),
        "by_node": dict(sorted(by_node.items())),
        "drop_causes": dict(sorted(drop_causes.items())),
    }


def render_summary(summary: dict[str, object]) -> str:
    lines = [f"events: {summary['total']}"]
    if summary["t_first"] is not None:
        lines.append(
            f"span:   {summary['t_first']:.6f} .. {summary['t_last']:.6f} "
            f"({float(summary['t_last']) - float(summary['t_first']):.6f}s)"  # type: ignore[arg-type]
        )
    lines.append("by category:")
    for category, count in summary["by_category"].items():  # type: ignore[union-attr]
        lines.append(f"  {category:<10} {count:>7}")
    lines.append("by kind:")
    for kind, count in summary["by_kind"].items():  # type: ignore[union-attr]
        lines.append(f"  {kind:<26} {count:>7}")
    drop_causes: dict[str, int] = summary["drop_causes"]  # type: ignore[assignment]
    if drop_causes:
        lines.append("drop causes:")
        for cause, count in drop_causes.items():
            lines.append(f"  {cause:<26} {count:>7}")
    by_node: dict[str, int] = summary["by_node"]  # type: ignore[assignment]
    if by_node:
        lines.append("busiest nodes:")
        busiest = sorted(by_node.items(), key=lambda item: (-item[1], item[0]))[:10]
        for node, count in busiest:
            lines.append(f"  {node:<26} {count:>7}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Timeline
# ---------------------------------------------------------------------------

def timeline(
    events: Iterable[TraceEvent],
    node: str | None = None,
    category: str | None = None,
) -> list[TraceEvent]:
    """Chronological slice of a trace, optionally per-node or per-category."""
    selected = filter_events(
        events,
        nodes=(node,) if node else (),
        categories=(category,) if category else (),
    )
    selected.sort(key=lambda event: (event.t, event.seq))
    return selected


def _compact_detail(detail: dict[str, object]) -> str:
    return " ".join(f"{key}={detail[key]}" for key in sorted(detail))


def render_timeline(events: Sequence[TraceEvent]) -> str:
    """One row per event: time, node, kind, compact detail."""
    if not events:
        return "(no events)"
    node_width = max(len(event.node) for event in events)
    rows = []
    for event in events:
        rows.append(
            f"{event.t:>12.6f}  {event.node:<{node_width}}  "
            f"{event.kind:<24}  {_compact_detail(event.detail)}".rstrip()
        )
    return "\n".join(rows)


# ---------------------------------------------------------------------------
# Packet lifecycle reconstruction
# ---------------------------------------------------------------------------

@dataclass
class PacketLifecycle:
    """The reconstructed journey of one packet uid: tx → hops → rx/drop."""

    uid: int
    src: str = ""
    dst: str = ""
    dport: int | None = None
    t_tx: float | None = None
    t_end: float | None = None
    hops: list[str] = field(default_factory=list)  #: forwarding nodes, in order
    outcome: str = "in-flight"  #: "rx" | "drop" | "in-flight"
    cause: str | None = None  #: drop cause when outcome == "drop"
    receiver: str = ""

    @property
    def latency(self) -> float | None:
        """End-to-end time from first tx to delivery (rx outcomes only)."""
        if self.outcome != "rx" or self.t_tx is None or self.t_end is None:
            return None
        return self.t_end - self.t_tx

    def describe(self) -> str:
        path = " -> ".join([self.src, *self.hops, self.receiver or self.dst])
        if self.outcome == "rx":
            extra = f"delivered in {self.latency:.6f}s" if self.latency is not None else "delivered"
        elif self.outcome == "drop":
            extra = f"dropped ({self.cause})"
        else:
            extra = "in flight at end of trace"
        port = f":{self.dport}" if self.dport is not None else ""
        return f"#{self.uid} {path}{port}  [{extra}]"


def reconstruct_packets(events: Iterable[TraceEvent]) -> list[PacketLifecycle]:
    """Stitch packet.* events into per-uid lifecycles, ordered by first tx.

    Broadcast packets can be received by several nodes; the lifecycle keeps
    the first delivery as the outcome (later deliveries do not reopen it).
    """
    lifecycles: dict[int, PacketLifecycle] = {}
    for event in events:
        if event.category != "packet":
            continue
        raw_uid = event.detail.get("uid")
        if not isinstance(raw_uid, int):
            continue
        life = lifecycles.setdefault(raw_uid, PacketLifecycle(uid=raw_uid))
        if event.kind == "packet.tx":
            if life.t_tx is None:
                life.t_tx = event.t
                life.src = event.node
                life.dst = str(event.detail.get("dst", ""))
                dport = event.detail.get("dport")
                life.dport = dport if isinstance(dport, int) else None
        elif event.kind == "packet.forward":
            life.hops.append(event.node)
        elif event.kind == "packet.rx":
            if life.outcome == "in-flight":
                life.outcome = "rx"
                life.receiver = event.node
                life.t_end = event.t
        elif event.kind == "packet.drop":
            if life.outcome == "in-flight":
                life.outcome = "drop"
                life.cause = str(event.detail.get("cause", "unknown"))
                life.t_end = event.t
    ordered = sorted(
        lifecycles.values(),
        key=lambda life: (life.t_tx if life.t_tx is not None else float("inf"), life.uid),
    )
    return ordered


def render_packet_lifecycles(lifecycles: Sequence[PacketLifecycle]) -> str:
    if not lifecycles:
        return "(no packet events)"
    return "\n".join(life.describe() for life in lifecycles)
