"""Typed trace events: the taxonomy, the record, and its JSONL codec.

A :class:`TraceEvent` is one observation of simulator behaviour: a packet
transmission, an AODV route discovery step, an SLP resolution, a SIP
transaction edge. Events are immutable, carry their simulation timestamp
(always :attr:`Simulator.now` — never the host clock) and a collector
sequence number, and serialize to one JSON line each with sorted keys, so
a seeded run produces byte-identical trace files every time.

The taxonomy below is the contract between emission points and analysis
passes: every emitted ``kind`` must be registered in :data:`EVENT_KINDS`
(the collector rejects unknown kinds) and ``kind.split(".", 1)[0]`` is the
event's category.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ReproError


class TraceError(ReproError):
    """A malformed trace event or trace file."""


#: kind -> one-line description. The authoritative event taxonomy; grouped
#: by category (the dotted prefix). DESIGN.md §5d mirrors this table.
EVENT_KINDS: dict[str, str] = {
    # packet — on-air frame lifecycle (uid correlates hops of one packet)
    "packet.tx": "frame handed to the medium (broadcast or unicast)",
    "packet.rx": "frame delivered to a node's IP layer",
    "packet.forward": "transit packet re-dispatched by an intermediate node",
    "packet.drop": "frame or packet lost (detail.cause says why)",
    # aodv — reactive route discovery and maintenance
    "aodv.rreq": "RREQ originated (route discovery round started)",
    "aodv.rreq_forward": "RREQ re-flooded by an intermediate node",
    "aodv.rrep": "RREP originated (by destination or by cached route)",
    "aodv.rrep_forward": "RREP forwarded along the reverse route",
    "aodv.rerr": "RERR sent (link break or propagated unreachability)",
    "aodv.route_update": "route table entry added or refreshed",
    "aodv.route_expired": "expired/invalid route found on lookup",
    "aodv.discovery_complete": "route discovery resolved, buffer flushed",
    "aodv.discovery_failed": "route discovery exhausted its retries",
    # olsr — proactive link state
    "olsr.hello": "HELLO beacon sent",
    "olsr.tc": "TC message sent (topology dissemination)",
    "olsr.mpr_change": "multipoint relay set changed",
    "olsr.route_recompute": "shortest-path table recomputed",
    "olsr.link_failure": "symmetric link dropped after TX failure",
    # slp — MANET service location
    "slp.advertise": "local service (re-)registered for dissemination",
    "slp.withdraw": "local service deregistered",
    "slp.cache_hit": "lookup answered from local/cache state",
    "slp.query": "network lookup launched (cache miss)",
    "slp.entry_learned": "piggybacked remote entry entered the cache",
    "slp.resolved": "pending lookup resolved with results",
    "slp.miss": "pending lookup timed out with no results",
    "slp.advert_suppressed": "re-advertisement withheld by the rate limiter",
    # queue — bounded interface TX queue lifecycle (opt-in, §5f)
    "queue.enqueue": "frame queued behind a busy interface (detail.depth)",
    "queue.drop": "bounded TX queue shed a frame (detail.policy says which)",
    "queue.high_watermark": "TX queue depth crossed its high watermark",
    # sip — proxy routing decisions, message flow, transaction edges
    "sip.register": "REGISTER accepted by the local SIPHoc proxy",
    "sip.route": "request forwarded (detail.via: manet|internet|local)",
    "sip.route_failed": "no route for request (404 to the caller)",
    "sip.overload_reject": "proxy shed a new INVITE/REGISTER with 503 (§5f)",
    "sip.msg_tx": "SIP message sent by an endpoint",
    "sip.msg_rx": "SIP message received by an endpoint",
    "sip.txn_state": "transaction state machine edge",
    # tunnel — layer-2 tunnel lifecycle (client and gateway side)
    "tunnel.lease": "gateway granted or renewed a lease",
    "tunnel.lease_expired": "gateway expired an idle lease",
    "tunnel.release": "client released its lease",
    "tunnel.connected": "client brought the tunnel interface up",
    "tunnel.disconnected": "client tore the tunnel interface down",
    "tunnel.nack": "gateway refused a request (detail.cause: lease|capacity)",
    # gateway — Internet gateway advertisement
    "gateway.up": "gateway provider started and advertised",
    "gateway.down": "gateway provider stopped and withdrew",
    # rtp — media-plane lifecycle and recovery (§5j)
    "rtp.session_open": "RTP session bound (codec, playout policy, redundancy)",
    "rtp.session_close": "RTP session closed (sent/received/played/recovered)",
    "rtp.retarget": "jitter buffer re-targeted its playout delay",
    "rtp.recovered": "lost primary rebuilt from RFC 2198 redundancy",
    "rtp.spurt": "sender talk-spurt transition (detail.talking)",
    "rtp.dtmf": "RFC 2833 telephone event received (detail.digit)",
    # fault — injected failures (repro.faults; node="" = network-wide)
    "fault.node_crash": "injected node crash (stack torn down, host state lost)",
    "fault.node_restart": "injected node restart (stack rebuilt from scratch)",
    "fault.partition": "injected link partition between two node groups",
    "fault.heal": "injected partition healed",
    "fault.gateway_down": "injected gateway failure (detail.graceful says how)",
    "fault.gateway_up": "injected gateway recovery (provider restarted)",
    "fault.interface_down": "injected interface failure (detail.iface says which)",
    "fault.interface_up": "injected interface recovery",
    # iface — per-interface administrative state (§5k)
    "iface.up": "interface administratively enabled (detail.iface)",
    "iface.down": "interface administratively disabled (detail.iface)",
    # handover — mid-call multihomed handover (§5k)
    "handover.trigger": "handover decided for a call (detail.cause, detail.mode)",
    "handover.attempt": "migration re-INVITE launched (detail.attempt)",
    "handover.complete": "call re-anchored on the new interface (latency_ms)",
    "handover.media_restored": "inbound media resumed (gap_ms, packets_lost)",
    "handover.abandoned": "give-up deadline or dead peer; call torn down",
    # mobility — movement epochs
    "mobility.waypoint": "node picked a new waypoint (speed, target)",
}

#: Every category present in the taxonomy, in sorted order.
CATEGORIES: tuple[str, ...] = tuple(
    sorted({kind.split(".", 1)[0] for kind in EVENT_KINDS})
)

_REQUIRED_FIELDS = ("t", "seq", "kind", "node")

#: JSON scalar types allowed in detail values (lists/dicts of them too).
_SCALARS = (str, int, float, bool, type(None))


@dataclass(frozen=True)
class TraceEvent:
    """One structured observation at a point in simulated time."""

    t: float  #: simulation time (Simulator.now) when the event occurred
    seq: int  #: collector-assigned monotonic sequence number
    kind: str  #: dotted event kind from :data:`EVENT_KINDS`
    node: str  #: primary node identity (MANET IP, or "" for network-wide)
    detail: dict[str, object] = field(default_factory=dict)

    @property
    def category(self) -> str:
        return self.kind.split(".", 1)[0]

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "t": self.t,
            "seq": self.seq,
            "kind": self.kind,
            "node": self.node,
        }
        if self.detail:
            out["detail"] = self.detail
        return out

    def to_json_line(self) -> str:
        """One JSONL record; sorted keys keep seeded runs byte-identical."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, raw: dict[str, object]) -> "TraceEvent":
        validate_event_dict(raw)
        return cls(
            t=float(raw["t"]),  # type: ignore[arg-type]
            seq=int(raw["seq"]),  # type: ignore[arg-type]
            kind=str(raw["kind"]),
            node=str(raw["node"]),
            detail=dict(raw.get("detail") or {}),  # type: ignore[arg-type]
        )


def _detail_value_ok(value: object, depth: int = 0) -> bool:
    if isinstance(value, _SCALARS):
        return True
    if depth >= 3:
        return False
    if isinstance(value, (list, tuple)):
        return all(_detail_value_ok(item, depth + 1) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and _detail_value_ok(item, depth + 1)
            for key, item in value.items()
        )
    return False


def validate_event_dict(raw: object) -> None:
    """Raise :class:`TraceError` unless ``raw`` is a schema-valid event dict.

    The schema: required keys ``t`` (number >= 0), ``seq`` (int >= 0),
    ``kind`` (a registered kind), ``node`` (str); optional ``detail`` (a
    dict with string keys and JSON-scalar/shallow-container values).
    """
    if not isinstance(raw, dict):
        raise TraceError(f"trace event must be an object, got {type(raw).__name__}")
    missing = [key for key in _REQUIRED_FIELDS if key not in raw]
    if missing:
        raise TraceError(f"trace event missing fields: {', '.join(missing)}")
    t = raw["t"]
    if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
        raise TraceError(f"trace event field 't' must be a non-negative number, got {t!r}")
    seq = raw["seq"]
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise TraceError(f"trace event field 'seq' must be a non-negative int, got {seq!r}")
    kind = raw["kind"]
    if not isinstance(kind, str) or kind not in EVENT_KINDS:
        raise TraceError(f"unknown trace event kind {kind!r}")
    if not isinstance(raw["node"], str):
        raise TraceError(f"trace event field 'node' must be a string, got {raw['node']!r}")
    detail = raw.get("detail", {})
    if not isinstance(detail, dict) or not _detail_value_ok(detail):
        raise TraceError(f"trace event 'detail' must be a shallow JSON object, got {detail!r}")
    unknown = set(raw) - {*_REQUIRED_FIELDS, "detail"}
    if unknown:
        raise TraceError(f"trace event has unknown fields: {', '.join(sorted(unknown))}")


def parse_jsonl_line(line: str) -> TraceEvent:
    """Parse one JSONL record into a validated :class:`TraceEvent`."""
    try:
        raw = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceError(f"invalid JSON in trace line: {exc}") from exc
    return TraceEvent.from_dict(raw)
