"""SIP call-flow ladder diagrams from trace events.

Builds the classic RFC-style sequence diagram (the view used throughout
the SIPHoc paper's call-flow figures) out of ``sip.msg_tx`` events, which
the :class:`~repro.sip.transport.SipTransport` choke point emits for every
message an endpoint sends. Rendering is delegated to the generic
:func:`repro.analyzer.render.render_ladder` machinery.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analyzer.render import render_ladder
from repro.trace.events import TraceEvent

Arrow = tuple[float, str, str, str]


def _arrow_label(detail: dict[str, object]) -> str:
    method = detail.get("method")
    if method:
        return str(method)
    status = detail.get("status")
    cseq = detail.get("cseq")
    label = str(status) if status is not None else "?"
    if cseq:
        label = f"{label} ({cseq})"
    return label


def build_sip_flow(
    events: Iterable[TraceEvent],
    call_id: str | None = None,
) -> tuple[list[str], list[Arrow]]:
    """Participants (in order of first appearance) and arrows of a SIP flow.

    Each ``sip.msg_tx`` event becomes one arrow ``(t, src, dst, label)``
    with participants identified as ``ip:port``. ``call_id`` restricts the
    flow to one dialog when several calls share a trace.
    """
    participants: list[str] = []
    arrows: list[Arrow] = []
    for event in events:
        if event.kind != "sip.msg_tx":
            continue
        if call_id is not None and event.detail.get("call_id") != call_id:
            continue
        src = str(event.detail.get("src", ""))
        dst = str(event.detail.get("dst", ""))
        if not src or not dst:
            continue
        for endpoint in (src, dst):
            if endpoint not in participants:
                participants.append(endpoint)
        arrows.append((event.t, src, dst, _arrow_label(event.detail)))
    return participants, arrows


def call_ids(events: Iterable[TraceEvent]) -> list[str]:
    """Distinct SIP Call-IDs seen in a trace, in order of first appearance."""
    seen: list[str] = []
    for event in events:
        if event.kind != "sip.msg_tx":
            continue
        cid = event.detail.get("call_id")
        if isinstance(cid, str) and cid and cid not in seen:
            seen.append(cid)
    return seen


def sip_ladder(events: Sequence[TraceEvent], call_id: str | None = None) -> str:
    """Render the SIP call-flow ladder for a trace (optionally one dialog)."""
    participants, arrows = build_sip_flow(events, call_id)
    if not arrows:
        return "(no sip.msg_tx events in trace — was tracing enabled?)"
    return render_ladder(participants, arrows)
