"""Trace analysis CLI: ``python -m repro.trace <subcommand> trace.jsonl``.

Subcommands:

* ``summarize`` — event counts by category/kind/node, drop causes, span
* ``ladder``    — SIP call-flow ladder diagram (``--call-id`` per dialog)
* ``filter``    — select events by kind/category/node/time, emit JSONL or
  a rendered timeline
* ``packets``   — packet-lifecycle reconstruction (tx → hops → rx/drop)
* ``smoke``     — run a tiny traced scenario and validate its JSONL
  against the event schema (the ``tools/check.sh`` gate)
"""

from __future__ import annotations

import argparse
import sys

from repro.trace.analysis import (
    filter_events,
    reconstruct_packets,
    render_packet_lifecycles,
    render_summary,
    render_timeline,
    summarize,
    timeline,
)
from repro.trace.collector import read_jsonl
from repro.trace.events import TraceError, parse_jsonl_line
from repro.trace.ladder import call_ids, sip_ladder


def _load(path: str) -> list:
    try:
        return read_jsonl(path)
    except OSError as exc:
        raise SystemExit(f"error: cannot read trace file: {exc}")
    except TraceError as exc:
        raise SystemExit(f"error: malformed trace file {path!r}: {exc}")


def _cmd_summarize(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    print(render_summary(summarize(events)))
    return 0


def _cmd_ladder(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    if args.list_calls:
        for cid in call_ids(events):
            print(cid)
        return 0
    print(sip_ladder(events, call_id=args.call_id))
    return 0


def _cmd_filter(args: argparse.Namespace) -> int:
    events = filter_events(
        _load(args.trace),
        kinds=args.kind,
        categories=args.category,
        nodes=args.node,
        t_min=args.since,
        t_max=args.until,
    )
    if args.render:
        print(render_timeline(timeline(events)))
    else:
        for event in events:
            print(event.to_json_line())
    return 0


def _cmd_packets(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    lifecycles = reconstruct_packets(events)
    if args.dropped:
        lifecycles = [life for life in lifecycles if life.outcome == "drop"]
    print(render_packet_lifecycles(lifecycles))
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    """Run a seeded 2-hop traced call and schema-validate the exported JSONL."""
    from repro.scenarios import build_chain_call_scenario

    scenario = build_chain_call_scenario(hops=2, routing="aodv", seed=7, tracing=True)
    scenario.converge()
    record = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=2.0)
    scenario.stop()
    collector = scenario.trace
    failures: list[str] = []
    if collector is None:
        failures.append("scenario.trace is None despite tracing=True")
        text = ""
    else:
        text = collector.export_jsonl()
    lines = text.splitlines()
    if not lines:
        failures.append("traced scenario produced no events")
    events = []
    for number, line in enumerate(lines, start=1):
        try:
            events.append(parse_jsonl_line(line))
        except TraceError as exc:
            failures.append(f"line {number} failed schema validation: {exc}")
            break
    if not record.established:
        failures.append("smoke call did not establish")
    categories = {event.category for event in events}
    for expected in ("packet", "aodv", "slp", "sip"):
        if expected not in categories:
            failures.append(f"no {expected}.* events in trace")
    ladder_text = sip_ladder(events)
    if "INVITE" not in ladder_text:
        failures.append("SIP ladder does not show the INVITE")
    if args.out and text:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"trace smoke ok: {len(events)} events, categories "
        f"{', '.join(sorted(categories))}; schema valid; ladder renders INVITE"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Analyze repro.trace JSONL event traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="event counts and drop causes")
    p_sum.add_argument("trace", help="trace JSONL file")
    p_sum.set_defaults(fn=_cmd_summarize)

    p_lad = sub.add_parser("ladder", help="SIP call-flow ladder diagram")
    p_lad.add_argument("trace", help="trace JSONL file")
    p_lad.add_argument("--call-id", help="restrict to one dialog")
    p_lad.add_argument(
        "--list-calls", action="store_true", help="list Call-IDs in the trace"
    )
    p_lad.set_defaults(fn=_cmd_ladder)

    p_fil = sub.add_parser("filter", help="select events, emit JSONL or timeline")
    p_fil.add_argument("trace", help="trace JSONL file")
    p_fil.add_argument("--kind", action="append", default=[], help="event kind (repeatable)")
    p_fil.add_argument(
        "--category", action="append", default=[], help="event category (repeatable)"
    )
    p_fil.add_argument("--node", action="append", default=[], help="node IP (repeatable)")
    p_fil.add_argument("--since", type=float, help="minimum simulation time")
    p_fil.add_argument("--until", type=float, help="maximum simulation time")
    p_fil.add_argument(
        "--render", action="store_true", help="render a timeline instead of JSONL"
    )
    p_fil.set_defaults(fn=_cmd_filter)

    p_pkt = sub.add_parser("packets", help="packet lifecycle reconstruction")
    p_pkt.add_argument("trace", help="trace JSONL file")
    p_pkt.add_argument("--dropped", action="store_true", help="only dropped packets")
    p_pkt.set_defaults(fn=_cmd_packets)

    p_smk = sub.add_parser("smoke", help="run a tiny traced scenario, validate JSONL")
    p_smk.add_argument("--out", help="also write the smoke trace to this path")
    p_smk.set_defaults(fn=_cmd_smoke)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream pipe (e.g. `... | head`) closed early: exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(141)
