"""The trace collector: a bounded ring buffer of :class:`TraceEvent` records.

One collector attaches to one :class:`~repro.netsim.simulator.Simulator`
(``sim.tracer``). Emission points across the stack do::

    tracer = self.sim.tracer
    if tracer is not None:
        tracer.emit("aodv.rreq", self.node.ip, dest=dest)

so a simulation with tracing off pays exactly one attribute read and a
``None`` check per potential event — nothing is formatted or allocated.

Determinism contract: the collector never schedules simulator events,
never draws randomness, and stamps every event with ``sim.now`` plus its
own monotonic sequence counter; two seeded runs therefore export
byte-identical JSONL (enforced by ``tests/trace/test_determinism.py``).

The ring buffer is bounded (``capacity`` events, default 65536): long runs
keep the most recent window, and :attr:`dropped` says how many older
events were evicted.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, TextIO

from repro.trace.events import EVENT_KINDS, TraceEvent, parse_jsonl_line

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.simulator import Simulator

DEFAULT_CAPACITY = 65536


class TraceCollector:
    """Simulation-time structured event bus with a bounded ring buffer."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, label: str = "") -> None:
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.label = label
        self.enabled = True
        self._sim: "Simulator | None" = None
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.emitted = 0  # total events ever emitted (>= len(self))

    # -- attachment ---------------------------------------------------------
    def attach(self, sim: "Simulator") -> "TraceCollector":
        """Install this collector as ``sim.tracer``; returns self."""
        self._sim = sim
        sim.tracer = self
        return self

    def detach(self) -> None:
        if self._sim is not None and self._sim.tracer is self:
            self._sim.tracer = None
        self._sim = None

    @property
    def sim(self) -> "Simulator | None":
        return self._sim

    # -- emission -----------------------------------------------------------
    def emit(self, kind: str, node: str = "", **detail: object) -> None:
        """Record one event at the current simulation time.

        ``kind`` must be registered in :data:`~repro.trace.events.EVENT_KINDS`
        — an unknown kind is a programming error at the emission point, not
        a runtime condition, so it raises immediately.
        """
        if not self.enabled:
            return
        if kind not in EVENT_KINDS:
            raise KeyError(f"unregistered trace event kind {kind!r}")
        sim = self._sim
        now = sim.now if sim is not None else 0.0
        self._seq += 1
        self.emitted += 1
        self._events.append(TraceEvent(t=now, seq=self._seq, kind=kind, node=node, detail=detail))

    # -- access -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer since creation/clear."""
        return self.emitted - len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0
        self._seq = 0

    def select(
        self,
        kind: str | None = None,
        category: str | None = None,
        node: str | None = None,
        predicate: Callable[[TraceEvent], bool] | None = None,
    ) -> list[TraceEvent]:
        """Events matching all given criteria, in emission order."""
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if category is not None and event.category != category:
                continue
            if node is not None and event.node != node:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    # -- JSONL export / import ----------------------------------------------
    def export_jsonl(self) -> str:
        """The buffered events as JSONL text (one event per line)."""
        return "".join(event.to_json_line() + "\n" for event in self._events)

    def write_jsonl(self, target: str | TextIO) -> int:
        """Write the buffer to a path or file object; returns event count."""
        text = self.export_jsonl()
        if hasattr(target, "write"):
            target.write(text)  # type: ignore[union-attr]
        else:
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
        return len(self._events)


def read_jsonl(source: str | Iterable[str]) -> list[TraceEvent]:
    """Load events from a JSONL path or an iterable of lines, validated."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    return [parse_jsonl_line(line) for line in lines if line.strip()]


# ---------------------------------------------------------------------------
# Process-wide default tracing (the experiments --trace plumbing)
# ---------------------------------------------------------------------------

_default_capacity: int | None = None
_registered: list[TraceCollector] = []


def enable_default(capacity: int = DEFAULT_CAPACITY) -> None:
    """Opt every subsequently built :class:`ManetScenario` into tracing.

    Used by ``python -m repro.experiments --trace out.jsonl`` so the
    experiment harness can trace scenarios it does not construct itself.
    """
    global _default_capacity
    _default_capacity = capacity
    _registered.clear()


def disable_default() -> None:
    global _default_capacity
    _default_capacity = None
    _registered.clear()


def default_capacity() -> int | None:
    """The opt-in default capacity, or None when default tracing is off."""
    return _default_capacity


def register(collector: TraceCollector) -> None:
    """Track a collector for :func:`export_registered` (default mode only)."""
    if _default_capacity is not None:
        _registered.append(collector)


def export_registered(target: str | TextIO) -> int:
    """Concatenate every registered collector's buffer into one JSONL file.

    Collectors are exported in registration (scenario construction) order;
    each block stays internally ordered by its own (t, seq). Returns the
    total event count written.
    """
    total = 0
    if hasattr(target, "write"):
        for collector in _registered:
            total += collector.write_jsonl(target)  # type: ignore[arg-type]
        return total
    with open(target, "w", encoding="utf-8") as handle:
        for collector in _registered:
            total += collector.write_jsonl(handle)
    return total
