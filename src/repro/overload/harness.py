"""Offered-load soak: measure graceful degradation under call overload (§5f).

The workload is the overload acceptance case: a short relay chain whose
middle node carries every call's RTP both ways, swept across offered call
rates. Each sweep point runs twice — once *uncontrolled* (bounded TX
queues only, no admission control) and once *controlled* (the same queues
plus 503-with-Retry-After admission at the proxies) — so the report shows
the collapse the paper's overload story is about and the graceful knee the
§5f machinery buys back.

Everything is deterministic: call arrivals are a fixed lattice (no RNG),
per-point scenarios are freshly built from one seed, and the report is
rendered with fixed-width formatting so two same-seed runs in fresh
interpreters match byte for byte (protocol identifiers come from
process-global counters, so — as everywhere else in this repo — the
byte-identity contract is between fresh processes, not in-process reruns).

Kept out of ``repro.overload.__init__`` on purpose: this module imports
``repro.scenarios``; keeping it off the package namespace mirrors
``repro.faults.harness`` and keeps the scenario layer cycle-free. Import
as ``from repro.overload.harness import run_sweep``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import SiphocConfig
from repro.netsim.stats import SampleSeries
from repro.scenarios import ManetConfig, ManetScenario

MODE_UNCONTROLLED = "uncontrolled"
MODE_CONTROLLED = "controlled"


@dataclass
class OverloadConfig:
    """Parameters of one offered-load sweep."""

    hops: int = 2  # chain length; the middle node relays every call
    routing: str = "aodv"
    seed: int = 7
    #: Offered call rates (calls/second). Keep them doubling so every
    #: candidate knee has its 2x point in the sweep.
    loads: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
    call_duration: float = 6.0  # talk time after answer (auto hang-up)
    #: Seconds of call arrivals per point. Deliberately a half-integer: an
    #: odd call count at the 2-cps point keeps the graceful-degradation
    #: ratio strictly above the 0.50 bar instead of exactly on it.
    window: float = 16.5
    grace: float = 14.0  # extra run time for in-flight calls to resolve
    #: A call "succeeds" when it establishes within this many seconds of
    #: dialing; congested setups that crawl past it count as degraded.
    setup_sla: float = 4.0
    tx_queue_capacity: int = 16
    tx_queue_policy: str = "tail-drop"
    admission_max_inflight: int = 1
    admission_queue_watermark: float = 0.75
    admission_retry_after: int = 5
    #: Controlled success rate a load must clear to count as pre-knee.
    knee_threshold: float = 0.8


@dataclass
class LoadPoint:
    """Outcome of one (offered load, mode) run."""

    load: float
    mode: str  # MODE_UNCONTROLLED | MODE_CONTROLLED
    attempted: int
    ok: int  # established within the SLA *with* acceptable media (MOS >= 3.6)
    established: int  # established at all, media quality regardless
    rejected_503: int
    failed_other: int  # failed otherwise, or still unresolved at run end
    setup_p50: float  # over all established calls (nan when none)
    setup_p95: float
    mos_mean: float  # E-model MOS over scored established calls (nan when none)
    queue_drops: int  # txqueue.drops across every node
    admission_rejected: int  # sip.admission_rejected across every proxy

    @property
    def ok_rate(self) -> float:
        return self.ok / self.attempted if self.attempted else 0.0


@dataclass
class SweepReport:
    """Every sweep point plus the knee / graceful-degradation analysis."""

    config: OverloadConfig
    points: list[LoadPoint] = field(default_factory=list)

    def point(self, load: float, mode: str) -> LoadPoint | None:
        for candidate in self.points:
            if candidate.mode == mode and abs(candidate.load - load) < 1e-9:
                return candidate
        return None

    @property
    def knee(self) -> float | None:
        """Highest load whose *controlled* run clears the knee threshold."""
        passing = [
            p.load
            for p in self.points
            if p.mode == MODE_CONTROLLED and p.ok_rate >= self.config.knee_threshold
        ]
        return max(passing) if passing else None

    def graceful(self) -> tuple[float, float, float, bool] | None:
        """(knee, rate@knee, rate@2x, passed) — None when 2x isn't swept.

        Passed means the controlled success rate at twice the knee load
        holds at least half the at-knee rate: overload sheds calls instead
        of collapsing everyone's service.
        """
        knee = self.knee
        if knee is None:
            return None
        at_knee = self.point(knee, MODE_CONTROLLED)
        at_double = self.point(knee * 2, MODE_CONTROLLED)
        if at_knee is None or at_double is None:
            return None
        passed = at_double.ok_rate >= 0.5 * at_knee.ok_rate
        return knee, at_knee.ok_rate, at_double.ok_rate, passed

    # -- rendering ----------------------------------------------------------
    def render(self) -> str:
        cfg = self.config
        lines = [
            f"offered-load soak: {cfg.hops + 1}-node chain ({cfg.hops} hops), "
            f"{cfg.routing}, seed {cfg.seed}",
            f"window {cfg.window:.1f}s, call duration {cfg.call_duration:.1f}s, "
            f"setup SLA {cfg.setup_sla:.1f}s, one caller/callee pair",
            f"tx queue: capacity {cfg.tx_queue_capacity}, policy {cfg.tx_queue_policy}",
            f"admission (controlled runs): max_inflight={cfg.admission_max_inflight}, "
            f"queue_watermark={cfg.admission_queue_watermark:.2f}, "
            f"retry_after={cfg.admission_retry_after}s",
            "",
            "load(cps)  mode           att    ok   rate    est  p50(s)  p95(s)"
            "   mos   503  other  qdrops  admrej",
        ]
        for p in self.points:
            lines.append(
                f"{p.load:>9.2f}  {p.mode:<13}{p.attempted:>4}  {p.ok:>4}  "
                f"{p.ok_rate:>5.3f}  {p.established:>5}  {_fmt(p.setup_p50):>6}  "
                f"{_fmt(p.setup_p95):>6}  {_fmt2(p.mos_mean):>4}  {p.rejected_503:>4}  "
                f"{p.failed_other:>5}  {p.queue_drops:>6}  {p.admission_rejected:>6}"
            )
        lines.append("")
        knee = self.knee
        if knee is None:
            lines.append(
                f"knee: none (no controlled load reached rate >= "
                f"{cfg.knee_threshold:.2f})"
            )
            return "\n".join(lines) + "\n"
        lines.append(
            f"knee (controlled, rate >= {cfg.knee_threshold:.2f}): {knee:.2f} cps"
        )
        analysis = self.graceful()
        if analysis is None:
            lines.append(f"graceful degradation: n/a ({knee * 2:.2f} cps not swept)")
        else:
            _, at_knee, at_double, passed = analysis
            ratio = at_double / at_knee if at_knee else 0.0
            verdict = "graceful (>= 0.50)" if passed else "COLLAPSED (< 0.50)"
            lines.append(
                f"controlled rate at {knee * 2:.2f} cps: {at_double:.3f} "
                f"({ratio:.2f} of knee rate {at_knee:.3f}) -> {verdict}"
            )
        uncontrolled = self.point(knee * 2, MODE_UNCONTROLLED)
        if uncontrolled is not None:
            lines.append(
                f"uncontrolled rate at {knee * 2:.2f} cps: "
                f"{uncontrolled.ok_rate:.3f}"
            )
        return "\n".join(lines) + "\n"

    @property
    def graceful_pass(self) -> bool:
        analysis = self.graceful()
        return analysis is not None and analysis[3]


def _fmt(value: float) -> str:
    return "-" if math.isnan(value) else f"{value:.3f}"


def _fmt2(value: float) -> str:
    return "-" if math.isnan(value) else f"{value:.2f}"


# ---------------------------------------------------------------------------
# Scenario construction and the per-point run
# ---------------------------------------------------------------------------


def build_overload_scenario(
    cfg: OverloadConfig, controlled: bool, tracing: bool = False
) -> ManetScenario:
    """A relay chain with one phone pair across it.

    The caller sits on node 0 and the callee on the far end, so every
    call's signaling and RTP crosses the same middle relay — the shared
    bottleneck the sweep saturates. Overload comes from *overlapping*
    calls between the pair, not extra phones: a SIPHoc proxy advertises a
    single contact service per node, so one registered user per node is
    the deployment shape every scenario in this repo uses. Both modes get
    the same bounded TX queues; only the controlled mode arms proxy
    admission control, so the delta between the two curves is exactly
    what admission buys.
    """
    siphoc = None
    if controlled:
        siphoc = SiphocConfig(
            admission_max_inflight=cfg.admission_max_inflight,
            admission_queue_watermark=cfg.admission_queue_watermark,
            admission_retry_after=cfg.admission_retry_after,
        )
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=cfg.hops + 1,
            topology="chain",
            routing=cfg.routing,
            seed=cfg.seed,
            tracing=tracing,
            tx_queue_capacity=cfg.tx_queue_capacity,
            tx_queue_policy=cfg.tx_queue_policy,
            siphoc=siphoc,
        )
    )
    scenario.start()
    scenario.add_phone(0, "caller")
    scenario.add_phone(cfg.hops, "callee")
    return scenario


def run_load_point(cfg: OverloadConfig, load: float, controlled: bool) -> LoadPoint:
    """Run one (offered load, mode) point on a freshly built scenario.

    A short warm-up call (not counted) primes the route and the SLP
    contact cache, then arrivals follow a deterministic lattice: measured
    call ``k`` dials at ``k / load`` seconds into the window. No RNG is
    involved anywhere in the workload.
    """
    scenario = build_overload_scenario(cfg, controlled)
    if scenario.metrics is not None:
        # Label this point's section so the combined export reads as a
        # sweep: `python -m repro.metrics dash` shows the knee per point.
        scenario.metrics.label = (
            f"{load:g}cps-{MODE_CONTROLLED if controlled else MODE_UNCONTROLLED}"
        )
    scenario.converge()
    scenario.call_and_wait("caller", "sip:callee@voicehoc.ch", duration=0.5)
    warmup_records = len(scenario.phones["caller"].history)
    caller = scenario.phones["caller"]
    interval = 1.0 / load
    n_calls = int(round(load * cfg.window))
    for k in range(n_calls):
        scenario.sim.schedule(
            k * interval,
            caller.place_call,
            "sip:callee@voicehoc.ch",
            cfg.call_duration,
        )
    scenario.sim.run(scenario.sim.now + cfg.window + cfg.grace)
    scenario.stop()

    outgoing = [
        record
        for record in caller.history[warmup_records:]
        if record.direction == "out"
    ]
    setups = SampleSeries()
    mos = SampleSeries()
    ok = established = rejected = failed_other = 0
    for record in outgoing:
        if record.established:
            established += 1
            setups.add(record.setup_delay)
            quality = record.quality
            if quality is not None:
                mos.add(quality.mos)
            # A call only counts as OK if it set up within the SLA *and*
            # its received stream scored user-acceptable on the E-model —
            # an established call whose audio is unusable is an overload
            # casualty, not a success.
            if (
                record.setup_delay <= cfg.setup_sla
                and quality is not None
                and quality.is_acceptable
            ):
                ok += 1
        elif record.failure_status == 503:
            rejected += 1
        else:
            failed_other += 1
    return LoadPoint(
        load=load,
        mode=MODE_CONTROLLED if controlled else MODE_UNCONTROLLED,
        attempted=len(outgoing),
        ok=ok,
        established=established,
        rejected_503=rejected,
        failed_other=failed_other,
        setup_p50=setups.percentile(50),
        setup_p95=setups.percentile(95),
        mos_mean=mos.mean,
        queue_drops=scenario.stats.count("txqueue.drops"),
        admission_rejected=scenario.stats.count("sip.admission_rejected"),
    )


def run_sweep(cfg: OverloadConfig | None = None) -> SweepReport:
    """The full sweep: every load, uncontrolled then controlled."""
    cfg = cfg or OverloadConfig()
    report = SweepReport(config=cfg)
    for load in cfg.loads:
        report.points.append(run_load_point(cfg, load, controlled=False))
        report.points.append(run_load_point(cfg, load, controlled=True))
    return report


def smoke_config() -> OverloadConfig:
    """The reduced sweep the ``smoke`` gate (tools/check.sh) runs."""
    return OverloadConfig(loads=(1.0, 2.0), window=12.5, grace=12.0)
