"""Overload CLI: ``python -m repro.overload <subcommand>``.

Subcommands:

* ``sweep`` — run the full offered-load sweep, print the report; exits
  nonzero unless the controlled curve degrades gracefully (success at
  twice the knee load holds >= 50 % of the at-knee rate)
* ``smoke`` — run the reduced sweep and assert the qualitative overload
  invariants plus byte-identical same-seed reruns in fresh interpreters
  (the ``tools/check.sh`` gate for the overload subsystem)
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

from repro.overload.harness import (
    MODE_CONTROLLED,
    MODE_UNCONTROLLED,
    OverloadConfig,
    run_sweep,
    smoke_config,
)

#: Rerun script for the byte-identity check. Protocol identifiers (Call-ID,
#: Via branch, packet uid) come from process-global counters, so — like the
#: trace and faults smokes — the byte-identity contract is between fresh
#: interpreters, not reruns inside one process.
_RERUN_SCRIPT = """
import sys
from repro.overload.harness import run_sweep, smoke_config
sys.stdout.write(run_sweep(smoke_config()).render())
"""


def _rerun_in_fresh_process() -> str:
    result = subprocess.run(
        [sys.executable, "-c", _RERUN_SCRIPT],
        capture_output=True,
        text=True,
        check=True,
        env=dict(os.environ),
    )
    return result.stdout


def _cmd_sweep(args: argparse.Namespace) -> int:
    import repro.metrics as metrics

    cfg = OverloadConfig(seed=args.seed, routing=args.routing)
    if args.loads:
        cfg.loads = tuple(args.loads)
    if args.metrics:
        metrics.enable_default(args.metrics_interval)
    try:
        report = run_sweep(cfg)
        if args.metrics:
            count = metrics.export_registered(args.metrics)
            print(f"[metrics: {count} snapshots written to {args.metrics}]")
    finally:
        if args.metrics:
            metrics.disable_default()
    print(report.render(), end="")
    return 0 if report.graceful_pass else 1


def _cmd_smoke(args: argparse.Namespace) -> int:
    """Overload gate: graceful shedding works and reruns are byte-identical."""
    failures: list[str] = []

    cfg = smoke_config()
    report = run_sweep(cfg)
    top = max(cfg.loads)
    controlled = report.point(top, MODE_CONTROLLED)
    uncontrolled = report.point(top, MODE_UNCONTROLLED)
    if controlled is None or uncontrolled is None:
        failures.append("smoke sweep is missing its top-load points")
    else:
        if controlled.rejected_503 == 0:
            failures.append("no 503 admission rejections at the overload point")
        if controlled.admission_rejected == 0:
            failures.append("sip.admission_rejected counter never moved")
        if uncontrolled.queue_drops == 0:
            failures.append("bounded TX queues shed nothing without admission")
        if controlled.ok_rate <= uncontrolled.ok_rate:
            failures.append(
                f"admission control did not help at {top:.1f} cps "
                f"(controlled {controlled.ok_rate:.3f} <= "
                f"uncontrolled {uncontrolled.ok_rate:.3f})"
            )
        if uncontrolled.rejected_503 or uncontrolled.admission_rejected:
            failures.append("uncontrolled run unexpectedly produced 503 rejections")
    knee = report.knee
    if knee is None:
        failures.append("no knee: controlled runs never cleared the threshold")

    # Byte-identity across fresh interpreters: the whole rendered report —
    # counts, percentiles, MOS, knee analysis — must reproduce exactly.
    try:
        rerun_a = _rerun_in_fresh_process()
        rerun_b = _rerun_in_fresh_process()
    except subprocess.CalledProcessError as exc:
        failures.append(f"fresh-process overload rerun crashed: {exc.stderr[-300:]}")
    else:
        if not rerun_a.strip():
            failures.append("fresh-process overload rerun produced no output")
        if rerun_a != rerun_b:
            failures.append("same-seed fresh-process overload reports differ")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    assert controlled is not None and uncontrolled is not None
    print(
        f"overload smoke ok: at {top:.1f} cps admission shed "
        f"{controlled.rejected_503} calls with 503 (success "
        f"{controlled.ok_rate:.3f} vs {uncontrolled.ok_rate:.3f} uncontrolled, "
        f"{uncontrolled.queue_drops} queue drops); "
        "same-seed reruns byte-identical"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.overload",
        description="Offered-load soak: overload control and graceful degradation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sweep = sub.add_parser(
        "sweep", help="run the offered-load sweep, print the report"
    )
    p_sweep.add_argument("--seed", type=int, default=7)
    p_sweep.add_argument("--routing", choices=("aodv", "olsr"), default="aodv")
    p_sweep.add_argument(
        "--loads",
        type=float,
        nargs="+",
        metavar="CPS",
        help="offered call rates to sweep (default: 0.5 1 2 4)",
    )
    p_sweep.add_argument(
        "--metrics",
        metavar="OUT.JSONL",
        help="scrape sim-time metrics from every sweep point (one labelled "
        "section per point) and write the combined JSONL here",
    )
    p_sweep.add_argument(
        "--metrics-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="sim-seconds between metric snapshots (default: 1.0)",
    )
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_smk = sub.add_parser(
        "smoke", help="overload gate: graceful shedding + byte-identical reruns"
    )
    p_smk.set_defaults(fn=_cmd_smoke)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(141)
