"""Offered-load soak harness for the §5f overload-control machinery.

The interesting entry points live in :mod:`repro.overload.harness`
(``run_sweep``, ``run_load_point``) and are deliberately *not* re-exported
here: the harness imports :mod:`repro.scenarios`, and keeping this package
namespace import-light mirrors :mod:`repro.faults` so neither package can
grow an import cycle with the scenario layer. Import as::

    from repro.overload.harness import OverloadConfig, run_sweep

or drive it from the command line: ``python -m repro.overload sweep``.
"""
