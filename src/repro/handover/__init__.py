"""§5k mid-call multihomed handover: drills, reports, CI smoke.

The policy itself lives in :class:`repro.core.connection.HandoverPolicy`;
this package holds the harness around it. Like :mod:`repro.overload`, the
namespace is deliberately import-light — the harness imports
:mod:`repro.scenarios`, so re-exporting it here could grow an import
cycle with the scenario layer. Import as::

    from repro.handover.harness import DrillConfig, run_drill

or drive it from the command line: ``python -m repro.handover drill``.
"""
