"""Coverage-loss drill for the §5k mid-call multihomed handover policy.

One drill is a deterministic micro-scenario: alice and bob at the ends of
a MANET chain, both multihomed (wired uplink without the gateway role),
a call established over the mesh, and alice's radio administratively
killed mid-call by an :class:`~repro.faults.plan.InterfaceDown` fault.
With handover enabled the call must survive on the wired path — same RTP
session object, same SSRC — with a bounded inbound-media gap; with it
disabled (the baseline) media dies at the moment of coverage loss.

The rendered :class:`DrillReport` is the byte-identity surface of the
``tools/check.sh`` handover gate: same-seed reruns in fresh interpreters
must reproduce it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import HandoverConfig, SiphocConfig
from repro.faults.plan import FaultPlan
from repro.scenarios import ManetConfig, ManetScenario
from repro.sip.ua import CallState

ALICE_AOR = "sip:alice@voicehoc.ch"
BOB_AOR = "sip:bob@voicehoc.ch"


@dataclass
class DrillConfig:
    """One coverage-loss drill (absolute sim times, deterministic)."""

    seed: int = 7
    hops: int = 3  # chain of hops+1 nodes; alice node 0, bob node `hops`
    routing: str = "aodv"
    handover: bool = True
    converge: float = 5.0  # routing/registration settle time before dialing
    loss_at: float = 10.0  # absolute time alice's radio dies (mid-call)
    call_duration: float = 16.0
    run_until: float = 32.0
    handover_config: HandoverConfig = field(default_factory=HandoverConfig)

    @property
    def n_nodes(self) -> int:
        return self.hops + 1


@dataclass
class DrillResult:
    """Outcome of one drill run."""

    handover_enabled: bool
    established: bool
    #: Inbound media still flowing at alice near the scheduled call end.
    survived: bool
    final_state: str
    attempted: int
    succeeded: int
    abandoned: int
    #: Same RtpSession/SSRC before and after the outage (never re-created).
    ssrc_stable: bool
    handover_latency_ms: float | None
    media_gap_ms: float | None
    #: JSONL of the handover-relevant trace slice (see TRACE_CATEGORIES).
    trace_jsonl: str
    ladder: str

    def render(self) -> str:
        lines = [
            f"mode:        {'handover' if self.handover_enabled else 'baseline'}",
            f"established: {self.established}",
            f"survived:    {self.survived}",
            f"final state: {self.final_state}",
            f"attempted/succeeded/abandoned: "
            f"{self.attempted}/{self.succeeded}/{self.abandoned}",
            f"ssrc stable: {self.ssrc_stable}",
            f"latency_ms:  {_fmt(self.handover_latency_ms)}",
            f"gap_ms:      {_fmt(self.media_gap_ms)}",
        ]
        return "\n".join(lines) + "\n"


#: Trace categories exported as the drill's byte-identity fingerprint.
TRACE_CATEGORIES = ("handover", "iface", "fault")


def _fmt(value: float | None) -> str:
    return "-" if value is None else f"{value:.3f}"


def build_drill_scenario(cfg: DrillConfig) -> ManetScenario:
    siphoc = None
    if cfg.handover:
        siphoc = SiphocConfig(handover=cfg.handover_config)
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=cfg.n_nodes,
            topology="chain",
            routing=cfg.routing,
            seed=cfg.seed,
            multihomed=(0, cfg.hops),
            siphoc=siphoc,
            faults=FaultPlan().interface_down(at=cfg.loss_at, node=0),
            tracing=True,
        )
    )
    scenario.start()
    scenario.add_phone(0, "alice")
    scenario.add_phone(cfg.hops, "bob")
    return scenario


def run_drill(cfg: DrillConfig | None = None) -> DrillResult:
    cfg = cfg or DrillConfig()
    scenario = build_drill_scenario(cfg)
    sim = scenario.sim
    scenario.converge(cfg.converge)
    alice = scenario.phones["alice"]
    call = alice.place_call(BOB_AOR, duration=cfg.call_duration)
    sim.run_until(
        lambda: call.state in (CallState.ESTABLISHED, CallState.FAILED),
        timeout=cfg.loss_at - sim.now,
        step=0.1,
    )
    established = call.state is CallState.ESTABLISHED
    session = alice.media_session(call.call_id)
    ssrc_before = session.ssrc if session is not None else None
    call_end = sim.now + cfg.call_duration
    sim.run(cfg.run_until)

    # Survival: alice heard inbound media close to the scheduled call end —
    # the session object reference is ours, so it stays readable after the
    # phone retires the call.
    survived = bool(
        established
        and session is not None
        and session.last_rx_at is not None
        and call_end - session.last_rx_at <= 1.0
    )
    ssrc_stable = bool(
        session is not None
        and ssrc_before is not None
        and session.ssrc == ssrc_before
    )
    stats = scenario.stats.counters
    policy = scenario.stacks[0].handover
    latency_ms = None
    gap_ms = None
    if policy is not None and policy.latencies:
        latency_ms = round(policy.latencies[0] * 1000, 3)
    if policy is not None and policy.media_gaps:
        gap_ms = round(policy.media_gaps[0] * 1000, 3)
    trace = scenario.trace
    assert trace is not None
    slice_events = [
        event for event in trace.events if event.category in TRACE_CATEGORIES
    ]
    trace_jsonl = "".join(event.to_json_line() + "\n" for event in slice_events)
    from repro.trace.ladder import sip_ladder

    ladder = sip_ladder(trace.events, call.call_id)
    scenario.stop()
    return DrillResult(
        handover_enabled=cfg.handover,
        established=established,
        survived=survived,
        final_state=call.state.name,
        attempted=stats.get("handover.attempted", 0),
        succeeded=stats.get("handover.succeeded", 0),
        abandoned=stats.get("handover.abandoned", 0),
        ssrc_stable=ssrc_stable,
        handover_latency_ms=latency_ms,
        media_gap_ms=gap_ms,
        trace_jsonl=trace_jsonl,
        ladder=ladder,
    )


@dataclass
class DrillReport:
    """Handover vs. baseline drill pair — the smoke's comparison surface."""

    handover: DrillResult
    baseline: DrillResult

    def render(self) -> str:
        out = ["== handover drill ==", self.handover.render()]
        out.append("== baseline drill ==")
        out.append(self.baseline.render())
        out.append("== handover trace slice ==")
        out.append(self.handover.trace_jsonl)
        return "\n".join(out)


def run_report(seed: int = 7) -> DrillReport:
    return DrillReport(
        handover=run_drill(DrillConfig(seed=seed, handover=True)),
        baseline=run_drill(DrillConfig(seed=seed, handover=False)),
    )


def legacy_fingerprint(seed: int = 7) -> str:
    """Defaults-off guard: a legacy scenario's full trace export.

    No multihomed nodes, no handover config, no interface faults — the
    §5k machinery must contribute *zero* events here, and the export must
    be byte-identical across fresh interpreters.
    """
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=4,
            topology="chain",
            routing="aodv",
            seed=seed,
            tracing=True,
        )
    )
    scenario.start()
    scenario.add_phone(0, "alice")
    scenario.add_phone(3, "bob")
    scenario.converge(5.0)
    alice = scenario.phones["alice"]
    alice.place_call(BOB_AOR, duration=6.0)
    scenario.sim.run(18.0)
    trace = scenario.trace
    assert trace is not None
    export = trace.export_jsonl()
    scenario.stop()
    return export
