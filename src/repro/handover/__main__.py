"""Handover CLI: ``python -m repro.handover <subcommand>``.

Subcommands:

* ``drill`` — run the coverage-loss drill (handover + baseline), print
  the report and the SIP ladder of the surviving call
* ``smoke`` — the ``tools/check.sh`` handover gate: survival invariants,
  byte-identical same-seed reruns in fresh interpreters, and the
  defaults-off guard (a legacy scenario emits zero ``handover.*`` /
  ``iface.*`` events and fingerprints identically across processes)
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

from repro.handover.harness import DrillConfig, run_drill, run_report

#: Rerun script for the byte-identity check. Protocol identifiers
#: (Call-ID, Via branch, RTP SSRC, packet uid) come from process-global
#: counters, so — like the trace/faults/overload smokes — the
#: byte-identity contract is between fresh interpreters, not reruns
#: inside one process.
_RERUN_SCRIPT = """
import sys
from repro.handover.harness import run_report
sys.stdout.write(run_report().render())
"""

_DEFAULTS_OFF_SCRIPT = """
import sys
from repro.handover.harness import legacy_fingerprint
sys.stdout.write(legacy_fingerprint())
"""


def _fresh_process(script: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env=dict(os.environ),
    )
    return result.stdout


def _cmd_drill(args: argparse.Namespace) -> int:
    result = run_drill(DrillConfig(seed=args.seed, handover=not args.baseline))
    print(result.render(), end="")
    if args.ladder:
        print()
        print(result.ladder, end="")
    return 0 if (result.survived or args.baseline) else 1


def _cmd_smoke(args: argparse.Namespace) -> int:
    """Handover gate: mid-call survival works and reruns are byte-identical."""
    failures: list[str] = []

    enabled = run_drill(DrillConfig(handover=True))
    baseline = run_drill(DrillConfig(handover=False))
    if not enabled.established:
        failures.append("drill call never established")
    if not enabled.survived:
        failures.append("handover-enabled call did not survive coverage loss")
    if enabled.succeeded == 0:
        failures.append("handover.succeeded counter never moved")
    if not enabled.ssrc_stable:
        failures.append("RTP session was re-created across the migration")
    silence_ms = DrillConfig().handover_config.rtp_silence_timeout * 1000
    if enabled.media_gap_ms is None or enabled.media_gap_ms >= silence_ms:
        failures.append(
            f"media gap {enabled.media_gap_ms} ms not under the "
            f"{silence_ms:.0f} ms RTP silence trigger"
        )
    if baseline.survived:
        failures.append("baseline call survived coverage loss without handover")
    if baseline.attempted:
        failures.append("baseline run attempted a handover with the policy off")

    # Byte-identity across fresh interpreters: the whole rendered report —
    # drill outcomes, latency/gap numbers, the handover trace slice — must
    # reproduce exactly.
    try:
        rerun_a = _fresh_process(_RERUN_SCRIPT)
        rerun_b = _fresh_process(_RERUN_SCRIPT)
    except subprocess.CalledProcessError as exc:
        failures.append(f"fresh-process drill rerun crashed: {exc.stderr[-300:]}")
    else:
        if not rerun_a.strip():
            failures.append("fresh-process drill rerun produced no output")
        if rerun_a != rerun_b:
            failures.append("same-seed fresh-process drill reports differ")

    # Defaults-off guard: with no handover config, no multihomed nodes and
    # no interface faults, the §5k machinery must contribute zero events
    # and the legacy trace must fingerprint identically across processes.
    try:
        legacy_a = _fresh_process(_DEFAULTS_OFF_SCRIPT)
        legacy_b = _fresh_process(_DEFAULTS_OFF_SCRIPT)
    except subprocess.CalledProcessError as exc:
        failures.append(f"defaults-off fingerprint crashed: {exc.stderr[-300:]}")
    else:
        if not legacy_a.strip():
            failures.append("defaults-off fingerprint produced no output")
        if legacy_a != legacy_b:
            failures.append("defaults-off fingerprints differ across processes")
        leaked = [
            line
            for line in legacy_a.splitlines()
            if '"kind":"handover.' in line or '"kind":"iface.' in line
        ]
        if leaked:
            failures.append(
                f"defaults-off run leaked {len(leaked)} handover/iface events"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"handover smoke ok: coverage-loss call survived in "
        f"{enabled.attempted} attempt(s), latency {enabled.handover_latency_ms} ms, "
        f"media gap {enabled.media_gap_ms} ms (baseline died); "
        "same-seed reruns byte-identical; defaults-off clean"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.handover",
        description="Mid-call multihomed handover drills (§5k).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_drill = sub.add_parser("drill", help="run the coverage-loss drill")
    p_drill.add_argument("--seed", type=int, default=7)
    p_drill.add_argument(
        "--baseline", action="store_true", help="run with handover disabled"
    )
    p_drill.add_argument(
        "--ladder", action="store_true", help="print the call's SIP ladder"
    )
    p_drill.set_defaults(fn=_cmd_drill)

    p_smk = sub.add_parser(
        "smoke", help="handover gate: survival + byte-identical reruns"
    )
    p_smk.set_defaults(fn=_cmd_smoke)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(141)
