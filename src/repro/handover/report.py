"""Trace-derived handover accounting.

Consumes ``handover.*`` trace events (from a live collector or a JSONL
export) and reduces them to the numbers the §5k acceptance criteria are
stated in: attempts/successes/abandons, handover-latency percentiles and
inbound-media-gap percentiles. Pure functions over event lists — no
simulator access — so the same report can be built from an archived
trace file long after the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.trace.events import TraceEvent


def percentile(values: Sequence[float], q: float) -> float | None:
    """Nearest-rank percentile (q in [0, 100]); None on empty input."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered))))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class HandoverReport:
    """Counts + distributions reduced from ``handover.*`` trace events."""

    triggers: int = 0
    attempts: int = 0
    completed: int = 0
    abandoned: int = 0
    media_restored: int = 0
    causes: dict[str, int] = field(default_factory=dict)
    latencies_ms: list[float] = field(default_factory=list)
    gaps_ms: list[float] = field(default_factory=list)
    packets_lost: list[int] = field(default_factory=list)

    @property
    def survival_rate(self) -> float | None:
        """Fraction of triggered handovers that re-anchored the session."""
        if self.triggers == 0:
            return None
        return self.completed / self.triggers

    def summary(self) -> dict[str, object]:
        return {
            "triggers": self.triggers,
            "attempts": self.attempts,
            "completed": self.completed,
            "abandoned": self.abandoned,
            "media_restored": self.media_restored,
            "causes": dict(sorted(self.causes.items())),
            "latency_ms_p50": percentile(self.latencies_ms, 50),
            "latency_ms_p95": percentile(self.latencies_ms, 95),
            "gap_ms_p50": percentile(self.gaps_ms, 50),
            "gap_ms_p95": percentile(self.gaps_ms, 95),
        }

    def render(self) -> str:
        s = self.summary()
        causes = ",".join(f"{k}:{v}" for k, v in s["causes"].items()) or "-"

        def num(key: str) -> str:
            value = s[key]
            return "-" if value is None else f"{value:.3f}"

        return (
            f"triggers={s['triggers']} attempts={s['attempts']} "
            f"completed={s['completed']} abandoned={s['abandoned']} "
            f"media_restored={s['media_restored']} causes={causes}\n"
            f"latency_ms p50={num('latency_ms_p50')} p95={num('latency_ms_p95')} "
            f"gap_ms p50={num('gap_ms_p50')} p95={num('gap_ms_p95')}\n"
        )


def build_report(events: Iterable[TraceEvent]) -> HandoverReport:
    report = HandoverReport()
    for event in events:
        kind = event.kind
        detail = event.detail or {}
        if kind == "handover.trigger":
            report.triggers += 1
            cause = str(detail.get("cause", "?"))
            report.causes[cause] = report.causes.get(cause, 0) + 1
        elif kind == "handover.attempt":
            report.attempts += 1
        elif kind == "handover.complete":
            report.completed += 1
            latency = detail.get("latency_ms")
            if isinstance(latency, (int, float)):
                report.latencies_ms.append(float(latency))
        elif kind == "handover.abandoned":
            report.abandoned += 1
        elif kind == "handover.media_restored":
            report.media_restored += 1
            gap = detail.get("gap_ms")
            if isinstance(gap, (int, float)):
                report.gaps_ms.append(float(gap))
            lost = detail.get("packets_lost")
            if isinstance(lost, int):
                report.packets_lost.append(lost)
    return report
