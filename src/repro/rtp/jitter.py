"""Receiver-side jitter buffer.

A fixed-playout-delay dejitter buffer: the first packet anchors the playout
schedule; every subsequent frame must arrive before its slot
(anchor + playout_delay + k * frame_interval) or it is discarded as late.
Conservative but standard for VoIP quality studies, and exactly what the
E-model's effective-loss input expects.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class JitterBufferStats:
    received: int = 0
    played: int = 0
    late_dropped: int = 0
    duplicates: int = 0

    @property
    def late_ratio(self) -> float:
        return self.late_dropped / self.received if self.received else 0.0


@dataclass
class JitterBuffer:
    """Classifies arriving frames as playable or late."""

    frame_interval: float
    playout_delay: float = 0.06
    stats: JitterBufferStats = field(default_factory=JitterBufferStats)
    _anchor_time: float | None = None
    _anchor_seq: int | None = None
    _seen: set[int] = field(default_factory=set)
    _last_playout_at: float | None = None

    def on_packet(self, sequence: int, arrival_time: float) -> bool:
        """Record an arrival; returns True if the frame makes its slot."""
        self.stats.received += 1
        if sequence in self._seen:
            self.stats.duplicates += 1
            return False
        self._seen.add(sequence)
        if len(self._seen) > 65536:
            self._seen.clear()
        if self._anchor_time is None or self._anchor_seq is None:
            self._anchor_time = arrival_time
            self._anchor_seq = sequence
            self.stats.played += 1
            self._last_playout_at = arrival_time + self.playout_delay
            return True
        offset = _seq_delta(sequence, self._anchor_seq)
        playout_at = self._anchor_time + self.playout_delay + offset * self.frame_interval
        if arrival_time <= playout_at:
            self.stats.played += 1
            if self._last_playout_at is None or playout_at > self._last_playout_at:
                self._last_playout_at = playout_at
            return True
        self.stats.late_dropped += 1
        return False

    def backlog_at(self, now: float) -> int:
        """Frames accepted but not yet played out at sim time ``now``.

        The buffer classifies rather than stores frames, so depth is derived
        from the playout schedule: the furthest scheduled playout instant
        minus ``now``, in frame slots, clamped at zero. A read-only estimate
        for the metrics gauges.
        """
        if self._last_playout_at is None or self._last_playout_at <= now:
            return 0
        return int((self._last_playout_at - now) / self.frame_interval) + 1


def _seq_delta(sequence: int, anchor: int) -> int:
    """Wrap-aware distance from anchor to sequence (16-bit space)."""
    delta = (sequence - anchor) & 0xFFFF
    if delta >= 0x8000:
        delta -= 0x10000
    return delta
