"""Receiver-side jitter buffers and their playout-delay policies.

A dejitter buffer classifies arriving frames as playable or late: the
first packet (or, for the adaptive policy, the first packet of each
talk-spurt) anchors the playout schedule, and every subsequent frame must
arrive before its slot (anchor + playout_delay + k * frame_interval) or it
is discarded as late. This is conservative but standard for VoIP quality
studies, and exactly what the E-model's effective-loss input expects.

The playout delay itself comes from a pluggable :class:`JitterPolicy`:

* :class:`FixedPlayoutPolicy` — one delay for the whole stream (the
  legacy behaviour; byte-identical to the pre-policy buffer).
* :class:`AdaptivePlayoutPolicy` — re-targets the delay from the RFC 3550
  interarrival-jitter estimate within ``[min_delay, max_delay]`` bounds.

Every policy re-anchors its playout schedule at talk-spurt starts (RTP
marker bits) — silence gaps advance wall time without advancing sequence
numbers, so a spurt must restart the clock or play nothing — but only the
adaptive policy changes the *delay* at that point; it additionally repairs
delay spikes after a streak of late arrivals when no markers flow (VAD
off), and shrinks the delay back toward the target once a spike passes.

The buffer also accepts frames rebuilt from RFC 2198 redundancy via
:meth:`JitterBuffer.on_recovered` — those count in ``played`` *and* in the
separate ``recovered`` stat, never in ``received`` (they are not network
receipts), so the E-model can split network loss from effective loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Classification outcomes of one arrival (see :meth:`JitterBuffer.classify`).
PLAYED = "played"
LATE = "late"
DUPLICATE = "duplicate"


@dataclass
class JitterBufferStats:
    received: int = 0  #: raw network receipts fed to the buffer (incl. dups)
    played: int = 0  #: frames that made their playout slot (incl. recovered)
    late_dropped: int = 0  #: receipts that missed their slot
    duplicates: int = 0  #: re-receipts and stale replays outside the window
    recovered: int = 0  #: lost primaries rebuilt from RFC 2198 redundancy
    recovered_late: int = 0  #: redundant copies that missed the slot anyway
    retargets: int = 0  #: re-anchor events (talk-spurt starts, late-streak repairs)

    @property
    def unique(self) -> int:
        """Distinct frames actually received from the network."""
        return self.received - self.duplicates

    @property
    def late_ratio(self) -> float:
        return self.late_dropped / self.received if self.received else 0.0


class JitterPolicy:
    """Playout-delay policy interface of a :class:`JitterBuffer`."""

    name: str = "?"

    def initial_delay(self) -> float:
        """Playout delay applied at the first anchor."""
        raise NotImplementedError

    def target_delay(self, jitter_estimate: float) -> float:
        """Playout delay to adopt at a re-anchor opportunity."""
        raise NotImplementedError

    @property
    def adaptive(self) -> bool:
        """Whether the buffer may re-anchor mid-stream."""
        return False


@dataclass(frozen=True)
class FixedPlayoutPolicy(JitterPolicy):
    """One playout delay for the stream's whole life (legacy behaviour)."""

    delay: float = 0.06

    name = "fixed"

    def initial_delay(self) -> float:
        return self.delay

    def target_delay(self, jitter_estimate: float) -> float:
        return self.delay


@dataclass(frozen=True)
class AdaptivePlayoutPolicy(JitterPolicy):
    """Re-target playout delay from the interarrival-jitter estimate.

    The target is ``headroom + multiplier * jitter`` clamped to
    ``[min_delay, max_delay]`` — the classic "mean + k sigma" playout rule
    with the RFC 3550 jitter estimator standing in for sigma. Re-anchoring
    happens at talk-spurt starts (RTP marker bit) and, as spike repair for
    streams without markers, after ``resync_after`` consecutive late drops.
    The delay also comes back *down*: once the target has sat at least one
    frame below the current delay for ``shrink_after`` consecutive on-time
    frames, the buffer re-anchors to the target — without this a single
    delay spike would pin a marker-less stream at ``max_delay`` forever.
    """

    min_delay: float = 0.04
    max_delay: float = 0.24
    multiplier: float = 6.0
    headroom: float = 0.01
    start_delay: float = 0.06
    resync_after: int = 1
    shrink_after: int = 50

    name = "adaptive"

    def _clamp(self, delay: float) -> float:
        return max(self.min_delay, min(self.max_delay, delay))

    def initial_delay(self) -> float:
        return self._clamp(self.start_delay)

    def target_delay(self, jitter_estimate: float) -> float:
        return self._clamp(self.headroom + self.multiplier * jitter_estimate)

    @property
    def adaptive(self) -> bool:
        return True


@dataclass
class JitterBuffer:
    """Classifies arriving frames as playable, late, or duplicate.

    Duplicate suppression uses a sliding window of ``dedup_window``
    sequence numbers behind the highest extended sequence seen: a replayed
    packet older than the window is rejected as a duplicate instead of
    being replayed into the stream (the pre-window buffer wholesale-cleared
    its dedup set at 65536 entries, after which any replay was accepted and
    counted as played).
    """

    frame_interval: float
    playout_delay: float = 0.06
    policy: JitterPolicy | None = None
    dedup_window: int = 1024
    stats: JitterBufferStats = field(default_factory=JitterBufferStats)
    _anchor_time: float | None = None
    _anchor_ext: int | None = None
    _ext_high: int | None = None
    _seen: set[int] = field(default_factory=set)
    _last_playout_at: float | None = None
    _late_streak: int = 0
    _slack_streak: int = 0

    def __post_init__(self) -> None:
        if self.policy is None:
            self.policy = FixedPlayoutPolicy(self.playout_delay)
        self.playout_delay = self.policy.initial_delay()

    # -- arrivals -----------------------------------------------------------
    def on_packet(
        self,
        sequence: int,
        arrival_time: float,
        jitter: float = 0.0,
        marker: bool = False,
    ) -> bool:
        """Record an arrival; returns True if the frame makes its slot."""
        return self.classify(sequence, arrival_time, jitter, marker) == PLAYED

    def classify(
        self,
        sequence: int,
        arrival_time: float,
        jitter: float = 0.0,
        marker: bool = False,
    ) -> str:
        """Record an arrival and say what became of it.

        Returns :data:`PLAYED`, :data:`LATE` or :data:`DUPLICATE`.
        ``jitter`` is the receiver's current RFC 3550 interarrival-jitter
        estimate (seconds); adaptive policies read it at re-anchor points.
        ``marker`` is the RTP marker bit (talk-spurt start).
        """
        self.stats.received += 1
        ext = self._admit(sequence)
        if ext is None:
            self.stats.duplicates += 1
            return DUPLICATE
        policy = self.policy
        assert policy is not None
        resync = self._anchor_time is not None and (
            marker
            or (
                policy.adaptive
                and self._late_streak >= policy.resync_after  # type: ignore[attr-defined]
            )
        )
        if self._anchor_time is None or resync:
            if resync:
                self.stats.retargets += 1
                if policy.adaptive:
                    self.playout_delay = policy.target_delay(jitter)
            self._anchor_time = arrival_time
            self._anchor_ext = ext
            self._late_streak = 0
            self._slack_streak = 0
            self.stats.played += 1
            self._note_playout(arrival_time + self.playout_delay)
            return PLAYED
        assert self._anchor_ext is not None
        offset = ext - self._anchor_ext
        playout_at = self._anchor_time + self.playout_delay + offset * self.frame_interval
        if arrival_time <= playout_at:
            self.stats.played += 1
            self._late_streak = 0
            if policy.adaptive:
                self._maybe_shrink(ext, arrival_time, jitter)
            self._note_playout(playout_at)
            return PLAYED
        self.stats.late_dropped += 1
        self._late_streak += 1
        self._slack_streak = 0
        return LATE

    def on_recovered(self, sequence: int, arrival_time: float) -> bool:
        """A frame rebuilt from RFC 2198 redundancy (not a network receipt).

        Counted in ``played`` and ``recovered`` when it makes its playout
        slot; a copy of a frame already seen (primary arrived after all, or
        an earlier redundant copy won) is ignored. Returns True when the
        frame was recovered into the playout schedule.
        """
        ext = self._admit(sequence)
        if ext is None:
            return False
        if self._anchor_time is None:
            self._anchor_time = arrival_time
            self._anchor_ext = ext
            self.stats.played += 1
            self.stats.recovered += 1
            self._note_playout(arrival_time + self.playout_delay)
            return True
        assert self._anchor_ext is not None
        offset = ext - self._anchor_ext
        playout_at = self._anchor_time + self.playout_delay + offset * self.frame_interval
        if arrival_time <= playout_at:
            self.stats.played += 1
            self.stats.recovered += 1
            self._note_playout(playout_at)
            return True
        self.stats.recovered_late += 1
        return False

    # -- internals ----------------------------------------------------------
    def _maybe_shrink(self, ext: int, arrival_time: float, jitter: float) -> None:
        """Walk the playout delay back down after a spike has passed.

        Counts consecutive on-time frames whose policy target sits at least
        one frame below the current delay; after ``shrink_after`` of them
        the schedule re-anchors at this frame with the (smaller) target.
        """
        policy = self.policy
        assert policy is not None
        target = policy.target_delay(jitter)
        if target + self.frame_interval > self.playout_delay:
            self._slack_streak = 0
            return
        self._slack_streak += 1
        if self._slack_streak < policy.shrink_after:  # type: ignore[attr-defined]
            return
        self.stats.retargets += 1
        self.playout_delay = target
        self._anchor_time = arrival_time
        self._anchor_ext = ext
        self._slack_streak = 0

    def _admit(self, sequence: int) -> int | None:
        """Map a 16-bit sequence to its extended form; None if dup/stale.

        The extension unwraps the 16-bit space against the highest sequence
        seen, so playout offsets and the dedup window survive arbitrarily
        many 0xFFFF -> 0 rollovers. Entries more than ``dedup_window``
        behind the highest sequence are evicted lazily (amortized O(1));
        anything older that reappears is stale and rejected.
        """
        if self._ext_high is None:
            ext = sequence
            self._ext_high = ext
        else:
            ext = self._ext_high + _seq_delta(sequence, self._ext_high & 0xFFFF)
            if ext <= self._ext_high - self.dedup_window:
                return None  # stale replay from beyond the window
            if ext in self._seen:
                return None
            if ext > self._ext_high:
                self._ext_high = ext
        self._seen.add(ext)
        if len(self._seen) > 2 * self.dedup_window:
            floor = self._ext_high - self.dedup_window
            self._seen = {e for e in self._seen if e > floor}
        return ext

    def _note_playout(self, playout_at: float) -> None:
        if self._last_playout_at is None or playout_at > self._last_playout_at:
            self._last_playout_at = playout_at

    def backlog_at(self, now: float) -> int:
        """Frames accepted but not yet played out at sim time ``now``.

        The buffer classifies rather than stores frames, so depth is derived
        from the playout schedule: the furthest scheduled playout instant
        minus ``now``, in frame slots, clamped at zero. A read-only estimate
        for the metrics gauges.
        """
        if self._last_playout_at is None or self._last_playout_at <= now:
            return 0
        return int((self._last_playout_at - now) / self.frame_interval) + 1


def _seq_delta(sequence: int, anchor: int) -> int:
    """Wrap-aware distance from anchor to sequence (16-bit space)."""
    delta = (sequence - anchor) & 0xFFFF
    if delta >= 0x8000:
        delta -= 0x10000
    return delta
