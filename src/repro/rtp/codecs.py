"""Voice codec models.

Each codec defines its packetization schedule (frame interval and size)
and its ITU-T G.113 E-model impairment parameters (equipment impairment
``ie`` and packet-loss robustness ``bpl``), which the quality module uses
to score calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class Codec:
    name: str
    payload_type: int
    sample_rate: int
    frame_ms: float
    frame_bytes: int
    ie: float  # E-model equipment impairment (audio only)
    bpl: float  # E-model packet-loss robustness (audio only)
    kind: str = "audio"  # "audio" | "video"

    @property
    def frame_interval(self) -> float:
        return self.frame_ms / 1000.0

    @property
    def timestamp_increment(self) -> int:
        return int(self.sample_rate * self.frame_ms / 1000.0)

    @property
    def bitrate(self) -> float:
        return self.frame_bytes * 8 / self.frame_interval


#: G.711 mu-law: 64 kbit/s, 20 ms frames, robust concealment.
G711 = Codec(
    name="PCMU", payload_type=0, sample_rate=8000, frame_ms=20.0, frame_bytes=160,
    ie=0.0, bpl=34.0,
)

#: G.711 A-law (same properties, different companding).
G711A = Codec(
    name="PCMA", payload_type=8, sample_rate=8000, frame_ms=20.0, frame_bytes=160,
    ie=0.0, bpl=34.0,
)

#: G.729: 8 kbit/s, two 10 ms frames per 20 ms packet.
G729 = Codec(
    name="G729", payload_type=18, sample_rate=8000, frame_ms=20.0, frame_bytes=20,
    ie=11.0, bpl=19.0,
)

#: H.263 video: ~312 kbit/s at 30 fps, one packet per frame (simplified).
H263 = Codec(
    name="H263", payload_type=34, sample_rate=90000, frame_ms=33.0, frame_bytes=1300,
    ie=0.0, bpl=25.0, kind="video",
)

CODECS_BY_PAYLOAD_TYPE = {
    codec.payload_type: codec for codec in (G711, G711A, G729, H263)
}
CODECS_BY_NAME = {codec.name: codec for codec in (G711, G711A, G729, H263)}

# -- non-codec payload types carried in the same RTP streams (§5j) ----------

#: RFC 3389 comfort noise (static payload type 13): one noise-level byte
#: sent at each talk-spurt end so the far side can fill silence.
COMFORT_NOISE_PAYLOAD_TYPE = 13

#: RFC 2198 redundant audio ("red"). Dynamic payload type by the RFC; this
#: simulation pins it to 96, the first dynamic slot, on both ends.
RED_PAYLOAD_TYPE = 96

#: RFC 2833/4733 telephone events (DTMF). Pinned to the conventional 101.
TELEPHONE_EVENT_PAYLOAD_TYPE = 101

#: Payload types that ride inside a voice stream without being codecs —
#: SDP negotiation must not mistake them for the stream's codec.
AUXILIARY_PAYLOAD_TYPES = frozenset(
    {COMFORT_NOISE_PAYLOAD_TYPE, RED_PAYLOAD_TYPE, TELEPHONE_EVENT_PAYLOAD_TYPE}
)


def codec_for_payload_type(payload_type: int) -> Codec:
    codec = CODECS_BY_PAYLOAD_TYPE.get(payload_type)
    if codec is None:
        raise ConfigError(f"unknown RTP payload type {payload_type}")
    return codec
