"""RTP packet format (RFC 3550, fixed 12-byte header, no CSRC/extensions).

The payload of simulated voice frames embeds the send timestamp in its
first 8 bytes so the receiver can measure true one-way (mouth-to-ear)
delay; the rest is zero filler up to the codec frame size. This is a
measurement aid of the simulation, not a protocol deviation — the bytes on
air have exactly the real frame size.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import CodecError

RTP_VERSION = 2
RTP_HEADER_BYTES = 12

_HEADER = struct.Struct("!BBHII")
_TS = struct.Struct("!d")


@dataclass
class RtpPacket:
    payload_type: int
    sequence: int
    timestamp: int
    ssrc: int
    payload: bytes
    marker: bool = False

    @property
    def size(self) -> int:
        return RTP_HEADER_BYTES + len(self.payload)

    def encode(self) -> bytes:
        first = (RTP_VERSION << 6)  # no padding, no extension, zero CSRCs
        second = (0x80 if self.marker else 0) | (self.payload_type & 0x7F)
        header = _HEADER.pack(
            first, second, self.sequence & 0xFFFF, self.timestamp & 0xFFFFFFFF, self.ssrc
        )
        return header + self.payload


def decode_rtp(data: bytes) -> RtpPacket:
    if len(data) < RTP_HEADER_BYTES:
        raise CodecError("RTP packet too short")
    first, second, sequence, timestamp, ssrc = _HEADER.unpack_from(data)
    version = first >> 6
    if version != RTP_VERSION:
        raise CodecError(f"unsupported RTP version {version}")
    return RtpPacket(
        payload_type=second & 0x7F,
        marker=bool(second & 0x80),
        sequence=sequence,
        timestamp=timestamp,
        ssrc=ssrc,
        payload=data[RTP_HEADER_BYTES:],
    )


def make_voice_payload(frame_bytes: int, send_time: float) -> bytes:
    """A codec frame of ``frame_bytes`` with the send time stamped inside."""
    if frame_bytes < _TS.size:
        raise CodecError(f"frame too small to carry a timestamp: {frame_bytes}")
    return _TS.pack(send_time) + bytes(frame_bytes - _TS.size)


def extract_send_time(payload: bytes) -> float:
    if len(payload) < _TS.size:
        raise CodecError("payload too short for a send timestamp")
    return _TS.unpack_from(payload)[0]
