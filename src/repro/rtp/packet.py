"""RTP packet format (RFC 3550, fixed 12-byte header, no CSRC/extensions).

The payload of simulated voice frames embeds the send timestamp in its
first 8 bytes so the receiver can measure true one-way (mouth-to-ear)
delay; the rest is zero filler up to the codec frame size. This is a
measurement aid of the simulation, not a protocol deviation — the bytes on
air have exactly the real frame size.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import CodecError

RTP_VERSION = 2
RTP_HEADER_BYTES = 12

_HEADER = struct.Struct("!BBHII")
_TS = struct.Struct("!d")


@dataclass
class RtpPacket:
    payload_type: int
    sequence: int
    timestamp: int
    ssrc: int
    payload: bytes
    marker: bool = False

    @property
    def size(self) -> int:
        return RTP_HEADER_BYTES + len(self.payload)

    def encode(self) -> bytes:
        first = (RTP_VERSION << 6)  # no padding, no extension, zero CSRCs
        second = (0x80 if self.marker else 0) | (self.payload_type & 0x7F)
        header = _HEADER.pack(
            first, second, self.sequence & 0xFFFF, self.timestamp & 0xFFFFFFFF, self.ssrc
        )
        return header + self.payload


def decode_rtp(data: bytes) -> RtpPacket:
    if len(data) < RTP_HEADER_BYTES:
        raise CodecError("RTP packet too short")
    first, second, sequence, timestamp, ssrc = _HEADER.unpack_from(data)
    version = first >> 6
    if version != RTP_VERSION:
        raise CodecError(f"unsupported RTP version {version}")
    return RtpPacket(
        payload_type=second & 0x7F,
        marker=bool(second & 0x80),
        sequence=sequence,
        timestamp=timestamp,
        ssrc=ssrc,
        payload=data[RTP_HEADER_BYTES:],
    )


def make_voice_payload(frame_bytes: int, send_time: float) -> bytes:
    """A codec frame of ``frame_bytes`` with the send time stamped inside."""
    if frame_bytes < _TS.size:
        raise CodecError(f"frame too small to carry a timestamp: {frame_bytes}")
    return _TS.pack(send_time) + bytes(frame_bytes - _TS.size)


def extract_send_time(payload: bytes) -> float:
    if len(payload) < _TS.size:
        raise CodecError("payload too short for a send timestamp")
    return _TS.unpack_from(payload)[0]


# ---------------------------------------------------------------------------
# RFC 2198 redundant audio ("red")
# ---------------------------------------------------------------------------
#
# A red payload is a list of blocks, oldest secondary first, primary last.
# Each secondary carries a 4-byte header (F=1 | 7-bit PT | 14-bit timestamp
# offset | 10-bit length); the primary carries a 1-byte header (F=0 | PT)
# and runs to the end of the payload.

_RED_MAX_TS_OFFSET = (1 << 14) - 1
_RED_MAX_BLOCK_LEN = (1 << 10) - 1


@dataclass(frozen=True)
class RedBlock:
    """One encoding inside an RFC 2198 payload (primary or secondary)."""

    payload_type: int
    timestamp_offset: int  # RTP timestamp units behind the packet timestamp
    payload: bytes


def encode_red(blocks: list[RedBlock]) -> bytes:
    """Encode blocks (oldest secondary first, primary LAST) per RFC 2198."""
    if not blocks:
        raise CodecError("red payload needs at least a primary block")
    parts = []
    for block in blocks[:-1]:
        if not 0 <= block.timestamp_offset <= _RED_MAX_TS_OFFSET:
            raise CodecError(
                f"red timestamp offset {block.timestamp_offset} exceeds 14 bits"
            )
        if len(block.payload) > _RED_MAX_BLOCK_LEN:
            raise CodecError(f"red block of {len(block.payload)} bytes exceeds 10 bits")
        word = (
            (1 << 31)
            | ((block.payload_type & 0x7F) << 24)
            | (block.timestamp_offset << 10)
            | len(block.payload)
        )
        parts.append(word.to_bytes(4, "big"))
    primary = blocks[-1]
    parts.append(bytes([primary.payload_type & 0x7F]))
    parts.extend(block.payload for block in blocks)
    return b"".join(parts)


def decode_red(data: bytes) -> list[RedBlock]:
    """Decode an RFC 2198 payload into blocks; the primary is LAST."""
    headers: list[tuple[int, int, int]] = []  # (payload_type, ts_offset, length)
    offset = 0
    while True:
        if offset >= len(data):
            raise CodecError("red payload truncated in its block headers")
        first = data[offset]
        if not first & 0x80:  # F=0: the primary's 1-byte header
            headers.append((first & 0x7F, 0, -1))
            offset += 1
            break
        if offset + 4 > len(data):
            raise CodecError("red payload truncated in a secondary header")
        word = int.from_bytes(data[offset : offset + 4], "big")
        headers.append(((word >> 24) & 0x7F, (word >> 10) & 0x3FFF, word & 0x3FF))
        offset += 4
    blocks: list[RedBlock] = []
    for payload_type, ts_offset, length in headers:
        if length < 0:  # primary: everything that remains
            payload = data[offset:]
            offset = len(data)
        else:
            if offset + length > len(data):
                raise CodecError("red payload shorter than its block headers claim")
            payload = data[offset : offset + length]
            offset += length
        blocks.append(RedBlock(payload_type, ts_offset, payload))
    return blocks


# ---------------------------------------------------------------------------
# RFC 3389 comfort noise and RFC 2833 telephone events
# ---------------------------------------------------------------------------

_DTMF = struct.Struct("!BBH")

#: DTMF digit -> RFC 2833 event code.
DTMF_EVENTS = {
    **{str(d): d for d in range(10)},
    "*": 10,
    "#": 11,
    "A": 12,
    "B": 13,
    "C": 14,
    "D": 15,
}
_DTMF_DIGITS = {code: digit for digit, code in DTMF_EVENTS.items()}


def make_comfort_noise_payload(level: int = 70) -> bytes:
    """RFC 3389 CN payload: one absolute noise-level byte (-dBov)."""
    return bytes([level & 0x7F])


def make_dtmf_payload(digit: str, duration_units: int, end: bool = True, volume: int = 10) -> bytes:
    """RFC 2833 telephone-event payload for one DTMF digit."""
    event = DTMF_EVENTS.get(digit)
    if event is None:
        raise CodecError(f"not a DTMF digit: {digit!r}")
    flags = (0x80 if end else 0) | (volume & 0x3F)
    return _DTMF.pack(event, flags, duration_units & 0xFFFF)


def decode_dtmf_payload(data: bytes) -> tuple[str, bool, int]:
    """Decode a telephone-event payload -> (digit, end, duration_units)."""
    if len(data) < _DTMF.size:
        raise CodecError("telephone-event payload too short")
    event, flags, duration = _DTMF.unpack_from(data)
    digit = _DTMF_DIGITS.get(event)
    if digit is None:
        raise CodecError(f"unknown telephone event code {event}")
    return digit, bool(flags & 0x80), duration
