"""RTP media transport and call quality measurement.

Codec-paced RTP streams over the simulated network, a receiver-side jitter
buffer with pluggable playout policies, RFC 2198 redundancy, silence
suppression with comfort noise, RFC 2833 telephone events, and ITU-T G.107
E-model scoring (R factor / MOS) — the substitute for the paper's live
audio path on laptops and iPAQ handhelds.
"""

from repro.rtp.codecs import (
    CODECS_BY_NAME,
    CODECS_BY_PAYLOAD_TYPE,
    COMFORT_NOISE_PAYLOAD_TYPE,
    Codec,
    G711,
    G711A,
    G729,
    H263,
    RED_PAYLOAD_TYPE,
    TELEPHONE_EVENT_PAYLOAD_TYPE,
    codec_for_payload_type,
)
from repro.rtp.jitter import (
    AdaptivePlayoutPolicy,
    FixedPlayoutPolicy,
    JitterBuffer,
    JitterBufferStats,
    JitterPolicy,
)
from repro.rtp.packet import (
    DTMF_EVENTS,
    RTP_HEADER_BYTES,
    RedBlock,
    RtpPacket,
    decode_dtmf_payload,
    decode_red,
    decode_rtp,
    encode_red,
    extract_send_time,
    make_comfort_noise_payload,
    make_dtmf_payload,
    make_voice_payload,
)
from repro.rtp.quality import (
    CallQuality,
    delay_impairment,
    loss_impairment,
    mos_from_r,
    r_factor,
    score_stream,
)
from repro.rtp.session import MAX_REDUNDANCY, RtpSession

__all__ = [
    "AdaptivePlayoutPolicy",
    "CODECS_BY_NAME",
    "CODECS_BY_PAYLOAD_TYPE",
    "COMFORT_NOISE_PAYLOAD_TYPE",
    "CallQuality",
    "Codec",
    "DTMF_EVENTS",
    "FixedPlayoutPolicy",
    "G711",
    "G711A",
    "G729",
    "H263",
    "JitterBuffer",
    "JitterBufferStats",
    "JitterPolicy",
    "MAX_REDUNDANCY",
    "RED_PAYLOAD_TYPE",
    "RTP_HEADER_BYTES",
    "RedBlock",
    "RtpPacket",
    "RtpSession",
    "TELEPHONE_EVENT_PAYLOAD_TYPE",
    "codec_for_payload_type",
    "decode_dtmf_payload",
    "decode_red",
    "decode_rtp",
    "delay_impairment",
    "encode_red",
    "extract_send_time",
    "loss_impairment",
    "make_comfort_noise_payload",
    "make_dtmf_payload",
    "make_voice_payload",
    "mos_from_r",
    "r_factor",
    "score_stream",
]
