"""RTP media transport and call quality measurement.

Codec-paced RTP streams over the simulated network, a receiver-side jitter
buffer, and ITU-T G.107 E-model scoring (R factor / MOS) — the substitute
for the paper's live audio path on laptops and iPAQ handhelds.
"""

from repro.rtp.codecs import (
    CODECS_BY_NAME,
    CODECS_BY_PAYLOAD_TYPE,
    Codec,
    G711,
    G711A,
    G729,
    H263,
    codec_for_payload_type,
)
from repro.rtp.jitter import JitterBuffer, JitterBufferStats
from repro.rtp.packet import (
    RTP_HEADER_BYTES,
    RtpPacket,
    decode_rtp,
    extract_send_time,
    make_voice_payload,
)
from repro.rtp.quality import (
    CallQuality,
    delay_impairment,
    loss_impairment,
    mos_from_r,
    r_factor,
    score_stream,
)
from repro.rtp.session import RtpSession

__all__ = [
    "CODECS_BY_NAME",
    "CODECS_BY_PAYLOAD_TYPE",
    "CallQuality",
    "Codec",
    "G711",
    "G711A",
    "G729",
    "H263",
    "JitterBuffer",
    "JitterBufferStats",
    "RTP_HEADER_BYTES",
    "RtpPacket",
    "RtpSession",
    "codec_for_payload_type",
    "decode_rtp",
    "delay_impairment",
    "extract_send_time",
    "loss_impairment",
    "make_voice_payload",
    "mos_from_r",
    "r_factor",
    "score_stream",
]
