"""RTP sessions: codec-paced senders and measuring receivers.

An :class:`RtpSession` binds one local UDP port, streams codec frames to
the negotiated remote endpoint and measures the inbound stream (delay from
embedded send timestamps, RFC 3550 interarrival jitter, losses, and
jitter-buffer late drops), producing a :class:`CallQuality` score.

Beyond plain voice the session speaks three media-plane extensions (§5j):

* **RFC 2198 redundancy** (``redundancy=N``): every voice packet carries
  the previous N frames as secondary encodings under the "red" payload
  type; the receiver rebuilds lost primaries from later arrivals, counted
  separately from network receipts.
* **Silence suppression** (``vad=True``): a two-state talk-spurt model
  driven by a private seeded RNG gates the sender. A spurt end emits one
  RFC 3389 comfort-noise frame; a spurt start sets the RTP marker bit so
  the receiver's jitter buffer re-anchors its playout schedule.
* **RFC 2833 telephone events**: :meth:`RtpSession.send_dtmf` interleaves
  DTMF digit packets with the voice stream.

All session randomness (initial sequence number, talk-spurt durations)
comes from private integer-seeded RNGs pinned by (scenario seed, node id,
port) — never from the shared ``sim.rng`` — so constructing a media
session does not perturb the global seeded stream.
"""

from __future__ import annotations

import random
from collections import deque

from repro.errors import CodecError, ConfigError
from repro.globalstate import registry
from repro.netsim.node import Node
from repro.rtp.codecs import (
    COMFORT_NOISE_PAYLOAD_TYPE,
    Codec,
    G711,
    RED_PAYLOAD_TYPE,
    TELEPHONE_EVENT_PAYLOAD_TYPE,
)
from repro.rtp.jitter import DUPLICATE, JitterBuffer, JitterPolicy, _seq_delta
from repro.rtp.packet import (
    DTMF_EVENTS,
    RedBlock,
    RtpPacket,
    decode_dtmf_payload,
    decode_red,
    decode_rtp,
    encode_red,
    extract_send_time,
    make_comfort_noise_payload,
    make_dtmf_payload,
    make_voice_payload,
)
from repro.rtp.quality import CallQuality, score_stream

_ssrc_counter = registry.counter("rtp.session.ssrc", start=0x1000)

#: Most secondary encodings one packet may carry (bandwidth sanity bound).
MAX_REDUNDANCY = 4

#: Talk-spurt on/off model: exponential holding times, telephony-ish means.
_TALK_SPURT_MEAN = 1.0
_SILENCE_MEAN = 1.5


def _session_rng(node: Node, local_port: int, salt: int) -> random.Random:
    """A private RNG pinned by (scenario seed, node id, port, salt).

    Same rationale as ``node_backoff_rng``: drawing from the shared
    ``sim.rng`` would make media-session construction order perturb every
    later draw in the scenario. Integer arithmetic only, so the seed is
    stable across interpreter processes.
    """
    seed = ((node.sim.seed * 1_000_003 + node.node_id) * 131_071 + local_port) * 8_191 + salt
    return random.Random(seed)


class RtpSession:
    """One bidirectional voice stream endpoint."""

    def __init__(
        self,
        node: Node,
        local_port: int,
        remote: tuple[str, int] | None = None,
        codec: Codec = G711,
        playout_delay: float = 0.06,
        jitter_policy: JitterPolicy | None = None,
        redundancy: int = 0,
        vad: bool = False,
    ) -> None:
        if not 0 <= redundancy <= MAX_REDUNDANCY:
            raise ConfigError(f"redundancy must be 0..{MAX_REDUNDANCY}, got {redundancy}")
        self.node = node
        self.sim = node.sim
        self.codec = codec
        self.local_port = local_port
        self.remote = remote
        self.redundancy = redundancy
        self.vad = vad
        self.ssrc = _ssrc_counter.next()
        self._socket = node.bind(local_port, self._on_datagram)
        self._send_task = None
        self._sequence = _session_rng(node, local_port, 0).randrange(0, 0x8000)
        self._timestamp = 0
        self.packets_sent = 0
        # Sender-side talk-spurt / redundancy state.
        self._spurt_rng = _session_rng(node, local_port, 1)
        self._talking = True
        self._phase_until = 0.0
        self._marker_pending = True
        self._cn_due = False
        self._red_history: deque[tuple[int, bytes]] = deque(maxlen=max(1, redundancy))
        # Receiver-side measurement state.
        self.jitter_buffer = JitterBuffer(
            frame_interval=codec.frame_interval,
            playout_delay=playout_delay,
            policy=jitter_policy,
        )
        self.delays: list[float] = []
        self.dtmf_received: list[str] = []
        self.cn_received = 0
        self._jitter = 0.0
        self._last_transit: float | None = None
        self._first_ext: int | None = None
        self._ext_high: int | None = None
        # Inbound-silence bookkeeping for the §5k handover trigger: when the
        # last datagram arrived, and the widest inter-arrival gap seen.
        self.last_rx_at: float | None = None
        self.max_rx_gap = 0.0
        self.closed = False
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "rtp.session_open",
                node.ip,
                port=local_port,
                codec=codec.name,
                policy=self.jitter_buffer.policy.name,  # type: ignore[union-attr]
                redundancy=redundancy,
                vad=vad,
            )

    # -- sender ----------------------------------------------------------------
    def start_sending(self, remote: tuple[str, int] | None = None) -> None:
        if remote is not None:
            self.remote = remote
        if self.remote is None:
            raise CodecError("RTP session has no remote endpoint to stream to")
        if self._send_task is None:
            if self.vad:
                self._phase_until = self.sim.now + self._spurt_rng.expovariate(
                    1.0 / _TALK_SPURT_MEAN
                )
            self._send_task = self.sim.schedule_periodic(
                self.codec.frame_interval, self._send_frame
            )

    def stop_sending(self) -> None:
        if self._send_task is not None:
            self._send_task.stop()
            self._send_task = None

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.stop_sending()
            self._socket.close()
            tracer = self.sim.tracer
            if tracer is not None:
                stats = self.jitter_buffer.stats
                tracer.emit(
                    "rtp.session_close",
                    self.node.ip,
                    port=self.local_port,
                    sent=self.packets_sent,
                    received=stats.unique,
                    played=stats.played,
                    recovered=stats.recovered,
                )

    def send_dtmf(self, digits: str, duration: float = 0.08) -> None:
        """Send DTMF ``digits`` as RFC 2833 telephone events, one per ``duration``."""
        if self.remote is None:
            raise CodecError("RTP session has no remote endpoint for DTMF")
        for digit in digits:
            if digit not in DTMF_EVENTS:
                raise CodecError(f"not a DTMF digit: {digit!r}")
        for index, digit in enumerate(digits):
            self.sim.schedule(index * duration, self._send_dtmf_event, digit, duration)

    def _send_dtmf_event(self, digit: str, duration: float) -> None:
        if self.closed or self.remote is None:
            return
        units = int(duration * self.codec.sample_rate)
        self._transmit(
            TELEPHONE_EVENT_PAYLOAD_TYPE,
            make_dtmf_payload(digit, units, end=True),
            marker=True,
        )

    def _send_frame(self) -> None:
        assert self.remote is not None
        now = self.sim.now
        self._update_spurt(now)
        if self._talking:
            self._send_voice(now)
        elif self._cn_due:
            self._cn_due = False
            self._transmit(
                COMFORT_NOISE_PAYLOAD_TYPE, make_comfort_noise_payload(), marker=False
            )
        # The RTP timestamp tracks the sampling clock, so it advances every
        # frame interval even across suppressed (silent) frames.
        self._timestamp = (self._timestamp + self.codec.timestamp_increment) & 0xFFFFFFFF

    def _update_spurt(self, now: float) -> None:
        if not self.vad:
            return
        while now >= self._phase_until:
            start = self._phase_until
            self._talking = not self._talking
            mean = _TALK_SPURT_MEAN if self._talking else _SILENCE_MEAN
            self._phase_until = start + self._spurt_rng.expovariate(1.0 / mean)
            if self._talking:
                self._marker_pending = True
                self._red_history.clear()
            else:
                self._cn_due = True
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(
                    "rtp.spurt", self.node.ip, port=self.local_port, talking=self._talking
                )

    def _send_voice(self, now: float) -> None:
        payload = make_voice_payload(self.codec.frame_bytes, now)
        marker = self._marker_pending
        self._marker_pending = False
        if self.redundancy > 0:
            blocks = [
                RedBlock(
                    payload_type=self.codec.payload_type,
                    timestamp_offset=(self._timestamp - past_ts) & 0xFFFFFFFF,
                    payload=past_payload,
                )
                for past_ts, past_payload in self._red_history
            ]
            blocks.append(RedBlock(self.codec.payload_type, 0, payload))
            self._red_history.append((self._timestamp, payload))
            self._transmit(RED_PAYLOAD_TYPE, encode_red(blocks), marker)
        else:
            self._transmit(self.codec.payload_type, payload, marker)

    def _transmit(self, payload_type: int, payload: bytes, marker: bool) -> None:
        assert self.remote is not None
        packet = RtpPacket(
            payload_type=payload_type,
            sequence=self._sequence,
            timestamp=self._timestamp,
            ssrc=self.ssrc,
            payload=payload,
            marker=marker,
        )
        self._sequence = (self._sequence + 1) & 0xFFFF
        self.packets_sent += 1
        self._socket.send(self.remote[0], self.remote[1], packet.encode())

    # -- receiver -----------------------------------------------------------------
    def _on_datagram(self, data: bytes, src_ip: str, sport: int) -> None:
        if self.closed:
            return
        try:
            packet = decode_rtp(data)
        except CodecError:
            self.node.stats.increment("rtp.bad_packets")
            return
        now = self.sim.now
        if self.last_rx_at is not None:
            gap = now - self.last_rx_at
            if gap > self.max_rx_gap:
                self.max_rx_gap = gap
        self.last_rx_at = now
        if packet.payload_type == RED_PAYLOAD_TYPE:
            self._receive_red(packet, now)
        elif packet.payload_type == COMFORT_NOISE_PAYLOAD_TYPE:
            self._receive_cn(packet, now)
        elif packet.payload_type == TELEPHONE_EVENT_PAYLOAD_TYPE:
            self._receive_dtmf(packet, now)
        else:
            self._receive_voice(packet, packet.payload, now)

    def _receive_red(self, packet: RtpPacket, now: float) -> None:
        try:
            blocks = decode_red(packet.payload)
        except CodecError:
            self.node.stats.increment("rtp.bad_packets")
            return
        self._receive_voice(packet, blocks[-1].payload, now)
        increment = self.codec.timestamp_increment
        for block in blocks[:-1]:
            if increment <= 0 or block.timestamp_offset <= 0:
                continue
            steps = round(block.timestamp_offset / increment)
            sequence = (packet.sequence - steps) & 0xFFFF
            if self.jitter_buffer.on_recovered(sequence, now):
                self.node.stats.increment("rtp.recovered")
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.emit(
                        "rtp.recovered", self.node.ip, port=self.local_port, seq=sequence
                    )

    def _receive_voice(self, packet: RtpPacket, payload: bytes, now: float) -> None:
        self._note_sequence(packet.sequence)
        delay_before = self.jitter_buffer.playout_delay
        outcome = self.jitter_buffer.classify(
            packet.sequence, now, jitter=self._jitter, marker=packet.marker
        )
        if self.jitter_buffer.playout_delay != delay_before:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(
                    "rtp.retarget",
                    self.node.ip,
                    port=self.local_port,
                    playout_delay=self.jitter_buffer.playout_delay,
                )
        if outcome == DUPLICATE:
            return
        try:
            send_time = extract_send_time(payload)
        except CodecError:
            send_time = now
        self.delays.append(max(0.0, now - send_time))
        # RFC 3550 interarrival jitter estimate (unique receipts only).
        transit = now - packet.timestamp / self.codec.sample_rate
        if self._last_transit is not None:
            deviation = abs(transit - self._last_transit)
            self._jitter += (deviation - self._jitter) / 16.0
        self._last_transit = transit

    def _receive_cn(self, packet: RtpPacket, now: float) -> None:
        self._note_sequence(packet.sequence)
        if self.jitter_buffer.classify(packet.sequence, now, jitter=self._jitter) != DUPLICATE:
            self.cn_received += 1
            self.node.stats.increment("rtp.cn_frames")

    def _receive_dtmf(self, packet: RtpPacket, now: float) -> None:
        self._note_sequence(packet.sequence)
        if self.jitter_buffer.classify(packet.sequence, now, jitter=self._jitter) == DUPLICATE:
            return
        try:
            digit, end, _duration = decode_dtmf_payload(packet.payload)
        except CodecError:
            self.node.stats.increment("rtp.bad_packets")
            return
        if end:
            self.dtmf_received.append(digit)
            self.node.stats.increment("rtp.dtmf_events")
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit("rtp.dtmf", self.node.ip, port=self.local_port, digit=digit)

    def _note_sequence(self, sequence: int) -> None:
        """Track the received sequence range in extended (unwrapped) form."""
        if self._ext_high is None:
            self._first_ext = self._ext_high = sequence
            return
        ext = self._ext_high + _seq_delta(sequence, self._ext_high & 0xFFFF)
        if ext > self._ext_high:
            self._ext_high = ext
        assert self._first_ext is not None
        if ext < self._first_ext:
            self._first_ext = ext

    # -- measurement ---------------------------------------------------------------
    @property
    def packets_received(self) -> int:
        """Distinct frames received from the network (duplicates excluded)."""
        return self.jitter_buffer.stats.unique

    @property
    def packets_expected(self) -> int:
        if self._first_ext is None or self._ext_high is None:
            return 0
        return self._ext_high - self._first_ext + 1

    @property
    def packets_recovered(self) -> int:
        """Lost primaries rebuilt from RFC 2198 redundancy."""
        return self.jitter_buffer.stats.recovered

    @property
    def interarrival_jitter(self) -> float:
        return self._jitter

    def quality(self, expected_override: int | None = None) -> CallQuality:
        """Score the received stream with the E-model."""
        expected = expected_override if expected_override is not None else self.packets_expected
        return score_stream(
            codec=self.codec,
            packets_expected=expected,
            packets_received=self.packets_received,
            packets_played=self.jitter_buffer.stats.played,
            delays=self.delays,
            jitter=self._jitter,
            playout_delay=self.jitter_buffer.playout_delay,
            packets_recovered=self.packets_recovered,
        )


def _seq_greater(a: int, b: int) -> bool:
    return ((a - b) & 0xFFFF) < 0x8000 and a != b
