"""RTP sessions: codec-paced senders and measuring receivers.

An :class:`RtpSession` binds one local UDP port, streams codec frames to
the negotiated remote endpoint and measures the inbound stream (delay from
embedded send timestamps, RFC 3550 interarrival jitter, losses, and
jitter-buffer late drops), producing a :class:`CallQuality` score.
"""

from __future__ import annotations

from repro.errors import CodecError
from repro.globalstate import registry
from repro.netsim.node import Node
from repro.rtp.codecs import Codec, G711
from repro.rtp.jitter import JitterBuffer
from repro.rtp.packet import (
    RtpPacket,
    decode_rtp,
    extract_send_time,
    make_voice_payload,
)
from repro.rtp.quality import CallQuality, score_stream

_ssrc_counter = registry.counter("rtp.session.ssrc", start=0x1000)


class RtpSession:
    """One bidirectional voice stream endpoint."""

    def __init__(
        self,
        node: Node,
        local_port: int,
        remote: tuple[str, int] | None = None,
        codec: Codec = G711,
        playout_delay: float = 0.06,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.codec = codec
        self.local_port = local_port
        self.remote = remote
        self.ssrc = _ssrc_counter.next()
        self._socket = node.bind(local_port, self._on_datagram)
        self._send_task = None
        self._sequence = self.sim.rng.randrange(0, 0x8000) if hasattr(self.sim, "rng") else 0
        self._timestamp = 0
        self.packets_sent = 0
        # Receiver-side measurement state.
        self.jitter_buffer = JitterBuffer(
            frame_interval=codec.frame_interval, playout_delay=playout_delay
        )
        self.delays: list[float] = []
        self._jitter = 0.0
        self._last_transit: float | None = None
        self._first_seq: int | None = None
        self._highest_seq: int | None = None
        self.closed = False

    # -- sender ----------------------------------------------------------------
    def start_sending(self, remote: tuple[str, int] | None = None) -> None:
        if remote is not None:
            self.remote = remote
        if self.remote is None:
            raise CodecError("RTP session has no remote endpoint to stream to")
        if self._send_task is None:
            self._send_task = self.sim.schedule_periodic(
                self.codec.frame_interval, self._send_frame
            )

    def stop_sending(self) -> None:
        if self._send_task is not None:
            self._send_task.stop()
            self._send_task = None

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.stop_sending()
            self._socket.close()

    def _send_frame(self) -> None:
        assert self.remote is not None
        packet = RtpPacket(
            payload_type=self.codec.payload_type,
            sequence=self._sequence,
            timestamp=self._timestamp,
            ssrc=self.ssrc,
            payload=make_voice_payload(self.codec.frame_bytes, self.sim.now),
            marker=self.packets_sent == 0,
        )
        self._sequence = (self._sequence + 1) & 0xFFFF
        self._timestamp = (self._timestamp + self.codec.timestamp_increment) & 0xFFFFFFFF
        self.packets_sent += 1
        self._socket.send(self.remote[0], self.remote[1], packet.encode())

    # -- receiver -----------------------------------------------------------------
    def _on_datagram(self, data: bytes, src_ip: str, sport: int) -> None:
        if self.closed:
            return
        try:
            packet = decode_rtp(data)
        except CodecError:
            self.node.stats.increment("rtp.bad_packets")
            return
        now = self.sim.now
        try:
            send_time = extract_send_time(packet.payload)
        except CodecError:
            send_time = now
        delay = max(0.0, now - send_time)
        self.delays.append(delay)
        # RFC 3550 interarrival jitter estimate.
        transit = now - packet.timestamp / self.codec.sample_rate
        if self._last_transit is not None:
            deviation = abs(transit - self._last_transit)
            self._jitter += (deviation - self._jitter) / 16.0
        self._last_transit = transit
        if self._first_seq is None:
            self._first_seq = packet.sequence
            self._highest_seq = packet.sequence
        else:
            assert self._highest_seq is not None
            if _seq_greater(packet.sequence, self._highest_seq):
                self._highest_seq = packet.sequence
        self.jitter_buffer.on_packet(packet.sequence, now)

    # -- measurement ---------------------------------------------------------------
    @property
    def packets_received(self) -> int:
        return self.jitter_buffer.stats.received

    @property
    def packets_expected(self) -> int:
        if self._first_seq is None or self._highest_seq is None:
            return 0
        return ((self._highest_seq - self._first_seq) & 0xFFFF) + 1

    @property
    def interarrival_jitter(self) -> float:
        return self._jitter

    def quality(self, expected_override: int | None = None) -> CallQuality:
        """Score the received stream with the E-model."""
        expected = expected_override if expected_override is not None else self.packets_expected
        return score_stream(
            codec=self.codec,
            packets_expected=expected,
            packets_received=self.packets_received,
            packets_played=self.jitter_buffer.stats.played,
            delays=self.delays,
            jitter=self._jitter,
        )


def _seq_greater(a: int, b: int) -> bool:
    return ((a - b) & 0xFFFF) < 0x8000 and a != b
