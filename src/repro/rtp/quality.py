"""Call quality scoring with the ITU-T G.107 E-model.

Computes the transmission rating factor R from one-way delay, packet loss
(network loss + jitter-buffer late drops) and codec impairments, then maps
R to a MOS estimate. This is the metric that decides whether VoIP over a
given MANET path is actually usable — the application-level success
criterion behind the paper's scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtp.codecs import Codec

#: Default basic signal-to-noise rating (G.107 defaults collapse to this).
R0 = 93.2


def delay_impairment(one_way_delay_s: float) -> float:
    """Id: impairment from one-way (mouth-to-ear) delay, G.107 approximation."""
    d = one_way_delay_s * 1000.0  # ms
    impairment = 0.024 * d
    if d > 177.3:
        impairment += 0.11 * (d - 177.3)
    return impairment


def loss_impairment(codec: Codec, loss_ratio: float) -> float:
    """Ie-eff: codec impairment inflated by packet loss (G.107 eq. 7-29)."""
    ppl = max(0.0, min(1.0, loss_ratio)) * 100.0
    return codec.ie + (95.0 - codec.ie) * ppl / (ppl + codec.bpl)


def r_factor(codec: Codec, one_way_delay_s: float, loss_ratio: float) -> float:
    """The E-model transmission rating factor R (0..~93)."""
    r = R0 - delay_impairment(one_way_delay_s) - loss_impairment(codec, loss_ratio)
    return max(0.0, min(100.0, r))


def mos_from_r(r: float) -> float:
    """Map R to estimated MOS (G.107 annex B)."""
    if r <= 0:
        return 1.0
    if r >= 100:
        return 4.5
    mos = 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6
    # The G.107 cubic dips slightly below 1 for very small R; clamp to the
    # MOS scale as the recommendation prescribes.
    return max(1.0, min(4.5, mos))


@dataclass
class CallQuality:
    """Scored quality of one received media stream."""

    codec_name: str
    packets_expected: int
    packets_received: int
    packets_played: int
    mean_delay: float
    max_delay: float
    mean_jitter: float
    network_loss_ratio: float
    effective_loss_ratio: float
    r: float
    mos: float
    playout_delay: float = 0.0
    packets_recovered: int = 0

    @property
    def is_acceptable(self) -> bool:
        """MOS >= 3.6 is the usual 'users satisfied' threshold."""
        return self.mos >= 3.6

    @property
    def mouth_to_ear_delay(self) -> float:
        """Network delay plus jitter-buffer playout delay — the Id input."""
        return self.mean_delay + self.playout_delay

    def summary(self) -> str:
        return (
            f"{self.codec_name}: MOS={self.mos:.2f} R={self.r:.1f} "
            f"delay={self.mean_delay * 1000:.1f}ms "
            f"loss={self.effective_loss_ratio * 100:.1f}% "
            f"({self.packets_played}/{self.packets_expected} frames played)"
        )


def score_stream(
    codec: Codec,
    packets_expected: int,
    packets_received: int,
    packets_played: int,
    delays: list[float],
    jitter: float,
    playout_delay: float = 0.0,
    packets_recovered: int = 0,
) -> CallQuality:
    """Build a :class:`CallQuality` from receiver-side measurements.

    ``packets_received`` must count *unique* network receipts (duplicates
    excluded) or loss is understated. ``packets_played`` includes frames
    rebuilt from RFC 2198 redundancy, so the effective loss the E-model
    sees is already recovery-adjusted; ``packets_recovered`` is carried
    through for reporting. The jitter buffer's ``playout_delay`` is part
    of the mouth-to-ear path, so it feeds the Id delay impairment on top
    of the measured network delay.
    """
    expected = max(packets_expected, packets_received, 1)
    network_loss = 1.0 - packets_received / expected
    effective_loss = max(0.0, 1.0 - packets_played / expected)
    mean_delay = sum(delays) / len(delays) if delays else 0.0
    max_delay = max(delays) if delays else 0.0
    r = r_factor(codec, mean_delay + playout_delay, effective_loss)
    return CallQuality(
        codec_name=codec.name,
        packets_expected=expected,
        packets_received=packets_received,
        packets_played=packets_played,
        mean_delay=mean_delay,
        max_delay=max_delay,
        mean_jitter=jitter,
        network_loss_ratio=max(0.0, network_loss),
        effective_loss_ratio=effective_loss,
        r=r,
        mos=mos_from_r(r),
        playout_delay=playout_delay,
        packets_recovered=packets_recovered,
    )
