"""Media-plane CLI: ``python -m repro.rtp <subcommand>``.

Subcommands:

* ``sweep`` — print the M1 media-stack sweep (codec × RFC 2198 depth ×
  playout policy under Gilbert–Elliott fading)
* ``smoke`` — the ``tools/check.sh`` gate for the media plane:

  1. MOS recovery: at the M1 contrast point the fixed-buffer /
     no-redundancy stack scores below 3.6 while RFC 2198 redundancy plus
     the adaptive jitter buffer recovers MOS >= 3.6 — asserted inside a
     fresh interpreter, twice, and both reports must be byte-identical.
  2. Defaults-off identity: an E5-style scalability schedule fingerprint
     (kernel events processed + canonical stats + call outcomes) is
     byte-identical between a config that never mentions the media knobs
     and one that sets every knob to its documented "off" value — the
     media plane must be invisible until switched on.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

#: "Users satisfied" threshold on the E-model MOS scale (ITU-T G.107).
MOS_SATISFIED = 3.6

#: Fresh-interpreter contrast report. Protocol identifiers (Call-ID, Via
#: branch, packet uid) come from process-global counters, so — like the
#: overload and faults smokes — byte-identity is between fresh
#: interpreters, not reruns inside one process.
_CONTRAST_SCRIPT = """
import sys
from repro.experiments.media import run_media_point

for label, policy, red in (("baseline", "fixed", 0), ("full", "adaptive", 2)):
    quality, fade = run_media_point(
        codec="PCMU", policy=policy, redundancy=red,
        mean_good=1.2, mean_bad=0.05, talk_time=8.0,
    )
    if quality is None:
        sys.stdout.write(f"{label} not-established\\n")
        continue
    sys.stdout.write(
        f"{label} mos={quality.mos:.4f} eff={quality.effective_loss_ratio:.4f} "
        f"m2e={quality.mouth_to_ear_delay:.4f} recovered={quality.packets_recovered}\\n"
    )
"""

#: E5-style schedule fingerprint, parameterized by whether the media knobs
#: are omitted (defaults) or explicitly set to their "off" values.
_E5_FINGERPRINT_SCRIPT = """
import sys
from repro.scenarios import ManetConfig, ManetScenario

kwargs = dict(
    n_nodes=10, topology="grid", routing="aodv", seed=1,
    spacing=90.0, tx_range=140.0,
)
if sys.argv[1] == "explicit":
    kwargs.update(media_jitter_policy="fixed", media_redundancy=0, media_vad=False)
scenario = ManetScenario(ManetConfig(**kwargs))
scenario.start()
scenario.add_phone(0, "alice")
scenario.add_phone(9, "bob")
scenario.converge()
for _ in range(3):
    scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=4.0)
for record in scenario.call_records():
    quality = record.quality
    line = "call none" if quality is None else (
        f"call mos={quality.mos:.6f} played={quality.packets_played}"
        f"/{quality.packets_expected}"
    )
    sys.stdout.write(line + "\\n")
sys.stdout.write(f"events_processed={scenario.sim.events_processed}\\n")
for name in sorted(scenario.stats.counters):
    sys.stdout.write(f"{name}={scenario.stats.counters[name]}\\n")
scenario.stop()
"""


def _fresh_process(script: str, *argv: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", script, *argv],
        capture_output=True,
        text=True,
        check=True,
        env=dict(os.environ),
    )
    return result.stdout


def _parse_mos(report: str, label: str) -> float | None:
    for line in report.splitlines():
        if line.startswith(f"{label} mos="):
            return float(line.split("mos=", 1)[1].split()[0])
    return None


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.media import media_quality_table

    table = media_quality_table(
        codecs=tuple(args.codecs), talk_time=args.talk_time, seed=args.seed
    )
    print(table.format())
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    """Media gate: MOS recovery holds and schedules are reproducible."""
    failures: list[str] = []

    try:
        contrast_a = _fresh_process(_CONTRAST_SCRIPT)
        contrast_b = _fresh_process(_CONTRAST_SCRIPT)
    except subprocess.CalledProcessError as exc:
        print(f"FAIL: fresh-process media sweep crashed: {exc.stderr[-300:]}", file=sys.stderr)
        return 1
    if contrast_a != contrast_b:
        failures.append("same-seed fresh-process media reports differ")
    baseline = _parse_mos(contrast_a, "baseline")
    full = _parse_mos(contrast_a, "full")
    if baseline is None or full is None:
        failures.append(f"contrast calls did not establish:\n{contrast_a}")
    else:
        if baseline >= MOS_SATISFIED:
            failures.append(
                f"fixed/no-RED baseline unexpectedly satisfied: MOS {baseline:.2f}"
            )
        if full < MOS_SATISFIED:
            failures.append(
                f"RFC 2198 + adaptive playout did not recover: MOS {full:.2f}"
            )

    try:
        defaults = _fresh_process(_E5_FINGERPRINT_SCRIPT, "defaults")
        explicit = _fresh_process(_E5_FINGERPRINT_SCRIPT, "explicit")
    except subprocess.CalledProcessError as exc:
        failures.append(f"E5 fingerprint run crashed: {exc.stderr[-300:]}")
    else:
        if not defaults.strip():
            failures.append("E5 fingerprint run produced no output")
        if defaults != explicit:
            failures.append(
                "media defaults are not inert: explicit-off E5 schedule differs"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    assert baseline is not None and full is not None
    print(
        f"media smoke ok: baseline MOS {baseline:.2f} < {MOS_SATISFIED} <= "
        f"{full:.2f} with RFC 2198 + adaptive playout; defaults-off E5 "
        f"schedule byte-identical"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.rtp", description=__doc__.split("\n", 1)[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="print the M1 media-stack sweep")
    sweep.add_argument("--codecs", nargs="+", default=["PCMU", "G729"])
    sweep.add_argument("--talk-time", type=float, default=12.0)
    sweep.add_argument("--seed", type=int, default=3)
    sweep.set_defaults(fn=_cmd_sweep)

    smoke = sub.add_parser("smoke", help="media-plane gate for tools/check.sh")
    smoke.set_defaults(fn=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
