"""repro — a full reproduction of *Wireless Ad Hoc VoIP* (SIPHoc).

Stuedi & Alonso, MNCNA workshop @ ACM/IFIP/USENIX Middleware 2007.

The package implements the complete SIPHoc middleware — proxy, MANET SLP
with routing piggybacking, gateway/connection providers, layer-2 tunnels —
together with every substrate it needs: a deterministic discrete-event
wireless network simulator, AODV and OLSR routing daemons, a SIP stack,
SLP, RTP with E-model quality scoring, the related-work baselines, a
packet analyzer, and the experiment harness that regenerates the paper's
figures and deployment numbers.

Quickstart::

    from repro.netsim import Simulator, Stats, WirelessMedium, Node, manet_ip, place_chain
    from repro.core import SiphocStack

    sim = Simulator(seed=1)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats, tx_range=150)
    stacks = []
    for i in range(3):
        node = Node(sim, i, manet_ip(i), stats=stats)
        node.join_medium(medium)
        stacks.append(SiphocStack(node, routing="aodv").start())
    place_chain([s.node for s in stacks], 100)
    alice = stacks[0].add_phone(username="alice")
    bob = stacks[2].add_phone(username="bob")
    sim.run(2.0)
    alice.place_call("sip:bob@voicehoc.ch", duration=10.0)
    sim.run(20.0)
    print(alice.history[0].quality.summary())

See also :mod:`repro.scenarios` for prebuilt topologies and
:mod:`repro.experiments` for the paper's evaluation harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
