"""Process-global mutable state, made explicit and resettable.

The simulator's determinism story tolerates a small set of process-global
identifier counters (call-ids, tags, Via branches, nonces, RTP ports,
SSRCs, packet uids): they need process-lifetime uniqueness, not
seed-determinism, so they live outside any :class:`Simulator`. But the
region-sharding roadmap item turns every stray module global into a
correctness hazard — a shard forked into another process must be able to
enumerate, reset and (eventually) partition this state. This module is
the single choke point: every process-global mutable binding in the
production tree registers here, and ``repro.lint``'s SHARD001 rule
rejects any that does not.

Usage::

    from repro.globalstate import registry

    _tag_counter = registry.counter("sip.dialog.tag", start=1)

    def new_tag() -> str:
        return f"tag{_tag_counter.next():06x}"

Parity harnesses that byte-compare trace exports across in-process runs
call :func:`GlobalStateRegistry.reset_all` between runs (never while a
scenario is live: colliding identifiers would corrupt dialogs mid-flight).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List

__all__ = [
    "GlobalCounter",
    "GlobalMapping",
    "GlobalSequence",
    "GlobalStateRegistry",
    "registry",
]


class GlobalCounter:
    """A resettable monotonically increasing integer allocator."""

    __slots__ = ("name", "start", "_it")

    def __init__(self, name: str, start: int = 0) -> None:
        self.name = name
        self.start = start
        self._it = itertools.count(start)

    def next(self) -> int:
        """Allocate the next integer."""
        return next(self._it)

    def reset(self) -> None:
        self._it = itertools.count(self.start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GlobalCounter({self.name!r}, start={self.start})"


class GlobalMapping(Dict[object, object]):
    """A registered process-global dict; ``reset()`` clears it."""

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name

    def reset(self) -> None:
        self.clear()


class GlobalSequence(List[object]):
    """A registered process-global list; ``reset()`` clears it."""

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name

    def reset(self) -> None:
        self.clear()


class GlobalStateRegistry:
    """Registry of every process-global mutable binding in the tree.

    Handles are created through :meth:`counter` / :meth:`mapping` /
    :meth:`sequence` (or :meth:`register` for bespoke state) and reset in
    deterministic (sorted-name) order by :meth:`reset_all`.
    """

    def __init__(self) -> None:
        self._resets: dict[str, Callable[[], None]] = {}

    def counter(self, name: str, start: int = 0) -> GlobalCounter:
        handle = GlobalCounter(name, start)
        self.register(name, handle.reset)
        return handle

    def mapping(self, name: str) -> GlobalMapping:
        handle = GlobalMapping(name)
        self.register(name, handle.reset)
        return handle

    def sequence(self, name: str) -> GlobalSequence:
        handle = GlobalSequence(name)
        self.register(name, handle.reset)
        return handle

    def register(self, name: str, reset: Callable[[], None]) -> None:
        """Register bespoke global state by name with its reset function."""
        if name in self._resets:
            raise ValueError(f"global state {name!r} registered twice")
        self._resets[name] = reset

    def names(self) -> list[str]:
        """Registered state names, sorted (the reset order)."""
        return sorted(self._resets)

    def reset_all(self) -> None:
        """Restart every registered process-global identifier/state.

        Identifiers only need process-lifetime uniqueness, so two same-seed
        scenarios built in one process differ in their identifiers (and
        therefore in trace exports) even though schedules and Stats match.
        Parity harnesses that byte-compare traces across in-process runs
        call this between runs. Never call it while any scenario is live.
        """
        for name in sorted(self._resets):
            self._resets[name]()

    def __len__(self) -> int:
        return len(self._resets)


#: The process-wide registry instance. All production modules register
#: their globals here at import time.
registry = GlobalStateRegistry()
