"""Intra-procedural dataflow and escape analysis for the whole-program pass.

This module answers, per function, the questions the SHARD rule family
needs: which locals hold seeded RNG objects and where do they escape to?
Which nested closures capture a ``Simulator``/``WirelessMedium`` reference
and do they leak out of the function into module-global state? Which
module globals does the function write at runtime — locally or across a
module boundary? Which attribute assignments store unpicklable values
(open files, lambdas, generators)?

Everything extracted here is plain data (:class:`FunctionFlow`,
:class:`ClassFlow`, :class:`ModuleFlow`) that serializes to JSON, because
the incremental cache stores these summaries per content hash and the
cross-module pass in :mod:`repro.lint.graph` must be able to run without
re-parsing unchanged files.

The analysis is deliberately conservative and syntactic: no fixpoints, no
aliasing beyond single assignment chains. False negatives are acceptable
(the rules certify known-risky *patterns*, they are not a soundness
proof); false positives are not, because ``tools/check.sh`` enforces a
clean tree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "ClassFlow",
    "FunctionFlow",
    "ModuleFlow",
    "analyze_module",
]

#: Attribute names whose bearer is treated as a simulator/kernel reference.
SIM_PARAM_NAMES = frozenset({"sim", "simulator", "kernel", "medium"})

#: Type names (terminal identifier) that tag a value as a simulator/kernel
#: or radio-medium reference.
SIM_TYPE_NAMES = frozenset({"Simulator", "WirelessMedium", "HeapKernel", "CalendarKernel"})

#: ``random.Random`` consumer methods: a parameter these are called on is
#: an RNG sink, so passing the global ``random`` module into it smuggles
#: process-global randomness past DET002's per-module view.
RNG_METHODS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Constructor spellings that produce a mutable container / allocator.
#: Maps resolved dotted name (or syntactic kind) to a human-readable kind.
MUTABLE_CONSTRUCTORS = {
    "bytearray": "bytearray",
    "collections.Counter": "counter-dict",
    "collections.OrderedDict": "dict",
    "collections.defaultdict": "dict",
    "collections.deque": "deque",
    "dict": "dict",
    "itertools.count": "id counter",
    "list": "list",
    "set": "set",
}

#: Dotted prefixes that mark a module-level binding as registered with the
#: global-state registry (repro.globalstate) and therefore shard-aware.
REGISTRY_PREFIXES = ("repro.globalstate.",)
REGISTRY_FACTORY_SUFFIXES = (
    ".registry.counter",
    ".registry.mapping",
    ".registry.sequence",
    ".registry.register",
)


def _dotted(node: ast.expr, import_map: dict[str, str]) -> str | None:
    """Resolve an attribute chain through the import map (cf. FileContext)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(import_map.get(node.id, node.id))
    parts.reverse()
    return ".".join(parts)


def is_registry_call(value: ast.expr, import_map: dict[str, str]) -> bool:
    """True if ``value`` is a call into the repro.globalstate registry."""
    if not isinstance(value, ast.Call):
        return False
    name = _dotted(value.func, import_map)
    if name is None:
        return False
    return name.startswith(REGISTRY_PREFIXES) or name.endswith(REGISTRY_FACTORY_SUFFIXES)


def mutable_kind(value: ast.expr, import_map: dict[str, str]) -> str | None:
    """Classify ``value`` as a mutable-container constructor, or ``None``."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        name = _dotted(value.func, import_map)
        if name is not None:
            return MUTABLE_CONSTRUCTORS.get(name)
    return None


@dataclass
class FunctionFlow:
    """Per-function dataflow facts, JSON-serializable."""

    qualname: str
    line: int
    is_generator: bool = False
    params: list[str] = field(default_factory=list)
    #: Params that have RNG consumer methods called on them.
    rng_consuming_params: list[str] = field(default_factory=list)
    #: Seeded ``random.Random(seed)`` locals -> constructor-call sinks they
    #: are passed into: ``[{name, line, col, sinks: [{callee, line, col}]}]``.
    rng_flows: list[dict[str, Any]] = field(default_factory=list)
    #: Sim-capturing closures that escape to module scope:
    #: ``[{line, col, closure, captures, via}]``.
    closure_escapes: list[dict[str, Any]] = field(default_factory=list)
    #: Module globals this function writes at runtime: ``[{name, line, col, how}]``.
    global_writes: list[dict[str, Any]] = field(default_factory=list)
    #: Writes to another module's top-level binding:
    #: ``[{module, name, line, col, how}]`` (module is the *resolved dotted*
    #: spelling from this module's import map).
    external_writes: list[dict[str, Any]] = field(default_factory=list)
    #: Call sites passing the bare ``random`` module as an argument:
    #: ``[{callee, line, col, arg_position, keyword}]``.
    random_module_args: list[dict[str, Any]] = field(default_factory=list)
    #: Unpicklable values stored on object attributes:
    #: ``[{owner, attr, line, col, kind}]`` where owner is ``"self"``, a
    #: dotted class name (local constructor-bound variable), or ``"?"``.
    unpicklable_attr_assigns: list[dict[str, Any]] = field(default_factory=list)
    #: ``self.x = ClassName(...)`` composition edges (dotted callee names).
    self_compositions: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "is_generator": self.is_generator,
            "params": self.params,
            "rng_consuming_params": sorted(self.rng_consuming_params),
            "rng_flows": self.rng_flows,
            "closure_escapes": self.closure_escapes,
            "global_writes": self.global_writes,
            "external_writes": self.external_writes,
            "random_module_args": self.random_module_args,
            "unpicklable_attr_assigns": self.unpicklable_attr_assigns,
            "self_compositions": sorted(set(self.self_compositions)),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FunctionFlow":
        return cls(**data)


@dataclass
class ClassFlow:
    """Per-class facts: bases, composition edges, schedulability."""

    name: str
    line: int
    bases: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)
    #: True when any method calls an attribute starting with ``schedule`` —
    #: the class arms events on a kernel, so it is independently schedulable.
    schedulable: bool = False
    #: Dotted names of classes instantiated and stored on ``self``.
    compositions: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": self.bases,
            "methods": sorted(self.methods),
            "schedulable": self.schedulable,
            "compositions": sorted(set(self.compositions)),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ClassFlow":
        return cls(**data)


@dataclass
class ModuleFlow:
    """Everything the whole-program pass needs to know about one module."""

    #: Module-level mutable bindings: ``[{name, line, col, kind, registered}]``.
    mutable_globals: list[dict[str, Any]] = field(default_factory=list)
    #: All module-level binding names (for escape analysis).
    global_names: list[str] = field(default_factory=list)
    functions: list[FunctionFlow] = field(default_factory=list)
    classes: list[ClassFlow] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "mutable_globals": self.mutable_globals,
            "global_names": sorted(self.global_names),
            "functions": [fn.to_dict() for fn in self.functions],
            "classes": [cls_.to_dict() for cls_ in self.classes],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModuleFlow":
        return cls(
            mutable_globals=data["mutable_globals"],
            global_names=list(data["global_names"]),
            functions=[FunctionFlow.from_dict(d) for d in data["functions"]],
            classes=[ClassFlow.from_dict(d) for d in data["classes"]],
        )


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return names


def _iter_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Nodes lexically in ``node``'s scope, not descending into nested scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(child))


def _assigned_names(scope: ast.AST) -> set[str]:
    """Names bound (assigned, for-target, with-target, ...) in this scope."""
    names: set[str] = set()
    for node in _iter_scope(scope):
        if isinstance(node, (ast.Name,)) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return names


def _free_names(func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    """Names read inside ``func`` (any depth) that it does not bind itself."""
    bound: set[str] = set()
    if isinstance(func, ast.Lambda):
        args = func.args
    else:
        args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        bound.add(arg.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    read: set[str] = set()
    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    bound.add(node.id)
                else:
                    read.add(node.id)
    return read - bound


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = func.args
    names = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _annotation_text(annotation: ast.expr | None) -> str:
    if annotation is None:
        return ""
    try:
        return ast.unparse(annotation)
    except Exception:  # pragma: no cover - defensive
        return ""


def _is_sim_annotation(annotation: ast.expr | None) -> bool:
    text = _annotation_text(annotation)
    return any(name in text for name in SIM_TYPE_NAMES)


#: A plain (possibly dotted, possibly string-quoted) class annotation.
_CLASS_ANNOTATION_RE = re.compile(r"^[\"']?([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)[\"']?$")

#: Annotation spellings that are never project classes.
_NON_CLASS_ANNOTATIONS = frozenset(
    {"int", "float", "str", "bytes", "bool", "object", "None", "Any", "typing.Any"}
)


def _annotation_class(annotation: ast.expr | None, import_map: dict[str, str]) -> str | None:
    """Dotted class name from a simple annotation, or ``None``."""
    match = _CLASS_ANNOTATION_RE.match(_annotation_text(annotation))
    if match is None:
        return None
    text = match.group(1)
    if text in _NON_CLASS_ANNOTATIONS:
        return None
    head, _, tail = text.partition(".")
    resolved_head = import_map.get(head, head)
    return f"{resolved_head}.{tail}" if tail else resolved_head


def _terminal(name: str) -> str:
    return name.rsplit(".", 1)[-1]


class _FunctionAnalyzer:
    """Single-pass extraction over one function body."""

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        import_map: dict[str, str],
        module_globals: set[str],
        imported_module_aliases: dict[str, str],
    ) -> None:
        self.func = func
        self.import_map = import_map
        self.module_globals = module_globals
        self.imported_module_aliases = imported_module_aliases
        self.flow = FunctionFlow(qualname=qualname, line=func.lineno, params=_param_names(func))
        self.declared_global: set[str] = set()
        self.locals: set[str] = set()
        self.sim_locals: set[str] = set()
        self.rng_locals: dict[str, dict[str, Any]] = {}
        #: local name -> dotted class name it was constructed from
        self.class_locals: dict[str, str] = {}
        #: nested def/lambda name -> set of sim names it captures
        self.sim_closures: dict[str, set[str]] = {}

    # -- helpers ----------------------------------------------------------

    def dotted(self, node: ast.expr) -> str | None:
        return _dotted(node, self.import_map)

    def _is_random_module(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Name)
            and node.id not in self.locals
            and self.import_map.get(node.id, None) == "random"
        )

    def _tag_sim_sources(self) -> None:
        args = self.func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg in SIM_PARAM_NAMES or _is_sim_annotation(arg.annotation):
                self.sim_locals.add(arg.arg)
            # Annotated params participate in owner/class tracking: writing
            # an attribute on `call: IncomingCall` is a store into that class.
            annotated = _annotation_class(arg.annotation, self.import_map)
            if annotated is not None:
                self.class_locals[arg.arg] = annotated

    def _value_is_sim(self, value: ast.expr) -> bool:
        if isinstance(value, ast.Name) and value.id in self.sim_locals:
            return True
        if isinstance(value, ast.Call):
            name = self.dotted(value.func)
            if name is not None and _terminal(name) in SIM_TYPE_NAMES:
                return True
        if isinstance(value, ast.Attribute) and value.attr in SIM_PARAM_NAMES:
            return True
        return False

    # -- extraction passes -------------------------------------------------

    def run(self) -> FunctionFlow:
        self._tag_sim_sources()
        self.flow.is_generator = any(
            isinstance(node, (ast.Yield, ast.YieldFrom)) for node in _iter_scope(self.func)
        )
        statements = list(_iter_scope(self.func))
        # Pass 1: name binding, global decls, value tagging.
        for node in statements:
            if isinstance(node, ast.Global):
                self.declared_global.update(node.names)
            elif isinstance(node, ast.Assign):
                self._tag_assignment(node.targets, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._tag_assignment([node.target], node.value)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self.locals.add(node.id)
        self.locals -= self.declared_global
        # Nested closures: which capture a sim-tagged name?
        for node in statements:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                captured = _free_names(node) & self.sim_locals
                if captured:
                    self.sim_closures[node.name] = captured
        # Pass 2: events.
        for node in statements:
            if isinstance(node, ast.Call):
                self._inspect_call(node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._inspect_store(node, target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._inspect_store(node, node.target, node.value)
            elif isinstance(node, ast.AugAssign):
                self._inspect_store(node, node.target, node.value, how="augmented assignment")
            elif isinstance(node, (ast.Delete,)):
                for target in node.targets:
                    self._inspect_store(node, target, None, how="del")
        self.flow.rng_flows = [
            flow for flow in self.rng_locals.values() if flow["sinks"]
        ]
        return self.flow

    def _tag_assignment(self, targets: list[ast.expr], value: ast.expr) -> None:
        single = targets[0] if len(targets) == 1 else None
        if isinstance(single, ast.Name):
            name = single.id
            if name not in self.declared_global:
                self.locals.add(name)
            if self._value_is_sim(value):
                self.sim_locals.add(name)
            if isinstance(value, ast.Call):
                callee = self.dotted(value.func)
                if callee == "random.Random" and (value.args or value.keywords):
                    self.rng_locals[name] = {
                        "name": name,
                        "line": value.lineno,
                        "col": value.col_offset,
                        "sinks": [],
                    }
                elif callee is not None:
                    self.class_locals[name] = callee
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                    if node.id not in self.declared_global:
                        self.locals.add(node.id)

    # -- call / store inspection ------------------------------------------

    def _inspect_call(self, node: ast.Call) -> None:
        callee = self.dotted(node.func)
        # RNG consumer params: p.random()/p.choice() on a parameter name.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in RNG_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.flow.params
        ):
            if node.func.value.id not in self.flow.rng_consuming_params:
                self.flow.rng_consuming_params.append(node.func.value.id)
        # The bare `random` module passed as an argument.
        for position, arg in enumerate(node.args):
            if self._is_random_module(arg) and callee is not None:
                self.flow.random_module_args.append(
                    {
                        "callee": callee,
                        "line": node.lineno,
                        "col": node.col_offset,
                        "arg_position": position,
                        "keyword": None,
                    }
                )
        for keyword in node.keywords:
            if keyword.arg is not None and self._is_random_module(keyword.value):
                if callee is not None:
                    self.flow.random_module_args.append(
                        {
                            "callee": callee,
                            "line": node.lineno,
                            "col": node.col_offset,
                            "arg_position": None,
                            "keyword": keyword.arg,
                        }
                    )
        # Seeded-RNG escape into constructor calls.
        if callee is not None:
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(arg, ast.Name) and arg.id in self.rng_locals:
                    self.rng_locals[arg.id]["sinks"].append(
                        {"callee": callee, "line": node.lineno, "col": node.col_offset}
                    )
        # next(counter) on a module global, and in-place mutation of module
        # globals / other modules' globals.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "next"
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            target = node.args[0]
            if target.id not in self.locals and target.id in self.module_globals:
                self._record_global_write(node, target.id, "next() draw")
        if isinstance(node.func, ast.Attribute) and node.func.attr in MUTATING_METHODS:
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id not in self.locals
                and receiver.id in self.module_globals
            ):
                self._record_global_write(node, receiver.id, f".{node.func.attr}()")
            self._maybe_external_write(node, receiver, f".{node.func.attr}()")
            # Closure escape via container mutation: _handlers.append(on_tick).
            if isinstance(receiver, ast.Name) and receiver.id in self.module_globals:
                for arg in node.args:
                    self._maybe_closure_escape(node, arg, f"{receiver.id}.{node.func.attr}()")
            # Composition via container growth: self.stacks.append(NodeStack(...)).
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
            ):
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Call):
                            callee = self.dotted(sub.func)
                            if callee is not None and callee[:1].isalpha():
                                self.flow.self_compositions.append(callee)
                        elif isinstance(sub, ast.Name) and sub.id in self.class_locals:
                            self.flow.self_compositions.append(self.class_locals[sub.id])

    def _record_global_write(self, node: ast.AST, name: str, how: str) -> None:
        self.flow.global_writes.append(
            {
                "name": name,
                "line": getattr(node, "lineno", 1),
                "col": getattr(node, "col_offset", 0),
                "how": how,
            }
        )

    def _maybe_external_write(self, node: ast.AST, target: ast.expr, how: str) -> None:
        """Record ``other_module.binding`` writes (attribute on a module alias)."""
        if not isinstance(target, ast.Attribute):
            return
        base = target.value
        if not isinstance(base, ast.Name) or base.id in self.locals:
            return
        module = self.imported_module_aliases.get(base.id)
        if module is None:
            return
        self.flow.external_writes.append(
            {
                "module": module,
                "name": target.attr,
                "line": getattr(node, "lineno", 1),
                "col": getattr(node, "col_offset", 0),
                "how": how,
            }
        )

    def _maybe_closure_escape(self, node: ast.AST, value: ast.expr, via: str) -> None:
        captured: set[str] = set()
        closure = ""
        if isinstance(value, ast.Name) and value.id in self.sim_closures:
            captured = self.sim_closures[value.id]
            closure = value.id
        elif isinstance(value, ast.Lambda):
            captured = _free_names(value) & self.sim_locals
            closure = "<lambda>"
        if captured:
            self.flow.closure_escapes.append(
                {
                    "line": getattr(node, "lineno", 1),
                    "col": getattr(node, "col_offset", 0),
                    "closure": closure,
                    "captures": sorted(captured),
                    "via": via,
                }
            )

    def _inspect_store(
        self, stmt: ast.AST, target: ast.expr, value: ast.expr | None, how: str = "assignment"
    ) -> None:
        # global NAME = ... rebinding, NAME[k] = ... on module globals.
        root = target
        while isinstance(root, ast.Subscript):
            root = root.value
        if isinstance(root, ast.Name):
            if root.id in self.declared_global and root.id in self.module_globals:
                self._record_global_write(stmt, root.id, how)
            elif (
                isinstance(target, ast.Subscript)
                and root.id not in self.locals
                and root.id in self.module_globals
            ):
                self._record_global_write(stmt, root.id, "item " + how)
            # Closure escaping by (re)binding a module global.
            if (
                value is not None
                and root.id in self.module_globals
                and root.id not in self.locals
            ):
                self._maybe_closure_escape(stmt, value, f"{root.id} = ...")
        if isinstance(root, ast.Attribute):
            self._maybe_external_write(stmt, root, how)
            if value is not None:
                self._inspect_attr_value(stmt, root, value)

    def _inspect_attr_value(
        self, stmt: ast.AST, target: ast.Attribute, value: ast.expr
    ) -> None:
        """Attribute stores: composition edges and unpicklable values."""
        base = target.value
        owner: str | None = None
        if isinstance(base, ast.Name):
            if base.id == "self":
                owner = "self"
            elif base.id in self.class_locals:
                owner = self.class_locals[base.id]
        if owner is None:
            return
        if owner == "self":
            for node in ast.walk(value):
                if isinstance(node, ast.Call):
                    callee = self.dotted(node.func)
                    if callee is not None and callee[:1].isalpha():
                        self.flow.self_compositions.append(callee)
                elif isinstance(node, ast.Name) and node.id in self.class_locals:
                    self.flow.self_compositions.append(self.class_locals[node.id])
        kind: str | None = None
        if isinstance(value, ast.Lambda):
            kind = "lambda"
        elif isinstance(value, ast.GeneratorExp):
            kind = "generator expression"
        elif isinstance(value, ast.Call):
            callee = self.dotted(value.func)
            if callee in {"open", "io.open"}:
                kind = "open file handle"
        if kind is not None:
            self.flow.unpicklable_attr_assigns.append(
                {
                    "owner": owner,
                    "attr": target.attr,
                    "line": getattr(stmt, "lineno", 1),
                    "col": getattr(stmt, "col_offset", 0),
                    "kind": kind,
                }
            )


def _class_flow(
    node: ast.ClassDef,
    import_map: dict[str, str],
    functions: list[FunctionFlow],
) -> ClassFlow:
    bases = []
    for base in node.bases:
        dotted = _dotted(base, import_map)
        if dotted is not None:
            bases.append(dotted)
    methods = [
        child.name
        for child in node.body
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    schedulable = any(
        isinstance(sub, ast.Call)
        and isinstance(sub.func, ast.Attribute)
        and sub.func.attr.startswith("schedule")
        for sub in ast.walk(node)
    )
    prefix = f"{node.name}."
    compositions: list[str] = []
    for flow in functions:
        if flow.qualname.startswith(prefix):
            compositions.extend(flow.self_compositions)
    return ClassFlow(
        name=node.name,
        line=node.lineno,
        bases=bases,
        methods=methods,
        schedulable=schedulable,
        compositions=compositions,
    )


def analyze_module(
    tree: ast.Module,
    import_map: dict[str, str],
) -> ModuleFlow:
    """Extract the whole-program facts for one parsed module."""
    module_globals = _module_level_names(tree)
    imported_module_aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                imported_module_aliases[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                # `from repro.sip import dialog` binds a module object; we
                # cannot know statically, so record the candidate — the
                # project graph checks whether the dotted target is a module.
                imported_module_aliases[local] = f"{module}.{alias.name}" if module else alias.name

    flow = ModuleFlow(global_names=sorted(module_globals))

    # Module-level mutable bindings.
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        kind = mutable_kind(value, import_map)
        registered = is_registry_call(value, import_map)
        if kind is None and not registered:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                flow.mutable_globals.append(
                    {
                        "name": target.id,
                        "line": node.lineno,
                        "col": node.col_offset,
                        "kind": kind or "registered state",
                        "registered": registered,
                    }
                )

    # Functions and methods (one level of class nesting).
    def visit_functions(body: list[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                analyzer = _FunctionAnalyzer(
                    node,
                    prefix + node.name,
                    import_map,
                    module_globals,
                    imported_module_aliases,
                )
                flow.functions.append(analyzer.run())
                # Nested defs get their own (shallow) analysis so closures
                # passed around inside helpers are still inspected.
                visit_functions(
                    [n for n in node.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))],
                    prefix + node.name + ".",
                )
            elif isinstance(node, ast.ClassDef):
                visit_functions(node.body, prefix + node.name + ".")

    visit_functions(tree.body, "")

    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            flow.classes.append(_class_flow(node, import_map, flow.functions))

    return flow
