"""The project rule set.

Per-file rules: DET001–DET003, CACHE001–CACHE002, SIM001, FAULT001,
OBS001, OVR001, PERF001. Whole-program rules: the SHARD family (shard-safety for
region-sharded logical processes) and the cross-call DET002 sweep. Every
rule guards an invariant the simulator's determinism, PR 1's caching
layer or the sharding roadmap item depends on; DESIGN.md §5c/§5h document
the rationale for each.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Sequence

from repro.lint.core import FileContext, ProgramRule, ProgramReporter, Rule, RuleVisitor
from repro.lint.graph import ModuleSummary, ProjectGraph

# ---------------------------------------------------------------------------
# DET001 — wall-clock access
# ---------------------------------------------------------------------------

#: Resolved dotted names that read the host clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class _WallClockVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.resolve_dotted(node.func)
        if name in _WALL_CLOCK_CALLS:
            self.report(
                node,
                f"wall-clock call {name}(): simulation code must read time "
                "from Simulator.now so seeded runs stay bit-identical",
            )
        self.generic_visit(node)


class WallClockRule(Rule):
    id = "DET001"
    title = "no wall-clock reads outside the simulator, profiler and benchmarks"
    rationale = (
        "Any code path keyed on host time diverges between runs; only the "
        "simulator core (which defines virtual time), the kernel profiler "
        "(which measures the host by design) and benchmarks may touch the "
        "real clock."
    )
    visitor_class = _WallClockVisitor

    #: ``(dir, file)`` suffixes exempt from the rule: the simulator owns
    #: virtual time, the profiler's entire purpose is wall-time attribution.
    EXEMPT_SUFFIXES = (("netsim", "simulator.py"), ("metrics", "profiler.py"))

    def applies_to(self, path: Path) -> bool:
        parts = path.parts
        if "benchmarks" in parts:
            return False
        return not (len(parts) >= 2 and parts[-2:] in self.EXEMPT_SUFFIXES)


# ---------------------------------------------------------------------------
# DET002 — global random module usage
# ---------------------------------------------------------------------------


class _GlobalRandomVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.resolve_dotted(node.func)
        if name == "random.Random":
            if not node.args and not node.keywords:
                self.report(
                    node,
                    "un-seeded random.Random(): seed it from the scenario "
                    "(ultimately Simulator.seed) or draw from Simulator.rng",
                )
        elif name == "random.SystemRandom":
            self.report(
                node,
                "random.SystemRandom() is entropy-backed and never "
                "reproducible; draw from Simulator.rng",
            )
        elif name is not None and name.startswith("random.") and name.count(".") == 1:
            self.report(
                node,
                f"{name}() uses the process-global RNG: randomness must flow "
                "from the simulator's seeded Simulator.rng",
            )
        self.generic_visit(node)


class GlobalRandomRule(Rule):
    id = "DET002"
    title = "no module-level random.* calls or un-seeded random.Random()"
    rationale = (
        "The process-global RNG is shared, import-order dependent and "
        "unseeded; every draw must come from the simulator's seeded "
        "random.Random so a scenario seed pins the whole run."
    )
    visitor_class = _GlobalRandomVisitor


# ---------------------------------------------------------------------------
# DET003 — iteration over bare sets in order-sensitive subsystems
# ---------------------------------------------------------------------------

#: Annotation spellings that make a name set-typed.
_SET_ANNOTATION_RE = re.compile(
    r"^(typing\.)?(set|frozenset|Set|FrozenSet|MutableSet|AbstractSet)\b"
)

#: Builtins whose call on a set is flagged: they materialize an ordered
#: sequence from the set's hash order.
_ORDERED_SINKS = frozenset({"list", "tuple", "enumerate", "iter", "next"})


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - defensive
        return False
    return _SET_ANNOTATION_RE.match(text) is not None


class _SetTypes:
    """Names/attributes known set-typed within one lexical scope."""

    def __init__(self, local_names: set[str], self_attrs: set[str]) -> None:
        self.local_names = local_names
        self.self_attrs = self_attrs

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"set", "frozenset"}:
                return True
        if isinstance(node, ast.Name):
            return node.id in self.local_names
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.self_attrs
            )
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False


def _is_scope_boundary(node: ast.AST) -> bool:
    return isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda))


def _scope_statements(scope: ast.AST) -> list[ast.AST]:
    """All nodes lexically inside ``scope``, not descending into nested scopes."""
    out: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        out.append(node)
        if not _is_scope_boundary(node):
            stack.extend(ast.iter_child_nodes(node))
    return out


def _collect_local_set_names(scope: ast.AST) -> set[str]:
    """Names assigned a syntactic set (or annotated as one) in this scope."""
    names: set[str] = set()
    syntactic = _SetTypes(set(), set())
    for node in _scope_statements(scope):
        if isinstance(node, ast.Assign) and syntactic.is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_is_set(node.annotation) or (
                node.value is not None and syntactic.is_set_expr(node.value)
            ):
                names.add(node.target.id)
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _annotation_is_set(arg.annotation):
                names.add(arg.arg)
    return names


def _collect_self_set_attrs(class_node: ast.ClassDef) -> set[str]:
    """``self.X`` attributes assigned/annotated set-typed anywhere in the class."""
    attrs: set[str] = set()
    syntactic = _SetTypes(set(), set())
    for node in ast.walk(class_node):
        target: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            if syntactic.is_set_expr(node.value):
                target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            if _annotation_is_set(node.annotation) or (
                node.value is not None and syntactic.is_set_expr(node.value)
            ):
                target = node.target
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            attrs.add(target.attr)
    return attrs


class SetIterationRule(Rule):
    id = "DET003"
    title = "no ordered iteration over bare sets in netsim/, core/, routing/"
    rationale = (
        "Set iteration order follows hash seeds and insertion history, not "
        "the scenario seed; anything it feeds (event scheduling, neighbor "
        "visits, route selection) becomes run-dependent. Iterate "
        "sorted(the_set) instead."
    )

    SCOPED_DIRS = frozenset({"netsim", "core", "routing"})

    def applies_to(self, path: Path) -> bool:
        return any(part in self.SCOPED_DIRS for part in path.parts)

    def check(self, tree: ast.Module, ctx: FileContext) -> None:
        class_attrs: dict[ast.ClassDef, set[str]] = {
            node: _collect_self_set_attrs(node)
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }
        self._check_scope(tree, ctx, _collect_local_set_names(tree), set())
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                owner = self._enclosing_class(tree, node)
                self_attrs = class_attrs.get(owner, set()) if owner else set()
                self._check_scope(
                    node, ctx, _collect_local_set_names(node), self_attrs
                )

    @staticmethod
    def _enclosing_class(
        tree: ast.Module, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> ast.ClassDef | None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and func in node.body:
                return node
        return None

    def _check_scope(
        self,
        scope: ast.AST,
        ctx: FileContext,
        local_names: set[str],
        self_attrs: set[str],
    ) -> None:
        types = _SetTypes(local_names, self_attrs)
        for node in _scope_statements(scope):
            if isinstance(node, ast.For) and types.is_set_expr(node.iter):
                self._flag(ctx, node, node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    if types.is_set_expr(generator.iter):
                        self._flag(ctx, node, generator.iter)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _ORDERED_SINKS and node.args:
                    if types.is_set_expr(node.args[0]):
                        self._flag(ctx, node, node.args[0])
            elif isinstance(node, ast.Starred) and types.is_set_expr(node.value):
                self._flag(ctx, node, node.value)

    def _flag(self, ctx: FileContext, node: ast.AST, iter_expr: ast.expr) -> None:
        try:
            shown = ast.unparse(iter_expr)
        except Exception:  # pragma: no cover - defensive
            shown = "<set>"
        ctx.report(
            self,
            node,
            f"ordered iteration over bare set {shown!r}: set order is not "
            "seed-stable; iterate sorted(...) (or keep it unordered via "
            "set/len/membership)",
        )


# ---------------------------------------------------------------------------
# CACHE001 — external mutation of cache-versioned private state
# ---------------------------------------------------------------------------

#: Private attribute -> classes allowed to touch it (via self/cls).
_VERSIONED_PRIVATE_ATTRS: dict[str, tuple[str, ...]] = {
    "_items": ("Headers",),
    "_version": ("Headers",),
    "_wire": ("SipMessage", "SipRequest", "SipResponse"),
    "_wire_key": ("SipMessage", "SipRequest", "SipResponse"),
}

#: Method names that mutate a list/dict in place (``x._items.append(...)``).
_MUTATING_METHODS = frozenset(
    {"append", "insert", "extend", "remove", "pop", "clear", "sort", "reverse", "update"}
)


def _is_self_or_cls(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id in {"self", "cls"}


class _CacheStateVisitor(RuleVisitor):
    def _flag_target(self, stmt: ast.AST, target: ast.expr) -> None:
        while isinstance(target, ast.Subscript):
            target = target.value
        if not isinstance(target, ast.Attribute):
            return
        owners = _VERSIONED_PRIVATE_ATTRS.get(target.attr)
        if owners is None or _is_self_or_cls(target.value):
            return
        self.report(
            stmt,
            f"external write to {owners[0]}.{target.attr}: mutate through the "
            "public API so the serialize-cache version counter stays coherent",
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._flag_target(node, target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._flag_target(node, node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._flag_target(node, node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._flag_target(node, target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr in _VERSIONED_PRIVATE_ATTRS
            and not _is_self_or_cls(func.value.value)
        ):
            owners = _VERSIONED_PRIVATE_ATTRS[func.value.attr]
            self.report(
                node,
                f"in-place mutation of {owners[0]}.{func.value.attr}."
                f"{func.attr}(): bypasses the version counter; use the "
                "public mutation API",
            )
        self.generic_visit(node)


class CacheStateRule(Rule):
    id = "CACHE001"
    title = "no external mutation of versioned private cache state"
    rationale = (
        "SipMessage.serialize() memoizes on Headers.version; a write to "
        "_items/_version/_wire from outside the owning class can serve "
        "stale bytes (wrong sizes on the air interface) without any test "
        "noticing."
    )
    visitor_class = _CacheStateVisitor


# ---------------------------------------------------------------------------
# CACHE002 — position writes that bypass the epoch-notifying setter
# ---------------------------------------------------------------------------


class _PositionWriteVisitor(RuleVisitor):
    def _flag_target(self, stmt: ast.AST, target: ast.expr) -> None:
        while isinstance(target, ast.Subscript):
            target = target.value
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "_position"
            and not _is_self_or_cls(target.value)
        ):
            self.report(
                stmt,
                "direct write to Node._position bypasses the position setter: "
                "the medium's spatial index epoch is never bumped and "
                "neighbor caches go stale; assign node.position instead",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._flag_target(node, target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._flag_target(node, node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._flag_target(node, node.target)
        self.generic_visit(node)


class PositionWriteRule(Rule):
    id = "CACHE002"
    title = "no Node position writes that bypass the epoch-notifying setter"
    rationale = (
        "WirelessMedium invalidates its spatial index and neighbor caches on "
        "a position epoch bumped by the Node.position setter; writing "
        "_position directly moves a node without telling the radio layer."
    )
    visitor_class = _PositionWriteVisitor


# ---------------------------------------------------------------------------
# SIM001 — float equality on simulation-time expressions
# ---------------------------------------------------------------------------

#: Identifier (or terminal attribute) spellings that denote a point in
#: simulated time.
_TIME_NAME_RE = re.compile(r"(?:^|_)(now|time|deadline|expires?_at)$")


def _time_named(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name) and _TIME_NAME_RE.search(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and _TIME_NAME_RE.search(node.attr):
        return node.attr
    return None


def _is_none_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class _TimeEqualityVisitor(RuleVisitor):
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_none_constant(left) or _is_none_constant(right):
                continue
            name = _time_named(left) or _time_named(right)
            if name is not None:
                self.report(
                    node,
                    f"exact ==/!= on simulation-time value {name!r}: clock "
                    "values are float sums of delays; use <=/>= bounds or an "
                    "explicit tolerance",
                )
        self.generic_visit(node)


class TimeEqualityRule(Rule):
    id = "SIM001"
    title = "no float equality on simulation-time expressions"
    rationale = (
        "Virtual timestamps are accumulated float arithmetic; two paths to "
        "'the same' instant can differ by one ulp, so equality checks work "
        "on one seed and silently fail on another."
    )
    visitor_class = _TimeEqualityVisitor


# ---------------------------------------------------------------------------
# FAULT001 — fault-schedule code must not own any randomness or clock
# ---------------------------------------------------------------------------


class _FaultScheduleVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.resolve_dotted(node.func)
        if name in _WALL_CLOCK_CALLS:
            self.report(
                node,
                f"wall-clock call {name}() in fault-schedule code: fault "
                "timing must come from the plan and Simulator.now only",
            )
        elif name is not None and name.startswith("random."):
            # Stricter than DET002: even a *seeded* random.Random is banned
            # here. Fault code owning its own RNG forks the random stream,
            # so the injected schedule stops being pinned by the scenario
            # seed alone.
            self.report(
                node,
                f"{name}() in fault-schedule code: channel models and fault "
                "plans must draw exclusively from the Simulator.rng handed "
                "to them, never construct or call their own RNG",
            )
        self.generic_visit(node)


class FaultScheduleRule(Rule):
    id = "FAULT001"
    title = "no wall-clock or random.* calls (even seeded) under faults/"
    rationale = (
        "The fault subsystem's contract is byte-identical schedules for a "
        "given seed, tracing on or off. That only holds if fault code is a "
        "pure function of the plan, Simulator.now and the Simulator.rng it "
        "is passed — any private clock or RNG (seeded or not) breaks the "
        "reproduction of a failure run."
    )
    visitor_class = _FaultScheduleVisitor

    def applies_to(self, path: Path) -> bool:
        return "faults" in path.parts


# ---------------------------------------------------------------------------
# OBS001 — observability code must not perturb or fork determinism sources
# ---------------------------------------------------------------------------


class _MetricsPurityVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.resolve_dotted(node.func)
        if name in _WALL_CLOCK_CALLS:
            self.report(
                node,
                f"wall-clock call {name}() in observability code: scrape and "
                "drill timing must derive from sim time only, or the observer "
                "changes what it observes; wall-time belongs in "
                "metrics/profiler.py",
            )
        elif name is not None and name.startswith("random."):
            # Stricter than DET002: even a *seeded* random.Random is banned.
            # Observability code drawing randomness (sampling, jitter) would
            # fork the random stream, so enabling it would change the run it
            # is supposed to passively observe.
            self.report(
                node,
                f"{name}() in observability code: instruments, scrapers and "
                "handover drills must be pure readers — no sampling jitter, "
                "no private RNG — so observing cannot perturb the run",
            )
        self.generic_visit(node)


class MetricsPurityRule(Rule):
    id = "OBS001"
    title = "no wall-clock or random.* calls under metrics/ or handover/ (profiler exempt)"
    rationale = (
        "The observability layers' contract is zero observer effect: "
        "same-seed runs are byte-identical with scraping on or off, and the "
        "§5k handover drills must fingerprint identically across fresh "
        "interpreters. That only holds if metrics and handover-harness code "
        "is a pure function of registry/trace state and Simulator.now — any "
        "wall-clock read or RNG (seeded or not) couples output to the host. "
        "(The policy's own retry jitter draws a *private* integer-seeded "
        "RNG in repro.core.connection, outside this scope by design.) The "
        "one sanctioned exception is metrics/profiler.py, whose entire "
        "purpose is wall-time measurement."
    )
    visitor_class = _MetricsPurityVisitor

    def applies_to(self, path: Path) -> bool:
        parts = path.parts
        if "metrics" not in parts and "handover" not in parts:
            return False
        return not (len(parts) >= 2 and parts[-2:] == ("metrics", "profiler.py"))


# ---------------------------------------------------------------------------
# OVR001 — unbounded queues in overload-sensitive subsystems
# ---------------------------------------------------------------------------

#: Terminal names that declare an intent to queue. Matching assignment
#: targets must not be initialized as unbounded lists.
_QUEUE_NAME_RE = re.compile(r"(queue|backlog|fifo)$", re.IGNORECASE)


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _deque_is_bounded(node: ast.Call) -> bool:
    """``deque(iterable, maxlen)`` or any explicit ``maxlen=`` keyword."""
    if len(node.args) >= 2:
        return True
    return any(kw.arg == "maxlen" for kw in node.keywords)


class _UnboundedQueueVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.resolve_dotted(node.func)
        if name == "collections.deque" and not _deque_is_bounded(node):
            self.report(
                node,
                "unbounded collections.deque(): hot-path queues in netsim/ "
                "and core/ must declare a capacity (maxlen=...) or carry an "
                "explicit '# lint: disable=OVR001' justifying the exception",
            )
        self.generic_visit(node)

    def _flag_list_queue(self, stmt: ast.AST, target: ast.expr, value: ast.expr) -> None:
        name = _terminal_name(target)
        if name is None or _QUEUE_NAME_RE.search(name) is None:
            return
        is_bare_list = isinstance(value, ast.List) and not value.elts
        is_list_call = (
            isinstance(value, ast.Call)
            and self.ctx.resolve_dotted(value.func) == "list"
            and not value.args
            and not value.keywords
        )
        if is_bare_list or is_list_call:
            self.report(
                stmt,
                f"queue-named {name!r} initialized as an unbounded list: use "
                "a capacity-bounded structure (deque(maxlen=...) or "
                "InterfaceTxQueue) or '# lint: disable=OVR001' with a reason",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._flag_list_queue(node, target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._flag_list_queue(node, node.target, node.value)
        self.generic_visit(node)


class UnboundedQueueRule(Rule):
    id = "OVR001"
    title = "no unbounded queues in netsim/ and core/ hot paths"
    rationale = (
        "Overload control (§5f) only degrades gracefully if every buffer "
        "between admission and the air interface is bounded; one unbounded "
        "deque or bare-list queue turns backpressure into silent memory "
        "growth and unbounded latency. The simulator's event heap is exempt "
        "(virtual events, not in-flight traffic)."
    )
    visitor_class = _UnboundedQueueVisitor

    SCOPED_DIRS = frozenset({"netsim", "core"})

    def applies_to(self, path: Path) -> bool:
        parts = path.parts
        if len(parts) >= 2 and parts[-2:] == ("netsim", "simulator.py"):
            return False
        return any(part in self.SCOPED_DIRS for part in parts)


# ---------------------------------------------------------------------------
# PERF001 — direct heapq use outside the event-kernel module
# ---------------------------------------------------------------------------


class _HeapqUseVisitor(RuleVisitor):
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "heapq" or alias.name.startswith("heapq."):
                self.report(
                    node,
                    "direct 'import heapq': event ordering must go through "
                    "the kernel abstraction (Simulator.schedule* / "
                    "repro.netsim.kernel), not a private heap",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "heapq":
            self.report(
                node,
                "direct 'from heapq import ...': event ordering must go "
                "through the kernel abstraction (Simulator.schedule* / "
                "repro.netsim.kernel), not a private heap",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.resolve_dotted(node.func)
        if name is not None and name.startswith("heapq."):
            self.report(
                node,
                f"direct {name}(): event ordering must go through the "
                "kernel abstraction, not a private heap",
            )
        self.generic_visit(node)


class HeapqUseRule(Rule):
    id = "PERF001"
    title = "no direct heapq use outside repro/netsim/kernel.py"
    rationale = (
        "The pluggable event kernel (calendar queue vs. reference heap) is "
        "the single owner of pending-event ordering; a side heap of timers "
        "bypasses cancellation accounting, parity gates and the O(1) "
        "diagnostics (pending_events/queue_size), and its pop order is "
        "invisible to the cross-kernel determinism contract."
    )
    visitor_class = _HeapqUseVisitor

    def applies_to(self, path: Path) -> bool:
        parts = path.parts
        return not (len(parts) >= 2 and parts[-2:] == ("netsim", "kernel.py"))


# ---------------------------------------------------------------------------
# SHARD family — whole-program shard-safety for region-split logical
# processes. These run over the ProjectGraph, not per file.
# ---------------------------------------------------------------------------

#: Modules the SHARD family certifies. Everything the sharded kernel will
#: fork into worker processes lives here — including repro.handover, whose
#: drills replay inside workers; lint/, trace/, experiments/, faults/,
#: overload/ and the other harnesses stay host-side.
_SHARD_SCOPE_PREFIXES = (
    "repro.netsim.",
    "repro.core.",
    "repro.sip.",
    "repro.routing.",
    "repro.slp.",
    "repro.rtp.",
    "repro.handover.",
)
_SHARD_SCOPE_MODULES = frozenset(
    {
        "repro.scenarios",
        "repro.netsim",
        "repro.core",
        "repro.sip",
        "repro.routing",
        "repro.slp",
        "repro.rtp",
        "repro.handover",
    }
)


def _shard_in_scope(module: str) -> bool:
    """Scope by dotted module name; bare-named modules (fixtures) are in."""
    if module == "repro" or module.startswith("repro."):
        return module in _SHARD_SCOPE_MODULES or module.startswith(_SHARD_SCOPE_PREFIXES)
    return True


def _scoped(graph: ProjectGraph):
    for summary in graph:
        if _shard_in_scope(summary.module):
            yield summary


class ShardGlobalStateRule(ProgramRule):
    id = "SHARD001"
    title = "no unregistered module-level mutable state in shardable modules"
    rationale = (
        "Region-sharded logical processes fork the kernel into workers; any "
        "module-global counter/dict/list written at runtime silently forks "
        "with them and diverges per process. Registering the binding with "
        "repro.globalstate.registry gives sharding one choke point to "
        "enumerate, reset and partition per-process state."
    )

    def check_program(self, graph: ProjectGraph, report: ProgramReporter) -> None:
        for summary in _scoped(graph):
            for binding in summary.flow.mutable_globals:
                if binding["registered"]:
                    continue
                writes = graph.global_writes_to(summary.module, binding["name"])
                if not writes:
                    continue
                writers = sorted({write["from"] for write in writes})
                report(
                    summary,
                    binding["line"],
                    binding["col"],
                    f"module-level mutable {binding['kind']} "
                    f"{binding['name']!r} is written at runtime "
                    f"(by {', '.join(writers)}): register it with "
                    "repro.globalstate.registry so region shards can "
                    "enumerate and reset per-process state",
                )


class ShardClosureEscapeRule(ProgramRule):
    id = "SHARD002"
    title = "no simulator-capturing closures escaping to module-global state"
    rationale = (
        "A closure over a Simulator/WirelessMedium/kernel reference pins one "
        "region's event loop; parking it in module-global state hands every "
        "future shard a pointer into another shard's kernel, and closures "
        "do not pickle across the multiprocessing hand-off. Handlers that "
        "stay on the owning simulator (sim.schedule(...)) are fine."
    )

    def check_program(self, graph: ProjectGraph, report: ProgramReporter) -> None:
        for summary in _scoped(graph):
            for fn in summary.flow.functions:
                for escape in fn.closure_escapes:
                    captures = ", ".join(escape["captures"])
                    report(
                        summary,
                        escape["line"],
                        escape["col"],
                        f"closure {escape['closure']!r} capturing simulator "
                        f"reference(s) {captures} escapes to module-global "
                        f"state via {escape['via']}: it would cross a region "
                        "boundary and cannot pickle into a shard worker",
                    )


class ShardRngShareRule(ProgramRule):
    id = "SHARD003"
    title = "no seeded RNG shared by independently-schedulable components"
    rationale = (
        "Two components that each arm their own events but draw from one "
        "seeded random.Random interleave their draws through the event "
        "order; split them across regions and the interleaving — hence the "
        "whole run — changes. Each schedulable component must own an RNG "
        "derived from its own (sub)seed. Generalizes DET002 across module "
        "boundaries via the call graph."
    )

    def check_program(self, graph: ProjectGraph, report: ProgramReporter) -> None:
        for summary in _scoped(graph):
            for fn in summary.flow.functions:
                for flow in fn.rng_flows:
                    components: dict[str, dict] = {}
                    for sink in flow["sinks"]:
                        resolved = graph.resolve_class(
                            sink["callee"], from_module=summary.module
                        )
                        if resolved is not None and resolved.cls.schedulable:
                            components.setdefault(resolved.dotted, sink)
                    if len(components) >= 2:
                        names = ", ".join(sorted(components))
                        report(
                            summary,
                            flow["line"],
                            flow["col"],
                            f"seeded RNG {flow['name']!r} flows into "
                            f"{len(components)} independently-schedulable "
                            f"components ({names}): each must own an RNG from "
                            "its own subseed or region sharding reorders "
                            "their interleaved draws",
                        )


class ShardUnpicklableRule(ProgramRule):
    id = "SHARD004"
    title = "no unpicklable state reachable from Node/scenario objects"
    rationale = (
        "Region sharding hands Node and scenario state to worker processes "
        "via pickle; an open file, lambda or generator stored anywhere in "
        "the composition closure of Node/ManetScenario turns the hand-off "
        "into a runtime TypeError. The reachability set comes from the "
        "whole-program class-composition graph."
    )

    #: Composition-closure roots: what multiprocessing will serialize.
    ROOT_CLASS_NAMES = frozenset({"Node", "ManetScenario"})

    def check_program(self, graph: ProjectGraph, report: ProgramReporter) -> None:
        reachable = graph.reachable_classes(set(self.ROOT_CLASS_NAMES))
        for summary in _scoped(graph):
            for fn in summary.flow.functions:
                for record in fn.unpicklable_attr_assigns:
                    dotted = self._owner_class(graph, summary, fn.qualname, record)
                    if dotted is None or dotted not in reachable:
                        continue
                    report(
                        summary,
                        record["line"],
                        record["col"],
                        f"{record['kind']} stored on {dotted}.{record['attr']}: "
                        "reachable from Node/scenario state, so the "
                        "multiprocessing hand-off to a region shard cannot "
                        "pickle it; store picklable state (bound methods via "
                        "functools.partial, named functions, plain data)",
                    )

    @staticmethod
    def _owner_class(
        graph: ProjectGraph, summary: ModuleSummary, qualname: str, record: dict
    ) -> str | None:
        owner = record["owner"]
        if owner == "self":
            if "." not in qualname:
                return None
            return f"{summary.module}.{qualname.split('.')[0]}"
        resolved = graph.resolve_class(owner, from_module=summary.module)
        return resolved.dotted if resolved is not None else None


class GlobalRandomIndirectionRule(ProgramRule):
    """DET002, one call level deep: the global ``random`` module smuggled in
    as an "rng" argument. The per-file rule sees ``rng.random()`` inside the
    callee and trusts it; the call graph exposes call sites that bind that
    parameter to the process-global ``random`` module itself."""

    id = "DET002"
    title = "no global random module passed as an rng argument"
    rationale = GlobalRandomRule.rationale

    def check_program(self, graph: ProjectGraph, report: ProgramReporter) -> None:
        for summary in graph:
            for fn in summary.flow.functions:
                for record in fn.random_module_args:
                    resolved = graph.resolve_function(
                        record["callee"], from_module=summary.module
                    )
                    if resolved is None:
                        continue
                    param = self._bound_param(resolved.fn.params, record)
                    if param is None or param not in resolved.fn.rng_consuming_params:
                        continue
                    report(
                        summary,
                        record["line"],
                        record["col"],
                        f"passes the process-global random module to "
                        f"{resolved.dotted}() whose parameter {param!r} draws "
                        "from it: randomness must flow from the simulator's "
                        "seeded Simulator.rng, even through indirection",
                    )

    @staticmethod
    def _bound_param(params: list[str], record: dict) -> str | None:
        if record["keyword"] is not None:
            return record["keyword"] if record["keyword"] in params else None
        position = record["arg_position"]
        if position is not None and position < len(params):
            return params[position]
        return None


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    GlobalRandomRule(),
    GlobalRandomIndirectionRule(),
    SetIterationRule(),
    CacheStateRule(),
    PositionWriteRule(),
    TimeEqualityRule(),
    FaultScheduleRule(),
    MetricsPurityRule(),
    UnboundedQueueRule(),
    HeapqUseRule(),
    ShardGlobalStateRule(),
    ShardClosureEscapeRule(),
    ShardRngShareRule(),
    ShardUnpicklableRule(),
)

_RULES_BY_ID: dict[str, list[Rule]] = {}
for _rule in ALL_RULES:
    _RULES_BY_ID.setdefault(_rule.id, []).append(_rule)


def get_rules(ids: Sequence[str] | None = None) -> tuple[Rule, ...]:
    """The full registry, or the subset named by ``ids`` (case-insensitive).

    An id shared by a per-file rule and its whole-program generalization
    (DET002) selects both.
    """
    if ids is None:
        return ALL_RULES
    selected: list[Rule] = []
    for raw in ids:
        rules = _RULES_BY_ID.get(raw.strip().upper())
        if rules is None:
            known = ", ".join(sorted(_RULES_BY_ID))
            raise KeyError(f"unknown rule id {raw!r} (known: {known})")
        selected.extend(rules)
    return tuple(selected)
