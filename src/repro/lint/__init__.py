"""repro.lint — determinism & cache-coherence static analyzer.

The reproduction's headline property — bit-identical seeded runs of the
SIPHoc call flow — rests on conventions that ordinary tests cannot see:
all time must come from :attr:`Simulator.now`, all randomness from
:attr:`Simulator.rng`, every cache-backed object must be mutated through
its versioned API, and nothing order-sensitive may iterate a bare ``set``.
This package machine-checks those conventions with a stdlib-only AST
analyzer, the way sanitizers and race detectors guard a systems codebase.

Usage::

    python -m repro.lint src/              # lint, text report, exit 1 on findings
    python -m repro.lint --format json src/
    python -m repro.lint --list-rules

Rules (see DESIGN.md §5c for rationale):

========  ====================================================================
DET001    wall-clock reads (``time.time``/``monotonic``/``perf_counter``,
          ``datetime.now``) outside ``netsim/simulator.py`` and ``benchmarks/``
DET002    module-level ``random.*`` calls / un-seeded ``random.Random()``
DET003    iteration over bare ``set``/``frozenset`` in ``netsim/``, ``core/``,
          ``routing/`` (set order feeds event scheduling)
CACHE001  external mutation of cache-versioned private attributes of
          ``Headers``/``SipMessage``/``Packet``
CACHE002  writes to ``Node._position`` that bypass the epoch-notifying setter
SIM001    ``==``/``!=`` on simulation-time expressions (float clock values)
FAULT001  wall-clock or ``random.*`` (even seeded) under ``faults/``
OVR001    unbounded queues in ``netsim/`` and ``core/`` hot paths
PERF001   direct ``heapq`` use outside ``repro/netsim/kernel.py`` (event
          ordering must go through the pluggable kernel)
========  ====================================================================

Findings are suppressed per line with ``# lint: disable=RULEID`` (comma
separated ids, or bare ``# lint: disable`` for every rule).
"""

from repro.lint.core import (
    Finding,
    LintEngine,
    Rule,
    RuleVisitor,
    analyze_file,
    analyze_source,
    iter_python_files,
    run_paths,
)
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import ALL_RULES, get_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintEngine",
    "Rule",
    "RuleVisitor",
    "analyze_file",
    "analyze_source",
    "get_rules",
    "iter_python_files",
    "render_json",
    "render_text",
    "run_paths",
]
