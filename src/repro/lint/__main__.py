"""CLI: ``python -m repro.lint [paths] [--format text|json] [--select IDS]``.

Exits 0 when every checked file is clean, 1 when there are findings, and
2 on usage errors (unknown rule id, no files found).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.lint.core import LintEngine, iter_python_files
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import ALL_RULES, get_rules


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & cache-coherence static analyzer for the "
        "SIPHoc reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id:9} {rule.title}")
        return 0

    try:
        rules = get_rules(args.select.split(",")) if args.select else None
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    files = list(iter_python_files(args.paths))
    if not files:
        print(f"no python files under: {', '.join(args.paths)}", file=sys.stderr)
        return 2

    engine = LintEngine(rules if rules is not None else ALL_RULES)
    findings = engine.run(files)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings, files_checked=len(files)))
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
