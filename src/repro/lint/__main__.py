"""CLI: ``python -m repro.lint [paths] [options]``.

Options::

    --format text|json|sarif   report format (default: text)
    --select IDS               comma-separated rule ids to run
    --changed                  report only findings in files whose content
                               changed since the cached run (whole-program
                               analysis still covers every file)
    --no-cache                 ignore and do not write .lint_cache/
    --cache-dir DIR            cache location (default: .lint_cache)
    --baseline FILE            grandfathered-findings file
                               (default: lint_baseline.json if present)
    --write-baseline           write current findings to the baseline file
    --list-rules               print the rule registry and exit

Exits 0 when every checked file is clean (net of the baseline), 1 when
there are findings, and 2 on usage errors (unknown rule id, no files).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.core import (
    ProjectAnalyzer,
    apply_baseline,
    iter_python_files,
    load_baseline,
    write_baseline,
)
from repro.lint.reporters import render_json, render_sarif, render_text
from repro.lint.rules import ALL_RULES, get_rules

DEFAULT_BASELINE = "lint_baseline.json"
DEFAULT_CACHE_DIR = ".lint_cache"

_RENDERERS = {"text": render_text, "json": render_json, "sarif": render_sarif}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism, cache-coherence & shard-safety static "
        "analyzer for the SIPHoc reproduction (whole-program).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(_RENDERERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="report only findings in files changed since the cached run",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the summary cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=f"summary-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline file of grandfathered findings (default: "
        f"{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        seen: set[str] = set()
        for rule in ALL_RULES:
            marker = "*" if rule.id in seen else " "
            seen.add(rule.id)
            print(f"{rule.id:9}{marker} {rule.title}")
        return 0

    try:
        rules = get_rules(args.select.split(",")) if args.select else None
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    files = list(iter_python_files(args.paths))
    if not files:
        print(f"no python files under: {', '.join(args.paths)}", file=sys.stderr)
        return 2

    cache_dir = None if args.no_cache else args.cache_dir
    analyzer = ProjectAnalyzer(rules, cache_dir=cache_dir)
    result = analyzer.analyze_paths(files, use_cache=not args.no_cache)
    findings = result.findings

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).is_file():
        baseline_path = DEFAULT_BASELINE

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        write_baseline(findings, target)
        print(f"baseline: wrote {len(findings)} findings to {target}")
        return 0

    baselined = 0
    if baseline_path is not None:
        findings, baselined = apply_baseline(findings, load_baseline(baseline_path))

    if args.changed:
        changed = set(result.changed_paths)
        findings = [finding for finding in findings if finding.path in changed]

    renderer = _RENDERERS[args.format]
    print(renderer(findings, files_checked=result.files_checked, baselined=baselined))
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
