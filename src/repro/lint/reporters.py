"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

All three are deterministic: findings arrive pre-sorted from the engine
and every document is emitted with sorted keys, so cold-cache and
warm-cache runs are byte-identical and CI can diff reports directly.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.lint.core import Finding

#: The SARIF version emitted; tools/sarif_schema.json vendors the matching
#: minimal schema used by the check.sh gate.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(
    findings: Sequence[Finding], files_checked: int, baselined: int = 0
) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    lines = [finding.format() for finding in findings]
    suffix = f" ({baselined} baselined)" if baselined else ""
    if findings:
        by_rule = Counter(finding.rule_id for finding in findings)
        breakdown = ", ".join(f"{rule}: {count}" for rule, count in sorted(by_rule.items()))
        lines.append("")
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"in {files_checked} file{'s' if files_checked != 1 else ''} "
            f"({breakdown}){suffix}"
        )
    else:
        lines.append(f"clean: 0 findings in {files_checked} files{suffix}")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], files_checked: int, baselined: int = 0
) -> str:
    """Stable JSON document (sorted keys) for CI consumption."""
    document = {
        "files_checked": files_checked,
        "count": len(findings),
        "baselined": baselined,
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_sarif(
    findings: Sequence[Finding], files_checked: int, baselined: int = 0
) -> str:
    """Minimal SARIF 2.1.0 run, one result per finding.

    Emits the subset GitHub code scanning and IDE SARIF viewers need:
    driver metadata with the rule index, and one ``result`` per finding
    carrying ruleId, message and a physical location. URIs are the paths
    the engine was invoked with, made forward-slashed.
    """
    from repro.lint.rules import ALL_RULES

    seen: set[str] = set()
    rules = []
    for rule in ALL_RULES:
        if rule.id in seen:
            continue
        seen.add(rule.id)
        rules.append(
            {
                "id": rule.id,
                "name": rule.id,
                "shortDescription": {"text": rule.title},
                "fullDescription": {"text": rule.rationale},
            }
        )
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "https://example.invalid/repro.lint",
                        "rules": rules,
                    }
                },
                "results": results,
                "properties": {
                    "filesChecked": files_checked,
                    "baselinedFindings": baselined,
                },
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
