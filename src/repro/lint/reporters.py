"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.lint.core import Finding


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    lines = [finding.format() for finding in findings]
    if findings:
        by_rule = Counter(finding.rule_id for finding in findings)
        breakdown = ", ".join(f"{rule}: {count}" for rule, count in sorted(by_rule.items()))
        lines.append("")
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"in {files_checked} file{'s' if files_checked != 1 else ''} ({breakdown})"
        )
    else:
        lines.append(f"clean: 0 findings in {files_checked} files")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    """Stable JSON document (sorted keys) for CI consumption."""
    document = {
        "files_checked": files_checked,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)
