"""Whole-program structure: module summaries, import graph, call resolution.

The per-file stage (:mod:`repro.lint.core`) produces one
:class:`ModuleSummary` per analyzed file — its dotted module name, import
map, suppression table, per-file findings and the dataflow facts from
:mod:`repro.lint.dataflow`. This module assembles those summaries into a
:class:`ProjectGraph`: a name-resolution layer over the import graph plus
a conservative call/composition graph, on which the SHARD rule family and
the cross-module DET002 sweep run without touching an AST again. That
split is what makes the incremental cache sound: summaries are pure data
keyed by content hash, and the (cheap) whole-program pass re-runs every
time over whatever mix of fresh and cached summaries the engine loaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.lint.dataflow import ClassFlow, FunctionFlow, ModuleFlow

__all__ = [
    "ModuleSummary",
    "ProjectGraph",
    "module_name_for_path",
]

#: Maximum re-export hops followed while resolving a dotted name.
_MAX_RESOLVE_DEPTH = 8


def module_name_for_path(path: Path) -> str:
    """Dotted module name for a source path.

    Paths under a ``src`` directory map to their package-dotted name
    (``src/repro/sip/dialog.py`` -> ``repro.sip.dialog``); anything else
    (fixtures, scratch files) maps to its stem so single-file programs
    still form a one-module graph.
    """
    parts = list(path.parts)
    if "src" in parts:
        rel = parts[len(parts) - 1 - parts[::-1].index("src") + 1 :]
    else:
        rel = [parts[-1]] if parts else []
    if not rel:
        return path.stem
    rel = list(rel)
    rel[-1] = rel[-1][:-3] if rel[-1].endswith(".py") else rel[-1]
    if rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(rel) if rel else path.stem


@dataclass
class ModuleSummary:
    """Everything the whole-program pass knows about one module."""

    path: str
    module: str
    sha: str
    import_map: dict[str, str] = field(default_factory=dict)
    #: Physical line -> suppressed rule ids (``*`` = all), continuation
    #: lines already folded onto their logical line by the engine.
    suppress: dict[int, list[str]] = field(default_factory=dict)
    #: Per-file rule findings, serialized (see Finding.to_dict).
    file_findings: list[dict[str, Any]] = field(default_factory=list)
    flow: ModuleFlow = field(default_factory=ModuleFlow)

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "sha": self.sha,
            "import_map": self.import_map,
            "suppress": {str(line): sorted(ids) for line, ids in self.suppress.items()},
            "file_findings": self.file_findings,
            "flow": self.flow.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModuleSummary":
        return cls(
            path=data["path"],
            module=data["module"],
            sha=data["sha"],
            import_map=dict(data["import_map"]),
            suppress={int(line): list(ids) for line, ids in data["suppress"].items()},
            file_findings=list(data["file_findings"]),
            flow=ModuleFlow.from_dict(data["flow"]),
        )

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        ids = self.suppress.get(line)
        if not ids:
            return False
        return "*" in ids or rule_id.upper() in ids


@dataclass(frozen=True)
class ResolvedClass:
    """A class definition located in the project."""

    module: str
    cls: ClassFlow

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.cls.name}"


@dataclass(frozen=True)
class ResolvedFunction:
    """A function definition located in the project."""

    module: str
    fn: FunctionFlow

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.fn.qualname}"


class ProjectGraph:
    """Name resolution and reachability over a set of module summaries."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        self._class_index: dict[str, dict[str, ClassFlow]] = {}
        self._function_index: dict[str, dict[str, FunctionFlow]] = {}
        for name, summary in self.modules.items():
            self._class_index[name] = {cls.name: cls for cls in summary.flow.classes}
            self._function_index[name] = {
                fn.qualname: fn for fn in summary.flow.functions
            }

    # -- iteration ---------------------------------------------------------

    def __iter__(self) -> Iterator[ModuleSummary]:
        for name in sorted(self.modules):
            yield self.modules[name]

    def __len__(self) -> int:
        return len(self.modules)

    # -- name resolution ---------------------------------------------------

    def summary(self, module: str) -> ModuleSummary | None:
        return self.modules.get(module)

    def resolve_module(self, dotted: str) -> ModuleSummary | None:
        """The summary for an exact dotted module name, if analyzed."""
        return self.modules.get(dotted)

    def resolve_class(self, dotted: str, from_module: str | None = None) -> ResolvedClass | None:
        """Locate a class by dotted name, following one re-export level.

        ``dotted`` may be a local spelling (``NodeStack``) when
        ``from_module`` is given, a fully dotted definition site
        (``repro.netsim.node.Node``), or an import alias re-exported from a
        package ``__init__`` (``repro.netsim.Node``).
        """
        for _ in range(_MAX_RESOLVE_DEPTH):
            if from_module is not None and "." not in dotted:
                local = self._class_index.get(from_module, {}).get(dotted)
                if local is not None:
                    return ResolvedClass(from_module, local)
                # A bare name imported into from_module: follow the alias.
                origin = self.modules[from_module].import_map.get(dotted) if (
                    from_module in self.modules
                ) else None
                if origin is None or origin == dotted:
                    return None
                dotted, from_module = origin, None
                continue
            head, _, tail = dotted.rpartition(".")
            if head in self.modules and tail:
                found = self._class_index[head].get(tail)
                if found is not None:
                    return ResolvedClass(head, found)
                # Re-exported name: follow head's import map.
                origin = self.modules[head].import_map.get(tail)
                if origin is not None and origin != dotted:
                    dotted, from_module = origin, None
                    continue
                return None
            if head:
                # The head itself might be an alias chain (pkg re-export).
                parent = self.modules.get(head)
                if parent is None:
                    return None
                dotted, from_module = dotted, None
                return None
            return None
        return None

    def resolve_function(
        self, dotted: str, from_module: str | None = None
    ) -> ResolvedFunction | None:
        """Locate a module-level function by dotted name (one re-export hop)."""
        for _ in range(_MAX_RESOLVE_DEPTH):
            if from_module is not None and "." not in dotted:
                local = self._function_index.get(from_module, {}).get(dotted)
                if local is not None:
                    return ResolvedFunction(from_module, local)
                origin = self.modules[from_module].import_map.get(dotted) if (
                    from_module in self.modules
                ) else None
                if origin is None or origin == dotted:
                    return None
                dotted, from_module = origin, None
                continue
            head, _, tail = dotted.rpartition(".")
            if head in self.modules and tail:
                found = self._function_index[head].get(tail)
                if found is not None:
                    return ResolvedFunction(head, found)
                origin = self.modules[head].import_map.get(tail)
                if origin is not None and origin != dotted:
                    dotted, from_module = origin, None
                    continue
                return None
            return None
        return None

    # -- mutable-global lookups -------------------------------------------

    def global_writes_to(self, module: str, name: str) -> list[dict[str, Any]]:
        """Every runtime write to ``module.name``, local or cross-module.

        Returns write records augmented with a ``from`` key naming the
        writing module.
        """
        writes: list[dict[str, Any]] = []
        target = self.modules.get(module)
        if target is not None:
            for fn in target.flow.functions:
                for write in fn.global_writes:
                    if write["name"] == name:
                        writes.append({**write, "from": module})
        for other_name in sorted(self.modules):
            other = self.modules[other_name]
            for fn in other.flow.functions:
                for write in fn.external_writes:
                    if write["name"] != name:
                        continue
                    resolved = write["module"]
                    if resolved == module or self._alias_points_to(resolved, module):
                        writes.append({**write, "from": other_name})
        return writes

    def _alias_points_to(self, dotted: str, module: str) -> bool:
        """True if importing ``dotted`` yields the module named ``module``."""
        if dotted == module:
            return True
        # `from repro.sip import auth` records candidate `repro.sip.auth`,
        # which is already fully dotted; aliases of aliases are not chased.
        return False

    # -- class reachability (SHARD004) ------------------------------------

    def subclasses_of(self, roots: set[str]) -> set[str]:
        """Dotted names of classes whose (resolved) bases are in ``roots``."""
        out: set[str] = set()
        for module_name in sorted(self.modules):
            for cls in self.modules[module_name].flow.classes:
                for base in cls.bases:
                    resolved = self.resolve_class(base, from_module=module_name)
                    if resolved is not None and resolved.dotted in roots:
                        out.add(f"{module_name}.{cls.name}")
        return out

    def reachable_classes(self, root_class_names: set[str]) -> set[str]:
        """Transitive composition closure from classes with the given names.

        Starts from every class whose bare name is in ``root_class_names``,
        then follows (a) ``self.x = C(...)`` composition edges and (b)
        subclass edges, to a fixpoint. Returns dotted class names.
        """
        reachable: set[str] = set()
        frontier: list[str] = []
        for module_name in sorted(self.modules):
            for cls in self.modules[module_name].flow.classes:
                if cls.name in root_class_names:
                    dotted = f"{module_name}.{cls.name}"
                    reachable.add(dotted)
                    frontier.append(dotted)
        while frontier:
            current = frontier.pop()
            module_name, _, class_name = current.rpartition(".")
            cls = self._class_index.get(module_name, {}).get(class_name)
            if cls is None:
                continue
            neighbors: set[str] = set()
            for target in cls.compositions:
                resolved = self.resolve_class(target, from_module=module_name)
                if resolved is not None:
                    neighbors.add(resolved.dotted)
            neighbors |= self.subclasses_of({current})
            for neighbor in sorted(neighbors):
                if neighbor not in reachable:
                    reachable.add(neighbor)
                    frontier.append(neighbor)
        return reachable
