"""Analyzer core: findings, suppressions, the visitor framework, the engine.

A :class:`Rule` inspects one module AST and reports :class:`Finding`\\ s
through a :class:`FileContext`. Most rules subclass :class:`RuleVisitor`,
an ``ast.NodeVisitor`` that tracks the enclosing class/function stack;
rules that need whole-module dataflow (e.g. DET003's set-type inference)
override :meth:`Rule.check` directly.

Suppression: a trailing ``# lint: disable=DET001`` (comma-separated ids)
or a bare ``# lint: disable`` silences findings reported on that physical
line. Suppressions are per line, never per file: a blanket opt-out would
defeat the determinism contract the analyzer enforces.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Matches ``# lint: disable`` / ``# lint: disable=DET001,CACHE001``.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable(?:\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+))?")

#: Sentinel stored in the suppression table meaning "every rule".
_ALL_RULES = "*"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


class Suppressions:
    """Per-line ``# lint: disable=...`` comments, parsed from the token stream.

    Comments are read with :mod:`tokenize` rather than a regex over raw
    lines so a ``# lint: disable`` inside a string literal is not honoured.
    """

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, set[str]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _SUPPRESS_RE.search(token.string)
                if match is None:
                    continue
                ids_text = match.group("ids")
                line_set = self._by_line.setdefault(token.start[0], set())
                if ids_text is None:
                    line_set.add(_ALL_RULES)
                else:
                    line_set.update(
                        chunk.strip().upper()
                        for chunk in ids_text.split(",")
                        if chunk.strip()
                    )
        except tokenize.TokenError:
            pass  # unterminated source; the parse error surfaces elsewhere

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        ids = self._by_line.get(line)
        if not ids:
            return False
        return _ALL_RULES in ids or rule_id.upper() in ids


class FileContext:
    """Per-file state shared by every rule: source, imports, findings."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.suppressions = Suppressions(source)
        self.findings: list[Finding] = []
        self.suppressed_count = 0
        self.import_map: dict[str, str] = {}

    def build_import_map(self, tree: ast.Module) -> None:
        """Map local names to dotted origins (``m`` -> ``time.monotonic``)."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    self.import_map[local] = alias.name if alias.asname else local
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    origin = f"{module}.{alias.name}" if module else alias.name
                    self.import_map[local] = origin

    def resolve_dotted(self, node: ast.expr) -> str | None:
        """Dotted name of an expression, resolved through the import map.

        ``datetime.now`` with ``from datetime import datetime`` resolves to
        ``datetime.datetime.now``; non-name expressions resolve to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.import_map.get(node.id, node.id)
        parts.append(base)
        parts.reverse()
        return ".".join(parts)

    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressions.is_suppressed(line, rule.id):
            self.suppressed_count += 1
            return
        self.findings.append(Finding(self.path, line, col + 1, rule.id, message))


class Rule:
    """Base class for analyzer rules.

    Subclasses set :attr:`id`, :attr:`title` and :attr:`rationale`, narrow
    :meth:`applies_to` if path-scoped, and either provide a
    :attr:`visitor_class` (a :class:`RuleVisitor` subclass) or override
    :meth:`check` for whole-module analyses.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    visitor_class: "type[RuleVisitor] | None" = None

    def applies_to(self, path: Path) -> bool:
        return True

    def check(self, tree: ast.Module, ctx: FileContext) -> None:
        if self.visitor_class is None:  # pragma: no cover - abstract misuse
            raise NotImplementedError(f"{self.id}: no visitor_class and no check()")
        self.visitor_class(self, ctx).visit(tree)


class RuleVisitor(ast.NodeVisitor):
    """``ast.NodeVisitor`` with class/function scope stacks.

    Subclasses override ``visit_*`` for the nodes they care about and call
    ``self.generic_visit(node)`` to keep descending. ``visit_ClassDef`` /
    function visits maintain the stacks; override ``handle_ClassDef`` etc.
    to hook those nodes without losing the bookkeeping.
    """

    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.class_stack: list[ast.ClassDef] = []
        self.function_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []

    @property
    def current_class(self) -> ast.ClassDef | None:
        return self.class_stack[-1] if self.class_stack else None

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.report(self.rule, node, message)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node)
        self.handle_ClassDef(node)
        self.generic_visit(node)
        self.class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.function_stack.append(node)
        self.handle_FunctionDef(node)
        self.generic_visit(node)
        self.function_stack.pop()

    def handle_ClassDef(self, node: ast.ClassDef) -> None:
        """Hook for subclasses; scope bookkeeping is already done."""

    def handle_FunctionDef(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        """Hook for subclasses; scope bookkeeping is already done."""


class LintEngine:
    """Runs a set of rules over files and collects findings."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)

    def analyze_source(self, source: str, path: str = "<string>") -> list[Finding]:
        ctx = FileContext(path, source)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            line = exc.lineno or 1
            col = (exc.offset or 1)
            return [Finding(path, line, col, "PARSE", f"syntax error: {exc.msg}")]
        ctx.build_import_map(tree)
        resolved = Path(path)
        for rule in self.rules:
            if rule.applies_to(resolved):
                rule.check(tree, ctx)
        return sorted(ctx.findings, key=Finding.sort_key)

    def analyze_file(self, path: str | Path) -> list[Finding]:
        text = Path(path).read_text(encoding="utf-8")
        return self.analyze_source(text, str(path))

    def run(self, paths: Iterable[str | Path]) -> list[Finding]:
        findings: list[Finding] = []
        for file_path in iter_python_files(paths):
            findings.extend(self.analyze_file(file_path))
        return sorted(findings, key=Finding.sort_key)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in sorted, deterministic order."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            yield path


def _default_engine(rules: Sequence[Rule] | None = None) -> LintEngine:
    if rules is None:
        from repro.lint.rules import ALL_RULES

        rules = ALL_RULES
    return LintEngine(rules)


def analyze_source(
    source: str, path: str = "<string>", rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Analyze one module's source text with the given (default: all) rules."""
    return _default_engine(rules).analyze_source(source, path)


def analyze_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Analyze one file on disk."""
    return _default_engine(rules).analyze_file(path)


def run_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Analyze every ``.py`` file under ``paths``; findings sorted by location."""
    return _default_engine(rules).run(paths)
