"""Analyzer core: findings, suppressions, the visitor framework, the engines.

Two analysis stages share this module. The *per-file* stage is PR 2's
design: a :class:`Rule` inspects one module AST and reports
:class:`Finding`\\ s through a :class:`FileContext`; most rules subclass
:class:`RuleVisitor`. The *whole-program* stage added for the SHARD rule
family runs after every file has been summarized: a :class:`ProgramRule`
sees the :class:`~repro.lint.graph.ProjectGraph` of module summaries and
reports findings into any module, with that module's suppression table
still honoured.

:class:`ProjectAnalyzer` orchestrates both stages and owns the
incremental cache: per-module summaries (including per-file findings) are
stored under ``.lint_cache/`` keyed by content hash and an engine
fingerprint (a hash of the analyzer's own sources), so warm runs skip the
parse/visit work entirely while emitting byte-identical reports.

Suppression: a trailing ``# lint: disable=DET001`` (comma-separated ids)
or a bare ``# lint: disable`` silences findings reported on that physical
line — or, when the comment sits on a continuation line, on the logical
line it belongs to. Suppressions are per line, never per file: a blanket
opt-out would defeat the determinism contract the analyzer enforces.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

#: Matches ``# lint: disable`` / ``# lint: disable=DET001,CACHE001``.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable(?:\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+))?")

#: Sentinel stored in the suppression table meaning "every rule".
_ALL_RULES = "*"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            rule_id=str(data["rule"]),
            message=str(data["message"]),
        )

    def fingerprint(self) -> str:
        """Line-insensitive identity used by the committed baseline."""
        return f"{self.path}::{self.rule_id}::{self.message}"


class Suppressions:
    """Per-line ``# lint: disable=...`` comments, parsed from the token stream.

    Comments are read with :mod:`tokenize` rather than a regex over raw
    lines so a ``# lint: disable`` inside a string literal is not honoured.
    A comment on a *continuation* line of a multi-line statement also
    registers on the logical line's first physical line, because rules
    report findings at the statement's start.
    """

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, set[str]] = {}
        logical_start: int | None = None
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type == tokenize.NEWLINE:
                    logical_start = None
                    continue
                if token.type == tokenize.COMMENT:
                    match = _SUPPRESS_RE.search(token.string)
                    if match is None:
                        continue
                    ids_text = match.group("ids")
                    lines = {token.start[0]}
                    if logical_start is not None:
                        lines.add(logical_start)
                    for line in lines:
                        line_set = self._by_line.setdefault(line, set())
                        if ids_text is None:
                            line_set.add(_ALL_RULES)
                        else:
                            line_set.update(
                                chunk.strip().upper()
                                for chunk in ids_text.split(",")
                                if chunk.strip()
                            )
                    continue
                if token.type in (
                    tokenize.NL,
                    tokenize.INDENT,
                    tokenize.DEDENT,
                    tokenize.ENCODING,
                    tokenize.ENDMARKER,
                ):
                    continue
                if logical_start is None:
                    logical_start = token.start[0]
        except tokenize.TokenError:
            pass  # unterminated source; the parse error surfaces elsewhere

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        ids = self._by_line.get(line)
        if not ids:
            return False
        return _ALL_RULES in ids or rule_id.upper() in ids

    def table(self) -> dict[int, list[str]]:
        """The line -> rule-id table, serializable for module summaries."""
        return {line: sorted(ids) for line, ids in self._by_line.items()}


class FileContext:
    """Per-file state shared by every rule: source, imports, findings."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.suppressions = Suppressions(source)
        self.findings: list[Finding] = []
        self.suppressed_count = 0
        self.import_map: dict[str, str] = {}

    def build_import_map(self, tree: ast.Module) -> None:
        """Map local names to dotted origins (``m`` -> ``time.monotonic``)."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    self.import_map[local] = alias.name if alias.asname else local
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    origin = f"{module}.{alias.name}" if module else alias.name
                    self.import_map[local] = origin

    def resolve_dotted(self, node: ast.expr) -> str | None:
        """Dotted name of an expression, resolved through the import map.

        ``datetime.now`` with ``from datetime import datetime`` resolves to
        ``datetime.datetime.now``; non-name expressions resolve to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.import_map.get(node.id, node.id)
        parts.append(base)
        parts.reverse()
        return ".".join(parts)

    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressions.is_suppressed(line, rule.id):
            self.suppressed_count += 1
            return
        self.findings.append(Finding(self.path, line, col + 1, rule.id, message))


class Rule:
    """Base class for per-file analyzer rules.

    Subclasses set :attr:`id`, :attr:`title` and :attr:`rationale`, narrow
    :meth:`applies_to` if path-scoped, and either provide a
    :attr:`visitor_class` (a :class:`RuleVisitor` subclass) or override
    :meth:`check` for whole-module analyses.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    visitor_class: "type[RuleVisitor] | None" = None

    def applies_to(self, path: Path) -> bool:
        return True

    def check(self, tree: ast.Module, ctx: FileContext) -> None:
        if self.visitor_class is None:  # pragma: no cover - abstract misuse
            raise NotImplementedError(f"{self.id}: no visitor_class and no check()")
        self.visitor_class(self, ctx).visit(tree)


class ProgramRule(Rule):
    """Base class for whole-program rules (the SHARD family).

    These run once per analysis over the assembled
    :class:`~repro.lint.graph.ProjectGraph` instead of per file; they see
    every module's summary (imports, symbol tables, dataflow facts) and
    report through ``report(summary, line, col, message)``. Suppression
    comments in the *flagged* module still apply.
    """

    def check(self, tree: ast.Module, ctx: FileContext) -> None:
        """Program rules do not participate in the per-file stage."""

    def check_program(self, graph: "ProjectGraph", report: "ProgramReporter") -> None:
        raise NotImplementedError(f"{self.id}: check_program() not implemented")


class RuleVisitor(ast.NodeVisitor):
    """``ast.NodeVisitor`` with class/function scope stacks.

    Subclasses override ``visit_*`` for the nodes they care about and call
    ``self.generic_visit(node)`` to keep descending. ``visit_ClassDef`` /
    function visits maintain the stacks; override ``handle_ClassDef`` etc.
    to hook those nodes without losing the bookkeeping.
    """

    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.class_stack: list[ast.ClassDef] = []
        self.function_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []

    @property
    def current_class(self) -> ast.ClassDef | None:
        return self.class_stack[-1] if self.class_stack else None

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.report(self.rule, node, message)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node)
        self.handle_ClassDef(node)
        self.generic_visit(node)
        self.class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.function_stack.append(node)
        self.handle_FunctionDef(node)
        self.generic_visit(node)
        self.function_stack.pop()

    def handle_ClassDef(self, node: ast.ClassDef) -> None:
        """Hook for subclasses; scope bookkeeping is already done."""

    def handle_FunctionDef(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        """Hook for subclasses; scope bookkeeping is already done."""


# ---------------------------------------------------------------------------
# Whole-program orchestration
# ---------------------------------------------------------------------------

from repro.lint.dataflow import analyze_module as _analyze_dataflow  # noqa: E402
from repro.lint.graph import ModuleSummary, ProjectGraph, module_name_for_path  # noqa: E402


class ProgramReporter:
    """Routes program-rule findings through per-module suppression tables."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []
        self.suppressed_count = 0
        self._rule: Rule | None = None

    def bind(self, rule: Rule) -> None:
        self._rule = rule

    def __call__(
        self, summary: ModuleSummary, line: int, col: int, message: str
    ) -> None:
        assert self._rule is not None
        if summary.is_suppressed(line, self._rule.id):
            self.suppressed_count += 1
            return
        self.findings.append(
            Finding(summary.path, line, col + 1, self._rule.id, message)
        )


@dataclass
class ProjectResult:
    """Outcome of one whole-program analysis."""

    findings: list[Finding]
    files_checked: int
    changed_paths: list[str] = field(default_factory=list)
    cached_paths: list[str] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return len(self.cached_paths)


_engine_fingerprint_cache: str | None = None


def engine_fingerprint() -> str:
    """Hash of the analyzer's own sources; any rule edit invalidates caches."""
    global _engine_fingerprint_cache
    if _engine_fingerprint_cache is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).parent
        for path in sorted(package_dir.glob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
        _engine_fingerprint_cache = digest.hexdigest()
    return _engine_fingerprint_cache


def _content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SummaryCache:
    """The ``.lint_cache/`` store: one JSON document of module summaries.

    Entries are keyed by file path and validated against the file's
    content hash, the engine fingerprint, and the active rule-set ids, so
    a stale entry can never be served: editing the file, editing the
    analyzer, or running with ``--select`` all miss.
    """

    FILENAME = "summaries.json"

    def __init__(self, directory: str | Path, ruleset: str = "") -> None:
        self.directory = Path(directory)
        self.path = self.directory / self.FILENAME
        self.ruleset = ruleset
        self._entries: dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if document.get("engine") != engine_fingerprint():
            return
        if document.get("rules", "") != self.ruleset:
            return
        entries = document.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, path: str, sha: str) -> ModuleSummary | None:
        entry = self._entries.get(path)
        if entry is None or entry.get("sha") != sha:
            return None
        try:
            return ModuleSummary.from_dict(entry)
        except (KeyError, TypeError, ValueError):
            return None

    def previous_sha(self, path: str) -> str | None:
        entry = self._entries.get(path)
        return entry.get("sha") if entry is not None else None

    def put(self, summary: ModuleSummary) -> None:
        self._entries[summary.path] = summary.to_dict()
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        document = {
            "engine": engine_fingerprint(),
            "rules": self.ruleset,
            "entries": self._entries,
        }
        self.path.write_text(
            json.dumps(document, indent=None, sort_keys=True), encoding="utf-8"
        )
        self._dirty = False


class ProjectAnalyzer:
    """Runs the per-file stage (cached) plus the whole-program stage."""

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        cache_dir: str | Path | None = None,
    ) -> None:
        if rules is None:
            from repro.lint.rules import ALL_RULES

            rules = ALL_RULES
        self.file_rules = [r for r in rules if not isinstance(r, ProgramRule)]
        self.program_rules = [r for r in rules if isinstance(r, ProgramRule)]
        ruleset = ",".join(sorted({rule.id for rule in rules}))
        self.cache = (
            SummaryCache(cache_dir, ruleset=ruleset) if cache_dir is not None else None
        )

    # -- per-file stage ----------------------------------------------------

    def summarize_source(self, source: str, path: str) -> ModuleSummary:
        """Run per-file rules and dataflow extraction over one module."""
        sha = _content_hash(source)
        module = module_name_for_path(Path(path))
        ctx = FileContext(path, source)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            line = exc.lineno or 1
            col = exc.offset or 1
            finding = Finding(path, line, col, "PARSE", f"syntax error: {exc.msg}")
            return ModuleSummary(
                path=path, module=module, sha=sha, file_findings=[finding.to_dict()]
            )
        ctx.build_import_map(tree)
        resolved = Path(path)
        for rule in self.file_rules:
            if rule.applies_to(resolved):
                rule.check(tree, ctx)
        flow = _analyze_dataflow(tree, ctx.import_map)
        findings = sorted(ctx.findings, key=Finding.sort_key)
        return ModuleSummary(
            path=path,
            module=module,
            sha=sha,
            import_map=dict(ctx.import_map),
            suppress=ctx.suppressions.table(),
            file_findings=[finding.to_dict() for finding in findings],
            flow=flow,
        )

    # -- whole-program stage ----------------------------------------------

    def run_program_rules(self, graph: ProjectGraph) -> list[Finding]:
        reporter = ProgramReporter()
        for rule in self.program_rules:
            reporter.bind(rule)
            rule.check_program(graph, reporter)
        return reporter.findings

    # -- orchestration -----------------------------------------------------

    def analyze_paths(
        self, paths: Iterable[str | Path], use_cache: bool = True
    ) -> ProjectResult:
        files = list(iter_python_files(paths))
        summaries: list[ModuleSummary] = []
        changed: list[str] = []
        cached: list[str] = []
        for file_path in files:
            source = Path(file_path).read_text(encoding="utf-8")
            sha = _content_hash(source)
            key = str(file_path)
            summary = None
            if use_cache and self.cache is not None:
                summary = self.cache.get(key, sha)
            if summary is not None:
                cached.append(key)
            else:
                summary = self.summarize_source(source, key)
                changed.append(key)
                if self.cache is not None:
                    self.cache.put(summary)
            summaries.append(summary)
        if self.cache is not None:
            self.cache.save()
        graph = ProjectGraph(summaries)
        findings = [
            Finding.from_dict(data)
            for summary in summaries
            for data in summary.file_findings
        ]
        findings.extend(self.run_program_rules(graph))
        return ProjectResult(
            findings=sorted(findings, key=Finding.sort_key),
            files_checked=len(files),
            changed_paths=changed,
            cached_paths=cached,
        )

    def analyze_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Single-module analysis: per-file rules plus a one-module program."""
        summary = self.summarize_source(source, path)
        findings = [Finding.from_dict(data) for data in summary.file_findings]
        findings.extend(self.run_program_rules(ProjectGraph([summary])))
        return sorted(findings, key=Finding.sort_key)

    def analyze_file(self, path: str | Path) -> list[Finding]:
        text = Path(path).read_text(encoding="utf-8")
        return self.analyze_source(text, str(path))


class LintEngine:
    """Backwards-compatible facade over :class:`ProjectAnalyzer`.

    PR 2's per-file engine API, kept for callers and tests; whole-program
    rules run over each call's file set as one program.
    """

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)
        self._analyzer = ProjectAnalyzer(self.rules)

    def analyze_source(self, source: str, path: str = "<string>") -> list[Finding]:
        return self._analyzer.analyze_source(source, path)

    def analyze_file(self, path: str | Path) -> list[Finding]:
        return self._analyzer.analyze_file(path)

    def run(self, paths: Iterable[str | Path]) -> list[Finding]:
        return self._analyzer.analyze_paths(paths, use_cache=False).findings


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


def load_baseline(path: str | Path) -> set[str]:
    """Load committed finding fingerprints; missing file = empty baseline."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError:
        return set()
    entries = document.get("findings", []) if isinstance(document, dict) else []
    out: set[str] = set()
    for entry in entries:
        if isinstance(entry, dict):
            out.add(f"{entry.get('path')}::{entry.get('rule')}::{entry.get('message')}")
    return out


def write_baseline(findings: Sequence[Finding], path: str | Path) -> None:
    """Persist current findings as the grandfathered baseline."""
    document = {
        "comment": (
            "repro.lint baseline: grandfathered findings, matched by "
            "(path, rule, message) — line numbers may drift. Shrink, never grow."
        ),
        "findings": [
            {"path": f.path, "rule": f.rule_id, "message": f.message}
            for f in sorted(findings, key=Finding.sort_key)
        ],
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding], baseline: set[str]
) -> tuple[list[Finding], int]:
    """Split findings into (fresh, baselined-count)."""
    fresh = [f for f in findings if f.fingerprint() not in baseline]
    return fresh, len(findings) - len(fresh)


# ---------------------------------------------------------------------------
# Module-level helpers (the public API)
# ---------------------------------------------------------------------------


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in sorted, deterministic order."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            yield path


def _default_analyzer(rules: Sequence[Rule] | None = None) -> ProjectAnalyzer:
    return ProjectAnalyzer(rules)


def analyze_source(
    source: str, path: str = "<string>", rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Analyze one module's source text with the given (default: all) rules."""
    return _default_analyzer(rules).analyze_source(source, path)


def analyze_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Analyze one file on disk."""
    return _default_analyzer(rules).analyze_file(path)


def run_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    cache_dir: str | Path | None = None,
) -> list[Finding]:
    """Analyze every ``.py`` file under ``paths`` as one whole program."""
    analyzer = ProjectAnalyzer(rules, cache_dir=cache_dir)
    return analyzer.analyze_paths(paths).findings
