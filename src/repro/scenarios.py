"""Scenario builders: reusable topologies and call workloads.

Everything the examples, integration tests and benchmarks share lives
here: MANET construction (chain / grid / random with either routing
protocol), optional Internet attachment with SIP providers, phone
placement, and call workload execution with metric collection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SipAccount, SiphocConfig
from repro.core.provider import SipProvider
from repro.core.softphone import SoftPhone
from repro.core.stack import SiphocStack
from repro.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.netsim.internet import InternetCloud
from repro.netsim.medium import WirelessMedium
from repro.netsim.mobility import (
    RandomWaypointMobility,
    place_chain,
    place_grid,
    place_random,
)
from repro.netsim.node import Node
from repro.netsim.packet import manet_ip
from repro.netsim.simulator import Simulator
from repro.netsim.stats import Stats
from repro.metrics import instruments as metrics_instruments
from repro.metrics import scraper as metrics_scraper
from repro.routing.aodv import Aodv
from repro.rtp.jitter import AdaptivePlayoutPolicy, JitterPolicy
from repro.sip.ua import CallState
from repro.trace import collector as trace_collector

DEFAULT_DOMAIN = "voicehoc.ch"


def _media_policy(name: str) -> JitterPolicy:
    """Resolve a ``media_jitter_policy`` config name to a policy instance."""
    if name == "adaptive":
        return AdaptivePlayoutPolicy()
    raise ConfigError(f"unknown media_jitter_policy {name!r}")


@dataclass
class ManetConfig:
    """Parameters of a simulated MANET."""

    n_nodes: int = 5
    topology: str = "chain"  # chain | grid | random
    routing: str = "aodv"  # aodv | olsr
    # RREQ-retry horizon: RFC 3561 NET_DIAMETER override for small networks
    # (None keeps the protocol default of 35 hops -> 2.8 s retry timeout).
    aodv_net_diameter: int | None = None
    seed: int = 1
    tx_range: float = 150.0
    spacing: float = 100.0  # chain/grid spacing
    area: tuple[float, float] = (600.0, 600.0)  # random placement area
    loss_rate: float = 0.0
    mac_retries: int = 3  # 802.11-style link-layer retransmissions
    spatial_index: bool = True  # False = brute-force O(N) neighbor scans (parity mode)
    kernel: str = "calendar"  # event kernel: calendar (fast path) | heap (parity ref)
    batch_delivery: bool = True  # False = per-neighbor schedule calls (parity mode)
    mobility: bool = False
    mobility_speed: tuple[float, float] = (0.5, 2.0)
    mobility_pause: float = 5.0
    internet_gateways: int = 0  # how many nodes get wired attachments
    # Node indexes given a wired uplink WITHOUT the gateway role (§5k
    # multihomed phones): they never advertise gateway.siphoc, the uplink
    # exists purely as the handover target for mid-call migration.
    multihomed: tuple[int, ...] = ()
    # Run the per-node Connection Provider (gateway discovery). Without any
    # Internet attachment its periodic SLP lookups can never succeed, yet each
    # one floods the whole MANET — O(N^2) receptions per poll round. Large
    # MANET-only scenarios (the 5k-node city) turn it off.
    connection_provider: bool = True
    providers: tuple[str, ...] = ()
    strict_providers: tuple[str, ...] = ()  # providers mandating an SBC
    tracing: bool = False  # attach a repro.trace collector to the simulator
    trace_capacity: int = 65536  # trace ring-buffer size (events)
    metrics: bool = False  # attach a repro.metrics scraper + standard gauges
    metrics_interval: float = 1.0  # sim-seconds between metric snapshots
    faults: FaultPlan | None = None  # timed fault events + optional channel model
    # -- media plane (§5j; defaults keep phone SDP and schedules bit-identical)
    media_jitter_policy: str = "fixed"  # fixed | adaptive playout-delay policy
    media_redundancy: int = 0  # RFC 2198 depth every phone offers (0 = off)
    media_vad: bool = False  # silence suppression + comfort-noise frames
    # -- overload control (§5f; defaults keep every path bit-identical) -------
    tx_queue_capacity: int | None = None  # bounded per-node TX queue (None = unbounded)
    tx_queue_policy: str = "tail-drop"  # tail-drop | oldest-first
    siphoc: SiphocConfig | None = None  # shared per-node stack config (admission etc.)


class ManetScenario:
    """A fully wired simulation: MANET + optional Internet + SIPHoc stacks."""

    def __init__(self, config: ManetConfig | None = None, **overrides) -> None:
        base = config or ManetConfig()
        for key, value in overrides.items():
            if not hasattr(base, key):
                raise ConfigError(f"unknown scenario parameter {key!r}")
            setattr(base, key, value)
        self.config = base
        self.sim = Simulator(seed=base.seed, kernel=base.kernel)
        self.stats = Stats()
        # Tracing attaches before any stack is built so construction-time
        # events (gateway.up, slp.advertise, ...) are captured too. The
        # process-wide default (repro.trace.enable_default) is how
        # `python -m repro.experiments --trace` opts in without reaching
        # into every scenario constructor.
        self.trace: trace_collector.TraceCollector | None = None
        default_cap = trace_collector.default_capacity()
        if base.tracing or default_cap is not None:
            capacity = base.trace_capacity if base.tracing else default_cap
            self.trace = trace_collector.TraceCollector(capacity=capacity).attach(self.sim)
            trace_collector.register(self.trace)
        self.medium = WirelessMedium(
            self.sim,
            stats=self.stats,
            tx_range=base.tx_range,
            loss_rate=base.loss_rate,
            mac_retries=base.mac_retries,
            use_spatial_index=base.spatial_index,
            batch_delivery=base.batch_delivery,
        )
        if base.faults is not None and base.faults.channel is not None:
            self.medium.channel = base.faults.channel
            # Time-domain channels (sojourns in sim-seconds) need the clock.
            bind = getattr(base.faults.channel, "bind_clock", None)
            if bind is not None:
                bind(self.sim)
        self.cloud: InternetCloud | None = None
        self.providers: dict[str, SipProvider] = {}
        needs_cloud = (
            base.internet_gateways > 0
            or bool(base.multihomed)
            or base.providers
            or base.strict_providers
        )
        if needs_cloud:
            self.cloud = InternetCloud(self.sim, stats=self.stats)
            for domain in base.providers:
                self.providers[domain] = SipProvider(self.cloud, domain)
            for domain in base.strict_providers:
                self.providers[domain] = SipProvider(
                    self.cloud, domain, requires_outbound_proxy=True
                )
        self.nodes: list[Node] = []
        for index in range(base.n_nodes):
            node = Node(self.sim, index, manet_ip(index), stats=self.stats)
            node.join_medium(self.medium)
            if base.tx_queue_capacity is not None:
                node.configure_tx_queue(base.tx_queue_capacity, base.tx_queue_policy)
            self.nodes.append(node)
        self._place_nodes()
        if self.cloud is not None:
            # Gateways are the last nodes (edge of a chain, corner of a grid).
            for node in self.nodes[-base.internet_gateways :] if base.internet_gateways else []:
                self.cloud.attach(node)
            # Multihomed phone nodes get an uplink too, but no gateway role.
            for index in base.multihomed:
                if self.nodes[index].wired_ip is None:
                    self.cloud.attach(self.nodes[index])
        self.stacks: list[SiphocStack] = [
            SiphocStack(
                node,
                routing=self._make_routing(node),
                cloud=self.cloud,
                config=base.siphoc,
                run_connection_provider=base.connection_provider,
                gateway_role=self._gateway_role(node),
            )
            for node in self.nodes
        ]
        self.mobility: RandomWaypointMobility | None = None
        if base.mobility:
            self.mobility = RandomWaypointMobility(
                self.sim,
                self.nodes,
                width=base.area[0],
                height=base.area[1],
                min_speed=base.mobility_speed[0],
                max_speed=base.mobility_speed[1],
                pause_time=base.mobility_pause,
            )
        # Metrics mirror the trace opt-in: per-scenario via the config flag,
        # process-wide via repro.metrics.enable_default (how the harness
        # `--metrics` flags opt in without touching every constructor). The
        # scraper piggybacks on Simulator.run — no scheduled events, so the
        # event schedule is byte-identical with metrics on or off.
        self.metrics: metrics_scraper.MetricsScraper | None = None
        default_interval = metrics_scraper.default_interval()
        if base.metrics or default_interval is not None:
            interval = base.metrics_interval if base.metrics else default_interval
            self.metrics = metrics_scraper.MetricsScraper(interval=interval).attach(self.sim)
            metrics_instruments.install_scenario_instruments(self)
            metrics_scraper.register(self.metrics)
        self.phones: dict[str, SoftPhone] = {}
        self._phone_specs: list[dict] = []
        self._retired_phones: list[SoftPhone] = []
        self.faults: FaultInjector | None = None
        if base.faults is not None:
            self.faults = FaultInjector(self, base.faults)
        self._started = False

    def _gateway_role(self, node: Node) -> bool | None:
        """Gateway-role argument for one stack.

        ``None`` preserves the legacy inference (wired attachment ⇒
        gateway) for every pre-existing scenario; multihomed phone nodes
        get an explicit ``False`` so their §5k uplink doesn't also turn
        them into advertised gateways.
        """
        if node.node_id in self.config.multihomed and not self._is_gateway_index(
            node.node_id
        ):
            return False
        return None

    def _is_gateway_index(self, index: int) -> bool:
        gateways = self.config.internet_gateways
        return gateways > 0 and index >= self.config.n_nodes - gateways

    def _make_routing(self, node: Node) -> str | Aodv:
        """Routing argument for one stack: the config string, or a tuned
        AODV instance when ``aodv_net_diameter`` overrides the RFC default
        (the string path stays byte-identical for every existing scenario)."""
        if self.config.routing == "aodv" and self.config.aodv_net_diameter is not None:
            return Aodv(node, net_diameter=self.config.aodv_net_diameter)
        return self.config.routing

    def _place_nodes(self) -> None:
        topology = self.config.topology
        if topology == "chain":
            place_chain(self.nodes, self.config.spacing)
        elif topology == "grid":
            place_grid(self.nodes, self.config.spacing)
        elif topology == "random":
            place_random(self.nodes, self.sim, *self.config.area)
        else:
            raise ConfigError(f"unknown topology {topology!r}")

    # -- lifecycle ------------------------------------------------------------------
    def start(self) -> "ManetScenario":
        if self._started:
            return self
        self._started = True
        for stack in self.stacks:
            stack.start()
        if self.mobility is not None:
            self.mobility.start()
        if self.faults is not None and not self.faults.armed:
            self.faults.arm()
        return self

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        if self.mobility is not None:
            self.mobility.stop()
        for stack in self.stacks:
            stack.stop()

    # -- fault hooks ------------------------------------------------------------------
    def crash_node(self, index: int) -> None:
        """Abruptly kill node ``index``: no goodbye signaling escapes.

        The node's phones are retired (their call history stays reachable
        through :meth:`call_records`) and the stack is torn down with the
        interfaces already dead, so peers only learn of the failure through
        timeouts and routing-layer link breaks.
        """
        stack = self.stacks[index]
        for phone in stack.phones:
            self._retired_phones.append(phone)
        stack.crash()

    def restart_node(self, index: int) -> SiphocStack:
        """Power-cycle node ``index``: rebuild its stack from scratch.

        All prior state (routes, SLP caches, registrations, tunnel leases)
        is gone — exactly what a rebooted device looks like to the rest of
        the MANET. Phones previously added to the node are re-created from
        their recorded specs.
        """
        old = self.stacks[index]
        if old._started:
            self.crash_node(index)
        node = self.nodes[index]
        node.restart()
        if node.wired_ip is not None and self.cloud is not None:
            # Node.crash() wiped the default routes; the wired uplink the
            # cloud attached at build time has to be reinstalled.
            node.set_default_route("wired", self.cloud.send, priority=0)
        stack = SiphocStack(
            node,
            routing=self._make_routing(node),
            cloud=self.cloud,
            config=self.config.siphoc,
            gateway_role=self._gateway_role(node),
        )
        self.stacks[index] = stack
        if self._started:
            stack.start()
        for spec in self._phone_specs:
            if spec["node_index"] != index:
                continue
            account = spec["account"]
            phone = stack.add_phone(
                account=account,
                username=None if account else spec["username"],
                domain=spec["domain"],
                **spec["kwargs"],
            )
            self.phones[spec["username"]] = phone
        return stack

    def call_records(self) -> list:
        """Call history across all phones, including those lost to crashes."""
        records = []
        for phone in self._retired_phones:
            records.extend(phone.history)
        for phone in self.phones.values():
            records.extend(phone.history)
        return records

    # -- convenience ------------------------------------------------------------------
    def add_phone(
        self,
        node_index: int,
        username: str,
        domain: str = DEFAULT_DOMAIN,
        account: SipAccount | None = None,
        **kwargs,
    ) -> SoftPhone:
        # Scenario-wide media knobs become per-phone defaults; explicit
        # kwargs win. Injected before the spec is recorded so phones
        # rebuilt after an injected crash keep the same media config.
        config = self.config
        if config.media_jitter_policy != "fixed":
            kwargs.setdefault("jitter_policy", _media_policy(config.media_jitter_policy))
        if config.media_redundancy:
            kwargs.setdefault("redundancy", config.media_redundancy)
        if config.media_vad:
            kwargs.setdefault("vad", config.media_vad)
        phone = self.stacks[node_index].add_phone(
            account=account, username=None if account else username, domain=domain, **kwargs
        )
        self.phones[username] = phone
        self._phone_specs.append(
            {
                "node_index": node_index,
                "username": username,
                "domain": domain,
                "account": account,
                "kwargs": dict(kwargs),
            }
        )
        return phone

    def converge(self, duration: float | None = None) -> None:
        """Run long enough for routing/registration state to settle."""
        if duration is None:
            duration = 12.0 if self.config.routing == "olsr" else 3.0
        self.sim.run(self.sim.now + duration)

    def call_and_wait(
        self,
        caller: str,
        callee_aor: str,
        duration: float = 10.0,
        setup_timeout: float = 20.0,
    ):
        """Place a call and run until it finishes; returns the CallRecord."""
        phone = self.phones[caller]
        call = phone.place_call(callee_aor, duration=duration)
        record = phone.history[-1]

        def finished() -> bool:
            return call.state in (CallState.TERMINATED, CallState.FAILED)

        self.sim.run_until(finished, timeout=setup_timeout + duration + 10.0, step=0.25)
        return record

    def hop_count(self, from_index: int, to_index: int) -> int | None:
        routing = self.stacks[from_index].routing
        return routing.hop_count_to(self.nodes[to_index].ip)


def build_chain_call_scenario(
    hops: int,
    routing: str = "aodv",
    seed: int = 1,
    loss_rate: float = 0.0,
    **extra,
) -> ManetScenario:
    """A chain of ``hops + 1`` nodes with alice at one end, bob at the other."""
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=hops + 1,
            topology="chain",
            routing=routing,
            seed=seed,
            loss_rate=loss_rate,
            **extra,
        )
    )
    scenario.start()
    scenario.add_phone(0, "alice")
    scenario.add_phone(hops, "bob")
    return scenario
