"""repro.faults: deterministic fault injection for SIPHoc scenarios.

Three pieces (see DESIGN.md §5e):

* :mod:`repro.faults.channel` — per-link channel fault models (Gilbert–
  Elliott bursty loss, asymmetric loss) pluggable into the wireless medium.
* :mod:`repro.faults.plan` — the :class:`FaultPlan` DSL of timed events
  (node crash/restart, link partition/heal, gateway down/up), applied to
  any scenario via ``ManetConfig(faults=plan)``.
* :mod:`repro.faults.metrics` — recovery metrics computed from the trace
  (re-registration latency, gateway failover time, route re-discovery,
  calls surviving vs. dropped).

``python -m repro.faults`` is the chaos harness CLI.
"""

from repro.faults.channel import (
    AsymmetricLossChannel,
    GilbertElliottChannel,
    TimedGilbertElliottChannel,
    UniformLossChannel,
)
from repro.faults.injector import FaultInjector
from repro.faults.metrics import RecoveryReport, analyze_recovery
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    GatewayDown,
    GatewayUp,
    LinkHeal,
    LinkPartition,
    NodeCrash,
    NodeRestart,
    describe_event,
)

__all__ = [
    "AsymmetricLossChannel",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "GatewayDown",
    "GatewayUp",
    "GilbertElliottChannel",
    "LinkHeal",
    "LinkPartition",
    "NodeCrash",
    "NodeRestart",
    "RecoveryReport",
    "TimedGilbertElliottChannel",
    "UniformLossChannel",
    "analyze_recovery",
    "describe_event",
]
