"""FaultPlan: a declarative schedule of timed failures for a scenario.

A plan is a list of events pinned to absolute simulation times, referring
to nodes by their scenario index. Because the schedule is explicit data —
never sampled at run time — it is trivially deterministic: the canonical
:meth:`FaultPlan.describe` rendering of two same-seed runs is byte-identical
whether or not tracing is attached. Channel models (which *do* draw
randomness, from the simulator RNG) ride along on :attr:`FaultPlan.channel`.

Event kinds mirror the ``fault.*`` trace taxonomy:

* :class:`NodeCrash` / :class:`NodeRestart` — power-cycle a node; the
  scenario tears down and rebuilds its entire :class:`SiphocStack`.
* :class:`LinkPartition` / :class:`LinkHeal` — block/unblock all links
  between two node groups at the medium.
* :class:`GatewayDown` / :class:`GatewayUp` — stop/restart a node's
  Gateway Provider (``graceful=False`` models a crash: the SLP advert is
  *not* withdrawn, so remote caches hold a stale gateway entry — the
  failover drill the Connection Provider's cooldown logic exists for).
* :class:`InterfaceDown` / :class:`InterfaceUp` — flip one interface's
  administrative state while the host keeps running (radio horizon,
  uplink loss): the coverage-loss drill the §5k handover policy answers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import ClassVar, Iterable, Union

from repro.errors import ConfigError


@dataclass(frozen=True)
class NodeCrash:
    at: float
    node: int
    kind: ClassVar[str] = "node_crash"


@dataclass(frozen=True)
class NodeRestart:
    at: float
    node: int
    kind: ClassVar[str] = "node_restart"


@dataclass(frozen=True)
class LinkPartition:
    at: float
    group_a: tuple[int, ...]
    group_b: tuple[int, ...]
    name: str
    kind: ClassVar[str] = "partition"


@dataclass(frozen=True)
class LinkHeal:
    at: float
    name: str
    kind: ClassVar[str] = "heal"


@dataclass(frozen=True)
class GatewayDown:
    at: float
    node: int
    graceful: bool = False
    kind: ClassVar[str] = "gateway_down"


@dataclass(frozen=True)
class GatewayUp:
    at: float
    node: int
    kind: ClassVar[str] = "gateway_up"


@dataclass(frozen=True)
class InterfaceDown:
    at: float
    node: int
    iface: str = "wireless"
    kind: ClassVar[str] = "interface_down"


@dataclass(frozen=True)
class InterfaceUp:
    at: float
    node: int
    iface: str = "wireless"
    kind: ClassVar[str] = "interface_up"


#: Interface names the netsim knows how to flap.
KNOWN_INTERFACES = ("wireless", "wired")

FaultEvent = Union[
    NodeCrash,
    NodeRestart,
    LinkPartition,
    LinkHeal,
    GatewayDown,
    GatewayUp,
    InterfaceDown,
    InterfaceUp,
]


def describe_event(event: FaultEvent) -> dict[str, object]:
    """Canonical dict form of one event (stable field order via sorting)."""
    out: dict[str, object] = {"kind": event.kind}
    for spec in fields(event):
        value = getattr(event, spec.name)
        if isinstance(value, tuple):
            value = list(value)
        out[spec.name] = value
    return out


class FaultPlan:
    """Builder + container for a timed fault schedule.

    Builder methods return ``self`` so plans chain::

        plan = (
            FaultPlan()
            .crash(at=20.0, node=2)
            .restart(at=35.0, node=2)
            .gateway_down(at=50.0, node=4)
        )
    """

    def __init__(self, events: Iterable[FaultEvent] = (), channel=None) -> None:
        self._events: list[FaultEvent] = list(events)
        #: Optional ChannelModel installed on the scenario's medium.
        self.channel = channel

    # -- builder API ----------------------------------------------------------
    def crash(self, at: float, node: int) -> "FaultPlan":
        self._events.append(NodeCrash(at=at, node=node))
        return self

    def restart(self, at: float, node: int) -> "FaultPlan":
        self._events.append(NodeRestart(at=at, node=node))
        return self

    def partition(
        self,
        at: float,
        group_a: Iterable[int],
        group_b: Iterable[int],
        name: str | None = None,
    ) -> "FaultPlan":
        label = name if name is not None else f"partition-{len(self._events)}"
        self._events.append(
            LinkPartition(
                at=at,
                group_a=tuple(sorted(group_a)),
                group_b=tuple(sorted(group_b)),
                name=label,
            )
        )
        return self

    def heal(self, at: float, name: str) -> "FaultPlan":
        self._events.append(LinkHeal(at=at, name=name))
        return self

    def gateway_down(self, at: float, node: int, graceful: bool = False) -> "FaultPlan":
        self._events.append(GatewayDown(at=at, node=node, graceful=graceful))
        return self

    def gateway_up(self, at: float, node: int) -> "FaultPlan":
        self._events.append(GatewayUp(at=at, node=node))
        return self

    def interface_down(self, at: float, node: int, iface: str = "wireless") -> "FaultPlan":
        self._events.append(InterfaceDown(at=at, node=node, iface=iface))
        return self

    def interface_up(self, at: float, node: int, iface: str = "wireless") -> "FaultPlan":
        self._events.append(InterfaceUp(at=at, node=node, iface=iface))
        return self

    def with_channel(self, channel) -> "FaultPlan":
        self.channel = channel
        return self

    # -- schedule -------------------------------------------------------------
    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """Events in firing order: by time, insertion order breaking ties."""
        indexed = list(enumerate(self._events))
        indexed.sort(key=lambda pair: (pair[1].at, pair[0]))
        return tuple(event for _, event in indexed)

    def __len__(self) -> int:
        return len(self._events)

    def validate(self, n_nodes: int) -> None:
        """Raise :class:`ConfigError` on out-of-range indexes or bad refs."""
        known_partitions: set[str] = set()
        for event in self.events:
            if event.at < 0:
                raise ConfigError(f"fault event before t=0: {describe_event(event)}")
            for spec in fields(event):
                value = getattr(event, spec.name)
                indexes = (
                    value
                    if isinstance(value, tuple)
                    else (value,) if spec.name == "node" else ()
                )
                for index in indexes:
                    if not 0 <= index < n_nodes:
                        raise ConfigError(
                            f"fault event references node {index}, but the "
                            f"scenario has nodes 0..{n_nodes - 1}"
                        )
            if isinstance(event, (InterfaceDown, InterfaceUp)):
                if event.iface not in KNOWN_INTERFACES:
                    raise ConfigError(
                        f"unknown interface {event.iface!r} "
                        f"(want one of {KNOWN_INTERFACES})"
                    )
            if isinstance(event, LinkPartition):
                if set(event.group_a) & set(event.group_b):
                    raise ConfigError(
                        f"partition {event.name!r} groups overlap: "
                        f"{sorted(set(event.group_a) & set(event.group_b))}"
                    )
                known_partitions.add(event.name)
            elif isinstance(event, LinkHeal) and event.name not in known_partitions:
                raise ConfigError(
                    f"heal of unknown partition {event.name!r} "
                    f"(known: {sorted(known_partitions) or 'none'})"
                )

    def describe(self) -> str:
        """Canonical JSONL rendering of the schedule.

        One sorted-key JSON object per event, in firing order — the
        byte-identical artifact the determinism contract is checked
        against (see DESIGN.md §5e).
        """
        return "\n".join(
            json.dumps(describe_event(event), sort_keys=True, separators=(",", ":"))
            for event in self.events
        )
