"""Chaos CLI: ``python -m repro.faults <subcommand>``.

Subcommands:

* ``plan``  — print the canonical fault plan (JSONL, one event per line)
* ``run``   — run the chaos workload, print the recovery report
* ``smoke`` — run it twice with one seed and assert recovery plus
  byte-identical fault schedules and trace exports (the ``tools/check.sh``
  gate for the fault subsystem)
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

from repro.faults.harness import default_chaos_plan, run_chaos
from repro.trace.events import TraceError, parse_jsonl_line

#: Rerun script for the byte-identity check. Protocol identifiers (Call-ID,
#: Via branch, packet uid) come from process-global counters, so — like
#: ``tests/trace/test_determinism.py`` — the byte-identity contract is
#: between fresh interpreters, not reruns inside one process.
_RERUN_SCRIPT = """
from repro.faults.harness import run_chaos
result = run_chaos(hops=4, routing="aodv", seed=7)
import sys
sys.stdout.write(result.plan.describe())
sys.stdout.write("\\n=====\\n")
sys.stdout.write(result.scenario.trace.export_jsonl())
"""


def _rerun_in_fresh_process() -> str:
    result = subprocess.run(
        [sys.executable, "-c", _RERUN_SCRIPT],
        capture_output=True,
        text=True,
        check=True,
        env=dict(os.environ),
    )
    return result.stdout


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = default_chaos_plan(args.hops + 1, t0=12.0 if args.routing == "olsr" else 3.0)
    print(plan.describe())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_chaos(
        hops=args.hops, routing=args.routing, seed=args.seed, tracing=True
    )
    print("fault plan:")
    for line in result.plan.describe().splitlines():
        print(f"  {line}")
    print()
    print(result.report.render())
    print()
    print(f"post-fault call re-established: {'yes' if result.recovered else 'NO'}")
    if args.out and result.scenario.trace is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(result.scenario.trace.export_jsonl())
    return 0 if result.recovered else 1


def _cmd_smoke(args: argparse.Namespace) -> int:
    """Chaos gate: recovery works and two same-seed runs match byte-for-byte."""
    failures: list[str] = []

    first = run_chaos(hops=4, routing="aodv", seed=7)
    if not first.recovered:
        failures.append("post-fault call did not re-establish")
    report = first.report
    if report.faults_injected != len(first.plan.events):
        failures.append(
            f"{len(first.plan.events)} fault events planned but "
            f"{report.faults_injected} showed up in the trace"
        )
    if not report.gateway_failover_latency:
        failures.append("no gateway failover observed after gateway_down")
    if not report.reregistration_latency:
        failures.append("no re-registration observed after node_restart")

    trace_text = ""
    if first.scenario.trace is None:
        failures.append("chaos scenario ran without a trace collector")
    else:
        trace_text = first.scenario.trace.export_jsonl()
        for number, line in enumerate(trace_text.splitlines(), start=1):
            try:
                parse_jsonl_line(line)
            except TraceError as exc:
                failures.append(f"trace line {number} failed schema validation: {exc}")
                break

    # Determinism, layer 1 (in-process): an identically-seeded rerun must
    # produce the identical fault schedule and apply the identical events.
    second = run_chaos(hops=4, routing="aodv", seed=7)
    if second.plan.describe() != first.plan.describe():
        failures.append("same-seed rerun produced a different fault schedule")
    if second.scenario.faults is not None and first.scenario.faults is not None:
        if second.scenario.faults.applied != first.scenario.faults.applied:
            failures.append("same-seed rerun applied different fault events")

    # Determinism, layer 2 (fresh interpreters): schedule *and* full trace
    # export must reproduce byte for byte across program runs.
    try:
        rerun_a = _rerun_in_fresh_process()
        rerun_b = _rerun_in_fresh_process()
    except subprocess.CalledProcessError as exc:
        failures.append(f"fresh-process chaos rerun crashed: {exc.stderr[-300:]}")
    else:
        if not rerun_a.strip():
            failures.append("fresh-process chaos rerun produced no output")
        if rerun_a != rerun_b:
            failures.append(
                "same-seed fresh-process reruns differ (schedule or trace)"
            )
        if first.plan.describe() not in rerun_a:
            failures.append("fresh-process rerun used a different fault schedule")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"chaos smoke ok: {report.faults_injected} faults injected, call "
        f"re-established, gateway failover in "
        f"{min(report.gateway_failover_latency.values()):.1f}s; "
        "same-seed reruns byte-identical"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Deterministic fault injection: chaos runs and recovery metrics.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_plan = sub.add_parser("plan", help="print the canonical fault plan as JSONL")
    p_plan.add_argument("--hops", type=int, default=4, help="chain length (default 4)")
    p_plan.add_argument("--routing", choices=("aodv", "olsr"), default="aodv")
    p_plan.set_defaults(fn=_cmd_plan)

    p_run = sub.add_parser("run", help="run the chaos workload, print recovery report")
    p_run.add_argument("--hops", type=int, default=4, help="chain length (default 4)")
    p_run.add_argument("--routing", choices=("aodv", "olsr"), default="aodv")
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--out", help="also write the trace JSONL to this path")
    p_run.set_defaults(fn=_cmd_run)

    p_smk = sub.add_parser(
        "smoke", help="chaos gate: recovery + same-seed byte-identical reruns"
    )
    p_smk.set_defaults(fn=_cmd_smoke)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(141)
