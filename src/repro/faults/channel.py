"""Channel fault models pluggable into :class:`~repro.netsim.medium.WirelessMedium`.

Each model implements the :class:`~repro.netsim.medium.ChannelModel`
protocol: one ``should_drop(sender_ip, receiver_ip, rng)`` decision per
transmission attempt on a directed link. All randomness must come from the
``rng`` argument (the simulator's seeded RNG) — never from module-level
``random`` or a privately seeded generator — so a same-seed rerun replays
the exact loss sequence. ``repro.lint`` rule FAULT001 enforces this.

The MANET simulation literature is unanimous that uniform i.i.d. loss
understates what ad hoc VoIP must survive: real 802.11 channels lose
packets in *bursts* (fading, interference). :class:`GilbertElliottChannel`
is the standard two-state Markov burst model; :class:`AsymmetricLossChannel`
captures per-direction link quality differences (different antennas, power,
noise floors at each end).
"""

from __future__ import annotations

import random


class UniformLossChannel:
    """Baseline i.i.d. loss, equivalent to the medium's ``loss_rate`` knob."""

    def __init__(self, loss_rate: float) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
        self.loss_rate = loss_rate

    def should_drop(self, sender_ip: str, receiver_ip: str, rng: random.Random) -> bool:
        return self.loss_rate > 0 and rng.random() < self.loss_rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UniformLossChannel(loss_rate={self.loss_rate})"


class GilbertElliottChannel:
    """Two-state Markov (Gilbert–Elliott) bursty-loss channel, per directed link.

    Each (sender, receiver) pair carries its own good/bad state. Before
    every transmission attempt the state transitions (good→bad with
    probability ``p_gb``, bad→good with ``p_bg``), then the attempt is lost
    with the state's loss probability (``loss_good`` / ``loss_bad``).

    Expected burst (bad-state sojourn) length is ``1 / p_bg`` attempts;
    stationary bad-state probability is ``p_gb / (p_gb + p_bg)``.
    """

    def __init__(
        self,
        p_gb: float = 0.05,
        p_bg: float = 0.25,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> None:
        for name, value in (
            ("p_gb", p_gb), ("p_bg", p_bg),
            ("loss_good", loss_good), ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._bad: dict[tuple[str, str], bool] = {}

    def link_state(self, sender_ip: str, receiver_ip: str) -> str:
        """Current state of a directed link: ``"good"`` or ``"bad"``."""
        return "bad" if self._bad.get((sender_ip, receiver_ip), False) else "good"

    @property
    def stationary_loss(self) -> float:
        """Long-run per-attempt loss probability of one link.

        The weighted state loss under the chain's stationary distribution —
        the number to quote on a sweep axis when comparing against an
        equivalent uniform channel (burstiness is what differs).
        """
        if self.p_gb + self.p_bg == 0:
            return self.loss_good  # chain never leaves its initial good state
        bad = self.p_gb / (self.p_gb + self.p_bg)
        return bad * self.loss_bad + (1.0 - bad) * self.loss_good

    def should_drop(self, sender_ip: str, receiver_ip: str, rng: random.Random) -> bool:
        link = (sender_ip, receiver_ip)
        bad = self._bad.get(link, False)
        if bad:
            if rng.random() < self.p_bg:
                bad = False
        elif rng.random() < self.p_gb:
            bad = True
        self._bad[link] = bad
        loss = self.loss_bad if bad else self.loss_good
        return loss > 0 and rng.random() < loss

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GilbertElliottChannel(p_gb={self.p_gb}, p_bg={self.p_bg}, "
            f"loss_good={self.loss_good}, loss_bad={self.loss_bad})"
        )


class TimedGilbertElliottChannel:
    """Gilbert–Elliott with sojourn times in sim-seconds, not attempts.

    :class:`GilbertElliottChannel` advances its Markov chain once per
    transmission *attempt*. That is the textbook formulation, but it has a
    pathological coupling with reactive routing: when a burst knocks out a
    link, traffic on it stops, so the chain stops transitioning and the
    link stays bad for as long as the outage suppresses attempts — a
    self-reinforcing black-out. Fading is a *time* process; this variant
    models it as one, drawing exponential good/bad sojourn durations
    (``mean_good`` / ``mean_bad`` seconds) per directed link, so a 50 ms
    fade is a 50 ms fade no matter how often anyone transmits during it.

    Needs a clock: the scenario calls :meth:`bind_clock` with the
    simulator when it installs the channel on the medium. All randomness
    still comes from the per-call ``rng`` (sojourns are drawn lazily, in
    deterministic event order), keeping same-seed runs byte-identical.
    """

    def __init__(
        self,
        mean_good: float = 2.0,
        mean_bad: float = 0.06,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> None:
        if mean_good <= 0 or mean_bad <= 0:
            raise ValueError(
                f"mean sojourns must be positive, got {mean_good}/{mean_bad}"
            )
        for name, value in (("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.mean_good = mean_good
        self.mean_bad = mean_bad
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._clock = None
        #: per directed link: (currently_bad, state_valid_until)
        self._state: dict[tuple[str, str], tuple[bool, float]] = {}

    def bind_clock(self, sim) -> None:
        """Attach the simulator whose ``now`` drives sojourn expiry."""
        self._clock = sim

    @property
    def stationary_loss(self) -> float:
        """Long-run per-attempt loss probability of one link."""
        bad = self.mean_bad / (self.mean_good + self.mean_bad)
        return bad * self.loss_bad + (1.0 - bad) * self.loss_good

    def link_state(self, sender_ip: str, receiver_ip: str) -> str:
        """State of a directed link at the last attempt: ``good``/``bad``."""
        bad, _ = self._state.get((sender_ip, receiver_ip), (False, 0.0))
        return "bad" if bad else "good"

    def should_drop(self, sender_ip: str, receiver_ip: str, rng: random.Random) -> bool:
        if self._clock is None:
            raise RuntimeError(
                "TimedGilbertElliottChannel used without bind_clock(); "
                "install it via FaultPlan(channel=...) on a ManetScenario"
            )
        now = self._clock.now
        link = (sender_ip, receiver_ip)
        bad, until = self._state.get(link, (False, 0.0))
        if link not in self._state:
            # A fresh link starts in good with a full sojourn ahead of it.
            until = now + rng.expovariate(1.0 / self.mean_good)
        while until <= now:
            bad = not bad
            mean = self.mean_bad if bad else self.mean_good
            until += rng.expovariate(1.0 / mean)
        self._state[link] = (bad, until)
        loss = self.loss_bad if bad else self.loss_good
        return loss > 0 and rng.random() < loss

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimedGilbertElliottChannel(mean_good={self.mean_good}, "
            f"mean_bad={self.mean_bad}, loss_good={self.loss_good}, "
            f"loss_bad={self.loss_bad})"
        )


class AsymmetricLossChannel:
    """Per-directed-link loss rates; directions of one link may differ.

    ``set_link("10.0.0.1", "10.0.0.2", 0.4)`` makes the 1→2 direction lose
    40% of attempts while 2→1 keeps the ``default`` rate — the classic
    asymmetric-link pathology that breaks naive bidirectional-link
    assumptions in routing protocols.
    """

    def __init__(
        self,
        rates: dict[tuple[str, str], float] | None = None,
        default: float = 0.0,
    ) -> None:
        if not 0.0 <= default <= 1.0:
            raise ValueError(f"default must be in [0, 1], got {default}")
        self.default = default
        self._rates: dict[tuple[str, str], float] = {}
        for (src, dst), rate in (rates or {}).items():
            self.set_link(src, dst, rate)

    def set_link(self, sender_ip: str, receiver_ip: str, loss_rate: float) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
        self._rates[(sender_ip, receiver_ip)] = loss_rate

    def should_drop(self, sender_ip: str, receiver_ip: str, rng: random.Random) -> bool:
        rate = self._rates.get((sender_ip, receiver_ip), self.default)
        return rate > 0 and rng.random() < rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AsymmetricLossChannel({len(self._rates)} links, default={self.default})"
