"""Recovery metrics: how fast the stack heals after injected faults.

All metrics are computed from the trace event stream (``fault.*`` markers
correlated with the recovery signals that follow them) plus the call
records of the scenario's phones:

* **re-registration latency** — ``fault.node_restart`` on a node to the
  next ``sip.register`` accepted on that node.
* **gateway failover time** — ``fault.gateway_down`` to the next
  ``tunnel.connected`` on each client node that loses its tunnel after
  the fault (the full detect → re-discover → re-attach cycle).
* **route re-discovery time** — ``aodv.discovery_complete`` latencies
  observed at or after the first fault (discoveries forced by the churn).
* **call outcomes** — placed / established / completed / failed, from
  :class:`~repro.core.softphone.CallRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.events import TraceEvent


@dataclass
class RecoveryReport:
    """Aggregated recovery metrics for one chaos run."""

    faults_injected: int = 0
    reregistration_latency: dict[str, float] = field(default_factory=dict)
    gateway_failover_latency: dict[str, float] = field(default_factory=dict)
    route_rediscovery_latency: list[float] = field(default_factory=list)
    calls_placed: int = 0
    calls_established: int = 0
    calls_completed: int = 0
    calls_failed: int = 0

    @property
    def calls_survived(self) -> int:
        return self.calls_completed

    def render(self) -> str:
        lines = [f"faults injected: {self.faults_injected}"]
        lines.append(
            f"calls: {self.calls_placed} placed, {self.calls_established} "
            f"established, {self.calls_completed} completed, "
            f"{self.calls_failed} failed"
        )
        if self.reregistration_latency:
            lines.append("re-registration latency after restart:")
            for node, latency in sorted(self.reregistration_latency.items()):
                lines.append(f"  {node}: {latency:.2f}s")
        if self.gateway_failover_latency:
            lines.append("gateway failover latency (per client):")
            for node, latency in sorted(self.gateway_failover_latency.items()):
                lines.append(f"  {node}: {latency:.2f}s")
        if self.route_rediscovery_latency:
            latencies = self.route_rediscovery_latency
            lines.append(
                f"route re-discoveries under faults: {len(latencies)} "
                f"(mean {sum(latencies) / len(latencies):.3f}s, "
                f"max {max(latencies):.3f}s)"
            )
        return "\n".join(lines)


def analyze_recovery(events: list[TraceEvent], call_records=()) -> RecoveryReport:
    """Compute a :class:`RecoveryReport` from a trace and call records."""
    report = RecoveryReport()
    fault_times = [event.t for event in events if event.category == "fault"]
    report.faults_injected = len(fault_times)
    first_fault = min(fault_times) if fault_times else None

    # Re-registration latency: restart marker -> next accepted REGISTER there.
    for index, event in enumerate(events):
        if event.kind != "fault.node_restart":
            continue
        for later in events[index + 1 :]:
            if later.kind == "sip.register" and later.node == event.node:
                report.reregistration_latency.setdefault(
                    event.node, later.t - event.t
                )
                break

    # Gateway failover: gateway_down -> next tunnel.connected per client.
    for index, event in enumerate(events):
        if event.kind != "fault.gateway_down":
            continue
        for later in events[index + 1 :]:
            if later.kind == "tunnel.connected":
                report.gateway_failover_latency.setdefault(
                    later.node, later.t - event.t
                )

    # Route re-discoveries forced by the churn.
    if first_fault is not None:
        for event in events:
            if event.kind == "aodv.discovery_complete" and event.t >= first_fault:
                latency = event.detail.get("latency")
                if isinstance(latency, (int, float)):
                    report.route_rediscovery_latency.append(float(latency))

    for record in call_records:
        report.calls_placed += 1
        if record.established:
            report.calls_established += 1
        if record.established and record.final_state == "terminated":
            report.calls_completed += 1
        else:
            report.calls_failed += 1
    return report
