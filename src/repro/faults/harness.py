"""Chaos harness: a canned fault-injection workload with recovery reporting.

The canonical scenario is the acceptance case of the fault subsystem: a
redundant chain (nodes reach their neighbors *two* hops out, so the MANET
survives any single crash) with two Internet gateways at the far end.
Mid-call the middle relay crashes and the primary gateway fails abruptly;
the workload then verifies that a follow-up call establishes over the
repaired route and measures how long re-registration, route re-discovery
and gateway failover took.

Kept out of ``repro.faults.__init__`` on purpose: this module imports
``repro.scenarios`` (which itself imports the faults package), so pulling
it into the package namespace would create an import cycle. Import it as
``from repro.faults.harness import run_chaos``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.softphone import CallRecord
from repro.faults.metrics import RecoveryReport, analyze_recovery
from repro.faults.plan import FaultPlan
from repro.scenarios import ManetConfig, ManetScenario

#: Node spacing that puts *two* chain neighbors inside the default 150 m
#: transmit range — the redundancy that makes single-node crashes survivable.
REDUNDANT_SPACING = 70.0


@dataclass
class ChaosResult:
    """Everything a caller needs to judge one chaos run."""

    scenario: ManetScenario
    plan: FaultPlan
    report: RecoveryReport
    first_call: CallRecord
    second_call: CallRecord

    @property
    def recovered(self) -> bool:
        """Did the workload survive: the post-fault call established?"""
        return self.second_call.established


def default_chaos_plan(n_nodes: int, t0: float) -> FaultPlan:
    """Relay crash + abrupt gateway failure + relay restart, around ``t0``.

    ``t0`` is when the call workload starts (after convergence); the relay
    crash lands mid-call, the primary gateway dies shortly after, and the
    relay comes back late enough that the first call's fate was decided
    without it.
    """
    relay = n_nodes // 2
    primary_gateway = n_nodes - 2  # closest gateway to the phones' end
    return (
        FaultPlan()
        .crash(t0 + 5.0, relay)
        .gateway_down(t0 + 8.0, primary_gateway, graceful=False)
        .restart(t0 + 30.0, relay)
    )


def build_chaos_scenario(
    hops: int = 4,
    routing: str = "aodv",
    seed: int = 1,
    tracing: bool = True,
    plan: FaultPlan | None = None,
) -> ManetScenario:
    """A redundant chain with two gateways and the default fault plan armed.

    alice sits at node 0, bob at node ``hops``, and carol rides the middle
    relay (so its crash/restart exercises phone re-registration too); the
    last two nodes carry wired Internet attachments. Needs ``hops >= 3`` so
    the crashed relay is neither an endpoint phone node nor a gateway.
    """
    n_nodes = hops + 1
    t0 = 12.0 if routing == "olsr" else 3.0
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=n_nodes,
            topology="chain",
            routing=routing,
            seed=seed,
            spacing=REDUNDANT_SPACING,
            internet_gateways=2,
            tracing=tracing,
            faults=plan if plan is not None else default_chaos_plan(n_nodes, t0),
        )
    )
    scenario.start()
    scenario.add_phone(0, "alice")
    scenario.add_phone(hops, "bob")
    scenario.add_phone(n_nodes // 2, "carol")
    return scenario


def run_chaos(
    hops: int = 4,
    routing: str = "aodv",
    seed: int = 1,
    tracing: bool = True,
) -> ChaosResult:
    """Run the canonical chaos workload and report recovery metrics.

    Two calls: the first spans the relay crash (it may or may not survive
    the route repair — both outcomes are recorded); the second is placed
    after the churn and is the recovery criterion. The run then continues
    long enough for the surviving gateway to pick up the orphaned tunnel
    clients, so failover latency appears in the report.
    """
    scenario = build_chaos_scenario(hops=hops, routing=routing, seed=seed, tracing=tracing)
    plan = scenario.config.faults
    assert plan is not None
    scenario.converge()
    first = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=15.0)
    second = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=5.0)
    # Liveness detection on the dead gateway takes ~2 renew intervals; run
    # far enough past it that the failover reconnect is in the trace.
    last_fault = max(event.at for event in plan.events)
    scenario.sim.run(max(scenario.sim.now, last_fault) + 60.0)
    scenario.stop()
    events = scenario.trace.events if scenario.trace is not None else []
    report = analyze_recovery(events, scenario.call_records())
    return ChaosResult(
        scenario=scenario, plan=plan, report=report, first_call=first, second_call=second
    )
