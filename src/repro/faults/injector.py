"""FaultInjector: arms a :class:`FaultPlan` on a scenario's simulator clock.

The injector is pure plumbing: every event in the plan is scheduled with
``sim.schedule_at`` when the scenario starts, and firing an event delegates
to the scenario (crash/restart), the medium (partition/heal) or the node's
Gateway Provider (gateway down/up). It draws no randomness and reads no
clock other than ``sim.now`` — the fault *schedule* is the plan itself,
already fixed before the run begins.

Every fired event emits a ``fault.*`` trace event (when tracing is on), so
recovery metrics can be computed from the trace alone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    GatewayDown,
    GatewayUp,
    InterfaceDown,
    InterfaceUp,
    LinkHeal,
    LinkPartition,
    NodeCrash,
    NodeRestart,
    describe_event,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios import ManetScenario


class FaultInjector:
    """Applies a fault plan to a running :class:`ManetScenario`."""

    def __init__(self, scenario: "ManetScenario", plan: FaultPlan) -> None:
        self.scenario = scenario
        self.sim = scenario.sim
        self.plan = plan
        self.armed = False
        #: (time, canonical event dict) for every event that has fired.
        self.applied: list[tuple[float, dict[str, object]]] = []

    def arm(self) -> "FaultInjector":
        """Validate the plan and schedule every event. Idempotent."""
        if self.armed:
            return self
        self.armed = True
        self.plan.validate(len(self.scenario.nodes))
        for event in self.plan.events:
            if event.at < self.sim.now:
                raise ConfigError(
                    f"fault event at t={event.at} is in the past "
                    f"(scenario started at t={self.sim.now})"
                )
            if isinstance(event, (GatewayDown, GatewayUp)):
                if self.scenario.nodes[event.node].wired_ip is None:
                    raise ConfigError(
                        f"fault event {event.kind} targets node {event.node}, "
                        "which has no Internet attachment"
                    )
            if isinstance(event, (InterfaceDown, InterfaceUp)):
                node = self.scenario.nodes[event.node]
                present = node.ip if event.iface == "wireless" else node.wired_ip
                if not present:
                    raise ConfigError(
                        f"fault event {event.kind} targets the {event.iface} "
                        f"interface of node {event.node}, which has none"
                    )
            self.sim.schedule_at(event.at, self._fire, event)
        return self

    # -- event dispatch -------------------------------------------------------
    def _fire(self, event: FaultEvent) -> None:
        scenario = self.scenario
        if isinstance(event, NodeCrash):
            self._emit(event, scenario.nodes[event.node].ip)
            scenario.crash_node(event.node)
        elif isinstance(event, NodeRestart):
            self._emit(event, scenario.nodes[event.node].ip)
            scenario.restart_node(event.node)
        elif isinstance(event, LinkPartition):
            self._emit(event, "")
            scenario.medium.partition(
                event.name,
                frozenset(scenario.nodes[i].ip for i in event.group_a),
                frozenset(scenario.nodes[i].ip for i in event.group_b),
            )
        elif isinstance(event, LinkHeal):
            self._emit(event, "")
            scenario.medium.heal(event.name)
        elif isinstance(event, GatewayDown):
            self._emit(event, scenario.nodes[event.node].ip)
            gateway = scenario.stacks[event.node].gateway
            if gateway is not None and gateway.running:
                if event.graceful:
                    gateway.stop()
                else:
                    gateway.fail()
        elif isinstance(event, GatewayUp):
            self._emit(event, scenario.nodes[event.node].ip)
            gateway = scenario.stacks[event.node].gateway
            if gateway is not None and not gateway.running:
                gateway.start()
        elif isinstance(event, (InterfaceDown, InterfaceUp)):
            self._emit(event, scenario.nodes[event.node].ip)
            scenario.nodes[event.node].set_interface_up(
                event.iface, isinstance(event, InterfaceUp)
            )
        self.applied.append((self.sim.now, describe_event(event)))

    def _emit(self, event: FaultEvent, node_ip: str) -> None:
        tracer = self.sim.tracer
        if tracer is None:
            return
        detail = describe_event(event)
        kind = detail.pop("kind")
        detail.pop("at", None)  # the trace record already carries t
        if "node" in detail:  # the index; the record's node field has the IP
            detail["node_index"] = detail.pop("node")
        tracer.emit(f"fault.{kind}", node_ip, **detail)
