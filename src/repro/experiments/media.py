"""Media-plane experiment: codec × redundancy × playout policy (§5j).

M1 sweeps the media stacks against bursty time-domain Gilbert–Elliott
channels from ``repro.faults``: for each (codec, RFC 2198 depth,
jitter-buffer policy) combination it runs one call over a fading chain
and scores it with the measured E-model. The point of the artifact is
the *contrast*: at a fade intensity where the fixed-buffer /
no-redundancy stack drops below MOS 3.6 ("users satisfied"), redundancy
plus adaptive playout recovers it — RED rebuilds the frames the fades
kill outright, and the adaptive buffer rides out the delay spikes that
AODV re-discovery adds after every fade-induced link failure.

Channel choice: :class:`TimedGilbertElliottChannel`, not the per-attempt
:class:`GilbertElliottChannel`. The attempt-domain chain freezes in the
bad state whenever an outage suppresses traffic — with a reactive router
that turns every fade into a self-reinforcing blackout, and no media
stack can rescue a dead network. Time-domain sojourns keep fades at
their physical duration. The AODV RREQ-retry horizon is likewise sized
to the actual chain (``aodv_net_diameter``) instead of the RFC's 35-hop
default, whose 2.8 s retry timeout would stretch a 50 ms fade into a
multi-second outage.
"""

from __future__ import annotations

from repro.experiments.tables import Table
from repro.faults.channel import TimedGilbertElliottChannel
from repro.faults.plan import FaultPlan
from repro.rtp.codecs import CODECS_BY_NAME
from repro.rtp.quality import CallQuality
from repro.scenarios import ManetConfig, ManetScenario


def run_media_point(
    codec: str = "PCMU",
    policy: str = "fixed",
    redundancy: int = 0,
    mean_good: float = 1.2,
    mean_bad: float = 0.05,
    hops: int = 2,
    routing: str = "aodv",
    seed: int = 3,
    talk_time: float = 12.0,
    mac_retries: int = 1,
) -> tuple[CallQuality | None, float]:
    """One call through one media stack over one fading channel.

    Returns ``(quality, stationary_loss)`` — quality is None when the call
    never established (fades can eat signaling too). ``mac_retries``
    defaults to 1 as in E6: ARQ must not hide the loss axis under study.
    """
    channel = TimedGilbertElliottChannel(mean_good=mean_good, mean_bad=mean_bad)
    voice = CODECS_BY_NAME[codec]
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=hops + 1,
            topology="chain",
            routing=routing,
            seed=seed,
            mac_retries=mac_retries,
            aodv_net_diameter=hops if routing == "aodv" else None,
            faults=FaultPlan(channel=channel),
            media_jitter_policy=policy,
            media_redundancy=redundancy,
        )
    )
    scenario.start()
    scenario.add_phone(0, "alice", codec=voice)
    scenario.add_phone(hops, "bob", codec=voice)
    scenario.converge()
    record = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=talk_time)
    scenario.stop()
    return record.quality, channel.stationary_loss


def media_quality_table(
    codecs: tuple[str, ...] = ("PCMU", "G729"),
    redundancies: tuple[int, ...] = (0, 2),
    policies: tuple[str, ...] = ("fixed", "adaptive"),
    ge_points: tuple[tuple[float, float], ...] = ((2.0, 0.04), (1.2, 0.05)),
    hops: int = 2,
    routing: str = "aodv",
    seed: int = 3,
    talk_time: float = 12.0,
) -> Table:
    """M1: measured MOS per media stack under Gilbert–Elliott fading.

    ``ge_points`` are (mean_good, mean_bad) sojourn times in seconds of
    the time-domain Gilbert–Elliott channel, applied per directed link.
    """
    table = Table(
        title=f"M1: media stacks under Gilbert-Elliott fading ({routing}, {hops} hops)",
        columns=[
            "codec",
            "policy",
            "red",
            "fade_pct",
            "mos",
            "m2e_ms",
            "eff_loss_pct",
            "recovered",
        ],
    )
    for mean_good, mean_bad in ge_points:
        for codec in codecs:
            for policy in policies:
                for redundancy in redundancies:
                    quality, link_loss = run_media_point(
                        codec=codec,
                        policy=policy,
                        redundancy=redundancy,
                        mean_good=mean_good,
                        mean_bad=mean_bad,
                        hops=hops,
                        routing=routing,
                        seed=seed,
                        talk_time=talk_time,
                    )
                    table.add_row(
                        codec,
                        policy,
                        redundancy,
                        round(link_loss * 100, 1),
                        round(quality.mos, 2) if quality else float("nan"),
                        round(quality.mouth_to_ear_delay * 1000, 1)
                        if quality
                        else float("nan"),
                        round(quality.effective_loss_ratio * 100, 1)
                        if quality
                        else float("nan"),
                        quality.packets_recovered if quality else 0,
                    )
    table.add_note(
        "fade_pct is the stationary bad-state fraction of one directed link;"
        " m2e adds the jitter-buffer playout delay to the network delay"
    )
    table.add_note("MOS >= 3.6 is the usual 'users satisfied' threshold")
    return table
