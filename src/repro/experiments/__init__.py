"""Experiment harness: one function per paper artifact.

Each function runs a complete simulated experiment and returns a
:class:`~repro.experiments.tables.Table`. The benchmark suite under
``benchmarks/`` invokes these and prints the tables; EXPERIMENTS.md
records paper-claim vs measured for each.

Index (see DESIGN.md section 4):

========  ==========================================  =============================
Artifact  Function                                     Paper reference
========  ==========================================  =============================
F3        :func:`call_flow_table`                      Figure 3 call flow
E1        :func:`setup_delay_table`                    setup delay vs hops
E2        :func:`overhead_vs_nodes_table`              control overhead vs nodes
E3        :func:`convergence_table`                    registration availability
E4        :func:`gateway_table`                        gateway + Internet calls
E5        :func:`scalability_table`                    stated future work
E6        :func:`voice_quality_table`                  MOS vs hops/loss
M1        :func:`media_quality_table`                  media stacks vs GE loss (§5j)
H1        :func:`handover_table`                       mid-call coverage loss (§5k)
T1        :func:`interop_table`                        section 3.2 providers
F6        :func:`footprint_table`                      section 4 deployment
A1        :func:`ablation_discovery_table`             discovery scheme ablation
A2        :func:`cache_ablation_table`                 advert lifetime ablation
C1        :func:`city_table`                           5k-node city (ROADMAP)
========  ==========================================  =============================
"""

from repro.experiments.calls import (
    call_flow_table,
    scalability_table,
    setup_delay_table,
    voice_quality_table,
)
from repro.experiments.city import (
    build_city_scenario,
    city_table,
    run_city_workload,
)
from repro.experiments.convergence import cache_ablation_table, convergence_table
from repro.experiments.discovery import (
    DiscoveryResult,
    SCHEMES,
    ablation_discovery_table,
    overhead_vs_nodes_table,
    run_discovery_workload,
)
from repro.experiments.footprint import footprint_table, module_inventory_table
from repro.experiments.handover import handover_table, run_handover_trial
from repro.experiments.media import media_quality_table, run_media_point
from repro.experiments.gateway import gateway_table, interop_table
from repro.experiments.services import services_table
from repro.experiments.tables import Table

__all__ = [
    "DiscoveryResult",
    "SCHEMES",
    "Table",
    "ablation_discovery_table",
    "build_city_scenario",
    "cache_ablation_table",
    "call_flow_table",
    "city_table",
    "convergence_table",
    "footprint_table",
    "gateway_table",
    "handover_table",
    "interop_table",
    "media_quality_table",
    "module_inventory_table",
    "run_media_point",
    "run_handover_trial",
    "overhead_vs_nodes_table",
    "run_city_workload",
    "run_discovery_workload",
    "scalability_table",
    "services_table",
    "setup_delay_table",
    "voice_quality_table",
]
