"""C1: the 5k-node city — population-scale MANET VoIP (ROADMAP north star).

The paper's testbed is ~10 laptops; its future-work section (and the P2P
VoIP measurement literature in PAPERS.md) asks how the architecture behaves
at *population* scale. This experiment builds a city-sized MANET — thousands
of nodes random-placed over a square kilometre-scale area, all mobile under
random waypoint — and drives a staggered background load of SIP calls
between phone pairs a bounded distance apart (callers dial across a
neighbourhood, not across the whole city: a 40-hop route would churn faster
than AODV can repair it, which is a finding, not a workload).

Scale notes (what makes 5k nodes tractable at all):

* the Connection Provider is disabled (``connection_provider=False``) —
  with no Internet attachment every gateway poll would flood the whole
  MANET with an SLP lookup, O(N^2) receptions per round;
* AODV is reactive and hello-less here, so an idle city is silent — the
  event load is mobility ticks plus exactly the floods/signaling/media the
  call workload causes;
* the calendar-queue kernel and batched medium delivery keep per-event cost
  flat as the pending set grows (see DESIGN.md §5g); the wall-clock numbers
  live in ``benchmarks/`` (DET001: experiment code never reads the host
  clock).
"""

from __future__ import annotations

import math

from repro.experiments.tables import Table
from repro.scenarios import ManetConfig, ManetScenario

#: Mean one-hop neighbor count the default area is sized for. ~10 keeps the
#: city connected (percolation needs ~4.5) without making every broadcast
#: O(dozens) of deliveries.
TARGET_DEGREE = 10.0


def city_area(n_nodes: int, tx_range: float, degree: float = TARGET_DEGREE) -> float:
    """Side of the square area giving a mean node degree of ``degree``."""
    return math.sqrt(n_nodes * math.pi * tx_range * tx_range / degree)


def build_city_scenario(
    n_nodes: int = 5000,
    tx_range: float = 150.0,
    seed: int = 1,
    kernel: str = "calendar",
    mobility: bool = True,
) -> ManetScenario:
    """A city-scale MANET: random placement, random waypoint, no Internet."""
    side = city_area(n_nodes, tx_range)
    return ManetScenario(
        ManetConfig(
            n_nodes=n_nodes,
            topology="random",
            routing="aodv",
            seed=seed,
            tx_range=tx_range,
            area=(side, side),
            mobility=mobility,
            connection_provider=False,
            kernel=kernel,
        )
    )


def _pick_call_pairs(
    scenario: ManetScenario,
    n_calls: int,
    max_call_distance: float,
) -> list[tuple[int, int]]:
    """Caller/callee node pairs, callee within ``max_call_distance``.

    All draws come from the scenario's seeded RNG, so the pair list is part
    of the deterministic schedule. Callers with no in-range counterpart
    (isolated placements) are redrawn.
    """
    rng = scenario.sim.rng
    n = len(scenario.nodes)
    positions = [node.position for node in scenario.nodes]
    pairs: list[tuple[int, int]] = []
    limit_sq = max_call_distance * max_call_distance
    attempts = 0
    while len(pairs) < n_calls and attempts < 50 * n_calls:
        attempts += 1
        caller = rng.randrange(n)
        cx, cy = positions[caller]
        candidates = [
            index
            for index, (x, y) in enumerate(positions)
            if index != caller and (x - cx) ** 2 + (y - cy) ** 2 <= limit_sq
        ]
        if not candidates:
            continue
        pairs.append((caller, candidates[rng.randrange(len(candidates))]))
    return pairs


def run_city_workload(
    n_nodes: int = 5000,
    n_calls: int = 24,
    seed: int = 1,
    tx_range: float = 150.0,
    warmup: float = 5.0,
    call_spacing: float = 2.0,
    call_duration: float = 5.0,
    drain: float = 20.0,
    max_call_distance: float = 1200.0,
    kernel: str = "calendar",
    mobility: bool = True,
    profiler=None,
) -> dict[str, object]:
    """Run one city scenario to completion; return its measurements.

    Calls are placed one every ``call_spacing`` seconds starting after
    ``warmup`` — a staggered background load, not a synchronized storm —
    and the run continues ``drain`` seconds past the last placement so
    late calls finish (or fail) before measurement.

    Passing a :class:`repro.metrics.profiler.KernelProfiler` installs it
    before any workload event is scheduled, so every handler in the run is
    attributed; it stays installed afterwards for the caller to report on.
    """
    scenario = build_city_scenario(
        n_nodes=n_nodes, tx_range=tx_range, seed=seed, kernel=kernel,
        mobility=mobility,
    )
    if profiler is not None:
        scenario.sim.attach_profiler(profiler)
    pairs = _pick_call_pairs(scenario, n_calls, max_call_distance)
    phone_nodes = sorted({index for pair in pairs for index in pair})
    for index in phone_nodes:
        scenario.add_phone(index, f"user{index}")
    scenario.start()
    scenario.converge(warmup)
    sim = scenario.sim
    for order, (caller, callee) in enumerate(pairs):
        sim.schedule_at(
            warmup + order * call_spacing,
            scenario.phones[f"user{caller}"].place_call,
            f"sip:user{callee}@voicehoc.ch",
            call_duration,
        )
    sim.run(warmup + n_calls * call_spacing + call_duration + drain)
    records = [r for r in scenario.call_records() if r.direction == "out"]
    established = [r for r in records if r.established]
    delays = [r.setup_delay for r in established if r.setup_delay is not None]
    summary = scenario.stats.summary()
    scenario.stop()
    return {
        "nodes": n_nodes,
        "phones": len(phone_nodes),
        "kernel": sim.kernel,
        "sim_time": sim.now,
        "calls": len(records),
        "established": len(established),
        "success_ratio": len(established) / len(records) if records else 0.0,
        "mean_setup_s": sum(delays) / len(delays) if delays else float("nan"),
        "events": sim.events_processed,
        "pending": sim.pending_events,
        "packets": summary["traffic"]["total"]["packets"],
    }


def city_table(
    node_counts: tuple[int, ...] = (1000, 5000),
    seeds: tuple[int, ...] = (1,),
    n_calls: int = 24,
    drain: float = 20.0,
    kernel: str = "calendar",
    **workload_kwargs,
) -> Table:
    """C1: background call load on mobile city-scale MANETs."""
    table = Table(
        title=f"C1: city-scale MANET call load ({kernel} kernel, random waypoint)",
        columns=[
            "nodes", "phones", "calls", "established", "success_ratio",
            "mean_setup_s", "sim_events", "packets",
        ],
    )
    for n_nodes in node_counts:
        for seed in seeds:
            result = run_city_workload(
                n_nodes=n_nodes, n_calls=n_calls, seed=seed, drain=drain,
                kernel=kernel, **workload_kwargs,
            )
            table.add_row(
                result["nodes"],
                result["phones"],
                result["calls"],
                result["established"],
                result["success_ratio"],
                result["mean_setup_s"],
                result["events"],
                result["packets"],
            )
    table.add_note(
        "reactive hello-less AODV: an idle city is silent; events are"
        " mobility ticks + call-induced floods/signaling/media"
    )
    table.add_note(
        f"callers dial within {workload_kwargs.get('max_call_distance', 1200.0):.0f} m"
        " (neighbourhood calls); connection provider off (no Internet)"
    )
    return table
