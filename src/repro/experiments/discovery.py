"""Discovery-scheme comparison workloads (experiments E2 and A1).

Runs the same register-then-lookup workload over each user-location scheme
(SIPHoc MANET SLP vs the related-work baselines) and accounts the control
traffic each one puts on the air. The paper's argument: piggybacking adds
*no dedicated packets* — its cost rides on routing traffic that exists
anyway — while every baseline adds its own growing traffic class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import (
    DiscoveryBackend,
    FloodingSipBackend,
    ManetSlpBackend,
    MulticastSlpBackend,
    ProactiveHelloBackend,
    UserBinding,
)
from repro.core.manet_slp import ManetSlpConfig
from repro.experiments.tables import Table
from repro.netsim.energy import EnergyModel
from repro.netsim.medium import WirelessMedium
from repro.netsim.mobility import place_grid
from repro.netsim.node import Node
from repro.netsim.packet import manet_ip
from repro.netsim.simulator import Simulator
from repro.netsim.stats import Stats
from repro.routing.aodv import Aodv
from repro.routing.olsr import Olsr

SCHEMES = ("siphoc", "multicast-slp", "flooding-register", "proactive-hello")


@dataclass
class DiscoveryResult:
    scheme: str
    n_nodes: int
    lookups_attempted: int
    lookups_resolved: int
    mean_latency: float
    control_bytes: int
    control_packets: int
    discovery_bytes: int
    energy_joules: float = 0.0
    max_node_joules: float = 0.0

    @property
    def success_ratio(self) -> float:
        if self.lookups_attempted == 0:
            return 0.0
        return self.lookups_resolved / self.lookups_attempted


def _make_backend(
    scheme: str, node: Node, routing, slp_config: ManetSlpConfig | None
) -> DiscoveryBackend:
    if scheme == "siphoc":
        return ManetSlpBackend(node, routing, slp_config)
    if scheme == "multicast-slp":
        return MulticastSlpBackend(node)
    if scheme == "flooding-register":
        return FloodingSipBackend(node)
    if scheme == "proactive-hello":
        return ProactiveHelloBackend(node)
    raise ValueError(f"unknown discovery scheme {scheme!r}")


def run_discovery_workload(
    scheme: str,
    n_nodes: int = 16,
    routing: str = "aodv",
    seed: int = 1,
    n_lookups: int = 10,
    warmup: float = 15.0,
    lookup_window: float = 20.0,
    spacing: float = 100.0,
    tx_range: float = 150.0,
    slp_config: ManetSlpConfig | None = None,
) -> DiscoveryResult:
    """One workload run: every node registers a user, then random nodes
    look up random remote users; returns traffic + latency accounting."""
    sim = Simulator(seed=seed)
    stats = Stats()
    energy = EnergyModel()
    medium = WirelessMedium(sim, stats=stats, tx_range=tx_range, energy=energy)
    nodes: list[Node] = []
    backends: list[DiscoveryBackend] = []
    for index in range(n_nodes):
        node = Node(sim, index, manet_ip(index), stats=stats)
        node.join_medium(medium)
        daemon = Aodv(node) if routing == "aodv" else Olsr(node)
        daemon.start()
        backend = _make_backend(scheme, node, daemon, slp_config)
        backend.start()
        nodes.append(node)
        backends.append(backend)
    place_grid(nodes, spacing)

    # Registration phase: each node announces one user, jittered start.
    for index, backend in enumerate(backends):
        sim.schedule(
            sim.rng.uniform(0.1, 2.0),
            backend.register_user,
            f"sip:user{index}@voicehoc.ch",
            nodes[index].ip,
            5060,
        )
    sim.run(warmup)

    # Lookup phase.
    results: list[tuple[float, UserBinding | None]] = []
    start_times: list[float] = []

    def do_lookup(backend: DiscoveryBackend, aor: str) -> None:
        started = sim.now
        start_times.append(started)
        backend.resolve(aor, lambda binding: results.append((sim.now - started, binding)))

    for _ in range(n_lookups):
        src = sim.rng.randrange(n_nodes)
        dst = sim.rng.randrange(n_nodes)
        while dst == src:
            dst = sim.rng.randrange(n_nodes)
        sim.schedule(
            sim.rng.uniform(0.5, lookup_window * 0.6),
            do_lookup,
            backends[src],
            f"sip:user{dst}@voicehoc.ch",
        )
    sim.run(warmup + lookup_window)

    resolved = [latency for latency, binding in results if binding is not None]
    control_classes = ("aodv", "olsr", "slp", "flooding-register", "proactive-hello")
    control_bytes = sum(stats.traffic_bytes(name) for name in control_classes)
    control_packets = sum(stats.traffic_packets(name) for name in control_classes)
    discovery_bytes = sum(
        stats.traffic_bytes(name)
        for name in ("slp", "flooding-register", "proactive-hello")
    )
    for backend in backends:
        backend.stop()
    return DiscoveryResult(
        scheme=scheme,
        n_nodes=n_nodes,
        lookups_attempted=n_lookups,
        lookups_resolved=len(resolved),
        mean_latency=sum(resolved) / len(resolved) if resolved else float("nan"),
        control_bytes=control_bytes,
        control_packets=control_packets,
        discovery_bytes=discovery_bytes,
        energy_joules=energy.total_joules(),
        max_node_joules=energy.max_node_joules(),
    )


def overhead_vs_nodes_table(
    node_counts: tuple[int, ...] = (9, 16, 25),
    schemes: tuple[str, ...] = SCHEMES,
    routing: str = "aodv",
    seed: int = 1,
    n_lookups: int = 8,
) -> Table:
    """Experiment E2: control overhead as the network grows."""
    table = Table(
        title=f"E2: control overhead vs node count ({routing})",
        columns=[
            "scheme",
            "nodes",
            "control_bytes",
            "discovery_bytes",
            "lookups_ok",
            "mean_latency_s",
        ],
    )
    for n_nodes in node_counts:
        for scheme in schemes:
            result = run_discovery_workload(
                scheme, n_nodes=n_nodes, routing=routing, seed=seed, n_lookups=n_lookups
            )
            table.add_row(
                scheme,
                n_nodes,
                result.control_bytes,
                result.discovery_bytes,
                f"{result.lookups_resolved}/{result.lookups_attempted}",
                result.mean_latency,
            )
    table.add_note(
        "discovery_bytes = dedicated discovery packets; SIPHoc's piggybacked"
        " payloads ride routing packets and add no dedicated traffic"
    )
    return table


def ablation_discovery_table(
    n_nodes: int = 16, routing: str = "aodv", seeds: tuple[int, ...] = (1, 2, 3)
) -> Table:
    """Experiment A1: same workload, all schemes, averaged over seeds."""
    table = Table(
        title=f"A1: discovery scheme ablation ({n_nodes} nodes, {routing})",
        columns=[
            "scheme",
            "success_ratio",
            "mean_latency_s",
            "control_bytes",
            "discovery_bytes",
            "energy_j",
            "hotspot_j",
        ],
    )
    for scheme in SCHEMES:
        runs = [
            run_discovery_workload(scheme, n_nodes=n_nodes, routing=routing, seed=seed)
            for seed in seeds
        ]
        ok = sum(r.success_ratio for r in runs) / len(runs)
        latencies = [r.mean_latency for r in runs if r.mean_latency == r.mean_latency]
        table.add_row(
            scheme,
            ok,
            sum(latencies) / len(latencies) if latencies else float("nan"),
            sum(r.control_bytes for r in runs) // len(runs),
            sum(r.discovery_bytes for r in runs) // len(runs),
            sum(r.energy_joules for r in runs) / len(runs),
            sum(r.max_node_joules for r in runs) / len(runs),
        )
    table.add_note(
        "energy: Feeney/Nilsson WaveLAN model, including broadcast receive"
        " and promiscuous discard costs; hotspot = most-drained node"
    )
    return table
