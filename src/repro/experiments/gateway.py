"""Gateway and interoperability experiments (E4, T1).

E4 measures gateway discovery + tunnel establishment and Internet call
setup through a MANET gateway. T1 reproduces the section 3.2
interoperability matrix over the three provider archetypes, including the
polyphone.ethz.ch outbound-proxy failure and the paper's future-work fix.
"""

from __future__ import annotations

from repro.core.config import SipAccount
from repro.experiments.tables import Table
from repro.scenarios import ManetConfig, ManetScenario
from repro.sip.ua import CallState


def gateway_table(
    chain_lengths: tuple[int, ...] = (2, 3, 5),
    routing: str = "aodv",
    seed: int = 4,
) -> Table:
    """E4: tunnel establishment latency and Internet call setup delay."""
    table = Table(
        title=f"E4: gateway attachment and Internet calls ({routing})",
        columns=[
            "manet_nodes",
            "tunnel_up_s",
            "upstream_reg",
            "out_call",
            "out_setup_s",
            "in_call",
        ],
    )
    for n_nodes in chain_lengths:
        scenario = ManetScenario(
            ManetConfig(
                n_nodes=n_nodes,
                topology="chain",
                routing=routing,
                seed=seed,
                internet_gateways=1,
                providers=("siphoc.ch",),
            )
        )
        scenario.start()
        provider = scenario.providers["siphoc.ch"]
        carol = provider.create_user("carol")
        carol.on_invite = lambda call: (
            call.ring(),
            scenario.sim.schedule(0.3, call.answer),
        )
        alice = scenario.add_phone(
            0, "alice", account=SipAccount(username="alice", domain="siphoc.ch")
        )
        stack = scenario.stacks[0]
        started = scenario.sim.now
        scenario.sim.run_until(lambda: stack.internet_available, timeout=60.0)
        tunnel_up = scenario.sim.now - started if stack.internet_available else float("nan")
        scenario.sim.run(scenario.sim.now + 5.0)
        upstream = stack.proxy.upstream_registrations.get("sip:alice@siphoc.ch", False)

        record = scenario.call_and_wait("alice", "sip:carol@siphoc.ch", duration=3.0)
        out_ok = record.established

        in_states: list[CallState] = []
        inbound = carol.call(
            "sip:alice@siphoc.ch", on_state=lambda c: in_states.append(c.state)
        )
        scenario.sim.run_until(
            lambda: inbound.state in (CallState.ESTABLISHED, CallState.FAILED),
            timeout=30.0,
        )
        in_ok = inbound.state is CallState.ESTABLISHED
        if in_ok:
            inbound.hangup()
            scenario.sim.run(scenario.sim.now + 2.0)
        table.add_row(
            n_nodes,
            tunnel_up,
            upstream,
            out_ok,
            record.setup_delay if record.setup_delay is not None else float("nan"),
            in_ok,
        )
        scenario.stop()
    table.add_note("gateway node sits at the far end of the chain")
    return table


def interop_table(routing: str = "aodv", seed: int = 9) -> Table:
    """T1: the section 3.2 provider interoperability matrix."""
    table = Table(
        title="T1: SIP provider interoperability (section 3.2)",
        columns=[
            "provider",
            "mandates_sbc",
            "fix_configured",
            "upstream_reg",
            "manet_to_inet",
            "inet_to_manet",
        ],
    )
    cases = [
        ("siphoc.ch", False, False),
        ("netvoip.ch", False, False),
        ("polyphone.ethz.ch", True, False),
        ("polyphone.ethz.ch", True, True),
    ]
    for domain, strict, fix in cases:
        scenario = ManetScenario(
            ManetConfig(
                n_nodes=3,
                topology="chain",
                routing=routing,
                seed=seed,
                internet_gateways=1,
                providers=() if strict else (domain,),
                strict_providers=(domain,) if strict else (),
            )
        )
        scenario.start()
        provider = scenario.providers[domain]
        remote = provider.create_user("remote")
        remote.on_invite = lambda call: (
            call.ring(),
            scenario.sim.schedule(0.3, call.answer),
        )
        account = SipAccount(
            username="alice",
            domain=domain,
            provider_outbound_proxy=f"sbc.{domain}" if fix else None,
        )
        alice = scenario.add_phone(0, "alice", account=account)
        scenario.sim.run(20.0)
        upstream = scenario.stacks[0].proxy.upstream_registrations.get(
            f"sip:alice@{domain}", False
        )
        record = scenario.call_and_wait("alice", f"sip:remote@{domain}", duration=2.0)
        out_ok = record.established

        inbound = remote.call(f"sip:alice@{domain}")
        scenario.sim.run_until(
            lambda: inbound.state in (CallState.ESTABLISHED, CallState.FAILED),
            timeout=30.0,
        )
        in_ok = inbound.state is CallState.ESTABLISHED
        if in_ok:
            inbound.hangup()
            scenario.sim.run(scenario.sim.now + 2.0)
        table.add_row(domain, strict, fix, upstream, out_ok, in_ok)
        scenario.stop()
    table.add_note(
        "row 3 reproduces the paper's open issue: the overwritten"
        " outbound-proxy field leaves the proxy unable to deduce the next hop"
    )
    return table
