"""Registration convergence and cache ablation experiments (E3, A2)."""

from __future__ import annotations

from repro.core.manet_slp import ManetSlpConfig
from repro.experiments.tables import Table
from repro.scenarios import ManetConfig, ManetScenario
from repro.slp.service import SERVICE_SIP_CONTACT


def convergence_table(
    routings: tuple[str, ...] = ("aodv", "olsr"),
    n_nodes: int = 9,
    seeds: tuple[int, ...] = (1, 2, 3),
) -> Table:
    """E3: how long until a fresh binding is resolvable network-wide.

    AODV (reactive) resolves on demand via the in-band query, so the
    relevant latency is per-lookup; OLSR (proactive) floods adverts with
    routing traffic, so the cache converges without any lookups at all.
    """
    table = Table(
        title="E3: registration availability",
        columns=["routing", "mode", "mean_s", "max_s", "resolved"],
    )
    for routing in routings:
        proactive_times: list[float] = []
        lookup_times: list[float] = []
        resolved = 0
        attempts = 0
        for seed in seeds:
            scenario = ManetScenario(
                ManetConfig(
                    n_nodes=n_nodes,
                    topology="grid",
                    routing=routing,
                    seed=seed,
                    spacing=90.0,
                    tx_range=140.0,
                )
            )
            scenario.start()
            scenario.converge(20.0 if routing == "olsr" else 5.0)
            registered_at = scenario.sim.now
            scenario.add_phone(0, "alice")
            predicate = "(user=sip:alice@voicehoc.ch)"
            far_slp = scenario.stacks[-1].manet_slp

            # Proactive convergence: when does the far cache hold the entry?
            if scenario.sim.run_until(
                lambda: bool(far_slp.lookup_cached(SERVICE_SIP_CONTACT, predicate)),
                timeout=45.0,
                step=0.2,
            ):
                proactive_times.append(scenario.sim.now - registered_at)

            # On-demand lookup latency from the far corner.
            results: list[float] = []
            start = scenario.sim.now
            far_slp.find_services(
                SERVICE_SIP_CONTACT,
                predicate,
                callback=lambda entries: results.append(
                    scenario.sim.now - start if entries else float("nan")
                ),
            )
            scenario.sim.run_until(lambda: bool(results), timeout=10.0)
            attempts += 1
            if results and results[0] == results[0]:
                resolved += 1
                lookup_times.append(results[0])
            scenario.stop()
        if proactive_times:
            table.add_row(
                routing,
                "proactive cache fill",
                sum(proactive_times) / len(proactive_times),
                max(proactive_times),
                f"{len(proactive_times)}/{len(seeds)}",
            )
        table.add_row(
            routing,
            "on-demand lookup",
            sum(lookup_times) / len(lookup_times) if lookup_times else float("nan"),
            max(lookup_times) if lookup_times else float("nan"),
            f"{resolved}/{attempts}",
        )
    return table


def cache_ablation_table(
    lifetimes: tuple[float, ...] = (10.0, 30.0, 120.0),
    refresh_ratios: tuple[float, ...] = (0.5,),
    routing: str = "olsr",
    n_nodes: int = 9,
    seed: int = 2,
    observation: float = 60.0,
) -> Table:
    """A2: advert lifetime / refresh-rate ablation.

    Short lifetimes keep caches fresh but force constant re-advertisement;
    long lifetimes risk stale entries after a node leaves.
    """
    table = Table(
        title=f"A2: advert lifetime ablation ({routing})",
        columns=[
            "lifetime_s",
            "refresh_s",
            "hit_after_warmup",
            "stale_after_leave",
            "adverts_piggybacked",
        ],
    )
    for lifetime in lifetimes:
        for ratio in refresh_ratios:
            refresh = max(1.0, lifetime * ratio)
            slp_config = ManetSlpConfig(
                advert_lifetime=lifetime, refresh_interval=refresh
            )
            scenario = ManetScenario(
                ManetConfig(
                    n_nodes=n_nodes,
                    topology="grid",
                    routing=routing,
                    seed=seed,
                    spacing=90.0,
                    tx_range=140.0,
                )
            )
            for stack in scenario.stacks:
                stack.manet_slp.config = slp_config
                # The proxy clamps contact adverts to its own knob; align it.
                stack.config.contact_advert_lifetime = lifetime
            scenario.start()
            scenario.converge(15.0)
            scenario.add_phone(0, "alice")
            predicate = "(user=sip:alice@voicehoc.ch)"
            far_slp = scenario.stacks[-1].manet_slp
            scenario.sim.run(scenario.sim.now + observation)
            hit = bool(far_slp.lookup_cached(SERVICE_SIP_CONTACT, predicate))
            # Node 0 leaves abruptly (no deregistration); probe the cache a
            # fixed 20 s later: short lifetimes have purged the ghost entry,
            # long ones still serve it — the freshness/overhead tradeoff.
            scenario.nodes[0].up = False
            scenario.sim.run(scenario.sim.now + 20.0)
            stale = bool(far_slp.lookup_cached(SERVICE_SIP_CONTACT, predicate))
            table.add_row(
                lifetime,
                refresh,
                hit,
                stale,
                scenario.stats.count("manetslp.adverts_piggybacked"),
            )
            scenario.stop()
    table.add_note(
        "stale_after_leave shows entries that outlive a crashed node for"
        " up to their advertised lifetime — the freshness/overhead tradeoff"
    )
    return table
