"""Call-level experiments: setup delay, scalability, voice quality.

E1 (setup delay vs hop count, both routing protocols), E5 (scalability
with node count and mobility — the paper's stated future work), E6 (MOS
vs hops and loss), and F3 (the Figure 3 call-flow record).
"""

from __future__ import annotations

import math

from repro.experiments.tables import Table
from repro.scenarios import ManetConfig, ManetScenario, build_chain_call_scenario


def call_flow_table(routing: str = "aodv", seed: int = 3) -> Table:
    """F3: the eight-step call flow on a 2-hop MANET, with timings."""
    scenario = build_chain_call_scenario(hops=2, routing=routing, seed=seed)
    scenario.converge()
    sim = scenario.sim
    t_register = sim.now
    alice = scenario.phones["alice"]
    bob = scenario.phones["bob"]
    table = Table(
        title=f"F3: call flow steps ({routing}, 2 hops)",
        columns=["step", "event", "ok", "at_s"],
    )
    table.add_row(1, "alice registers with local proxy", alice.registered, t_register)
    table.add_row(
        2,
        "proxy advertises contact via MANET SLP",
        bool(scenario.stacks[0].manet_slp.local_services()),
        t_register,
    )
    table.add_row(3, "bob registers with local proxy", bob.registered, t_register)
    table.add_row(
        4,
        "bob's proxy advertises contact via MANET SLP",
        bool(scenario.stacks[2].manet_slp.local_services()),
        t_register,
    )
    record = scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=5.0)
    table.add_row(5, "INVITE routed through local proxy", True, record.placed_at)
    table.add_row(
        6,
        "proxy consults MANET SLP for callee",
        scenario.nodes[0].stats.count("siphoc.slp_lookups") > 0,
        record.placed_at,
    )
    table.add_row(
        7,
        "request forwarded to responsible proxy",
        scenario.nodes[0].stats.count("siphoc.routed_in_manet") > 0,
        record.placed_at,
    )
    table.add_row(
        8,
        "remote proxy delivers INVITE; phone rings and answers",
        record.established,
        record.established_at if record.established_at is not None else float("nan"),
    )
    if record.setup_delay is not None:
        table.add_note(f"session setup delay: {record.setup_delay * 1000:.0f} ms")
    scenario.stop()
    return table


def setup_delay_table(
    hop_counts: tuple[int, ...] = (1, 2, 4, 6, 8),
    routings: tuple[str, ...] = ("aodv", "olsr"),
    seeds: tuple[int, ...] = (1, 2, 3),
) -> Table:
    """E1: session setup delay vs hop count, AODV vs OLSR."""
    table = Table(
        title="E1: session setup delay vs hop count",
        columns=["routing", "hops", "success", "mean_setup_s", "min_s", "max_s"],
    )
    for routing in routings:
        for hops in hop_counts:
            delays = []
            attempts = 0
            for seed in seeds:
                scenario = build_chain_call_scenario(hops=hops, routing=routing, seed=seed)
                scenario.converge()
                record = scenario.call_and_wait(
                    "alice", "sip:bob@voicehoc.ch", duration=2.0
                )
                attempts += 1
                # Post-dial delay (to ringback) excludes the callee's
                # configured pick-up time; this is the paper's setup metric.
                if record.post_dial_delay is not None:
                    delays.append(record.post_dial_delay)
                scenario.stop()
            table.add_row(
                routing,
                hops,
                f"{len(delays)}/{attempts}",
                sum(delays) / len(delays) if delays else float("nan"),
                min(delays) if delays else float("nan"),
                max(delays) if delays else float("nan"),
            )
    table.add_note(
        "AODV pays one in-band lookup/route discovery; OLSR resolves from"
        " the proactively filled SLP cache"
    )
    return table


def scalability_table(
    node_counts: tuple[int, ...] = (10, 20, 30),
    routing: str = "aodv",
    seeds: tuple[int, ...] = (1, 2),
    calls_per_run: int = 6,
    mobility: bool = False,
) -> Table:
    """E5: call success and setup delay as the MANET grows (future work)."""
    table = Table(
        title=f"E5: scalability ({routing}{', random waypoint' if mobility else ''})",
        columns=["nodes", "calls", "established", "success_ratio", "mean_setup_s"],
    )
    for n_nodes in node_counts:
        established = 0
        attempted = 0
        delays: list[float] = []
        for seed in seeds:
            side = max(2, math.ceil(math.sqrt(n_nodes)))
            scenario = ManetScenario(
                ManetConfig(
                    n_nodes=n_nodes,
                    topology="grid",
                    routing=routing,
                    seed=seed,
                    spacing=90.0,
                    tx_range=140.0,
                    mobility=mobility,
                    area=(side * 90.0, side * 90.0),
                )
            )
            scenario.start()
            for index in range(n_nodes):
                scenario.add_phone(index, f"user{index}")
            scenario.converge(15.0 if routing == "olsr" else 5.0)
            for call_index in range(calls_per_run):
                src = scenario.sim.rng.randrange(n_nodes)
                dst = scenario.sim.rng.randrange(n_nodes)
                while dst == src:
                    dst = scenario.sim.rng.randrange(n_nodes)
                record = scenario.call_and_wait(
                    f"user{src}", f"sip:user{dst}@voicehoc.ch", duration=3.0
                )
                attempted += 1
                if record.established:
                    established += 1
                    if record.setup_delay is not None:
                        delays.append(record.setup_delay)
            scenario.stop()
        table.add_row(
            n_nodes,
            attempted,
            established,
            established / attempted if attempted else 0.0,
            sum(delays) / len(delays) if delays else float("nan"),
        )
    return table


def voice_quality_table(
    hop_counts: tuple[int, ...] = (1, 2, 4, 6),
    loss_rates: tuple[float, ...] = (0.0, 0.05, 0.15),
    routing: str = "aodv",
    seed: int = 2,
    talk_time: float = 15.0,
    mac_retries: int = 1,
) -> Table:
    """E6: E-model MOS of a call vs path length and link loss.

    ``mac_retries`` defaults to 1 here (vs the simulator's default 3): a
    heavily loaded 802.11 channel cannot always hide frame loss behind
    ARQ, and the experiment's purpose is to expose the loss axis.
    """
    table = Table(
        title=f"E6: voice quality (MOS) vs hops and loss ({routing})",
        columns=["hops", "link_loss", "established", "mos", "delay_ms", "eff_loss_pct"],
    )
    for hops in hop_counts:
        for loss in loss_rates:
            scenario = build_chain_call_scenario(
                hops=hops, routing=routing, seed=seed, loss_rate=loss,
                mac_retries=mac_retries,
            )
            scenario.converge()
            record = scenario.call_and_wait(
                "alice", "sip:bob@voicehoc.ch", duration=talk_time
            )
            quality = record.quality
            table.add_row(
                hops,
                loss,
                record.established,
                quality.mos if quality else float("nan"),
                quality.mean_delay * 1000 if quality else float("nan"),
                quality.effective_loss_ratio * 100 if quality else float("nan"),
            )
            scenario.stop()
    table.add_note("MOS >= 3.6 is the usual 'users satisfied' threshold")
    return table
