"""Service-layer experiments (extension S1): IM and presence over SIPHoc.

The paper's introduction argues VoIP-over-MANET should carry "other
services known from the Internet, such as video, chat". This experiment
measures those services over the same middleware path used by calls:
instant-message delivery latency, presence notification latency, and
video frame delivery — per hop count.
"""

from __future__ import annotations

from repro.experiments.tables import Table
from repro.scenarios import ManetConfig, ManetScenario
from repro.sip.pidf import ON_THE_PHONE


def services_table(
    hop_counts: tuple[int, ...] = (1, 2, 4),
    routing: str = "aodv",
    seed: int = 8,
) -> Table:
    """S1: IM, presence, and video service quality vs hop count."""
    table = Table(
        title=f"S1: services over SIPHoc ({routing})",
        columns=[
            "hops",
            "im_delivered",
            "im_latency_s",
            "presence_latency_s",
            "video_ok",
            "video_loss_pct",
        ],
    )
    for hops in hop_counts:
        scenario = ManetScenario(
            ManetConfig(n_nodes=hops + 1, topology="chain", routing=routing, seed=seed)
        )
        scenario.start()
        alice = scenario.add_phone(0, "alice", video=True)
        bob = scenario.add_phone(hops, "bob", video=True)
        scenario.converge()
        sim = scenario.sim

        # Instant message latency (send -> delivery at the peer).
        sent_at = sim.now
        arrivals: list[float] = []
        bob.on_text = lambda message: arrivals.append(sim.now - sent_at)
        delivery: list[bool] = []
        alice.send_text("sip:bob@voicehoc.ch", "ping", on_result=lambda ok, s: delivery.append(ok))
        sim.run_until(lambda: bool(delivery), timeout=15.0)
        im_ok = bool(delivery and delivery[0])
        im_latency = arrivals[0] if arrivals else float("nan")

        # Presence: time from bob's state change to alice's NOTIFY arrival.
        alice.watch("sip:bob@voicehoc.ch")
        sim.run(sim.now + 5.0)  # initial NOTIFY settles
        changed_at = sim.now
        notified: list[float] = []
        alice.on_buddy_change = lambda aor, status: notified.append(sim.now - changed_at)
        bob.ua.set_presence(ON_THE_PHONE)
        sim.run_until(lambda: bool(notified), timeout=15.0)
        presence_latency = notified[0] if notified else float("nan")

        # Video call.
        alice.place_call("sip:bob@voicehoc.ch", duration=8.0)
        sim.run_until(
            lambda: bool(alice.history) and alice.history[-1].ended_at is not None,
            timeout=40.0,
            step=0.5,
        )
        record = alice.history[-1]
        video_ok = record.video is not None and record.video.watchable
        video_loss = (
            record.video.loss_ratio * 100 if record.video is not None else float("nan")
        )
        table.add_row(hops, im_ok, im_latency, presence_latency, video_ok, video_loss)
        scenario.stop()
    table.add_note(
        "all three services traverse the same SIPHoc proxy + MANET SLP path"
        " as voice calls; no additional infrastructure"
    )
    return table
