"""Command-line entry point: regenerate the paper's evaluation tables.

Usage::

    python -m repro.experiments              # every artifact, quick params
    python -m repro.experiments E1 T1        # selected artifacts
    python -m repro.experiments --full       # full benchmark parameters
    python -m repro.experiments --list
"""

from __future__ import annotations

import argparse
import sys

import repro.metrics as metrics
import repro.trace as trace
from repro.experiments import (
    ablation_discovery_table,
    services_table,
    cache_ablation_table,
    call_flow_table,
    city_table,
    convergence_table,
    footprint_table,
    gateway_table,
    handover_table,
    interop_table,
    media_quality_table,
    module_inventory_table,
    overhead_vs_nodes_table,
    scalability_table,
    setup_delay_table,
    voice_quality_table,
)

#: artifact id -> (description, quick kwargs, full kwargs, function)
ARTIFACTS = {
    "F3": ("Figure 3 call flow", {}, {}, call_flow_table),
    "F6": ("deployment footprint (section 4)", {}, {}, footprint_table),
    "T1": ("provider interoperability (section 3.2)", {}, {}, interop_table),
    "E1": (
        "setup delay vs hop count",
        dict(hop_counts=(1, 2, 4), seeds=(1,)),
        dict(hop_counts=(1, 2, 4, 6, 8), seeds=(1, 2, 3)),
        setup_delay_table,
    ),
    "E2": (
        "control overhead vs node count",
        dict(node_counts=(9, 16), n_lookups=6),
        dict(node_counts=(9, 16, 25), n_lookups=8),
        overhead_vs_nodes_table,
    ),
    "E3": (
        "registration availability",
        dict(seeds=(1,)),
        dict(seeds=(1, 2, 3)),
        convergence_table,
    ),
    "E4": (
        "gateway attachment + Internet calls",
        dict(chain_lengths=(2, 3)),
        dict(chain_lengths=(2, 3, 5)),
        gateway_table,
    ),
    "E5": (
        "scalability (future work)",
        dict(node_counts=(10, 20), seeds=(1,), calls_per_run=4),
        dict(node_counts=(10, 20, 30), seeds=(1, 2), calls_per_run=5),
        scalability_table,
    ),
    "E6": (
        "voice quality vs hops and loss",
        dict(hop_counts=(1, 2, 4), loss_rates=(0.0, 0.15), talk_time=8.0),
        dict(hop_counts=(1, 2, 4, 6), loss_rates=(0.0, 0.05, 0.15)),
        voice_quality_table,
    ),
    "M1": (
        "media stacks (codec x redundancy x playout) under GE fading",
        dict(codecs=("PCMU",), ge_points=((1.2, 0.05),), talk_time=8.0),
        dict(
            codecs=("PCMU", "G729"),
            ge_points=((2.0, 0.04), (1.2, 0.05)),
        ),
        media_quality_table,
    ),
    "H1": (
        "mid-call coverage loss, baseline vs multihomed handover (section 5k)",
        dict(seeds=(1,), conditions=(("clean", None, None, False),)),
        dict(seeds=(1, 2, 3)),
        handover_table,
    ),
    "A1": (
        "discovery scheme ablation",
        dict(seeds=(1,)),
        dict(seeds=(1, 2, 3)),
        ablation_discovery_table,
    ),
    "A2": (
        "advert lifetime ablation",
        dict(lifetimes=(10.0, 120.0), observation=30.0),
        dict(lifetimes=(10.0, 30.0, 120.0)),
        cache_ablation_table,
    ),
    "S1": (
        "IM/presence/video services over SIPHoc (extension)",
        dict(hop_counts=(1, 2)),
        dict(hop_counts=(1, 2, 4)),
        services_table,
    ),
    "C1": (
        "city-scale MANET call load (5k nodes with --full)",
        dict(node_counts=(300,), n_calls=6, drain=15.0),
        dict(node_counts=(1000, 5000), n_calls=24),
        city_table,
    ),
    "INV": ("library inventory", {}, {}, module_inventory_table),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation tables.",
    )
    parser.add_argument("artifacts", nargs="*", help="artifact ids (default: all)")
    parser.add_argument("--full", action="store_true", help="full benchmark parameters")
    parser.add_argument("--list", action="store_true", help="list artifacts and exit")
    parser.add_argument(
        "--trace",
        metavar="OUT.JSONL",
        help="trace every scenario the selected artifacts build and write the "
        "combined JSONL here (analyze with python -m repro.trace)",
    )
    parser.add_argument(
        "--metrics",
        metavar="OUT.JSONL",
        help="scrape sim-time metrics from every scenario the selected "
        "artifacts build and write the combined JSONL here (analyze with "
        "python -m repro.metrics)",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="sim-seconds between metric snapshots (default: 1.0)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for key, (description, *_rest) in ARTIFACTS.items():
            print(f"{key:4} {description}")
        return 0

    selected = [a.upper() for a in args.artifacts] or list(ARTIFACTS)
    unknown = [a for a in selected if a not in ARTIFACTS]
    if unknown:
        print(f"unknown artifacts: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ARTIFACTS)}", file=sys.stderr)
        return 2

    if args.trace:
        trace.enable_default()
    if args.metrics:
        metrics.enable_default(args.metrics_interval)
    try:
        for key in selected:
            description, quick, full, fn = ARTIFACTS[key]
            kwargs = full if args.full else quick
            table = fn(**kwargs)
            print(table.format())
            print(f"[{key}: {description}]")
            print()
        if args.trace:
            count = trace.export_registered(args.trace)
            print(f"[trace: {count} events written to {args.trace}]")
        if args.metrics:
            count = metrics.export_registered(args.metrics)
            print(f"[metrics: {count} snapshots written to {args.metrics}]")
    finally:
        if args.trace:
            trace.disable_default()
        if args.metrics:
            metrics.disable_default()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
