"""Deployment footprint experiment (F6 / section 4 of the paper).

The paper reports a 1.2 MB system footprint (proxy + Gateway Provider +
Connection Provider + MANET SLP, about 20 shared libraries) against the
iPAQ h5000's 32 MB flash, of which the OS consumes 25 MB, plus ~1 MB for
the Minisip VoIP application. We reproduce the *shape* of that budget:
source footprint per component, live in-memory footprint of one running
node stack, and the flash-budget check.
"""

from __future__ import annotations

import os

import repro
from repro.core.stack import SiphocStack
from repro.experiments.tables import Table
from repro.netsim.medium import WirelessMedium
from repro.netsim.node import Node
from repro.netsim.packet import manet_ip
from repro.netsim.simulator import Simulator
from repro.netsim.stats import Stats

#: Paper's numbers (bytes), for the comparison column.
PAPER_SYSTEM_FOOTPRINT = int(1.2 * 1024 * 1024)
PAPER_VOIP_APP_FOOTPRINT = 1 * 1024 * 1024
IPAQ_FLASH = 32 * 1024 * 1024
IPAQ_OS = 25 * 1024 * 1024

#: Which source packages implement which paper component.
COMPONENT_PACKAGES = {
    "SIPHoc proxy": ["core/proxy.py", "sip"],
    "MANET SLP": ["core/manet_slp.py", "core/handlers.py", "core/extension.py", "slp"],
    "Gateway Provider": ["core/gateway.py", "core/tunnel.py"],
    "Connection Provider": ["core/connection.py"],
    "VoIP application": ["core/softphone.py", "rtp"],
    "Routing daemons": ["routing"],
}


def _package_root() -> str:
    return os.path.dirname(os.path.abspath(repro.__file__))


def _source_stats(relative_paths: list[str]) -> tuple[int, int, int]:
    """(files, non-blank LoC, bytes) for the given paths under repro/."""
    root = _package_root()
    files = 0
    loc = 0
    size = 0
    for relative in relative_paths:
        path = os.path.join(root, relative)
        candidates: list[str] = []
        if os.path.isfile(path):
            candidates.append(path)
        elif os.path.isdir(path):
            for dirpath, _, filenames in os.walk(path):
                candidates.extend(
                    os.path.join(dirpath, name)
                    for name in filenames
                    if name.endswith(".py")
                )
        for candidate in candidates:
            files += 1
            size += os.path.getsize(candidate)
            with open(candidate, encoding="utf-8") as handle:
                loc += sum(1 for line in handle if line.strip())
    return files, loc, size


def _running_stack_memory() -> int:
    """Approximate in-memory footprint of one running node stack (bytes)."""
    import tracemalloc

    tracemalloc.start()
    sim = Simulator(seed=1)
    stats = Stats()
    medium = WirelessMedium(sim, stats=stats)
    node = Node(sim, 0, manet_ip(0), stats=stats)
    node.join_medium(medium)
    stack = SiphocStack(node, routing="aodv")
    stack.start()
    stack.add_phone(username="alice")
    sim.run(2.0)
    current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    stack.stop()
    return peak


def footprint_table() -> Table:
    """F6: per-component source footprint and the iPAQ flash budget."""
    table = Table(
        title="F6: deployment footprint (section 4)",
        columns=["component", "files", "loc", "source_kb"],
    )
    total_size = 0
    for component, paths in COMPONENT_PACKAGES.items():
        files, loc, size = _source_stats(paths)
        total_size += size
        table.add_row(component, files, loc, size / 1024)
    system_total = total_size
    memory = _running_stack_memory()
    table.add_note(
        f"source total: {system_total / 1024:.0f} KB"
        f" (paper's C implementation: {PAPER_SYSTEM_FOOTPRINT / 1024:.0f} KB)"
    )
    table.add_note(
        f"running one-node stack peak memory: {memory / 1024:.0f} KB"
    )
    free_flash = IPAQ_FLASH - IPAQ_OS
    fits = system_total + PAPER_VOIP_APP_FOOTPRINT < free_flash
    table.add_note(
        f"iPAQ flash budget: {free_flash / (1024 * 1024):.0f} MB free after OS;"
        f" system + VoIP app fit: {fits}"
    )
    return table


def module_inventory_table() -> Table:
    """Companion table: LoC of every top-level package of the library."""
    table = Table(
        title="library inventory (LoC per package)",
        columns=["package", "files", "loc", "kb"],
    )
    root = _package_root()
    entries = sorted(
        name
        for name in os.listdir(root)
        if os.path.isdir(os.path.join(root, name)) and not name.startswith("__")
    )
    for name in entries:
        files, loc, size = _source_stats([name])
        table.add_row(name, files, loc, size / 1024)
    return table
