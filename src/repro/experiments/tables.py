"""Result tables: the structured output of every experiment.

Each experiment in :mod:`repro.experiments` returns a :class:`Table` whose
rows regenerate the corresponding paper artifact (figure, deployment
number, or interoperability statement). ``format()`` renders the ASCII
view the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A titled result table."""

    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[object]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def format(self) -> str:
        cells = [[_fmt(value) for value in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * width for width in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns)))
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)
